//! Serving: request-level SLOs under continuous batching.
//!
//! Deploys Llama3-8B decode on a 64-CU RPU with a GPU prefill tier
//! (the paper's Splitwise-style split), then serves three workloads:
//! a light Poisson load, a saturating Poisson load, and a closed loop
//! of chatty clients. Each prints the TTFT/TPOT/E2E percentile table.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use rpu::core::serving::RpuCostModel;
use rpu::models::LengthDistribution;
use rpu::serve::{serve, ArrivalProcess, ServeConfig, SloReport, SloTargets, Workload};
use rpu::{ModelConfig, Precision, RpuSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::llama3_8b();
    let precision = Precision::mxfp4_inference();
    let (max_batch, max_context) = (8, 2048);
    let sys = RpuSystem::with_optimal_memory(&model, precision, max_batch, max_context, 64)?;
    println!("decode tier : {sys}");

    let config = ServeConfig {
        max_batch,
        ..ServeConfig::default()
    };
    let slo = SloTargets::interactive();

    // Open loop: the same seeded request tape at two offered loads.
    for (label, rate) in [("light load", 80.0), ("saturating load", 640.0)] {
        let wl = Workload {
            arrivals: ArrivalProcess::Poisson { rate_rps: rate },
            prompt_lens: LengthDistribution::Uniform { lo: 256, hi: 1024 },
            output_lens: LengthDistribution::Exponential {
                mean: 96.0,
                cap: 512,
            },
            num_requests: 96,
            seed: 7,
            ..Workload::default()
        };
        let mut cost = RpuCostModel::new(sys, model);
        let report = serve(&wl, &mut cost, &config);
        let summary = SloReport::new(&report, &slo);
        println!();
        println!(
            "{}",
            summary.table(&format!("{label}: Poisson {rate:.0} req/s"))
        );
        println!(
            "({} decode iterations, {} distinct simulator calls)",
            report.decode_iterations,
            cost.distinct_decode_sims()
        );
    }

    // Closed loop: 16 clients thinking for 250 ms between turns.
    let wl = Workload {
        arrivals: ArrivalProcess::ClosedLoop {
            clients: 16,
            think_s: 0.25,
        },
        prompt_lens: LengthDistribution::Fixed(512),
        output_lens: LengthDistribution::Fixed(64),
        num_requests: 64,
        seed: 7,
        ..Workload::default()
    };
    let mut cost = RpuCostModel::new(sys, model);
    let report = serve(&wl, &mut cost, &config);
    println!();
    println!(
        "{}",
        SloReport::new(&report, &slo).table("closed loop: 16 clients, 250 ms think time")
    );
    Ok(())
}
