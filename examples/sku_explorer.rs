//! SKU explorer (Figs. 9/10 style): for a model and deployment scale,
//! walk the HBM-CO Pareto frontier and show which SKUs fit, their
//! energy, and their cost.
//!
//! ```text
//! cargo run --release --example sku_explorer [model] [num_cus]
//! ```

use rpu::core::{required_bytes_per_core, system_cost, CostModel};
use rpu::hbmco::{ideal_token_latency, pareto_frontier};
use rpu::models::{ModelConfig, Precision};
use rpu::RpuSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let model = match args.get(1).map(String::as_str) {
        None | Some("maverick") => ModelConfig::llama4_maverick(),
        Some("8b") => ModelConfig::llama3_8b(),
        Some("70b") => ModelConfig::llama3_70b(),
        Some("405b") => ModelConfig::llama3_405b(),
        Some("scout") => ModelConfig::llama4_scout(),
        Some(other) => {
            eprintln!("unknown model `{other}`");
            std::process::exit(1);
        }
    };
    let num_cus: u32 = args.get(2).map_or(Ok(64), |s| s.parse())?;
    let prec = Precision::mxfp4_inference();
    let (batch, seq) = (1, 8192);

    let need = required_bytes_per_core(&model, prec, batch, seq, num_cus);
    println!(
        "{} on {num_cus} CUs needs {:.0} MB per core",
        model.name,
        need / 1e6
    );
    println!();
    println!(
        "{:<26} {:>10} {:>9} {:>9} {:>11} {:>8}",
        "HBM-CO SKU (Pareto)", "MB/core", "BW/Cap", "pJ/bit", "ideal ms/tok", "fits?"
    );

    let mut frontier = pareto_frontier();
    frontier.sort_by(|a, b| b.capacity_bytes.total_cmp(&a.capacity_bytes));
    for p in &frontier {
        println!(
            "{:<26} {:>10.0} {:>9.0} {:>9.2} {:>11.2} {:>8}",
            p.config.label(),
            p.capacity_per_pch() / 1e6,
            p.bw_per_cap,
            p.energy_pj_per_bit,
            ideal_token_latency(p.bw_per_cap) * 1e3,
            if p.capacity_per_pch() >= need {
                "yes"
            } else {
                "-"
            },
        );
    }

    // Build the optimal deployment and report its cost split.
    let sys = RpuSystem::with_optimal_memory(&model, prec, batch, seq, num_cus)?;
    let cost = system_cost(&sys.arch, &CostModel::paper());
    println!();
    println!("optimal SKU: {}", sys.arch.memory.label());
    println!(
        "system cost (HBM3e-module units): silicon {:.2} + memory {:.2} + substrate {:.2} + PCB {:.2} = {:.2}",
        cost.silicon, cost.memory, cost.substrate, cost.pcb, cost.total()
    );
    Ok(())
}
