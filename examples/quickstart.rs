//! Quickstart: build an RPU, pick the optimal HBM-CO SKU, and simulate
//! one decode step of Llama3-70B at batch size 1.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rpu::core::experiments::fig09_pareto;
use rpu::models::{ModelConfig, Precision};
use rpu::RpuSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::llama3_70b();
    let precision = Precision::mxfp4_inference();
    let (batch, seq_len, num_cus) = (1, 8192, 128);

    // The deployment rule of the paper: the highest-BW/Cap HBM-CO SKU on
    // the Pareto frontier that still holds the model at this scale.
    let sys = RpuSystem::with_optimal_memory(&model, precision, batch, seq_len, num_cus)?;
    println!("system     : {sys}");
    println!("memory SKU : {}", sys.arch.memory.label());
    println!(
        "capacity   : {:.1} GB across {} cores ({:.0} MB/core)",
        sys.arch.mem_capacity() / 1e9,
        sys.arch.num_cores(),
        sys.arch.memory.capacity_per_pch() / 1e6,
    );
    println!(
        "bandwidth  : {:.1} TB/s aggregate, {:.0} W TDP",
        sys.arch.mem_bandwidth() / 1e12,
        sys.tdp_w(),
    );

    // Compile the decode step to the three per-core pipelines and run it
    // through the event-driven simulator.
    let report = sys.decode_step(&model, batch, seq_len)?;
    println!();
    println!("token latency        : {:.3} ms", report.total_time_s * 1e3);
    println!("tokens/second        : {:.0}", 1.0 / report.total_time_s);
    println!(
        "memory BW utilisation: {:.1} %",
        report.mem_bw_utilization() * 100.0
    );
    println!(
        "compute utilisation  : {:.1} %",
        report.compute_utilization() * 100.0
    );
    println!("energy / token       : {:.2} J", report.system_energy_j());
    println!(
        "avg system power     : {:.0} W",
        report.avg_system_power_w()
    );

    // For context: where this sits on the paper's Fig. 9 frontier.
    let fig9 = fig09_pareto::run();
    println!();
    println!(
        "(Fig. 9 optimal SKU for Llama3-405B at 64 CUs: {})",
        fig9.optimal_entry().point.config.label()
    );
    Ok(())
}
