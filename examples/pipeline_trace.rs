//! Pipeline trace (Fig. 8 style): dump one CU's memory / compute /
//! network utilisation, buffer occupancy and power timeline as CSV for
//! plotting.
//!
//! ```text
//! cargo run --release --example pipeline_trace [batch] [seq] > trace.csv
//! ```

use rpu::models::{ModelConfig, Precision};
use rpu::sim::SimConfig;
use rpu::RpuSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let batch: u32 = args.get(1).map_or(Ok(1), |s| s.parse())?;
    let seq: u32 = args.get(2).map_or(Ok(16 * 1024), |s| s.parse())?;

    let model = ModelConfig::llama3_8b();
    let prec = Precision::mxfp4_inference();
    let mut sys = RpuSystem::with_optimal_memory(&model, prec, batch, seq, 64)?;
    sys.sim_config = SimConfig {
        trace_bin_s: Some(100e-9),
        ..SimConfig::default()
    };

    let report = sys.decode_step(&model, batch, seq)?;
    let trace = report.trace.as_ref().expect("trace enabled");

    eprintln!(
        "# {} BS={batch} seq={seq}: {:.1} us/step, mem util {:.2}, comp util {:.2}",
        model.name,
        report.total_time_s * 1e6,
        report.mem_bw_utilization(),
        report.compute_utilization(),
    );

    println!("time_us,mem_util,comp_util,net_util,power_w_per_cu");
    let cores = 16.0;
    for i in 0..trace.mem_util.len() {
        println!(
            "{:.3},{:.4},{:.4},{:.4},{:.3}",
            i as f64 * trace.bin_s * 1e6,
            trace.mem_util[i],
            trace.comp_util[i],
            trace.net_util.get(i).copied().unwrap_or(0.0),
            trace.power_w.get(i).copied().unwrap_or(0.0) * cores,
        );
    }
    Ok(())
}
