//! Scheduling policies head-to-head on a saturated two-class fleet.
//!
//! Serves the policy-sweep workload — interactive chat (priority 0,
//! 500 ms TTFT SLO) sharing a 64-CU RPU with offline batch jobs
//! (priority 2, relaxed SLO, 2k prompts, 1k generations) — at an
//! offered load past FIFO's collapse point, once per scheduling
//! policy, and prints each policy's per-class SLO table plus the
//! sweep's crossover summary.
//!
//! ```text
//! cargo run --release --example policy_compare
//! ```

use rpu::core::experiments::policy_sweep::{self, PolicyKind};
use rpu::core::serving::RpuCostModel;
use rpu::serve::{serve_with, MultiClassReport, ServeConfig};
use rpu::{ModelConfig, Precision, RpuSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = ModelConfig::llama3_8b();
    let precision = Precision::mxfp4_inference();
    let config = ServeConfig {
        max_batch: policy_sweep::MAX_BATCH,
        ..ServeConfig::default()
    };
    let max_context = config.bucket(2048 + 1024);
    let sys = RpuSystem::with_optimal_memory(
        &model,
        precision,
        policy_sweep::MAX_BATCH,
        max_context,
        policy_sweep::NUM_CUS,
    )?;
    println!("decode tier : {sys}");

    // One saturating load: past FIFO's collapse, inside priority's
    // sustainable region.
    let rate = 400.0;
    let wl = policy_sweep::workload(rate);
    let classes = policy_sweep::classes();
    let mut cost = RpuCostModel::new(sys, model);
    for kind in PolicyKind::ALL {
        let mut policy = kind.build(&wl);
        let report = serve_with(&wl, &mut cost, &config, policy.as_mut());
        let slo = MultiClassReport::new(&report, &classes);
        println!();
        println!(
            "{}",
            slo.table(&format!(
                "{} @ {rate:.0} req/s ({} preemptions)",
                kind.name(),
                report.preemptions
            ))
        );
    }

    // The full ladder: where each policy stops holding the interactive
    // p99 TTFT target.
    let sweep = policy_sweep::run();
    println!();
    println!("{}", sweep.table());
    println!();
    for kind in PolicyKind::ALL {
        println!(
            "{:9} sustains the interactive SLO to {:>4.0} req/s",
            kind.name(),
            sweep.sustained_load_rps(kind)
        );
    }
    Ok(())
}
