//! Strong scaling (Fig. 11 style): sweep the CU count for one model and
//! print latency, speedup and the ISO-TDP H100 comparison.
//!
//! ```text
//! cargo run --release --example strong_scaling [model]
//! # model: 8b | 70b | 405b | scout | maverick   (default: 70b)
//! ```

use rpu::gpu::{GpuSpec, GpuSystem};
use rpu::models::{DecodeWorkload, ModelConfig, Precision};
use rpu::RpuSystem;

fn model_by_name(name: &str) -> Option<ModelConfig> {
    match name {
        "8b" => Some(ModelConfig::llama3_8b()),
        "70b" => Some(ModelConfig::llama3_70b()),
        "405b" => Some(ModelConfig::llama3_405b()),
        "scout" => Some(ModelConfig::llama4_scout()),
        "maverick" => Some(ModelConfig::llama4_maverick()),
        _ => None,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "70b".to_string());
    let Some(model) = model_by_name(&arg) else {
        eprintln!("unknown model `{arg}` (use 8b|70b|405b|scout|maverick)");
        std::process::exit(1);
    };
    let prec = Precision::mxfp4_inference();
    let seq = 8192;

    println!("strong scaling: {} BS=1 seq={}", model.name, seq);
    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>10}",
        "CUs", "ms/token", "speedup", "mem TB/s", "TDP (W)"
    );

    let mut base: Option<f64> = None;
    for cus in [8u32, 16, 32, 64, 96, 128, 192, 256, 384, 512] {
        let Ok(sys) = RpuSystem::with_optimal_memory(&model, prec, 1, seq, cus) else {
            continue; // model does not fit at this scale
        };
        let t = sys.token_latency(&model, 1, seq)?;
        let b = *base.get_or_insert(t);
        println!(
            "{:>6} {:>12.3} {:>9.1}x {:>12.1} {:>10.0}",
            cus,
            t * 1e3,
            b / t,
            sys.arch.mem_bandwidth() / 1e12,
            sys.tdp_w(),
        );
    }

    // ISO-TDP H100 reference: how many H100s match a mid-size RPU, and
    // how do their latencies compare?
    let gpus = GpuSystem::new(GpuSpec::h100_sxm(), 2);
    let wl = DecodeWorkload::new(&model, Precision::gpu_w4a16(), 1, seq);
    println!();
    println!(
        "2xH100 ({:.0} W): {:.2} ms/token",
        gpus.tdp_w(),
        gpus.decode_step_latency(&wl) * 1e3
    );
    Ok(())
}
