//! Speculative decoding (Fig. 14 style): a Llama3-8B draft model
//! proposes tokens for a Llama3-70B target on the same RPU; report the
//! end-to-end speedup and tokens/s across lookahead depths.
//!
//! ```text
//! cargo run --release --example speculative_decode [num_cus]
//! ```

use rpu::models::{Precision, SpeculativeConfig};
use rpu::RpuSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_cus: u32 = std::env::args().nth(1).map_or(Ok(200), |s| s.parse())?;
    let prec = Precision::mxfp4_inference();
    let seq = 8192;

    let base = SpeculativeConfig::paper_setup();
    let target = base.target;
    let draft = base.draft;

    let sys = RpuSystem::with_optimal_memory(&target, prec, 1, seq, num_cus)?;
    let target_step = sys.token_latency(&target, 1, seq)?;
    let draft_step =
        RpuSystem::build(num_cus, sys.arch.memory, prec)?.token_latency(&draft, 1, seq)?;

    println!(
        "RPU-{num_cus}CU: target {} {:.3} ms/step, draft {} {:.3} ms/step",
        target.name,
        target_step * 1e3,
        draft.name,
        draft_step * 1e3
    );
    println!();
    println!(
        "{:>10} {:>12} {:>12} {:>10} {:>12}",
        "lookahead", "accepted", "verify ms", "speedup", "tokens/s"
    );

    for lookahead in [2u32, 4, 8, 16] {
        // Acceptance saturates with depth (diminishing returns past the
        // model's natural agreement length; [41] reports 4.6 at depth 8).
        let accepted = (0.575 * f64::from(lookahead))
            .min(f64::from(lookahead))
            .min(6.5);
        let cfg = SpeculativeConfig {
            lookahead,
            accepted_per_window: accepted,
            ..base
        };
        let verify = sys.token_latency(&target, lookahead + 1, seq)?;
        println!(
            "{:>10} {:>12.1} {:>12.3} {:>9.2}x {:>12.0}",
            lookahead,
            accepted,
            verify * 1e3,
            cfg.speedup(draft_step, verify, target_step),
            cfg.tokens_per_second(draft_step, verify),
        );
    }
    Ok(())
}
