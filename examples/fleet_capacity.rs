//! Capacity planning for a replica fleet, router by router.
//!
//! Serves the fleet-sweep workload — interactive chat multiplexed with
//! heavy offline batch jobs — across fleets of 16-CU RPU replicas at a
//! load far past what one replica sustains, and answers the planner's
//! question per routing policy: how many replicas until the interactive
//! p99 TTFT target holds? Ends with a heterogeneous-fleet aside: one
//! big replica plus small ones, which only the KV-aware routers use
//! sensibly.
//!
//! ```text
//! cargo run --release --example fleet_capacity
//! ```

use rpu::core::experiments::fleet_sweep::{self, RouterKind};
use rpu::core::serving::{RpuCostModel, SharedRpuCostModel};
use rpu::serve::{Fifo, FleetBuilder, FleetReplica, JoinShortestQueue, ServeConfig};
use rpu::{ModelConfig, Precision, RpuSystem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The full capacity curve: offered load vs replicas needed, per
    // router.
    let sweep = fleet_sweep::run();
    println!("{}", sweep.table());
    println!();
    let top = *fleet_sweep::RATE_SWEEP.last().expect("non-empty sweep");
    for kind in RouterKind::ALL {
        println!(
            "{:9} holds the interactive SLO at {top:.0} req/s with {:>2} replicas",
            kind.name(),
            sweep.replicas_needed(kind, top)
        );
    }
    println!(
        "\n=> telemetry-driven routing saves {} replica(s) over round-robin at {top:.0} req/s\n",
        sweep.top_rung_savings()
    );

    // Heterogeneous aside: one 64-CU replica and two 16-CU ones behind
    // join-shortest-queue. The router only sees published telemetry —
    // queue depths and each replica's own KV capacity — yet keeps the
    // big box busiest.
    let model = ModelConfig::llama3_8b();
    let precision = Precision::mxfp4_inference();
    let config = ServeConfig {
        max_batch: fleet_sweep::MAX_BATCH,
        ..ServeConfig::default()
    };
    let max_context = config.bucket(1536 + 384);
    let replica = |cus: u32| -> Result<FleetReplica, Box<dyn std::error::Error>> {
        let sys = RpuSystem::with_optimal_memory(
            &model,
            precision,
            fleet_sweep::MAX_BATCH,
            max_context,
            cus,
        )?;
        Ok(FleetReplica {
            cost: Box::new(SharedRpuCostModel::new(RpuCostModel::new(sys, model))),
            policy: Box::new(Fifo),
            config,
        })
    };
    let mut fleet = FleetBuilder::new()
        .replica(replica(64)?)
        .replica(replica(16)?)
        .replica(replica(16)?)
        .build();
    let report = fleet.serve(&fleet_sweep::workload(top), &mut JoinShortestQueue);
    let slo = report.multi_class(&fleet_sweep::classes());
    println!(
        "{}",
        slo.table(&format!(
            "heterogeneous fleet (64+16+16 CUs) @ {top:.0} req/s, jsq"
        ))
    );
    println!();
    println!(
        "assigned {:?} requests; per-replica decode utilisation {:?} %; imbalance {:.2}",
        report.assigned,
        report
            .per_replica_utilization()
            .iter()
            .map(|u| (u * 100.0).round())
            .collect::<Vec<_>>(),
        report.imbalance()
    );
    Ok(())
}
