//! Reasoning-turn latency (§IX application domain): a disaggregated
//! deployment with GPU prefill and RPU decode, compared against a
//! GPU-only deployment, across the paper's motivating workloads
//! (planning, coding, writing assistance).
//!
//! ```text
//! cargo run --release --example reasoning_turn [num_cus]
//! ```

use rpu::core::{Deployment, ReasoningTask, INTERACTION_THRESHOLD_S};
use rpu::gpu::{GpuSpec, GpuSystem};
use rpu::models::{ModelConfig, Precision};
use rpu::RpuSystem;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let num_cus: u32 = std::env::args().nth(1).map_or(Ok(128), |s| s.parse())?;
    let model = ModelConfig::llama3_70b();
    let decode = RpuSystem::with_optimal_memory(
        &model,
        Precision::mxfp4_inference(),
        1,
        32 * 1024,
        num_cus,
    )?;
    let d = Deployment::new(GpuSystem::new(GpuSpec::h100_sxm(), 4), decode);

    println!(
        "{} | prefill: 4xH100 | decode: RPU-{num_cus}CU | interactive threshold {INTERACTION_THRESHOLD_S} s",
        model.name
    );
    println!();
    println!(
        "{:<10} {:>8} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "task",
        "prompt",
        "decode",
        "prefill s",
        "KV xfer s",
        "decode s",
        "RPU turn s",
        "GPU turn s"
    );

    for (name, task) in [
        ("planning", ReasoningTask::planning()),
        ("coding", ReasoningTask::coding()),
        ("writing", ReasoningTask::writing()),
    ] {
        let rpu = d.turn_latency(&model, &task)?;
        let gpu = d.gpu_only_turn_latency(&model, &task);
        println!(
            "{:<10} {:>8} {:>8} {:>10.2} {:>10.2} {:>10.2} {:>9.2} {:>2} {:>9.2} {:>2}",
            name,
            task.prompt_tokens,
            task.decode_tokens(),
            rpu.prefill_s,
            rpu.kv_transfer_s,
            rpu.decode_s,
            rpu.total(),
            if rpu.interactive() { "ok" } else { "!!" },
            gpu.total(),
            if gpu.interactive() { "ok" } else { "!!" },
        );
    }

    let budget = d.max_interactive_tokens(&model, &ReasoningTask::planning())?;
    println!();
    println!("max interactive thinking budget (planning prompt): {budget} tokens");
    Ok(())
}
