//! Offline stand-in for the [criterion](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build environment for this repository has no access to crates.io,
//! so this crate implements the subset of the criterion API the
//! `rpu-bench` targets use — [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with a small,
//! dependency-free measurement loop (fixed warm-up, wall-clock timing,
//! mean/min/max over a configurable sample count).
//!
//! Timing numbers from this harness are indicative, not
//! statistically rigorous; swap the real criterion back in via
//! `[workspace.dependencies]` when network access is available. The
//! bench *code* is unchanged either way.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] for drop-in compatibility with
/// `criterion::black_box` imports.
pub use std::hint::black_box;

/// Entry point handed to each bench function; configures and runs
/// benchmarks.
pub struct Criterion {
    default_sample_size: usize,
    default_measurement: Duration,
    default_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            // Far smaller than real criterion's defaults: this harness is
            // for smoke-timing and `--no-run` compile checks, not stats.
            default_sample_size: 10,
            default_measurement: Duration::from_millis(300),
            default_warm_up: Duration::from_millis(50),
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(
            id,
            f,
            self.default_sample_size,
            self.default_measurement,
            self.default_warm_up,
        );
        self
    }

    /// Opens a named group of benchmarks with shared settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.default_sample_size,
            measurement: self.default_measurement,
            warm_up: self.default_warm_up,
            _parent: self,
        }
    }

    /// Parses CLI arguments. The stub recognises (and ignores) the
    /// arguments cargo-bench forwards, so `cargo bench` works end to end.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Final hook invoked by [`criterion_main!`]; a no-op in the stub.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing sample-size and timing budgets.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement: Duration,
    warm_up: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the target measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs a named benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{id}", self.name);
        // Cap the group budgets: the stub is a smoke harness, and the
        // seed benches request up to 15 s per target.
        let measurement = self.measurement.min(Duration::from_secs(1));
        let warm_up = self.warm_up.min(Duration::from_millis(100));
        run_bench(&full, f, self.sample_size, measurement, warm_up);
        self
    }

    /// Closes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated calls of `routine` against this bencher's budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, mut f: F, sample_size: usize, measurement: Duration, warm_up: Duration)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and iteration-count calibration: run single iterations
    // until the warm-up budget is spent.
    let mut calib_iters: u64 = 0;
    let mut calib_elapsed = Duration::ZERO;
    while calib_elapsed < warm_up || calib_iters == 0 {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        calib_elapsed += b.elapsed.max(Duration::from_nanos(1));
        calib_iters += 1;
        if calib_iters >= 1000 {
            break;
        }
    }
    let per_iter = calib_elapsed.as_secs_f64() / calib_iters as f64;
    let budget_per_sample = measurement.as_secs_f64() / sample_size.max(1) as f64;
    let iters = ((budget_per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size.max(1) {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples x {iters} iters)",
        format_time(samples[0]),
        format_time(mean),
        format_time(*samples.last().expect("at least one sample")),
        samples.len(),
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a benchmark group: a function running each listed bench
/// against a default-configured [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench forwards harness flags like --bench; accept and
            // ignore them for drop-in compatibility.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u64;
        let mut c = Criterion {
            default_sample_size: 2,
            default_measurement: Duration::from_millis(1),
            default_warm_up: Duration::from_micros(10),
        };
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }

    #[test]
    fn group_settings_chain() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(1))
            .warm_up_time(Duration::from_micros(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }
}
