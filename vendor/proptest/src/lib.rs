//! Offline stand-in for the [proptest](https://docs.rs/proptest)
//! property-testing framework.
//!
//! The build environment for this repository has no access to crates.io,
//! so this crate implements the subset of the proptest API the
//! workspace's property suites use:
//!
//! - the [`Strategy`](strategy::Strategy) trait with
//!   [`prop_map`](strategy::Strategy::prop_map) and
//!   [`boxed`](strategy::Strategy::boxed), implemented for
//!   integer/float ranges, tuples of strategies, [`strategy::Just`],
//!   [`strategy::Union`] (via [`prop_oneof!`]) and [`sample::select`];
//! - the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! - [`prop_assert!`], [`prop_assert_eq!`] and [`prop_assume!`].
//!
//! Generation is a deterministic splitmix64 stream seeded from the test
//! path, so failures reproduce exactly across runs. There is no
//! shrinking: a failing case reports the seed and iteration instead.

#![warn(missing_docs)]

/// Deterministic random generation and test-case plumbing.
pub mod test_runner {
    /// Deterministic splitmix64 generator driving value generation.
    pub struct TestRng(u64);

    impl TestRng {
        /// Creates a generator from a 64-bit seed.
        pub fn new(seed: u64) -> Self {
            Self(seed)
        }

        /// Returns the next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Returns a uniform f64 in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Returns a uniform integer in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Maximum consecutive `prop_assume!` rejections before a case is
    /// skipped.
    pub const MAX_REJECTS: u64 = 16;

    /// Derives the seed for one generation attempt of one case.
    ///
    /// The case and attempt indices are mixed in with multipliers
    /// distinct from [`TestRng`]'s internal splitmix64 increment, so
    /// per-case streams are decorrelated rather than sliding windows
    /// over a single underlying sequence.
    pub fn case_seed(base: u64, case: u64, attempt: u64) -> u64 {
        base ^ case.wrapping_add(1).wrapping_mul(0xA076_1D64_78BD_642F)
            ^ attempt.wrapping_mul(0x8CB9_2BA7_2F3D_8DD7)
    }

    /// FNV-1a hash used to derive a per-test base seed from its path.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Failure raised by a property body: an assertion failure or an
    /// input rejection from [`prop_assume!`](crate::prop_assume).
    #[derive(Debug)]
    pub struct TestCaseError {
        reject: bool,
        message: String,
    }

    impl TestCaseError {
        /// An assertion failure carrying a rendered message.
        pub fn fail(message: String) -> Self {
            Self {
                reject: false,
                message,
            }
        }

        /// An input rejection (the case is skipped, not failed).
        pub fn reject() -> Self {
            Self {
                reject: true,
                message: String::from("input rejected by prop_assume!"),
            }
        }

        /// Whether this error is a rejection rather than a failure.
        pub fn is_reject(&self) -> bool {
            self.reject
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Result type property bodies are rewritten into by [`proptest!`](crate::proptest).
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is honoured by the stub.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value from the deterministic stream.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy type (used by [`prop_oneof!`](crate::prop_oneof)).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice between type-erased alternatives; the expansion of
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given alternatives; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Self { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64 + 1;
                    lo + (rng.below(span) as $t)
                }
            }
        )+};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            lo + rng.next_f64() * (hi - lo)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+};
    }

    tuple_strategies!(
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );
}

/// Strategies drawing from explicit collections.
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A strategy yielding uniformly-chosen clones from a fixed list.
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u64) as usize].clone()
        }
    }

    /// Chooses uniformly from `items`; panics if `items` is empty.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "sample::select needs at least one item");
        Select(items)
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Mirror of the `prop` module re-export in proptest's prelude
    /// (`prop::sample::select` etc.).
    pub mod prop {
        pub use crate::sample;
    }
}

/// Fails the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("prop_assert failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("prop_assert_eq failed: {left:?} != {right:?}"),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Skips the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, re-running each body over a deterministic stream of
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let base = $crate::test_runner::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..u64::from(config.cases) {
                // A prop_assume! rejection resamples with a fresh seed
                // instead of consuming the case budget; a case whose
                // inputs are rejected MAX_REJECTS times in a row is
                // skipped (mirroring real proptest's rejection limit).
                'attempts: for attempt in 0..$crate::test_runner::MAX_REJECTS {
                    let mut rng = $crate::test_runner::TestRng::new(
                        $crate::test_runner::case_seed(base, case, attempt),
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&($strategy), &mut rng);)+
                    let outcome: $crate::test_runner::TestCaseResult = (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => break 'attempts,
                        ::core::result::Result::Err(e) if e.is_reject() => {}
                        ::core::result::Result::Err(e) => panic!(
                            "property {} failed at case {case} (seed {base:#x}): {e}",
                            stringify!($name),
                        ),
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, f64)> {
        (1u32..=8, prop_oneof![Just(0.5f64), Just(1.0)]).prop_map(|(n, s)| (n * 2, s))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 1.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1.0..2.0).contains(&y), "y out of range: {y}");
        }

        #[test]
        fn mapped_tuples_compose(pair in arb_pair()) {
            let (n, s) = pair;
            prop_assert!(n % 2 == 0);
            prop_assert!(s == 0.5 || s == 1.0);
            prop_assert_eq!(n / 2 * 2, n);
        }

        #[test]
        fn select_draws_from_list(v in prop::sample::select(vec![1u8, 3, 5])) {
            prop_assume!(v != 3);
            prop_assert!(v == 1 || v == 5);
        }
    }

    #[test]
    fn per_case_streams_do_not_slide() {
        // Regression: when the per-case seed stride equalled the
        // splitmix64 increment, case N+1's stream was case N's stream
        // shifted by one draw. Distinct cases must not overlap.
        use crate::test_runner::{case_seed, fnv1a, TestRng};
        let base = fnv1a("slide-detector");
        for case in 0..100u64 {
            let mut a = TestRng::new(case_seed(base, case, 0));
            let mut b = TestRng::new(case_seed(base, case + 1, 0));
            let _ = a.next_u64();
            assert_ne!(
                a.next_u64(),
                b.next_u64(),
                "case {case} slides into case {}",
                case + 1
            );
        }
        // Rejection retries must also draw fresh values.
        let mut first = TestRng::new(case_seed(base, 0, 0));
        let mut retry = TestRng::new(case_seed(base, 0, 1));
        assert_ne!(first.next_u64(), retry.next_u64());
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0u32..1000;
        let a: Vec<u32> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        let b: Vec<u32> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| strat.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
