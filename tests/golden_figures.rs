//! Golden regression tests for the figure suites' headline numbers.
//!
//! The figure experiments are analytical models plus a deterministic
//! simulator, so their outputs are exactly reproducible. These tests
//! snapshot the headline numbers of Fig. 9, Fig. 11 and Fig. 12 into
//! `tests/golden/*.txt` and compare against them with a tight relative
//! tolerance, so a refactor of the analytical models cannot silently
//! drift the published numbers. Shape tests elsewhere assert *bands*;
//! these assert *values*.
//!
//! To re-bless after an intentional model change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p rpu --test golden_figures
//! git diff tests/golden/   # review the drift before committing
//! ```

use rpu::core::experiments::fleet_sweep::{self, RouterKind};
use rpu::core::experiments::policy_sweep::{self, PolicyKind};
use rpu::core::experiments::{fig09_pareto, fig11_scaling, fig12_energy_cost};
use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

/// Relative tolerance: tight enough to catch any real model change,
/// loose enough to ignore libm/codegen noise across toolchains.
const REL_TOL: f64 = 1e-6;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name)
}

fn check(name: &str, values: &[(&str, f64)]) {
    let path = golden_path(name);
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        let mut s = String::from(
            "# Golden headline numbers. Regenerate after an intentional model\n\
             # change with: GOLDEN_BLESS=1 cargo test -p rpu --test golden_figures\n",
        );
        for (k, v) in values {
            s.push_str(&format!("{k} {v:.17e}\n"));
        }
        fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
        fs::write(&path, s).expect("write golden file");
        return;
    }
    let content = fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {}: {e}\nbless it with \
             `GOLDEN_BLESS=1 cargo test -p rpu --test golden_figures`",
            path.display()
        )
    });
    let mut golden: BTreeMap<&str, f64> = BTreeMap::new();
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let k = it.next().expect("key");
        let v: f64 = it
            .next()
            .unwrap_or_else(|| panic!("{name}: key {k} has no value"))
            .parse()
            .unwrap_or_else(|e| panic!("{name}: bad value for {k}: {e}"));
        golden.insert(k, v);
    }
    let current: Vec<&str> = values.iter().map(|(k, _)| *k).collect();
    let snapshot: Vec<&str> = golden.keys().copied().collect();
    let mut sorted = current.clone();
    sorted.sort_unstable();
    assert_eq!(
        sorted, snapshot,
        "{name}: key set changed; re-bless the golden file"
    );
    for (k, v) in values {
        let g = golden[k];
        let scale = g.abs().max(v.abs()).max(1e-300);
        assert!(
            (g - v).abs() / scale <= REL_TOL,
            "{name}: `{k}` drifted beyond {REL_TOL:e}: golden {g:.12e}, current {v:.12e} \
             (rel {:.3e}); if intentional, re-bless with GOLDEN_BLESS=1",
            (g - v).abs() / scale
        );
    }
}

#[test]
fn fig09_pareto_headlines() {
    let f = fig09_pareto::run();
    let opt = f.optimal_entry();
    check(
        "fig09_pareto.txt",
        &[
            ("entries", f.entries.len() as f64),
            ("model_capacity_bytes", f.model_capacity),
            ("optimal_index", f.optimal as f64),
            ("optimal_capacity_per_core", opt.point.capacity_per_pch()),
            ("optimal_norm_energy", opt.norm_energy),
            ("optimal_system_capacity", opt.system_capacity),
            ("frontier_min_norm_energy", {
                f.entries
                    .iter()
                    .map(|e| e.norm_energy)
                    .fold(f64::INFINITY, f64::min)
            }),
        ],
    );
}

#[test]
fn fig11_scaling_headlines() {
    let f = fig11_scaling::run();
    let mut values: Vec<(&str, f64)> = Vec::new();
    let m70 = f.marker("Llama3-70B").expect("70B marker");
    let m405 = f.marker("Llama3-405B").expect("405B marker");
    values.push(("iso_tdp_speedup_70b", m70.speedup()));
    values.push(("iso_tdp_speedup_405b", m405.speedup()));
    values.push(("iso_cus_70b", f64::from(m70.iso_cus)));
    values.push(("iso_cus_405b", f64::from(m405.iso_cus)));
    let latency_at = |model: &str, cus: u32| {
        f.model_scaling(model)
            .and_then(|s| s.points.iter().find(|p| p.num_cus == cus))
            .map(|p| p.latency_s)
            .unwrap_or_else(|| panic!("no {model} point at {cus} CUs"))
    };
    values.push(("latency_70b_192cu_s", latency_at("Llama3-70B", 192)));
    values.push(("latency_405b_428cu_s", latency_at("Llama3-405B", 428)));
    values.push(("latency_8b_64cu_s", latency_at("Llama3-8B", 64)));
    let mav128 = f
        .batched
        .iter()
        .find(|b| b.model == "Llama4-Maverick" && b.batch == 128)
        .expect("Maverick batch-128 point");
    values.push(("maverick_bs128_otps_per_query", mav128.rpu_otps_per_query));
    values.push(("batched_points", f.batched.len() as f64));
    check("fig11_scaling.txt", &values);
}

#[test]
fn policy_sweep_headlines() {
    // Pins the FIFO-vs-priority crossover: the loads each policy
    // sustains the interactive p99 TTFT target to, the tail latencies
    // at the rung where FIFO has collapsed, and EDF's preemption count
    // (an integer fingerprint of the preemptive schedule).
    let s = policy_sweep::run();
    let top = *policy_sweep::RATE_SWEEP.last().expect("non-empty sweep");
    let crossover = policy_sweep::RATE_SWEEP
        .iter()
        .copied()
        .find(|&r| {
            s.interactive_p99_ttft(PolicyKind::Fifo, r)
                > s.interactive_p99_ttft(PolicyKind::Priority, r)
        })
        .expect("priority beats FIFO somewhere in the sweep");
    let edf_preemptions: u32 = s
        .points
        .iter()
        .map(|p| p.run(PolicyKind::Edf).preemptions)
        .sum();
    check(
        "policy_sweep.txt",
        &[
            ("fifo_sustained_rps", s.sustained_load_rps(PolicyKind::Fifo)),
            ("sjf_sustained_rps", s.sustained_load_rps(PolicyKind::Sjf)),
            (
                "priority_sustained_rps",
                s.sustained_load_rps(PolicyKind::Priority),
            ),
            ("edf_sustained_rps", s.sustained_load_rps(PolicyKind::Edf)),
            ("first_rate_priority_beats_fifo", crossover),
            (
                "fifo_top_rung_p99_ttft_s",
                s.interactive_p99_ttft(PolicyKind::Fifo, top),
            ),
            (
                "priority_top_rung_p99_ttft_s",
                s.interactive_p99_ttft(PolicyKind::Priority, top),
            ),
            ("edf_total_preemptions", f64::from(edf_preemptions)),
        ],
    );
}

#[test]
fn fleet_sweep_headlines() {
    // Pins the capacity-planning curve: the minimum replica count each
    // router needs per offered load (summed across rungs as a compact
    // curve fingerprint, plus the top rung explicitly), the top-rung
    // tail latencies and the headline replica savings of informed
    // routing over round-robin.
    let s = fleet_sweep::run();
    let top = *fleet_sweep::RATE_SWEEP.last().expect("non-empty sweep");
    let curve_sum = |k: RouterKind| {
        fleet_sweep::RATE_SWEEP
            .iter()
            .map(|&r| f64::from(s.replicas_needed(k, r)))
            .sum::<f64>()
    };
    check(
        "fleet_sweep.txt",
        &[
            (
                "rr_replicas_top",
                f64::from(s.replicas_needed(RouterKind::RoundRobin, top)),
            ),
            (
                "jsq_replicas_top",
                f64::from(s.replicas_needed(RouterKind::Jsq, top)),
            ),
            (
                "least_kv_replicas_top",
                f64::from(s.replicas_needed(RouterKind::LeastKv, top)),
            ),
            (
                "affinity_replicas_top",
                f64::from(s.replicas_needed(RouterKind::Affinity, top)),
            ),
            ("rr_curve_sum", curve_sum(RouterKind::RoundRobin)),
            ("jsq_curve_sum", curve_sum(RouterKind::Jsq)),
            ("least_kv_curve_sum", curve_sum(RouterKind::LeastKv)),
            ("affinity_curve_sum", curve_sum(RouterKind::Affinity)),
            ("top_rung_savings", s.top_rung_savings() as f64),
            (
                "rr_p99_ttft_top_s",
                s.points
                    .last()
                    .expect("points")
                    .router(RouterKind::RoundRobin)
                    .p99_ttft_s,
            ),
            (
                "jsq_p99_ttft_top_s",
                s.points
                    .last()
                    .expect("points")
                    .router(RouterKind::Jsq)
                    .p99_ttft_s,
            ),
            (
                "jsq_imbalance_top",
                s.points
                    .last()
                    .expect("points")
                    .router(RouterKind::Jsq)
                    .imbalance,
            ),
        ],
    );
}

#[test]
fn fig12_energy_cost_headlines() {
    let f = fig12_energy_cost::run();
    let first = f.samples.first().expect("samples");
    let last = f.samples.last().expect("samples");
    let best_epi = f
        .samples
        .iter()
        .map(fig12_energy_cost::ScaleSample::epi_j)
        .fold(f64::INFINITY, f64::min);
    let max_cost_ratio = f
        .samples
        .iter()
        .map(|s| s.cost_hbm3e / s.cost.total())
        .fold(0.0, f64::max);
    check(
        "fig12_energy_cost.txt",
        &[
            ("samples", f.samples.len() as f64),
            ("first_epi_j", first.epi_j()),
            ("last_epi_j", last.epi_j()),
            ("best_epi_j", best_epi),
            ("h100_epi_j", f.h100_epi_j),
            ("dgx_cost", f.dgx_cost),
            ("cost_norm", f.cost_norm()),
            ("last_cost_total", last.cost.total()),
            ("max_cost_ratio_vs_hbm3e", max_cost_ratio),
        ],
    );
}
