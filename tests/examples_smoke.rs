//! Smoke test: every example binary must build and run to completion.
//!
//! Examples are documentation that executes; this suite keeps them from
//! silently rotting. Each example is driven through `cargo run --example`
//! using the same cargo that launched the test harness.

use std::process::Command;

const EXAMPLES: &[&str] = &[
    "fleet_capacity",
    "pipeline_trace",
    "policy_compare",
    "quickstart",
    "reasoning_turn",
    "serving",
    "sku_explorer",
    "speculative_decode",
    "strong_scaling",
];

#[test]
fn every_example_runs_to_completion() {
    let cargo = env!("CARGO");
    for name in EXAMPLES {
        let output = Command::new(cargo)
            .args(["run", "--quiet", "--example", name])
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
        assert!(
            output.status.success(),
            "example {name} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            output.status,
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr),
        );
    }
}
