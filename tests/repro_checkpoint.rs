//! Checkpoint/resume differential for the repro driver: a registry
//! run interrupted at *every* target boundary, persisted through
//! bytes each time and resumed, must render exactly the bytes of an
//! uninterrupted run — pinned here against the golden snapshots under
//! `tests/golden/repro/`, the same reference the direct path is held
//! to. Any drift means a checkpointed reproduction would quietly
//! publish different numbers than a straight-through one.

use rpu::core::engine::Engine;
use rpu::core::experiments::checkpoint::{advance, render_resumed, RunCheckpoint};
use rpu::core::experiments::{find, registry, render, Experiment, Format};
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/repro")
        .join(format!("{name}.txt"))
}

#[test]
fn registry_run_interrupted_at_every_target_matches_the_goldens() {
    let targets = registry();
    let seq = Engine::sequential();
    // The harshest interruption schedule: halt after every single
    // target and round-trip the checkpoint through its byte form, as
    // if a separate process resumed each time.
    let mut ck = RunCheckpoint::new(Format::Text);
    let mut halts = 0;
    loop {
        let n = advance(&targets, &seq, &mut ck, 1);
        ck = RunCheckpoint::from_bytes(&ck.to_bytes()).expect("persisted checkpoint must thaw");
        if n == 0 {
            break;
        }
        halts += 1;
    }
    assert_eq!(halts, targets.len());
    for t in &targets {
        let golden = fs::read_to_string(golden_path(t.name())).unwrap_or_else(|e| {
            panic!("missing golden file for {}: {e}", t.name());
        });
        assert!(
            ck.rendered(t.name()) == Some(golden.as_str()),
            "{}: checkpoint-resumed rendering drifted from its golden",
            t.name()
        );
    }
}

#[test]
fn parallel_resume_completes_a_partial_checkpoint_identically() {
    // Cheap closed-form targets; a partial checkpoint finished by the
    // parallel resumable sweep must equal direct rendering.
    let targets: Vec<&dyn Experiment> = ["fig4", "fig3", "design-points", "ext-scaleout"]
        .iter()
        .map(|n| find(n).expect("registry target"))
        .collect();
    let seq = Engine::sequential();
    let direct: Vec<String> = targets
        .iter()
        .map(|t| render(*t, &t.run(&seq), Format::Text))
        .collect();
    for head_start in 0..=targets.len() {
        let mut ck = RunCheckpoint::new(Format::Text);
        assert_eq!(advance(&targets, &seq, &mut ck, head_start), head_start);
        let resumed = render_resumed(&targets, &Engine::new(4), &seq, &mut ck);
        assert_eq!(resumed, direct, "head start {head_start}");
        assert_eq!(ck.len(), targets.len());
    }
}

#[test]
fn checkpoints_reject_format_mixing_by_construction() {
    // A checkpoint records its format; thawing preserves it, so a
    // driver can refuse to splice text entries into a JSON run.
    let mut ck = RunCheckpoint::new(Format::Json);
    let t = find("fig4").expect("registry target");
    advance(&[t], &Engine::sequential(), &mut ck, 1);
    let thawed = RunCheckpoint::from_bytes(&ck.to_bytes()).expect("thaw");
    assert_eq!(thawed.format(), Format::Json);
    assert!(thawed
        .rendered("fig4")
        .expect("entry")
        .starts_with("{\"name\":\"fig4\""));
}
