//! Figure-harness integration: every experiment module runs end to end
//! and reproduces its figure's qualitative shape. These are the smoke
//! tests behind the `repro` binary — each figure's detailed assertions
//! live in its module's unit tests.

use rpu::core::experiments as exp;

#[test]
fn fig01_rpu_roofline_sits_down_left_of_h100() {
    let f = exp::fig01_roofline::run();
    assert!(f.rpu.peak_flops < f.h100.peak_flops);
    assert!(f.rpu.ridge_ai() < f.h100.ridge_ai());
    assert!(f.rpu.bandwidth > f.h100.bandwidth);
}

#[test]
fn fig02_decode_far_below_prefill_power() {
    let f = exp::fig02_h100_profile::run();
    assert!(f.prefill_power_w > 2.0 * f.decode_power_w);
}

#[test]
fn fig03_low_batch_wastes_energy() {
    let f = exp::fig03_kernel_power::run();
    let lo = f.sample(4, 2048).unwrap().pj_per_flop;
    let hi = f.sample(16384, 2048).unwrap().pj_per_flop;
    assert!(lo / hi > 10.0, "degradation {}", lo / hi);
}

#[test]
fn fig04_goldilocks_gap_exists_and_candidate_fills_it() {
    let f = exp::fig04_landscape::run();
    assert!(f.commercial.iter().all(|p| !p.goldilocks));
    assert!(f.candidate.goldilocks);
}

#[test]
fn fig05_candidate_anchors() {
    let f = exp::fig05_hbmco_tradeoffs::run();
    let ratio = f.hbm3e.energy_pj_per_bit / f.candidate.energy_pj_per_bit;
    assert!(ratio > 2.0 && ratio < 2.6);
}

#[test]
fn fig08_decoupled_pipelines_fill_buffers() {
    let f = exp::fig08_pipeline_trace::run();
    assert!(f.bs1.report.mem_bw_utilization() > 0.85);
    assert!(f.bs32.report.peak_buffer_bytes > f.bs1.report.peak_buffer_bytes);
}

#[test]
fn fig09_optimal_sku_is_not_the_largest() {
    let f = exp::fig09_pareto::run();
    let largest = f
        .entries
        .iter()
        .map(|e| e.system_capacity)
        .fold(0.0_f64, f64::max);
    assert!(f.optimal_entry().system_capacity < largest);
}

#[test]
fn fig10_sku_map_spans_multiple_skus() {
    let f = exp::fig10_sku_map::run();
    let mut bwcaps: Vec<u64> = f
        .cells
        .iter()
        .filter_map(|c| c.bw_per_cap.map(|v| v.round() as u64))
        .collect();
    bwcaps.sort_unstable();
    bwcaps.dedup();
    assert!(bwcaps.len() >= 2, "the map must select more than one SKU");
}

#[test]
fn fig11_rpu_wins_at_iso_tdp_everywhere() {
    let f = exp::fig11_scaling::run();
    for m in &f.markers {
        assert!(
            m.speedup() > 5.0,
            "{}: ISO-TDP speedup {}",
            m.model,
            m.speedup()
        );
    }
}

#[test]
fn fig12_adaptive_memory_beats_fixed_hbm3e() {
    let f = exp::fig12_energy_cost::run();
    for s in &f.samples {
        assert!(
            s.epi_hbm3e_j > s.epi_j(),
            "CUs {}: HBM-CO must win on energy",
            s.num_cus
        );
        assert!(
            s.cost_hbm3e > s.cost.total(),
            "CUs {}: HBM-CO must win on cost",
            s.num_cus
        );
    }
}

#[test]
fn fig13_speedup_and_energy_both_favor_rpu() {
    let f = exp::fig13_batch_sweep::run();
    for p in &f.points {
        assert!(p.speedup() > 1.0, "{} batch {}", p.model, p.batch);
        assert!(p.epi_improvement() > 1.0, "{} batch {}", p.model, p.batch);
    }
}

#[test]
fn fig14_rpu_row_is_simulated_and_fastest() {
    let f = exp::fig14_platforms::run();
    let rpu = f.rpu();
    assert!(rpu.computed);
    assert!(f
        .rows
        .iter()
        .filter(|r| !r.computed)
        .all(|r| r.tokens_per_s < rpu.tokens_per_s));
}

#[test]
fn ablations_every_contribution_helps() {
    let a = exp::ablations::run();
    assert!(a.memory.energy_ratio > 1.0);
    assert!(a.memory.cost_ratio > 1.0);
    assert!(a.provisioning.iso_tdp_latency_ratio > 1.0);
    assert!(a.decoupling.coupled_bs1_slowdown > 1.0);
    assert!(a.decoupling.coupled_bs32_slowdown > 1.0);
    assert!(a.decoupling.global_sync_slowdown > 1.0);
    assert!(a.decoupling.sram_energy_ratio > 1.0);
}

#[test]
fn design_points_cover_edge_and_datacenter() {
    let d = exp::design_points::run();
    assert!(d.points.iter().any(|p| p.label == "edge"));
    assert!(d.points.iter().any(|p| p.label == "datacenter"));
    assert!(d.points.iter().any(|p| p.label == "peak"));
    assert!(d.edp_improvement_405b > 50.0);
}

#[test]
fn all_tables_render_nonempty() {
    // Rendering must never panic and always produce rows.
    assert!(!exp::fig04_landscape::run().table().is_empty());
    assert!(!exp::fig09_pareto::run().table().is_empty());
    assert!(!exp::fig13_batch_sweep::run().table().is_empty());
    assert!(!exp::ablations::run().table().is_empty());
    assert!(!exp::design_points::run().table().is_empty());
    for t in exp::fig01_roofline::run().tables() {
        assert!(!t.is_empty());
    }
    for t in exp::fig10_sku_map::run().tables() {
        assert!(!t.is_empty());
    }
}
