//! End-to-end integration: compose memory, architecture, compiler,
//! simulator and GPU baseline through the public facade, and check the
//! paper's headline claims hold across the stack.

use rpu::gpu::{GpuSpec, GpuSystem};
use rpu::models::{DecodeWorkload, ModelConfig, Precision};
use rpu::{HbmCoConfig, RpuSystem};

#[test]
fn headline_405b_iso_tdp_speedup() {
    // §VIII: 45.3x lower latency than 4xH100 at ISO-TDP on Llama3-405B.
    // Shape target: an order-of-magnitude-plus win at matched power.
    let model = ModelConfig::llama3_405b();
    let prec = Precision::mxfp4_inference();
    let gpus = GpuSystem::new(GpuSpec::h100_sxm(), 4);

    // Find the CU count whose TDP matches the 4xH100 budget.
    let mut cus = 4;
    let mut sys = None;
    for c in (4..=1024).step_by(4) {
        let Ok(s) = RpuSystem::with_optimal_memory(&model, prec, 1, 8192, c) else {
            continue;
        };
        if s.tdp_w() <= gpus.tdp_w() {
            cus = c;
            sys = Some(s);
        } else {
            break;
        }
    }
    let sys = sys.expect("an ISO-TDP configuration exists");
    assert!(
        cus >= 100,
        "ISO-TDP with 2800 W should afford 100+ CUs, got {cus}"
    );

    let rpu_latency = sys.token_latency(&model, 1, 8192).expect("simulates");
    let wl = DecodeWorkload::new(&model, Precision::gpu_w4a16(), 1, 8192);
    let gpu_latency = gpus.decode_step_latency(&wl);
    let speedup = gpu_latency / rpu_latency;
    assert!(
        speedup > 15.0 && speedup < 90.0,
        "ISO-TDP speedup {speedup} (RPU {rpu_latency}s vs GPU {gpu_latency}s)"
    );
}

#[test]
fn decode_latency_tracks_roofline_across_models() {
    // The simulator's latency must sit at or just above the analytic
    // streaming bound for BS=1 (roofline performance, §VI).
    let prec = Precision::mxfp4_inference();
    for (model, cus) in [
        (ModelConfig::llama3_8b(), 64u32),
        (ModelConfig::llama3_70b(), 128),
        (ModelConfig::llama4_maverick(), 64),
    ] {
        let sys = RpuSystem::with_optimal_memory(&model, prec, 1, 8192, cus).expect("fits");
        let t = sys.token_latency(&model, 1, 8192).expect("simulates");
        let wl = DecodeWorkload::new(&model, prec, 1, 8192);
        let bound = wl.streaming_bytes() / sys.arch.mem_bandwidth();
        assert!(t >= bound * 0.98, "{}: {t} below bound {bound}", model.name);
        assert!(
            t <= bound * 1.5,
            "{}: {t} too far above bound {bound}",
            model.name
        );
    }
}

#[test]
fn fastest_thinking_speed_sub_millisecond_70b() {
    // §VIII: Llama3-70B reaches 0.4 ms/token at 204 CUs.
    let model = ModelConfig::llama3_70b();
    let prec = Precision::mxfp4_inference();
    let sys = RpuSystem::with_optimal_memory(&model, prec, 1, 8192, 204).expect("fits");
    let t = sys.token_latency(&model, 1, 8192).expect("simulates");
    assert!(
        t < 1.0e-3,
        "70B at 204 CUs must be sub-millisecond, got {t}"
    );
    assert!(t > 0.1e-3, "sub-0.1ms would beat the paper by >4x: {t}");
}

#[test]
fn memory_capacity_is_actually_respected() {
    let model = ModelConfig::llama3_405b();
    let prec = Precision::mxfp4_inference();
    // 405B MXFP4 is ~200+ GB; 8 CUs with the largest SKU hold 192 GiB.
    assert!(RpuSystem::with_optimal_memory(&model, prec, 32, 131_072, 8).is_err());
    let sys = RpuSystem::with_optimal_memory(&model, prec, 1, 8192, 64).expect("fits at 64");
    assert!(sys.fits(&model, 1, 8192));
    assert!(
        sys.arch.mem_capacity() >= model.footprint_bytes(prec, 1, 8192),
        "selected SKU must hold the model"
    );
}

#[test]
fn energy_per_token_scales_with_model_size() {
    let prec = Precision::mxfp4_inference();
    let mut last = 0.0;
    for (model, cus) in [
        (ModelConfig::llama3_8b(), 64u32),
        (ModelConfig::llama3_70b(), 64),
        (ModelConfig::llama3_405b(), 64),
    ] {
        let sys = RpuSystem::with_optimal_memory(&model, prec, 1, 8192, cus).expect("fits");
        let e = sys
            .decode_step(&model, 1, 8192)
            .expect("simulates")
            .system_energy_j();
        assert!(
            e > last,
            "{}: energy {e} must exceed smaller model {last}",
            model.name
        );
        last = e;
    }
}

#[test]
fn explicit_sku_build_matches_candidate_spec() {
    let sys = RpuSystem::build(64, HbmCoConfig::candidate(), Precision::mxfp4_inference())
        .expect("builds");
    // 64 CUs x 2 stacks x 768 MiB.
    let expect = 64.0 * 2.0 * 768.0 * 1024.0 * 1024.0;
    assert!((sys.arch.mem_capacity() - expect).abs() / expect < 1e-9);
    // 64 CUs x 512 GB/s.
    assert!((sys.arch.mem_bandwidth() - 64.0 * 512e9).abs() < 1e6);
}

#[test]
fn gpu_baseline_matches_paper_characterisation() {
    // The substitution contract (DESIGN.md §3): the analytical GPU must
    // reproduce the paper's measured H100 behaviour.
    let gpus = GpuSystem::new(GpuSpec::h100_sxm(), 4);
    let wl = DecodeWorkload::new(
        &ModelConfig::llama3_70b(),
        Precision::fp8_weights(),
        32,
        17 * 1024,
    );
    let bw_util = gpus.effective_bw_utilization(&wl);
    assert!(
        bw_util > 0.15 && bw_util < 0.45,
        "decode BW util {bw_util} (paper: 32%)"
    );
    let power = gpus.decode_power_w(&wl) / 4.0;
    assert!(
        power < 0.55 * 700.0,
        "decode power {power} far below TDP (paper: 34%)"
    );
}
