//! Differential suite for the experiment engine: `repro`'s rendered
//! output must be byte-identical across job counts AND across the
//! table/engine refactor itself.
//!
//! Two gates per registry target:
//!
//! 1. **Jobs invariance** — rendering with the parallel engine
//!    (`jobs = 8`) produces exactly the bytes of the sequential
//!    reference. The engine index-stamps grid results, so any
//!    divergence means a grid point read thread-dependent state.
//! 2. **Golden stability** — the sequential rendering matches the
//!    snapshot under `tests/golden/repro/`, captured from the
//!    pre-refactor `repro` binary (only `serving` was re-blessed, for
//!    its intentional bursty rung). A diff means the structured-table
//!    path changed published bytes.
//!
//! To re-bless after an intentional output change:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test -p rpu --test repro_differential
//! git diff tests/golden/repro/   # review the drift before committing
//! ```

use rpu::core::engine::Engine;
use rpu::core::experiments::{registry, render, Experiment, Format};
use std::fs;
use std::path::PathBuf;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden/repro")
        .join(format!("{name}.txt"))
}

/// Renders one target exactly as `repro <name>` prints it.
fn text(exp: &dyn Experiment, engine: &Engine) -> String {
    render(exp, &exp.run(engine), Format::Text)
}

#[test]
fn every_target_is_byte_identical_across_job_counts_and_to_its_golden() {
    let bless = std::env::var_os("GOLDEN_BLESS").is_some();
    for exp in registry() {
        let seq = text(exp, &Engine::sequential());
        let par = text(exp, &Engine::new(8));
        assert_eq!(
            seq,
            par,
            "{}: --jobs 8 output diverged from --jobs 1",
            exp.name()
        );

        let path = golden_path(exp.name());
        if bless {
            fs::create_dir_all(path.parent().expect("golden dir")).expect("create golden dir");
            fs::write(&path, &seq).expect("write golden file");
            continue;
        }
        let golden = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {}: {e}\nbless it with \
                 `GOLDEN_BLESS=1 cargo test -p rpu --test repro_differential`",
                path.display()
            )
        });
        assert!(
            golden == seq,
            "{}: rendered text drifted from {}\n\
             if intentional, re-bless with GOLDEN_BLESS=1 and review the diff",
            exp.name(),
            path.display()
        );
    }
}

#[test]
fn json_and_csv_renderings_are_jobs_invariant_and_well_formed() {
    // The structured formats ride the same tables, so spot-check a
    // cheap sim-backed target end to end at both job counts.
    let exp = rpu::core::experiments::find("fleet").expect("fleet target registered");
    let tables_seq = exp.run(&Engine::sequential());
    let tables_par = exp.run(&Engine::new(8));
    for format in [Format::Json, Format::Csv] {
        let a = render(exp, &tables_seq, format);
        let b = render(exp, &tables_par, format);
        assert_eq!(a, b, "{format:?} diverged across job counts");
    }
    let json = render(exp, &tables_seq, Format::Json);
    assert!(json.starts_with("{\"name\":\"fleet\""));
    // Crude but dependency-free well-formedness: balanced delimiters
    // outside string literals (full validity is checked in CI with a
    // real JSON parser).
    let (mut depth, mut in_str, mut esc) = (0i64, false, false);
    for c in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced JSON delimiters");
    }
    assert_eq!(depth, 0, "unbalanced JSON delimiters");
    assert!(!in_str, "unterminated JSON string");
    let csv = render(exp, &tables_seq, Format::Csv);
    assert!(csv.starts_with("# ==== fleet"));
}
