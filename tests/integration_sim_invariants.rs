//! Property-based invariants across the compiler/simulator boundary and
//! the HBM-CO design space, using proptest.

use proptest::prelude::*;
use rpu::hbmco::{energy_per_bit, module_cost, pareto_frontier, select_sku, HbmCoConfig};
use rpu::isa::{compile_decode_step, ShardPlan};
use rpu::models::{DecodeWorkload, ModelConfig, Precision};
use rpu::sim::{SimConfig, Simulator};

fn any_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(ModelConfig::llama3_8b()),
        Just(ModelConfig::llama3_70b()),
        Just(ModelConfig::llama4_scout()),
        Just(ModelConfig::llama4_maverick()),
    ]
}

fn any_hbmco() -> impl Strategy<Value = HbmCoConfig> {
    (
        1u32..=4,
        prop_oneof![Just(1u32), Just(2), Just(4)],
        prop_oneof![Just(0.5), Just(0.75), Just(1.0)],
    )
        .prop_map(|(ranks, banks_per_group, subarray_scale)| HbmCoConfig {
            ranks,
            banks_per_group,
            subarray_scale,
            ..HbmCoConfig::candidate()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The simulator streams exactly the bytes the compiler scheduled,
    /// for any model / batch / sequence / scale combination.
    #[test]
    fn sim_conserves_compiled_bytes(
        model in any_model(),
        batch in prop_oneof![Just(1u32), Just(4), Just(16), Just(32)],
        seq_pow in 12u32..=16,
        cus in prop_oneof![Just(16u32), Just(64), Just(128)],
    ) {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(cus, 16);
        let prog = compile_decode_step(&model, prec, batch, 1 << seq_pow, &plan);
        prog.validate_dataflow().expect("compiled dataflow is acyclic and complete");
        let sim = Simulator::new(HbmCoConfig::candidate(), prec, plan, SimConfig::default());
        let r = sim.run(&prog).expect("no deadlock");
        let stats = prog.stats();
        prop_assert!((r.streamed_bytes as f64 - stats.weight_bytes).abs() < 1.0);
        prop_assert!((r.stored_bytes as f64 - stats.store_bytes).abs() < 1.0);
        prop_assert!((r.flops - stats.flops).abs() / stats.flops < 1e-9);
    }

    /// Simulated latency is bounded below by the per-core streaming
    /// roofline and never pathologically above it.
    #[test]
    fn sim_latency_brackets_roofline(
        model in any_model(),
        cus in prop_oneof![Just(32u32), Just(64), Just(128)],
    ) {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(cus, 16);
        let prog = compile_decode_step(&model, prec, 1, 8192, &plan);
        let sim = Simulator::new(HbmCoConfig::candidate(), prec, plan, SimConfig::default());
        let r = sim.run(&prog).expect("no deadlock");
        let wl = DecodeWorkload::new(&model, prec, 1, 8192);
        let bound = wl.streaming_bytes() / (f64::from(cus) * 16.0 * 32e9);
        prop_assert!(r.total_time_s >= bound * 0.98, "{} < {}", r.total_time_s, bound);
        prop_assert!(r.total_time_s <= bound * 2.0, "{} vs {}", r.total_time_s, bound);
    }

    /// Decoupled execution is never slower than coupled or globally
    /// synchronised execution.
    #[test]
    fn decoupling_never_loses(
        model in any_model(),
        batch in prop_oneof![Just(1u32), Just(16)],
    ) {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(64, 16);
        let prog = compile_decode_step(&model, prec, batch, 8192, &plan);
        let run = |cfg: SimConfig| {
            Simulator::new(HbmCoConfig::candidate(), prec, plan, cfg)
                .run(&prog)
                .expect("no deadlock")
                .total_time_s
        };
        let fast = run(SimConfig::default());
        let coupled = run(SimConfig { coupled_pipelines: true, ..SimConfig::default() });
        let global = run(SimConfig { global_sync: true, ..SimConfig::default() });
        prop_assert!(coupled >= fast * 0.999);
        prop_assert!(global >= fast * 0.999);
    }

    /// Chunk size changes throughput accounting, never totals.
    #[test]
    fn chunk_size_invariance_of_totals(chunk_kb in prop_oneof![Just(4u64), Just(16), Just(64)]) {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(64, 16);
        let model = ModelConfig::llama3_8b();
        let prog = compile_decode_step(&model, prec, 1, 8192, &plan);
        let cfg = SimConfig { chunk_bytes: chunk_kb * 1024, ..SimConfig::default() };
        let r = Simulator::new(HbmCoConfig::candidate(), prec, plan, cfg)
            .run(&prog)
            .expect("no deadlock");
        prop_assert!((r.streamed_bytes as f64 - prog.stats().weight_bytes).abs() < 1.0);
    }

    /// Capacity parameters move capacity monotonically and never change
    /// shoreline bandwidth; energy and cost-per-module track capacity.
    #[test]
    fn hbmco_capacity_energy_cost_monotonicity(cfg in any_hbmco()) {
        let bigger = HbmCoConfig { ranks: cfg.ranks + 1, ..cfg };
        prop_assert!(bigger.capacity_bytes() > cfg.capacity_bytes());
        prop_assert_eq!(bigger.bandwidth_bytes_per_s(), cfg.bandwidth_bytes_per_s());
        prop_assert!(energy_per_bit(&bigger).total() >= energy_per_bit(&cfg).total());
        prop_assert!(module_cost(&bigger) > module_cost(&cfg));
        prop_assert!(bigger.bw_per_cap() < cfg.bw_per_cap());
    }

    /// The energy breakdown is strictly positive and dominated by
    /// components that exist in every configuration.
    #[test]
    fn hbmco_energy_components_positive(cfg in any_hbmco()) {
        let e = energy_per_bit(&cfg);
        prop_assert!(e.activation > 0.0);
        prop_assert!(e.movement > 0.0);
        prop_assert!(e.tsv > 0.0);
        prop_assert!(e.io > 0.0);
        prop_assert!(e.total() < 10.0, "pJ/bit {} out of physical range", e.total());
    }

    /// SKU selection returns the highest-BW/Cap Pareto point that fits,
    /// and never one that does not fit.
    #[test]
    fn sku_selection_is_optimal_and_feasible(need_mb in 1.0f64..4000.0) {
        let need = need_mb * 1024.0 * 1024.0;
        if let Some(sku) = select_sku(need) {
            prop_assert!(sku.capacity_per_pch() >= need);
            for p in pareto_frontier() {
                if p.capacity_per_pch() >= need {
                    prop_assert!(sku.bw_per_cap >= p.bw_per_cap - 1e-9);
                }
            }
        } else {
            // Nothing fits: the need must exceed the largest SKU.
            let max = pareto_frontier()
                .iter()
                .map(|p| p.capacity_per_pch())
                .fold(0.0, f64::max);
            prop_assert!(need > max);
        }
    }
}

#[test]
fn pareto_frontier_has_no_dominated_points() {
    let frontier = pareto_frontier();
    assert!(frontier.len() >= 4, "frontier should offer several SKUs");
    for a in &frontier {
        for b in &frontier {
            let strictly_better =
                b.capacity_bytes >= a.capacity_bytes && b.energy_pj_per_bit < a.energy_pj_per_bit;
            assert!(
                !strictly_better,
                "{} dominates {}",
                b.config.label(),
                a.config.label()
            );
        }
    }
}

#[test]
fn simulator_is_deterministic_across_runs() {
    let prec = Precision::mxfp4_inference();
    let plan = ShardPlan::new(64, 16);
    let model = ModelConfig::llama4_maverick();
    let prog = compile_decode_step(&model, prec, 8, 16384, &plan);
    let sim = Simulator::new(HbmCoConfig::candidate(), prec, plan, SimConfig::default());
    let a = sim.run(&prog).unwrap();
    let b = sim.run(&prog).unwrap();
    assert_eq!(a.total_time_s.to_bits(), b.total_time_s.to_bits());
    assert_eq!(a.streamed_bytes, b.streamed_bytes);
    assert_eq!(a.energy.total().to_bits(), b.energy.total().to_bits());
}
