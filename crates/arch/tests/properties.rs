//! Property tests for the architecture model: composition rules, power
//! provisioning and interconnect latencies across the full configuration
//! space.

use proptest::prelude::*;
use rpu_arch::{
    cu_mem_power, cu_tdp, iso_tdp_cus, ring_broadcast_latency, ring_reduce_latency, system_tdp,
    two_level_broadcast_latency, EnergyCoeffs, LinkSpec, Roofline, RpuConfig, TwoLevelRing,
    MEM_POWER_FRACTION,
};
use rpu_hbmco::HbmCoConfig;

fn any_memory() -> impl Strategy<Value = HbmCoConfig> {
    (
        1u32..=4,
        prop_oneof![Just(1u32), Just(2), Just(4)],
        prop_oneof![Just(0.5f64), Just(1.0)],
    )
        .prop_map(|(ranks, banks_per_group, subarray_scale)| HbmCoConfig {
            ranks,
            banks_per_group,
            subarray_scale,
            ..HbmCoConfig::candidate()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// System quantities compose linearly in CU count.
    #[test]
    fn composition_is_linear(mem in any_memory(), cus in 1u32..=512) {
        let one = RpuConfig::new(1, mem).expect("valid");
        let many = RpuConfig::new(cus, mem).expect("valid");
        let n = f64::from(cus);
        prop_assert!((many.mem_bandwidth() - n * one.mem_bandwidth()).abs() < 1.0);
        prop_assert!((many.mem_capacity() - n * one.mem_capacity()).abs() < n);
        prop_assert!((many.peak_flops() - n * one.peak_flops()).abs() < n);
        prop_assert_eq!(many.num_cores(), cus * 16);
    }

    /// The bandwidth-first provisioning rule: memory interfaces take the
    /// majority of CU power for every memory choice.
    #[test]
    fn memory_power_dominates_cu_tdp(mem in any_memory()) {
        let rpu = RpuConfig::new(64, mem).expect("valid");
        let coeffs = EnergyCoeffs::paper();
        let frac = cu_mem_power(&rpu, &coeffs) / cu_tdp(&rpu, &coeffs);
        prop_assert!(frac >= MEM_POWER_FRACTION - 1e-9, "memory power fraction {frac}");
        prop_assert!(frac < 0.95);
    }

    /// ISO-TDP sizing inverts system TDP: the returned CU count fits the
    /// budget and one more CU would exceed it.
    #[test]
    fn iso_tdp_is_tight(mem in any_memory(), budget in 100.0f64..5000.0) {
        let coeffs = EnergyCoeffs::paper();
        let cus = iso_tdp_cus(budget, mem, &coeffs);
        if cus > 0 {
            let fit = RpuConfig::new(cus, mem).expect("valid");
            prop_assert!(system_tdp(&fit, &coeffs) <= budget * 1.001);
            let over = RpuConfig::new(cus + 1, mem).expect("valid");
            prop_assert!(system_tdp(&over, &coeffs) > budget * 0.999);
        }
    }

    /// Roofline: attainable throughput is min(peak, AI * BW), with the
    /// ridge exactly at peak/BW.
    #[test]
    fn roofline_identities(
        peak in 1e12f64..1e15,
        bw in 1e11f64..1e14,
        ai in 0.01f64..10_000.0,
    ) {
        let r = Roofline::new(peak, bw);
        let got = r.attainable(ai);
        prop_assert!((got - peak.min(ai * bw)).abs() / got < 1e-12);
        prop_assert!((r.ridge_ai() - peak / bw).abs() < 1e-9);
        prop_assert_eq!(r.is_memory_bound(ai), ai < r.ridge_ai());
    }

    /// Ring broadcast latency is monotone in participants and fragment
    /// size; reduce is exactly twice broadcast.
    #[test]
    fn ring_latency_monotone(n in 2u32..=640, frag in 1.0f64..1e6) {
        let l = LinkSpec::paper();
        let t = ring_broadcast_latency(n, frag, &l);
        prop_assert!(t > 0.0);
        prop_assert!(ring_broadcast_latency(n + 8, frag, &l) >= t);
        prop_assert!(ring_broadcast_latency(n, frag * 2.0, &l) >= t);
        prop_assert!((ring_reduce_latency(n, frag, &l) - 2.0 * t).abs() < 1e-15);
    }

    /// The two-level ring's advantage grows with scale and never turns
    /// into a loss at large scale.
    #[test]
    fn two_level_advantage_at_scale(n in 64u32..=640, frag in 16.0f64..4096.0) {
        let flat = ring_broadcast_latency(n, frag, &LinkSpec::paper());
        let two = two_level_broadcast_latency(n, frag, &TwoLevelRing::balanced(n));
        prop_assert!(two <= flat * 1.35, "{n} CUs: two-level {two} vs flat {flat}");
    }
}

#[test]
fn zero_cus_is_rejected() {
    assert!(RpuConfig::new(0, HbmCoConfig::candidate()).is_err());
}

#[test]
fn compute_to_bandwidth_ratio_is_32() {
    let rpu = RpuConfig::new(64, HbmCoConfig::candidate()).unwrap();
    assert!(
        (rpu.ops_per_byte() - 32.0).abs() < 2.0,
        "Ops/Byte {}",
        rpu.ops_per_byte()
    );
}
