//! RPU hardware architecture model (Section IV and Fig. 6 of the paper).
//!
//! Encodes the chiplet hierarchy — TMAC → reasoning core → compute unit
//! (CU) → package → ring-station board — with the Fig. 6 area, bandwidth
//! and energy constants, the bandwidth-first power-provisioning rule
//! (70–80 % of TDP to memory interfaces), the roofline model, and the
//! ring interconnect used for activation broadcasts.
//!
//! # Examples
//!
//! ```
//! use rpu_arch::RpuConfig;
//! use rpu_hbmco::HbmCoConfig;
//!
//! let rpu = RpuConfig::new(64, HbmCoConfig::candidate()).unwrap();
//! assert_eq!(rpu.num_cores(), 1024);
//! // 64 CUs x 512 GB/s = 32.8 TB/s of memory bandwidth.
//! assert!((rpu.mem_bandwidth() - 32.768e12).abs() < 1e6);
//! ```

#![warn(missing_docs)]

mod area;
mod energy;
mod links;
mod power;
mod roofline;
mod spec;

pub use area::{
    core_area, hbm_shoreline_mm, rpu_shoreline_at_h100_area, shoreline_per_area, CoreArea,
    H100_DIE_MM2, H100_SHORELINE_MM, HBM_IO_GBPS_PER_MM, SRAM_MB_PER_MM2, TMAC_UM2,
    UCIE_GBPS_PER_MM,
};
pub use energy::EnergyCoeffs;
pub use links::{
    ring_broadcast_latency, ring_reduce_latency, two_level_broadcast_latency,
    two_level_reduce_latency, LinkSpec, TwoLevelRing,
};
pub use power::{cu_mem_power, cu_tdp, iso_tdp_cus, system_tdp, MEM_POWER_FRACTION};
pub use roofline::Roofline;
pub use spec::{ArchError, CoreSpec, CuSpec, PackageSpec, RpuConfig};
