//! Energy coefficients from the Fig. 6 "Area and Energy Allocation" table.

/// Per-operation and per-bit energy coefficients (N2 process projections).
///
/// All values are picojoules; bandwidth-style coefficients are pJ/bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyCoeffs {
    /// Energy per TMAC operation (64 MACs), pJ.
    pub tmac_op_pj: f64,
    /// Energy per HP-VOPs vector operation, pJ (paper range 1.5–4.0).
    pub vop_pj: f64,
    /// SRAM read, pJ/bit.
    pub sram_read_pj_bit: f64,
    /// SRAM write, pJ/bit.
    pub sram_write_pj_bit: f64,
    /// On-chip bus wire, pJ/bit/mm.
    pub wire_pj_bit_mm: f64,
    /// UCIe-S in-package (substrate) link, pJ/bit.
    pub ucie_substrate_pj_bit: f64,
    /// UCIe-S off-package (PCB) link, pJ/bit (paper range 0.75–1.2).
    pub ucie_pcb_pj_bit: f64,
    /// HBM-CO IO interface, pJ/bit (host-side PHY; the device-side total
    /// is covered by the HBM-CO energy model).
    pub hbm_io_pj_bit: f64,
    /// NVLink-style GRS link, pJ/bit (used by the GPU baseline).
    pub nvlink_pj_bit: f64,
    /// Stream-decoder dequantisation, pJ/bit of decoded output. The §IX
    /// ablation credits on-the-fly dequantisation with 1.7× lower SRAM
    /// interface energy versus storing decoded BF16.
    pub stream_decode_pj_bit: f64,
}

impl EnergyCoeffs {
    /// The paper's Fig. 6 values (mid-points of quoted ranges).
    #[must_use]
    pub fn paper() -> Self {
        Self {
            tmac_op_pj: 25.6,
            vop_pj: 2.5,
            sram_read_pj_bit: 0.2,
            sram_write_pj_bit: 0.22,
            wire_pj_bit_mm: 0.1,
            ucie_substrate_pj_bit: 0.5,
            ucie_pcb_pj_bit: 1.0,
            hbm_io_pj_bit: 0.25,
            nvlink_pj_bit: 1.17,
            stream_decode_pj_bit: 0.05,
        }
    }

    /// Energy per MAC, pJ.
    #[must_use]
    pub fn mac_pj(&self) -> f64 {
        self.tmac_op_pj / 64.0
    }

    /// Energy per BF16 FLOP on the TMAC array, pJ (MAC = 2 FLOPs).
    #[must_use]
    pub fn flop_pj(&self) -> f64 {
        self.mac_pj() / 2.0
    }

    /// Datapath energy to bring one bit from the memory device into the
    /// memory buffer: device energy is accounted separately by the HBM-CO
    /// model; this adds the buffer write.
    #[must_use]
    pub fn mem_to_buffer_pj_bit(&self) -> f64 {
        self.sram_write_pj_bit
    }
}

impl Default for EnergyCoeffs {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn flop_energy_is_point_two_pj() {
        // 25.6 pJ / 64 MACs / 2 FLOPs = 0.2 pJ/FLOP.
        assert_approx(EnergyCoeffs::paper().flop_pj(), 0.2, 1e-12, "pJ/FLOP");
    }

    #[test]
    fn memory_datapath_near_paper_value() {
        // §VI ① quotes ~1.7 pJ/b total to write a streamed weight bit
        // into the memory buffer (device 1.45 + buffer ~0.22).
        let total = 1.45 + EnergyCoeffs::paper().mem_to_buffer_pj_bit();
        assert_approx(total, 1.7, 0.02, "datapath pJ/bit");
    }

    #[test]
    fn full_bw_cu_power_matches_fig8() {
        // §VI ①: "~6.7 W at full BW / CU (512 GB/s)".
        let pj_per_bit = 1.45 + EnergyCoeffs::paper().mem_to_buffer_pj_bit();
        let watts = 512e9 * 8.0 * pj_per_bit * 1e-12;
        assert_approx(watts, 6.7, 0.03, "full-BW CU watts");
    }

    #[test]
    fn vop_in_paper_range() {
        let c = EnergyCoeffs::paper();
        assert!(c.vop_pj >= 1.5 && c.vop_pj <= 4.0);
        assert!(c.ucie_pcb_pj_bit >= 0.75 && c.ucie_pcb_pj_bit <= 1.2);
    }
}
