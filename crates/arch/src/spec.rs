//! Hardware specifications of the RPU hierarchy (Fig. 6).

use rpu_hbmco::HbmCoConfig;
use std::fmt;

/// Specification of one reasoning core (Fig. 6, "Core Specification").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreSpec {
    /// Vector-tile MAC units per core.
    pub tmacs: u32,
    /// MAC lanes per TMAC (8×8 array).
    pub macs_per_tmac: u32,
    /// MAC array clock, Hz (the datapath runs at 2 GHz to deliver the
    /// 1 TFLOP/core figure; buses run at 1 GHz).
    pub mac_clock_hz: f64,
    /// Bus clock, Hz.
    pub bus_clock_hz: f64,
    /// Dedicated HBM-CO pseudo-channel read bandwidth, bytes/s.
    pub mem_bandwidth: f64,
    /// Per-core network (ring) bandwidth, bytes/s.
    pub net_bandwidth: f64,
    /// Memory buffer capacity, bytes (SRAM, pipeline-arbitrated).
    pub mem_buf_bytes: u64,
    /// Network / global buffer capacity, bytes.
    pub net_buf_bytes: u64,
    /// Activation/accumulator buffer capacity, bytes (per VEC-TILE pair).
    pub act_buf_bytes: u64,
    /// Stream-decoder output width to the TMACs, bits per bus cycle —
    /// Fig. 6 specifies a 256 GB/s compute bus *per tile multiplier*
    /// from the stream decoder, i.e. 4 × 2048 bits per 1 GHz cycle for
    /// the four TMACs of a core.
    pub compute_bus_bits: u32,
    /// HP-VOPs throughput, vector operations per bus cycle.
    pub vops_per_cycle: u32,
    /// Core thermal design power, watts.
    pub tdp_w: f64,
}

impl CoreSpec {
    /// The paper's N2 reasoning core.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            tmacs: 4,
            macs_per_tmac: 64,
            mac_clock_hz: 2e9,
            bus_clock_hz: 1e9,
            mem_bandwidth: 32e9,
            net_bandwidth: 16e9,
            mem_buf_bytes: 512 * 1024,
            net_buf_bytes: 256 * 1024,
            act_buf_bytes: 2 * 32 * 1024,
            compute_bus_bits: 8192,
            vops_per_cycle: 8,
            tdp_w: 0.25,
        }
    }

    /// Peak BF16 throughput, FLOP/s (MAC = 2 FLOPs).
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        f64::from(self.tmacs) * f64::from(self.macs_per_tmac) * 2.0 * self.mac_clock_hz
    }

    /// Total SRAM per core, bytes.
    #[must_use]
    pub fn sram_bytes(&self) -> u64 {
        self.mem_buf_bytes + self.net_buf_bytes + self.act_buf_bytes * u64::from(self.tmacs) / 2
    }
}

/// Specification of one compute unit: a compute chiplet co-packaged with
/// two HBM-CO stacks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CuSpec {
    /// Reasoning cores per CU.
    pub cores: u32,
    /// HBM-CO stacks (memory shorelines) per CU.
    pub stacks: u32,
    /// Compute-die width along the shoreline, mm.
    pub die_width_mm: f64,
    /// Compute-die height, mm.
    pub die_height_mm: f64,
}

impl CuSpec {
    /// The paper's CU: 16 cores, dual 256 GB/s shorelines, 3.75 × 2.75 mm
    /// compute die.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            cores: 16,
            stacks: 2,
            die_width_mm: 3.75,
            die_height_mm: 2.75,
        }
    }

    /// Compute-die area, mm².
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        self.die_width_mm * self.die_height_mm
    }

    /// Memory I/O shoreline per CU, mm (both long edges carry memory IO).
    #[must_use]
    pub fn shoreline_mm(&self) -> f64 {
        2.0 * self.die_width_mm
    }
}

/// Specification of one package (four CUs on a substrate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PackageSpec {
    /// CUs per package.
    pub cus: u32,
    /// CU-to-CU hop latency inside / between packages, seconds (≤ 10 ns
    /// per the paper's DMA-engine design).
    pub hop_latency_s: f64,
}

impl PackageSpec {
    /// The paper's package: 4 CUs, 10 ns hops.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            cus: 4,
            hop_latency_s: 10e-9,
        }
    }
}

/// Error type for invalid RPU system configurations.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchError {
    /// The HBM-CO stack must expose a single-channel (256 GB/s, 8-pCH)
    /// interface so each core maps to one pseudo-channel.
    WrongChannelCount(u32),
    /// The underlying memory configuration is invalid.
    InvalidMemory(rpu_hbmco::ConfigError),
    /// At least one CU is required.
    ZeroCus,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::WrongChannelCount(c) => write!(
                f,
                "RPU stacks must have 1 channel/layer (8 pseudo-channels), got {c}"
            ),
            ArchError::InvalidMemory(e) => write!(f, "invalid memory config: {e}"),
            ArchError::ZeroCus => f.write_str("an RPU needs at least one CU"),
        }
    }
}

impl std::error::Error for ArchError {}

/// A complete RPU system: `num_cus` compute units, each with two HBM-CO
/// stacks of the given configuration, composed into packages on a
/// ring-station board.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RpuConfig {
    /// Number of compute units.
    pub num_cus: u32,
    /// Memory stack configuration (single-channel HBM-CO).
    pub memory: HbmCoConfig,
    /// Core specification.
    pub core: CoreSpec,
    /// CU specification.
    pub cu: CuSpec,
    /// Package specification.
    pub package: PackageSpec,
}

impl RpuConfig {
    /// Builds an RPU with paper-spec cores/CUs/packages and the given
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if `num_cus` is zero or the memory stack is
    /// invalid / not single-channel.
    pub fn new(num_cus: u32, memory: HbmCoConfig) -> Result<Self, ArchError> {
        if num_cus == 0 {
            return Err(ArchError::ZeroCus);
        }
        memory.validate().map_err(ArchError::InvalidMemory)?;
        if memory.channels_per_layer != 1 {
            return Err(ArchError::WrongChannelCount(memory.channels_per_layer));
        }
        Ok(Self {
            num_cus,
            memory,
            core: CoreSpec::paper(),
            cu: CuSpec::paper(),
            package: PackageSpec::paper(),
        })
    }

    /// Total reasoning cores.
    #[must_use]
    pub fn num_cores(&self) -> u32 {
        self.num_cus * self.cu.cores
    }

    /// Number of packages (4 CUs each, rounded up).
    #[must_use]
    pub fn num_packages(&self) -> u32 {
        self.num_cus.div_ceil(self.package.cus)
    }

    /// Aggregate memory bandwidth, bytes/s.
    #[must_use]
    pub fn mem_bandwidth(&self) -> f64 {
        f64::from(self.num_cores()) * self.core.mem_bandwidth
    }

    /// Aggregate memory capacity, bytes.
    #[must_use]
    pub fn mem_capacity(&self) -> f64 {
        f64::from(self.num_cores()) * self.memory.capacity_per_pch()
    }

    /// Aggregate peak compute, FLOP/s.
    #[must_use]
    pub fn peak_flops(&self) -> f64 {
        f64::from(self.num_cores()) * self.core.peak_flops()
    }

    /// Compute-to-bandwidth ratio, operations per byte. The paper sets
    /// this to 32 Ops/Byte for MXFP4 inference.
    #[must_use]
    pub fn ops_per_byte(&self) -> f64 {
        self.peak_flops() / self.mem_bandwidth()
    }

    /// Total memory I/O shoreline, mm.
    #[must_use]
    pub fn shoreline_mm(&self) -> f64 {
        f64::from(self.num_cus) * self.cu.shoreline_mm()
    }

    /// Total compute-die silicon, mm².
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        f64::from(self.num_cus) * self.cu.die_area_mm2()
    }
}

impl fmt::Display for RpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RPU-{}CU ({} cores, {:.1} TB/s, {:.1} GB, {})",
            self.num_cus,
            self.num_cores(),
            self.mem_bandwidth() / 1e12,
            self.mem_capacity() / 1e9,
            self.memory.label(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn core_peak_is_1_tflop() {
        // Fig. 6: 1 TFLOP BF16 per core.
        assert_approx(CoreSpec::paper().peak_flops(), 1.0e12, 0.03, "core TFLOPs");
    }

    #[test]
    fn core_sram_is_about_1mb() {
        // Fig. 6: 1.0 MB on-chip memory per core.
        let s = CoreSpec::paper().sram_bytes() as f64;
        assert_approx(s, 1.0e6, 0.15, "core SRAM");
    }

    #[test]
    fn cu_metrics_match_fig6() {
        let rpu = RpuConfig::new(1, HbmCoConfig::candidate()).unwrap();
        // 16 TFLOPs, 512 GB/s, 16 cores per CU.
        assert_approx(rpu.peak_flops(), 16e12, 0.03, "CU TFLOPs");
        assert_approx(rpu.mem_bandwidth(), 512e9, 1e-9, "CU bandwidth");
        // 32 Ops/Byte compute-to-bandwidth ratio.
        assert_approx(rpu.ops_per_byte(), 32.0, 0.03, "Ops/Byte");
    }

    #[test]
    fn package_metrics_match_fig6() {
        let rpu = RpuConfig::new(4, HbmCoConfig::candidate()).unwrap();
        assert_approx(rpu.peak_flops(), 64e12, 0.03, "package TFLOPs");
        assert_approx(rpu.mem_bandwidth(), 2.048e12, 1e-9, "package bandwidth");
        assert_eq!(rpu.num_packages(), 1);
    }

    #[test]
    fn shoreline_advantage_over_h100() {
        // §I: "for the same compute die area, the RPU exposes nearly 10x
        // more memory IO shoreline than the H100 (600 mm vs. 60 mm)".
        let cu = CuSpec::paper();
        let h100_area = 814.0; // mm^2
        let cus_matching_h100 = h100_area / cu.die_area_mm2();
        let shoreline = cus_matching_h100 * cu.shoreline_mm();
        assert!(
            shoreline > 550.0 && shoreline < 650.0,
            "shoreline {shoreline}"
        );
    }

    #[test]
    fn capacity_ranges_match_fig6() {
        // Fig. 6: CU capacity 1 GB -> 24 GB depending on the stack.
        let small = RpuConfig::new(1, HbmCoConfig::candidate()).unwrap();
        assert_approx(small.mem_capacity(), 1.6e9, 0.05, "small CU capacity");
        let big = RpuConfig::new(
            1,
            HbmCoConfig {
                ranks: 4,
                banks_per_group: 4,
                ..HbmCoConfig::candidate()
            },
        )
        .unwrap();
        assert_approx(big.mem_capacity(), 25.8e9, 0.05, "big CU capacity");
    }

    #[test]
    fn rejects_invalid_configs() {
        assert!(matches!(
            RpuConfig::new(0, HbmCoConfig::candidate()),
            Err(ArchError::ZeroCus)
        ));
        assert!(matches!(
            RpuConfig::new(4, HbmCoConfig::hbm3e_like()),
            Err(ArchError::WrongChannelCount(4))
        ));
        let bad = HbmCoConfig {
            ranks: 9,
            ..HbmCoConfig::candidate()
        };
        assert!(matches!(
            RpuConfig::new(4, bad),
            Err(ArchError::InvalidMemory(_))
        ));
    }

    #[test]
    fn display_mentions_scale() {
        let rpu = RpuConfig::new(64, HbmCoConfig::candidate()).unwrap();
        let s = rpu.to_string();
        assert!(s.contains("RPU-64CU"));
        assert!(s.contains("1024 cores"));
    }
}
