//! Roofline performance model (Fig. 1).

/// A two-parameter roofline: peak compute and memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Roofline {
    /// Peak arithmetic throughput, FLOP/s (or OP/s for quantised math).
    pub peak_flops: f64,
    /// Peak memory bandwidth, bytes/s.
    pub bandwidth: f64,
}

impl Roofline {
    /// Creates a roofline.
    #[must_use]
    pub fn new(peak_flops: f64, bandwidth: f64) -> Self {
        Self {
            peak_flops,
            bandwidth,
        }
    }

    /// Attainable throughput at arithmetic intensity `ai` (FLOPs/byte).
    ///
    /// # Examples
    ///
    /// ```
    /// use rpu_arch::Roofline;
    ///
    /// let r = Roofline::new(1e15, 1e12);
    /// assert_eq!(r.attainable(1.0), 1e12);     // memory-bound
    /// assert_eq!(r.attainable(1e6), 1e15);     // compute-bound
    /// ```
    #[must_use]
    pub fn attainable(&self, ai: f64) -> f64 {
        (ai * self.bandwidth).min(self.peak_flops)
    }

    /// The ridge point: arithmetic intensity at which the machine turns
    /// compute-bound (its compute-to-bandwidth ratio).
    #[must_use]
    pub fn ridge_ai(&self) -> f64 {
        self.peak_flops / self.bandwidth
    }

    /// `true` when a kernel of intensity `ai` is memory-bandwidth-bound.
    #[must_use]
    pub fn is_memory_bound(&self, ai: f64) -> bool {
        ai < self.ridge_ai()
    }

    /// Execution time for a kernel with the given totals, seconds.
    #[must_use]
    pub fn kernel_time(&self, flops: f64, bytes: f64) -> f64 {
        (flops / self.peak_flops).max(bytes / self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RpuConfig;
    use rpu_hbmco::HbmCoConfig;
    use rpu_util::assert_approx;

    fn rpu_roofline(cus: u32) -> Roofline {
        let rpu = RpuConfig::new(cus, HbmCoConfig::candidate()).unwrap();
        Roofline::new(rpu.peak_flops(), rpu.mem_bandwidth())
    }

    #[test]
    fn rpu_ridge_at_32_ops_per_byte() {
        // §IV: 32 OPs/Byte maximises utilisation for MXFP4 inference.
        assert_approx(rpu_roofline(40).ridge_ai(), 32.0, 0.03, "RPU ridge");
    }

    #[test]
    fn h100_ridge_far_higher() {
        // H100: ~989 TFLOPS BF16 over 3.35 TB/s ~= 295 FLOPs/byte; the
        // paper quotes ~200 Ops/Byte for its class. Either way, the RPU
        // ridge sits an order of magnitude lower (down-and-left shift).
        let h100 = Roofline::new(989e12, 3.35e12);
        assert!(h100.ridge_ai() > 5.0 * rpu_roofline(40).ridge_ai());
    }

    #[test]
    fn attainable_continuous_at_ridge() {
        let r = rpu_roofline(8);
        let ridge = r.ridge_ai();
        assert_approx(
            r.attainable(ridge),
            r.peak_flops,
            1e-9,
            "roofline continuity",
        );
    }

    #[test]
    fn memory_bound_classification() {
        let r = rpu_roofline(8);
        assert!(r.is_memory_bound(1.0));
        assert!(!r.is_memory_bound(100.0));
    }

    #[test]
    fn kernel_time_matches_binding_side() {
        let r = Roofline::new(1e12, 1e9);
        assert_approx(r.kernel_time(1e12, 1.0), 1.0, 1e-12, "compute side");
        assert_approx(r.kernel_time(1.0, 1e9), 1.0, 1e-12, "memory side");
    }
}
