//! Interconnect model: the outer-ring topology of CUs, packages and the
//! ring station (§IV, "RPU Scale-Up"), used for activation broadcasts and
//! reductions.

/// Physical link parameters for a CU-to-CU segment of the outer ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Per-core injection bandwidth onto the ring, bytes/s.
    pub core_bandwidth: f64,
    /// CU-to-CU hop latency, seconds.
    pub hop_latency_s: f64,
    /// `true` when the ring is traversed in both directions, halving the
    /// worst-case hop count.
    pub bidirectional: bool,
}

impl LinkSpec {
    /// The paper's ring: 16 GB/s per core, ≤ 10 ns hops, bidirectional.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            core_bandwidth: 16e9,
            hop_latency_s: 10e-9,
            bidirectional: true,
        }
    }

    fn worst_hops(&self, num_cus: u32) -> f64 {
        if num_cus <= 1 {
            return 0.0;
        }
        if self.bidirectional {
            f64::from(num_cus.div_ceil(2))
        } else {
            f64::from(num_cus - 1)
        }
    }
}

/// Latency for the column-sharded activation broadcast: every CU owns a
/// `fragment_bytes` slice of the vector and forwards it around the ring
/// until all CUs hold the full vector (a ring all-gather).
///
/// The transfer is pipelined: total time is the worst-case hop distance
/// times the per-hop cost, where each hop costs the max of wire latency
/// and fragment serialisation.
///
/// # Examples
///
/// ```
/// use rpu_arch::{ring_broadcast_latency, LinkSpec};
///
/// let t = ring_broadcast_latency(64, 512.0, &LinkSpec::paper());
/// // 32 worst-case hops x max(10 ns, 512B / 16GB/s = 32 ns) = ~1 us.
/// assert!(t > 0.9e-6 && t < 1.2e-6);
/// ```
#[must_use]
pub fn ring_broadcast_latency(num_cus: u32, fragment_bytes: f64, link: &LinkSpec) -> f64 {
    let per_hop = link.hop_latency_s.max(fragment_bytes / link.core_bandwidth);
    link.worst_hops(num_cus) * per_hop
}

/// Latency for a ring reduction (e.g. the K-dimension partial-sum
/// reduction, or the softmax max / exp-sum collectives): partial values
/// travel the ring accumulating at each hop, then the result returns.
///
/// Cost is one full ring traversal of reduce-scatter plus the broadcast
/// of the result — approximately twice the all-gather cost.
#[must_use]
pub fn ring_reduce_latency(num_cus: u32, fragment_bytes: f64, link: &LinkSpec) -> f64 {
    2.0 * ring_broadcast_latency(num_cus, fragment_bytes, link)
}

/// Hierarchical (two-level) ring topology — the paper's §VIII future
/// direction for breaking the broadcast plateau: a second-level ring
/// interconnects the ring stations, so a broadcast crosses
/// `√N`-ish-sized local rings plus the station ring instead of the full
/// `N`-CU ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoLevelRing {
    /// Number of ring stations (board-level rings).
    pub stations: u32,
    /// Link parameters of the intra-board CU ring.
    pub local: LinkSpec,
    /// Station-to-station hop latency, seconds (longer reach than a
    /// CU-to-CU hop: PCB + retimer).
    pub station_hop_s: f64,
}

impl TwoLevelRing {
    /// A two-level ring over `num_cus` CUs with the station count that
    /// minimises worst-case hop distance (≈ √(N/2) stations for the
    /// paper's 3× station-hop cost).
    #[must_use]
    pub fn balanced(num_cus: u32) -> Self {
        let stations = ((f64::from(num_cus) / 2.0).sqrt().round() as u32).max(1);
        Self {
            stations,
            local: LinkSpec::paper(),
            station_hop_s: 30e-9,
        }
    }

    /// CUs per station ring (ceiling division).
    #[must_use]
    pub fn cus_per_station(&self, num_cus: u32) -> u32 {
        num_cus.div_ceil(self.stations.max(1))
    }
}

/// Broadcast latency over a two-level ring: the fragment crosses its
/// local ring, the station ring, and the destination's local ring, all
/// pipelined.
///
/// # Examples
///
/// ```
/// use rpu_arch::{ring_broadcast_latency, two_level_broadcast_latency, LinkSpec, TwoLevelRing};
///
/// // At 428 CUs, the hierarchical ring beats the flat ring.
/// let flat = ring_broadcast_latency(428, 64.0, &LinkSpec::paper());
/// let two = two_level_broadcast_latency(428, 64.0, &TwoLevelRing::balanced(428));
/// assert!(two < flat);
/// ```
#[must_use]
pub fn two_level_broadcast_latency(num_cus: u32, fragment_bytes: f64, ring: &TwoLevelRing) -> f64 {
    if num_cus <= 1 {
        return 0.0;
    }
    let local_cus = ring.cus_per_station(num_cus);
    // Source local ring + destination local ring.
    let local = 2.0 * ring_broadcast_latency(local_cus, fragment_bytes, &ring.local);
    // Station ring: same serialisation bandwidth, longer hops.
    let station_link = LinkSpec {
        hop_latency_s: ring.station_hop_s,
        ..ring.local
    };
    let station = ring_broadcast_latency(ring.stations, fragment_bytes, &station_link);
    local + station
}

/// Reduction latency over a two-level ring (reduce-scatter + broadcast).
#[must_use]
pub fn two_level_reduce_latency(num_cus: u32, fragment_bytes: f64, ring: &TwoLevelRing) -> f64 {
    2.0 * two_level_broadcast_latency(num_cus, fragment_bytes, ring)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cu_is_free() {
        assert_eq!(ring_broadcast_latency(1, 4096.0, &LinkSpec::paper()), 0.0);
        assert_eq!(ring_reduce_latency(1, 4096.0, &LinkSpec::paper()), 0.0);
    }

    #[test]
    fn latency_grows_with_scale() {
        let l = LinkSpec::paper();
        let t64 = ring_broadcast_latency(64, 64.0, &l);
        let t428 = ring_broadcast_latency(428, 64.0, &l);
        assert!(t428 > 5.0 * t64);
    }

    #[test]
    fn tiny_fragments_are_latency_bound() {
        // Below 160 B per fragment, the 10 ns hop dominates serialisation.
        let l = LinkSpec::paper();
        let t = ring_broadcast_latency(100, 16.0, &l);
        assert!((t - 50.0 * 10e-9).abs() < 1e-12);
    }

    #[test]
    fn reduce_costs_twice_broadcast() {
        let l = LinkSpec::paper();
        let b = ring_broadcast_latency(32, 1024.0, &l);
        let r = ring_reduce_latency(32, 1024.0, &l);
        assert!((r - 2.0 * b).abs() < 1e-15);
    }

    #[test]
    fn unidirectional_ring_doubles_hops() {
        let bi = LinkSpec::paper();
        let uni = LinkSpec {
            bidirectional: false,
            ..bi
        };
        let tb = ring_broadcast_latency(64, 16.0, &bi);
        let tu = ring_broadcast_latency(64, 16.0, &uni);
        assert!(tu > 1.9 * tb);
    }

    #[test]
    fn two_level_ring_beats_flat_ring_at_scale() {
        // §VIII future direction: "Reduce hop count by adding another
        // level of scale-out which interconnects ring-stations."
        for n in [128u32, 308, 428, 512] {
            let flat = ring_broadcast_latency(n, 64.0, &LinkSpec::paper());
            let two = two_level_broadcast_latency(n, 64.0, &TwoLevelRing::balanced(n));
            assert!(two < flat, "{n} CUs: two-level {two} vs flat {flat}");
        }
    }

    #[test]
    fn two_level_ring_loses_at_small_scale() {
        // Below ~32 CUs the extra station hop costs more than it saves.
        let flat = ring_broadcast_latency(8, 64.0, &LinkSpec::paper());
        let two = two_level_broadcast_latency(8, 64.0, &TwoLevelRing::balanced(8));
        assert!(two >= flat, "8 CUs: two-level {two} vs flat {flat}");
    }

    #[test]
    fn two_level_scaling_is_sublinear() {
        // Hop distance grows ~sqrt(N) instead of ~N/2.
        let t128 = two_level_broadcast_latency(128, 16.0, &TwoLevelRing::balanced(128));
        let t512 = two_level_broadcast_latency(512, 16.0, &TwoLevelRing::balanced(512));
        assert!(t512 / t128 < 3.0, "128 -> 512 ratio {}", t512 / t128);
    }

    #[test]
    fn two_level_degenerate_cases() {
        let r = TwoLevelRing::balanced(1);
        assert_eq!(two_level_broadcast_latency(1, 64.0, &r), 0.0);
        assert!(r.stations >= 1);
        assert_eq!(r.cus_per_station(1), 1);
    }

    #[test]
    fn collectives_are_microsecond_scale() {
        // §VI: "latency-bound network collectives are often on the orders
        // of microseconds".
        let l = LinkSpec::paper();
        let t = ring_reduce_latency(64, 128.0, &l);
        assert!(t > 0.1e-6 && t < 10e-6, "collective latency {t}");
    }
}
