//! Silicon-area model of the reasoning core and compute-unit die,
//! following the Fig. 6 area/shoreline specification table (N2-class
//! constants).
//!
//! The central claim this model supports (§IV, Contribution 2): *"for
//! the same compute die area, the RPU exposes nearly 10× more memory IO
//! shoreline than the H100 (600 mm vs. 60 mm)"*, because many small
//! chiplets maximise the perimeter-to-area ratio that a reticle-limited
//! monolithic die minimises.

use crate::spec::{CoreSpec, CuSpec};

/// TMAC (8×8 vector-tile multiplier) area, µm² (Fig. 6: 0.16 × 0.08 mm).
pub const TMAC_UM2: f64 = 12_800.0;

/// HP-VOPs unit area, µm² (Fig. 6: 0.16 × 0.01 mm, 8 ops/cycle).
pub const HP_VOPS_UM2: f64 = 1_600.0;

/// Instruction cache area, µm² (Fig. 6: 20 µm × 350 µm).
pub const ICACHE_UM2: f64 = 7_000.0;

/// SRAM density, MB per mm² (Fig. 6 energy/area table, N2).
pub const SRAM_MB_PER_MM2: f64 = 4.0;

/// Memory-bus wiring footprint per core, µm² (Fig. 6: 400 µm × 40 µm).
pub const MEM_BUS_UM2: f64 = 16_000.0;

/// Network-bus wiring footprint per core, µm² (Fig. 6: 400 µm × 100 µm).
pub const NET_BUS_UM2: f64 = 40_000.0;

/// HBM-CO IO shoreline bandwidth density, bytes/s per mm (Fig. 6:
/// 102.5 GB/s/mm).
pub const HBM_IO_GBPS_PER_MM: f64 = 102.5e9;

/// UCIe-S (substrate) shoreline bandwidth density, bytes/s per mm
/// (Fig. 6: 128 GB/s/mm).
pub const UCIE_GBPS_PER_MM: f64 = 128e9;

/// H100 reference die area, mm² (reticle-limited monolithic die).
pub const H100_DIE_MM2: f64 = 814.0;

/// H100 reference memory shoreline, mm (§IV: ~60 mm across its HBM
/// sites).
pub const H100_SHORELINE_MM: f64 = 60.0;

/// Area breakdown of one reasoning core, mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreArea {
    /// Tile multipliers (4 TMACs).
    pub tmacs: f64,
    /// HP-VOPs vector unit.
    pub vops: f64,
    /// SRAM buffers (memory, network, act/acc).
    pub sram: f64,
    /// Instruction cache.
    pub icache: f64,
    /// Memory + network bus wiring.
    pub buses: f64,
}

impl CoreArea {
    /// Total core logic area, mm².
    #[must_use]
    pub fn total(&self) -> f64 {
        self.tmacs + self.vops + self.sram + self.icache + self.buses
    }

    /// Fraction of the core occupied by SRAM (the paper's cores are
    /// buffer-dominated, unlike cache-heavy GPUs whose SRAM serves
    /// reuse the RPU does not need).
    #[must_use]
    pub fn sram_fraction(&self) -> f64 {
        self.sram / self.total()
    }
}

/// Computes the area of one reasoning core from its specification.
///
/// # Examples
///
/// ```
/// use rpu_arch::{core_area, CoreSpec};
///
/// let a = core_area(&CoreSpec::paper());
/// // A reasoning core is a fraction of a square millimetre.
/// assert!(a.total() < 0.5);
/// ```
#[must_use]
pub fn core_area(core: &CoreSpec) -> CoreArea {
    let sram_mb = core.sram_bytes() as f64 / (1024.0 * 1024.0);
    CoreArea {
        tmacs: f64::from(core.tmacs) * TMAC_UM2 * 1e-6,
        vops: HP_VOPS_UM2 * 1e-6,
        sram: sram_mb / SRAM_MB_PER_MM2,
        icache: ICACHE_UM2 * 1e-6,
        buses: (MEM_BUS_UM2 + NET_BUS_UM2) * 1e-6,
    }
}

/// Shoreline length required to terminate `bandwidth` bytes/s of HBM-CO
/// IO, mm.
#[must_use]
pub fn hbm_shoreline_mm(bandwidth: f64) -> f64 {
    bandwidth / HBM_IO_GBPS_PER_MM
}

/// Memory-IO shoreline per unit compute-die area for a CU, mm per mm².
#[must_use]
pub fn shoreline_per_area(cu: &CuSpec) -> f64 {
    cu.shoreline_mm() / cu.die_area_mm2()
}

/// The §IV headline: RPU shoreline at H100-equivalent total compute die
/// area, mm.
#[must_use]
pub fn rpu_shoreline_at_h100_area(cu: &CuSpec) -> f64 {
    shoreline_per_area(cu) * H100_DIE_MM2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CoreSpec, CuSpec};

    #[test]
    fn core_logic_fits_its_floorplan_slot() {
        // Fig. 6 allocates 16 cores on a 16 mm x 2.75 mm compute die;
        // each core's logic must fit a sixteenth of it with room for
        // routing and the stream decoder.
        let core = core_area(&CoreSpec::paper());
        let cu = CuSpec::paper();
        let slot = cu.die_area_mm2() / f64::from(cu.cores);
        // ~52 % logic+SRAM, leaving the rest for the stream decoder,
        // pipeline arbiters, routing and the IO shoreline ring.
        assert!(
            core.total() < 0.6 * slot,
            "core {} mm2 vs slot {} mm2",
            core.total(),
            slot
        );
    }

    #[test]
    fn sram_dominates_core_area() {
        // ~832 KB of buffers at 4 MB/mm2 dwarfs 4 TMACs + VOPs: the RPU
        // spends its area on dataflow buffering, not arithmetic.
        let a = core_area(&CoreSpec::paper());
        assert!(
            a.sram_fraction() > 0.5,
            "SRAM fraction {}",
            a.sram_fraction()
        );
        assert!(a.tmacs < a.sram);
    }

    #[test]
    fn tmac_area_matches_fig6() {
        let a = core_area(&CoreSpec::paper());
        // 4 x 12800 um2.
        assert!((a.tmacs - 4.0 * 12_800.0 * 1e-6).abs() < 1e-12);
    }

    #[test]
    fn cu_shoreline_terminates_its_bandwidth() {
        // A CU's dual 256 GB/s shorelines need 2 x 2.5 mm of HBM-CO IO;
        // its 2 x 16 mm edges provide ample margin.
        let cu = CuSpec::paper();
        let need = hbm_shoreline_mm(512e9);
        assert!(
            need < cu.shoreline_mm(),
            "need {need} mm vs have {}",
            cu.shoreline_mm()
        );
    }

    #[test]
    fn ten_x_shoreline_claim_vs_h100() {
        // §IV: "for the same compute die area, the RPU exposes nearly
        // 10x more memory IO shoreline than the H100 (600mm vs. 60mm)".
        let cu = CuSpec::paper();
        let rpu_mm = rpu_shoreline_at_h100_area(&cu);
        assert!(
            rpu_mm > 400.0 && rpu_mm < 800.0,
            "RPU shoreline at H100 area: {rpu_mm} mm (paper: ~600)"
        );
        let ratio = rpu_mm / H100_SHORELINE_MM;
        assert!(
            ratio > 7.0 && ratio < 13.0,
            "shoreline ratio {ratio} (paper: ~10x)"
        );
    }

    #[test]
    fn breakdown_sums_to_total() {
        let a = core_area(&CoreSpec::paper());
        let sum = a.tmacs + a.vops + a.sram + a.icache + a.buses;
        assert!((a.total() - sum).abs() < 1e-15);
    }
}
