//! Bandwidth-first power provisioning (§IV, Contribution 2).
//!
//! The RPU dedicates 70–80 % of its thermal design power to the memory
//! interfaces, so that memory-bandwidth-bound execution runs near peak
//! power. A CU's TDP is therefore its full-bandwidth memory-path power
//! divided by that fraction; scaling out at ISO-TDP against a GPU budget
//! divides the budget by the per-CU TDP.

use crate::energy::EnergyCoeffs;
use crate::spec::RpuConfig;
use rpu_hbmco::energy_per_bit;

/// Fraction of CU TDP allocated to the memory interfaces (paper: 70–80 %).
pub const MEM_POWER_FRACTION: f64 = 0.75;

/// Full-bandwidth memory-path power of one CU, watts: device energy per
/// bit plus the on-chip datapath into the memory buffers.
#[must_use]
pub fn cu_mem_power(rpu: &RpuConfig, coeffs: &EnergyCoeffs) -> f64 {
    let pj_per_bit = energy_per_bit(&rpu.memory).total() + coeffs.mem_to_buffer_pj_bit();
    let bw = f64::from(rpu.cu.cores) * rpu.core.mem_bandwidth;
    bw * 8.0 * pj_per_bit * 1e-12
}

/// Thermal design power of one CU, watts.
///
/// # Examples
///
/// ```
/// use rpu_arch::{cu_tdp, EnergyCoeffs, RpuConfig};
/// use rpu_hbmco::HbmCoConfig;
///
/// let rpu = RpuConfig::new(1, HbmCoConfig::candidate()).unwrap();
/// let tdp = cu_tdp(&rpu, &EnergyCoeffs::paper());
/// // Fig. 6: 8 W -> 18 W depending on the memory stack.
/// assert!(tdp > 8.0 && tdp < 18.0);
/// ```
#[must_use]
pub fn cu_tdp(rpu: &RpuConfig, coeffs: &EnergyCoeffs) -> f64 {
    cu_mem_power(rpu, coeffs) / MEM_POWER_FRACTION
}

/// System TDP, watts.
#[must_use]
pub fn system_tdp(rpu: &RpuConfig, coeffs: &EnergyCoeffs) -> f64 {
    f64::from(rpu.num_cus) * cu_tdp(rpu, coeffs)
}

/// Number of CUs affordable within `budget_w` watts at ISO-TDP, for the
/// given memory configuration.
#[must_use]
pub fn iso_tdp_cus(budget_w: f64, memory: rpu_hbmco::HbmCoConfig, coeffs: &EnergyCoeffs) -> u32 {
    let one = match RpuConfig::new(1, memory) {
        Ok(c) => c,
        Err(_) => return 0,
    };
    (budget_w / cu_tdp(&one, coeffs)).floor().max(0.0) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_hbmco::HbmCoConfig;
    use rpu_util::assert_approx;

    #[test]
    fn candidate_cu_tdp_near_9w() {
        let rpu = RpuConfig::new(1, HbmCoConfig::candidate()).unwrap();
        let tdp = cu_tdp(&rpu, &EnergyCoeffs::paper());
        // 6.84 W memory path / 0.75 = 9.1 W.
        assert_approx(tdp, 9.1, 0.02, "candidate CU TDP");
    }

    #[test]
    fn hbm3e_config_cu_tdp_near_fig6_max() {
        // With an HBM3e-energy stack (R4 B4 S1) the CU TDP approaches the
        // 18 W upper end of Fig. 6's range.
        let mem = HbmCoConfig {
            ranks: 4,
            banks_per_group: 4,
            ..HbmCoConfig::candidate()
        };
        let rpu = RpuConfig::new(1, mem).unwrap();
        let tdp = cu_tdp(&rpu, &EnergyCoeffs::paper());
        assert!(tdp > 16.0 && tdp < 22.0, "HBM3e-config TDP {tdp}");
    }

    #[test]
    fn iso_tdp_matches_fig11_anchor() {
        // Fig. 11: 4xH100 (2800 W) aligns with a ~308-CU RPU.
        let n = iso_tdp_cus(2800.0, HbmCoConfig::candidate(), &EnergyCoeffs::paper());
        assert!((295..=320).contains(&n), "ISO-TDP CUs = {n}");
    }

    #[test]
    fn iso_tdp_2xh100_anchor() {
        // Fig. 11: 2xH100 (1400 W) aligns with ~144-154 CUs (74 TB/s).
        let n = iso_tdp_cus(1400.0, HbmCoConfig::candidate(), &EnergyCoeffs::paper());
        assert!((140..=160).contains(&n), "ISO-TDP CUs = {n}");
    }

    #[test]
    fn memory_dominates_tdp() {
        let rpu = RpuConfig::new(16, HbmCoConfig::candidate()).unwrap();
        let c = EnergyCoeffs::paper();
        let frac = f64::from(rpu.num_cus) * cu_mem_power(&rpu, &c) / system_tdp(&rpu, &c);
        assert_approx(frac, MEM_POWER_FRACTION, 1e-12, "memory power fraction");
        assert!(frac > 0.7 && frac < 0.8);
    }

    #[test]
    fn system_tdp_scales_linearly() {
        let c = EnergyCoeffs::paper();
        let one = RpuConfig::new(1, HbmCoConfig::candidate()).unwrap();
        let many = RpuConfig::new(100, HbmCoConfig::candidate()).unwrap();
        assert_approx(
            system_tdp(&many, &c),
            100.0 * system_tdp(&one, &c),
            1e-12,
            "TDP linearity",
        );
    }

    #[test]
    fn iso_tdp_zero_budget() {
        assert_eq!(
            iso_tdp_cus(0.0, HbmCoConfig::candidate(), &EnergyCoeffs::paper()),
            0
        );
    }
}
