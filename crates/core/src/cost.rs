//! System cost model (Fig. 12 bottom): silicon, memory, substrate, PCB.
//!
//! All costs are normalised to one HBM3e module (= 1.0), the same unit
//! as `rpu_hbmco::module_cost`. The paper's observation is that memory
//! utterly dominates system cost, so the non-memory components are small
//! per-CU constants; the HBM-CO vs HBM3e total-cost gap then approaches
//! the per-module gap (up to 12.4× at scale).

use rpu_arch::RpuConfig;
use rpu_hbmco::module_cost;

/// Cost-model constants, in HBM3e-module units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Compute-die cost per CU (small N2 chiplet, high yield).
    pub compute_per_cu: f64,
    /// Package substrate + assembly per package (4 CUs).
    pub substrate_per_package: f64,
    /// Board base cost (PCB + ring station).
    pub pcb_base: f64,
    /// Incremental PCB cost per package site.
    pub pcb_per_package: f64,
    /// Reference cost of one H100 SXM module (die + 5 HBM3 stacks +
    /// packaging), for the 8×H100 comparison bar.
    pub h100_module: f64,
}

impl CostModel {
    /// Constants calibrated to the paper's claims: memory dominates; an
    /// HBM-CO system at scale costs up to ~12.4× less than the same
    /// system with HBM3e-class stacks; a large RPU lands near 8×H100
    /// system cost.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            compute_per_cu: 0.003,
            substrate_per_package: 0.006,
            pcb_base: 0.2,
            pcb_per_package: 0.002,
            h100_module: 3.8,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper()
    }
}

/// Cost breakdown of an RPU system, HBM3e-module units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostBreakdown {
    /// Compute silicon.
    pub silicon: f64,
    /// Memory modules (2 HBM-CO stacks per CU).
    pub memory: f64,
    /// Package substrates.
    pub substrate: f64,
    /// PCB and ring station.
    pub pcb: f64,
}

impl CostBreakdown {
    /// Total system cost.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.silicon + self.memory + self.substrate + self.pcb
    }
}

/// Computes the system cost of an RPU configuration.
///
/// # Examples
///
/// ```
/// use rpu_arch::RpuConfig;
/// use rpu_core::{system_cost, CostModel};
/// use rpu_hbmco::HbmCoConfig;
///
/// let rpu = RpuConfig::new(64, HbmCoConfig::candidate()).unwrap();
/// let c = system_cost(&rpu, &CostModel::paper());
/// assert!(c.memory > c.silicon); // memory dominates
/// ```
#[must_use]
pub fn system_cost(rpu: &RpuConfig, model: &CostModel) -> CostBreakdown {
    let cus = f64::from(rpu.num_cus);
    let packages = f64::from(rpu.num_packages());
    CostBreakdown {
        silicon: cus * model.compute_per_cu,
        memory: cus * f64::from(rpu.cu.stacks) * module_cost(&rpu.memory),
        substrate: packages * model.substrate_per_package,
        pcb: model.pcb_base + packages * model.pcb_per_package,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_hbmco::HbmCoConfig;

    fn hbm3e_class() -> HbmCoConfig {
        // The "RPU+HBM3e BW/Cap" config of Fig. 12: full ranks, banks and
        // sub-arrays on the single-channel RPU stack (1.5 GiB/core).
        HbmCoConfig {
            ranks: 4,
            banks_per_group: 4,
            ..HbmCoConfig::candidate()
        }
    }

    #[test]
    fn hbmco_vs_hbm3e_total_cost_ratio_near_12x() {
        // Fig. 12 / §IX: "HBM-CO system reduces total cost by up to
        // 12.4x" at large scale, where the smallest SKU suffices.
        let small_sku = HbmCoConfig {
            subarray_scale: 0.5,
            ..HbmCoConfig::candidate()
        };
        let co = RpuConfig::new(428, small_sku).unwrap();
        let e3 = RpuConfig::new(428, hbm3e_class()).unwrap();
        let m = CostModel::paper();
        let ratio = system_cost(&e3, &m).total() / system_cost(&co, &m).total();
        assert!(ratio > 10.0 && ratio < 14.0, "cost ratio {ratio}");
    }

    #[test]
    fn memory_dominates_cost() {
        let rpu = RpuConfig::new(128, HbmCoConfig::candidate()).unwrap();
        let c = system_cost(&rpu, &CostModel::paper());
        assert!(
            c.memory / c.total() > 0.5,
            "memory share {}",
            c.memory / c.total()
        );
    }

    #[test]
    fn large_rpu_near_8xh100_cost() {
        // §VIII: at similar system cost to the GPU baseline. A ~428-CU
        // RPU with its optimal small SKUs should land within ~2x of an
        // 8xH100 DGX.
        let m = CostModel::paper();
        let rpu = RpuConfig::new(
            428,
            HbmCoConfig {
                subarray_scale: 0.5,
                ..HbmCoConfig::candidate()
            },
        )
        .unwrap();
        let rpu_cost = system_cost(&rpu, &m).total();
        let dgx = 8.0 * m.h100_module;
        let ratio = rpu_cost / dgx;
        assert!(ratio > 0.3 && ratio < 2.0, "RPU/DGX cost ratio {ratio}");
    }

    #[test]
    fn compute_cost_linear_memory_sublinear_with_adaptive_sku() {
        // Fig. 12 bottom: compute grows linearly with CU count; memory
        // grows sublinearly because bigger systems pick smaller SKUs.
        let m = CostModel::paper();
        let small = RpuConfig::new(
            64,
            HbmCoConfig {
                ranks: 2,
                ..HbmCoConfig::candidate()
            },
        )
        .unwrap();
        let big = RpuConfig::new(
            256,
            HbmCoConfig {
                subarray_scale: 0.5,
                ..HbmCoConfig::candidate()
            },
        )
        .unwrap();
        let cs = system_cost(&small, &m);
        let cb = system_cost(&big, &m);
        assert!((cb.silicon / cs.silicon - 4.0).abs() < 1e-9);
        assert!(cb.memory / cs.memory < 4.0, "memory must grow sublinearly");
    }
}
