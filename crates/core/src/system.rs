//! The composed RPU system: architecture + memory + compiler + simulator.

use crate::dse::optimal_memory;
use rpu_arch::{cu_tdp, EnergyCoeffs, RpuConfig};
use rpu_hbmco::HbmCoConfig;
use rpu_isa::{compile_decode_step, ShardPlan};
use rpu_models::{ModelConfig, Precision};
use rpu_sim::{SimConfig, SimError, SimReport, Simulator};
use std::fmt;

/// Errors building an [`RpuSystem`].
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The architecture configuration is invalid.
    Arch(rpu_arch::ArchError),
    /// No HBM-CO SKU on the Pareto frontier can hold the workload at the
    /// requested scale.
    NoFittingSku {
        /// Bytes each core would need to hold.
        required_per_core: f64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Arch(e) => write!(f, "architecture error: {e}"),
            BuildError::NoFittingSku { required_per_core } => write!(
                f,
                "no HBM-CO SKU holds {:.1} MiB per core; add CUs",
                required_per_core / (1024.0 * 1024.0)
            ),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<rpu_arch::ArchError> for BuildError {
    fn from(e: rpu_arch::ArchError) -> Self {
        BuildError::Arch(e)
    }
}

/// A deployable RPU system: a scaled chiplet architecture with a chosen
/// HBM-CO SKU and inference precision.
#[derive(Debug, Clone, Copy)]
pub struct RpuSystem {
    /// Architecture (CU count, memory SKU, specs).
    pub arch: RpuConfig,
    /// Inference precision.
    pub precision: Precision,
    /// Simulator configuration (ablation switches, tracing).
    pub sim_config: SimConfig,
}

impl RpuSystem {
    /// Builds a system with an explicit memory SKU.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Arch`] for invalid configurations.
    pub fn build(
        num_cus: u32,
        memory: HbmCoConfig,
        precision: Precision,
    ) -> Result<Self, BuildError> {
        Ok(Self {
            arch: RpuConfig::new(num_cus, memory)?,
            precision,
            sim_config: SimConfig::default(),
        })
    }

    /// Builds a system with the optimal (highest BW/Cap that fits)
    /// HBM-CO SKU for the given workload — the paper's deployment rule.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NoFittingSku`] when the model cannot fit at
    /// this scale.
    pub fn with_optimal_memory(
        model: &ModelConfig,
        precision: Precision,
        batch: u32,
        seq_len: u32,
        num_cus: u32,
    ) -> Result<Self, BuildError> {
        let sku = optimal_memory(model, precision, batch, seq_len, num_cus).ok_or({
            BuildError::NoFittingSku {
                required_per_core: crate::dse::required_bytes_per_core(
                    model, precision, batch, seq_len, num_cus,
                ),
            }
        })?;
        Self::build(num_cus, sku.config, precision)
    }

    /// The shard plan for this system.
    #[must_use]
    pub fn plan(&self) -> ShardPlan {
        ShardPlan::new(self.arch.num_cus, self.arch.cu.cores)
    }

    /// `true` when the workload's footprint fits this system's memory.
    #[must_use]
    pub fn fits(&self, model: &ModelConfig, batch: u32, seq_len: u32) -> bool {
        model.footprint_bytes(self.precision, batch, seq_len) <= self.arch.mem_capacity()
    }

    /// System thermal design power, watts.
    #[must_use]
    pub fn tdp_w(&self) -> f64 {
        f64::from(self.arch.num_cus) * cu_tdp(&self.arch, &EnergyCoeffs::paper())
    }

    /// Compiles and simulates one decode step (one token per query).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures ([`SimError`]).
    pub fn decode_step(
        &self,
        model: &ModelConfig,
        batch: u32,
        seq_len: u32,
    ) -> Result<SimReport, SimError> {
        let plan = self.plan();
        let prog = compile_decode_step(model, self.precision, batch, seq_len, &plan);
        Simulator::new(self.arch.memory, self.precision, plan, self.sim_config).run(&prog)
    }

    /// Decode latency per token, seconds (one simulated step).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn token_latency(
        &self,
        model: &ModelConfig,
        batch: u32,
        seq_len: u32,
    ) -> Result<f64, SimError> {
        Ok(self.decode_step(model, batch, seq_len)?.total_time_s)
    }

    /// Output tokens per second across the batch.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn tokens_per_second(
        &self,
        model: &ModelConfig,
        batch: u32,
        seq_len: u32,
    ) -> Result<f64, SimError> {
        let t = self.token_latency(model, batch, seq_len)?;
        Ok(f64::from(batch) / t)
    }
}

impl fmt::Display for RpuSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.arch, self.precision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_with_candidate_memory() {
        let sys =
            RpuSystem::build(64, HbmCoConfig::candidate(), Precision::mxfp4_inference()).unwrap();
        assert_eq!(sys.arch.num_cus, 64);
        assert!(sys.tdp_w() > 500.0 && sys.tdp_w() < 700.0);
    }

    #[test]
    fn optimal_memory_fits_the_model() {
        let m = ModelConfig::llama3_70b();
        let p = Precision::mxfp4_inference();
        let sys = RpuSystem::with_optimal_memory(&m, p, 1, 8192, 64).unwrap();
        assert!(sys.fits(&m, 1, 8192));
    }

    #[test]
    fn no_sku_error_is_informative() {
        let m = ModelConfig::llama3_405b();
        let p = Precision::mxfp4_inference();
        let err = RpuSystem::with_optimal_memory(&m, p, 1, 8192, 4).unwrap_err();
        assert!(err.to_string().contains("MiB per core"));
    }

    #[test]
    fn decode_step_runs_for_small_model() {
        let m = ModelConfig::llama3_8b();
        let p = Precision::mxfp4_inference();
        let sys = RpuSystem::with_optimal_memory(&m, p, 1, 4096, 64).unwrap();
        let r = sys.decode_step(&m, 1, 4096).unwrap();
        assert!(r.total_time_s > 0.0);
        // Throughput consistency.
        let tps = sys.tokens_per_second(&m, 1, 4096).unwrap();
        assert!((tps - 1.0 / r.total_time_s).abs() / tps < 1e-9);
    }

    #[test]
    fn invalid_arch_propagates() {
        let e = RpuSystem::build(0, HbmCoConfig::candidate(), Precision::mxfp4_inference())
            .unwrap_err();
        assert!(matches!(e, BuildError::Arch(_)));
    }
}
