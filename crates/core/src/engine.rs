//! Deterministic parallel sweep engine for the experiment suite.
//!
//! Every paper figure is a sweep over an independent grid — (rate ×
//! policy), (model × batch), (model × CU count) — so regenerating the
//! evaluation is embarrassingly parallel. [`Engine::par_map`] fans a
//! slice of grid points out over [`std::thread::scope`] workers (no
//! external dependencies, no global thread pool) and **index-stamps**
//! every result: each worker tags what it computes with the input's
//! position and the engine reassembles the output in input order, so
//! the returned `Vec` is byte-for-byte independent of thread
//! interleaving. A deterministic per-point function therefore yields a
//! deterministic sweep at any job count — `jobs = 8` produces exactly
//! the bytes `jobs = 1` does, just sooner.
//!
//! [`grid`] builds the row-major cross product two nested sweep loops
//! used to walk, so a sequential
//! `for a in &xs { for b in &ys { ... } }` ports to
//! `engine.par_map(&grid(&xs, &ys), ...)` with the same result order.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic parallel executor with a fixed worker budget.
///
/// # Examples
///
/// ```
/// use rpu_core::engine::{grid, Engine};
///
/// let points = grid(&[1u32, 2], &["a", "b"]);
/// let seq = Engine::sequential().par_map(&points, |i, p| (i, *p));
/// let par = Engine::new(8).par_map(&points, |i, p| (i, *p));
/// // Same bytes at any job count: results come back in input order.
/// assert_eq!(seq, par);
/// assert_eq!(points[1], (1, "b"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Engine {
    jobs: usize,
}

impl Default for Engine {
    /// The sequential engine (`jobs = 1`).
    fn default() -> Self {
        Self::sequential()
    }
}

impl Engine {
    /// An engine running at most `jobs` grid points concurrently.
    /// `jobs = 0` is clamped to 1.
    #[must_use]
    pub fn new(jobs: usize) -> Self {
        Self { jobs: jobs.max(1) }
    }

    /// The single-threaded engine: runs every point inline on the
    /// caller's thread, in input order. The reference the differential
    /// suite compares parallel runs against.
    #[must_use]
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// The configured concurrency.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, running up to [`Engine::jobs`] points
    /// concurrently, and returns the results **in input order**.
    ///
    /// `f` receives each item's index alongside the item. Workers claim
    /// indices from a shared atomic cursor (dynamic load balancing —
    /// grid points like "grow the fleet until the SLO holds" vary
    /// wildly in cost) and stamp every result with its index, so the
    /// output order never depends on which worker finished first. A
    /// panic in any point propagates to the caller after the scope
    /// joins.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut stamped: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let i = cursor.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            done.push((i, f(i, &items[i])));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| match h.join() {
                    Ok(done) => done,
                    Err(panic) => std::panic::resume_unwind(panic),
                })
                .collect()
        });
        stamped.sort_unstable_by_key(|&(i, _)| i);
        stamped.into_iter().map(|(_, r)| r).collect()
    }

    /// [`Engine::par_map`] with a head start: `partial[i] = Some(r)`
    /// marks point `i` as already computed (from a checkpoint of an
    /// interrupted sweep), and only the `None` points run. The result
    /// is identical to a full `par_map` for a deterministic `f` — the
    /// resumable sweep entry point the checkpoint layer builds on.
    ///
    /// `partial` may be shorter than `items` (missing tail entries are
    /// treated as not yet computed); entries past `items.len()` are
    /// ignored.
    pub fn par_map_resume<T, R, F>(&self, items: &[T], mut partial: Vec<Option<R>>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let n = items.len();
        partial.truncate(n);
        partial.resize_with(n, || None);
        let missing: Vec<usize> = partial
            .iter()
            .enumerate()
            .filter(|(_, r)| r.is_none())
            .map(|(i, _)| i)
            .collect();
        let fresh = self.par_map(&missing, |_, &i| (i, f(i, &items[i])));
        for (i, r) in fresh {
            partial[i] = Some(r);
        }
        partial
            .into_iter()
            .map(|r| r.expect("every point computed or resumed"))
            .collect()
    }
}

/// The row-major cross product of two sweep axes: `grid(&xs, &ys)`
/// enumerates `(x, y)` exactly as `for x in &xs { for y in &ys }`
/// would, so porting a nested sweep loop onto [`Engine::par_map`]
/// preserves its result order.
#[must_use]
pub fn grid<A: Clone, B: Clone>(xs: &[A], ys: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(xs.len() * ys.len());
    for x in xs {
        for y in ys {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn grid_is_row_major() {
        let g = grid(&[1, 2, 3], &['a', 'b']);
        assert_eq!(
            g,
            vec![(1, 'a'), (1, 'b'), (2, 'a'), (2, 'b'), (3, 'a'), (3, 'b')]
        );
        assert!(grid::<u32, u32>(&[], &[1]).is_empty());
    }

    #[test]
    fn par_map_preserves_input_order_at_every_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 8, 64] {
            let got = Engine::new(jobs).par_map(&items, |_, &x| x * x);
            assert_eq!(got, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn par_map_passes_the_item_index() {
        let items = ["a", "b", "c"];
        let got = Engine::new(2).par_map(&items, |i, s| format!("{i}{s}"));
        assert_eq!(got, vec!["0a", "1b", "2c"]);
    }

    #[test]
    fn par_map_runs_every_item_exactly_once() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..100).collect();
        let got = Engine::new(7).par_map(&items, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(got.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Engine::new(0).jobs(), 1);
        assert_eq!(Engine::new(0).par_map(&[1, 2], |_, &x| x), vec![1, 2]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let got: Vec<u32> = Engine::new(8).par_map(&[] as &[u32], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_count_never_exceeds_item_count() {
        // One item with jobs = 8 must take the inline path (observable
        // as the closure running on the caller's thread).
        let caller = std::thread::current().id();
        let got = Engine::new(8).par_map(&[5u32], |_, &x| {
            assert_eq!(std::thread::current().id(), caller);
            x + 1
        });
        assert_eq!(got, vec![6]);
    }

    #[test]
    fn par_map_resume_equals_par_map_for_any_head_start() {
        let items: Vec<u64> = (0..41).collect();
        let expect = Engine::sequential().par_map(&items, |_, &x| x * 3 + 1);
        for done in [0usize, 1, 20, 40, 41] {
            let partial: Vec<Option<u64>> = items
                .iter()
                .enumerate()
                .map(|(i, &x)| (i < done).then(|| x * 3 + 1))
                .collect();
            let got = Engine::new(4).par_map_resume(&items, partial, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "done = {done}");
        }
    }

    #[test]
    fn par_map_resume_only_computes_the_missing_points() {
        let calls = AtomicUsize::new(0);
        let items: Vec<u32> = (0..30).collect();
        // Every third point is already done (and marked, so a recompute
        // would be visible in the output).
        let partial: Vec<Option<u32>> = items
            .iter()
            .map(|&x| (x % 3 == 0).then_some(x + 1000))
            .collect();
        let got = Engine::new(3).par_map_resume(&items, partial, |_, &x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 20);
        for (i, &r) in got.iter().enumerate() {
            let expect = if i % 3 == 0 {
                i as u32 + 1000
            } else {
                i as u32
            };
            assert_eq!(r, expect);
        }
    }

    #[test]
    fn par_map_resume_tolerates_short_and_long_partials() {
        let items: Vec<u32> = (0..5).collect();
        let short = Engine::new(2).par_map_resume(&items, vec![Some(9)], |_, &x| x);
        assert_eq!(short, vec![9, 1, 2, 3, 4]);
        let long = Engine::new(2).par_map_resume(
            &items,
            (0..9).map(|i| Some(i * 10)).collect(),
            |_, &x| x,
        );
        assert_eq!(long, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    #[should_panic(expected = "point exploded")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..16).collect();
        let _ = Engine::new(4).par_map(&items, |_, &x| {
            assert!(x != 7, "point exploded");
            x
        });
    }
}
