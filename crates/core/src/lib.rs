//! RPU system composition, design-space exploration and the paper's
//! experiments.
//!
//! This crate is the top of the reproduction stack: it glues the HBM-CO
//! memory model, the RPU architecture model, the ISA compiler, the
//! event-driven simulator and the GPU baseline into a single API —
//! [`RpuSystem`] — and provides one module per paper figure under
//! [`experiments`], each returning both structured results (for tests
//! and benches) and printable tables (for the `repro` binary).
//!
//! # Examples
//!
//! ```
//! use rpu_core::RpuSystem;
//! use rpu_models::{ModelConfig, Precision};
//!
//! let model = ModelConfig::llama3_8b();
//! let prec = Precision::mxfp4_inference();
//! let sys = RpuSystem::with_optimal_memory(&model, prec, 1, 8192, 64).unwrap();
//! let report = sys.decode_step(&model, 1, 8192).unwrap();
//! // Fast thinking: well under a millisecond per token for 8B.
//! assert!(report.total_time_s < 1e-3);
//! ```

#![warn(missing_docs)]

mod cost;
pub mod deployment;
mod dse;
pub mod engine;
pub mod experiments;
pub mod serving;
mod system;

pub use cost::{system_cost, CostBreakdown, CostModel};
pub use deployment::{Deployment, ReasoningTask, TurnLatency, INTERACTION_THRESHOLD_S};
pub use dse::{optimal_memory, required_bytes_per_core};
pub use serving::{sweep_cost_model, sweep_latency_lut, PrefillBackend, RpuCostModel};
pub use system::{BuildError, RpuSystem};
