//! Extension (§VIII future directions): breaking the strong-scaling
//! plateau with a hierarchical two-level ring.
//!
//! The paper observes that "beyond these scales, performance plateaus as
//! broadcasting the activation becomes the bottleneck" and proposes
//! interconnecting ring stations with a second-level ring. This
//! experiment implements that proposal and quantifies the recovered
//! scaling headroom.

use crate::RpuSystem;
use rpu_models::{ModelConfig, Precision};
use rpu_sim::SimConfig;
use rpu_util::table::{Cell, Table};

/// One scale point comparing flat and hierarchical rings.
#[derive(Debug, Clone, Copy)]
pub struct ScaleoutPoint {
    /// CU count.
    pub num_cus: u32,
    /// Token latency with the flat outer ring, seconds.
    pub flat_s: f64,
    /// Token latency with the two-level ring, seconds.
    pub two_level_s: f64,
}

impl ScaleoutPoint {
    /// Latency recovered by the hierarchical ring.
    #[must_use]
    pub fn gain(&self) -> f64 {
        self.flat_s / self.two_level_s
    }
}

/// Results of the scale-out extension study.
#[derive(Debug, Clone)]
pub struct ExtScaleout {
    /// Model name.
    pub model: &'static str,
    /// Scale points, ascending CU count.
    pub points: Vec<ScaleoutPoint>,
}

/// CU counts swept (the plateau region of Fig. 11).
pub const CU_SWEEP: [u32; 5] = [128, 256, 384, 512, 640];

/// Runs the study on Llama3-405B at batch 1 / 8k.
#[must_use]
pub fn run() -> ExtScaleout {
    let model = ModelConfig::llama3_405b();
    let prec = Precision::mxfp4_inference();
    let seq = 8192;
    let mut points = Vec::new();
    for &cus in &CU_SWEEP {
        let Ok(mut sys) = RpuSystem::with_optimal_memory(&model, prec, 1, seq, cus) else {
            continue;
        };
        let flat_s = sys.token_latency(&model, 1, seq).expect("flat simulates");
        sys.sim_config = SimConfig {
            two_level_ring: true,
            ..SimConfig::default()
        };
        let two_level_s = sys
            .token_latency(&model, 1, seq)
            .expect("two-level simulates");
        points.push(ScaleoutPoint {
            num_cus: cus,
            flat_s,
            two_level_s,
        });
    }
    ExtScaleout {
        model: model.name,
        points,
    }
}

impl ExtScaleout {
    /// Renders the comparison.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension (§VIII): flat vs two-level ring, Llama3-405B BS=1 8K",
            &["CUs", "flat ms/tok", "two-level ms/tok", "gain"],
        );
        for p in &self.points {
            t.push_row(vec![
                Cell::int(i64::from(p.num_cus)),
                Cell::num(p.flat_s * 1e3, 3),
                Cell::num(p.two_level_s * 1e3, 3),
                Cell::str(format!("{:.2}x", p.gain())),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_ring_always_wins_in_plateau_region() {
        let e = run();
        assert!(e.points.len() >= 4);
        for p in &e.points {
            assert!(p.gain() > 1.0, "{} CUs: gain {}", p.num_cus, p.gain());
        }
    }

    #[test]
    fn gain_grows_with_scale() {
        // The broadcast share of latency grows with CU count, so the
        // hierarchical ring recovers more at larger scales.
        let e = run();
        let first = e.points.first().unwrap().gain();
        let last = e.points.last().unwrap().gain();
        assert!(last > first, "gain {first} -> {last} must grow");
    }

    #[test]
    fn two_level_extends_useful_scaling() {
        // The flat ring's marginal benefit from 512 -> 640 CUs is small;
        // the hierarchical ring keeps more of it.
        let e = run();
        let p512 = e.points.iter().find(|p| p.num_cus == 512).unwrap();
        let p640 = e.points.iter().find(|p| p.num_cus == 640).unwrap();
        let flat_gain = p512.flat_s / p640.flat_s;
        let two_gain = p512.two_level_s / p640.two_level_s;
        assert!(
            two_gain >= flat_gain * 0.99,
            "scaling 512->640: two-level {two_gain} vs flat {flat_gain}"
        );
    }

    #[test]
    fn table_renders() {
        let e = run();
        assert_eq!(e.table().len(), e.points.len());
    }
}
