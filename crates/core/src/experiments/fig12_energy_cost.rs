//! Fig. 12: energy per inference and normalised system cost for
//! Llama3-405B at batch size 1, swept over CU counts with adaptive
//! HBM-CO SKU selection, against HBM3e-class memory and a 4×/8×H100
//! baseline.

use crate::dse::optimal_memory;
use crate::{system_cost, CostBreakdown, CostModel, RpuSystem};
use rpu_arch::RpuConfig;
use rpu_gpu::{GpuSpec, GpuSystem};
use rpu_hbmco::HbmCoConfig;
use rpu_models::{DecodeWorkload, ModelConfig, Precision};
use rpu_util::table::{Cell, Table};

/// One CU-count sample.
#[derive(Debug, Clone)]
pub struct ScaleSample {
    /// CU count.
    pub num_cus: u32,
    /// Optimal SKU BW/Cap at this scale, 1/s.
    pub bw_per_cap: f64,
    /// Energy per inference: memory device, joules.
    pub epi_mem_j: f64,
    /// Energy per inference: compute (TMAC + VOPs + decode + SRAM), joules.
    pub epi_comp_j: f64,
    /// Energy per inference: network, joules.
    pub epi_net_j: f64,
    /// Energy per inference with an HBM3e-class SKU instead, joules.
    pub epi_hbm3e_j: f64,
    /// System cost breakdown (HBM3e-module units).
    pub cost: CostBreakdown,
    /// Cost with fixed HBM3e-class memory (HBM3e-module units).
    pub cost_hbm3e: f64,
}

impl ScaleSample {
    /// Total energy per inference, joules.
    #[must_use]
    pub fn epi_j(&self) -> f64 {
        self.epi_mem_j + self.epi_comp_j + self.epi_net_j
    }
}

/// Results for Fig. 12.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// Samples, ascending CU count.
    pub samples: Vec<ScaleSample>,
    /// Measured-equivalent 4×H100 energy per inference, joules.
    pub h100_epi_j: f64,
    /// 8×H100 DGX cost, HBM3e-module units.
    pub dgx_cost: f64,
}

/// CU counts swept (paper x-axis: 36 … 484).
pub const CU_SWEEP: [u32; 8] = [36, 100, 164, 228, 292, 356, 420, 484];

/// The HBM3e-BW/Cap comparison SKU: full ranks/banks/sub-arrays.
#[must_use]
pub fn hbm3e_class_sku() -> HbmCoConfig {
    HbmCoConfig {
        ranks: 4,
        banks_per_group: 4,
        ..HbmCoConfig::candidate()
    }
}

fn epi_buckets(sys: &RpuSystem, model: &ModelConfig, seq: u32) -> Option<(f64, f64, f64)> {
    let report = sys.decode_step(model, 1, seq).ok()?;
    let cores = f64::from(report.plan.num_cus) * f64::from(report.plan.cores_per_cu);
    let e = &report.energy;
    Some((
        e.mem_device * cores,
        (e.tmac + e.vops + e.decode + e.sram) * cores,
        e.net * cores,
    ))
}

/// Runs the Fig. 12 sweep.
#[must_use]
pub fn run() -> Fig12 {
    let model = ModelConfig::llama3_405b();
    let prec = Precision::mxfp4_inference();
    let seq = 8192;
    let cost_model = CostModel::paper();

    let mut samples = Vec::new();
    for &cus in &CU_SWEEP {
        let Some(sku) = optimal_memory(&model, prec, 1, seq, cus) else {
            continue;
        };
        let sys = RpuSystem::build(cus, sku.config, prec).expect("valid system");
        let Some((epi_mem_j, epi_comp_j, epi_net_j)) = epi_buckets(&sys, &model, seq) else {
            continue;
        };
        // HBM3e-class comparison at the same scale.
        let sys3e = RpuSystem::build(cus, hbm3e_class_sku(), prec).expect("valid system");
        let epi_hbm3e_j = epi_buckets(&sys3e, &model, seq)
            .map(|(m, c, n)| m + c + n)
            .unwrap_or(f64::NAN);
        let cost = system_cost(&sys.arch, &cost_model);
        let cost_hbm3e = system_cost(
            &RpuConfig::new(cus, hbm3e_class_sku()).expect("valid"),
            &cost_model,
        )
        .total();
        samples.push(ScaleSample {
            num_cus: cus,
            bw_per_cap: sku.bw_per_cap,
            epi_mem_j,
            epi_comp_j,
            epi_net_j,
            epi_hbm3e_j,
            cost,
            cost_hbm3e,
        });
    }

    let gpus = GpuSystem::new(GpuSpec::h100_sxm(), 4);
    let wl = DecodeWorkload::new(&model, Precision::gpu_w4a16(), 1, seq);
    Fig12 {
        samples,
        h100_epi_j: gpus.decode_step_energy_j(&wl),
        dgx_cost: 8.0 * cost_model.h100_module,
    }
}

impl Fig12 {
    /// The cost normaliser: the smallest valid configuration's total.
    #[must_use]
    pub fn cost_norm(&self) -> f64 {
        self.samples.first().map_or(1.0, |s| s.cost.total())
    }

    /// Renders both panels.
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            "Fig. 12 (top): energy per inference, Llama3-405B BS=1",
            &[
                "CUs",
                "BW/Cap",
                "EPI mem (J)",
                "EPI comp (J)",
                "EPI net (J)",
                "EPI (J)",
                "EPI w/ HBM3e (J)",
            ],
        );
        for s in &self.samples {
            t1.push_row(vec![
                Cell::int(i64::from(s.num_cus)),
                Cell::num(s.bw_per_cap, 0),
                Cell::num(s.epi_mem_j, 2),
                Cell::num(s.epi_comp_j, 2),
                Cell::num(s.epi_net_j, 2),
                Cell::num(s.epi_j(), 2),
                Cell::num(s.epi_hbm3e_j, 2),
            ]);
        }
        t1.push_row(vec![
            Cell::str("4xH100"),
            Cell::str(""),
            Cell::str(""),
            Cell::str(""),
            Cell::str(""),
            Cell::num(self.h100_epi_j, 2),
            Cell::str(""),
        ]);
        let norm = self.cost_norm();
        let mut t2 = Table::new(
            "Fig. 12 (bottom): normalised system cost",
            &[
                "CUs",
                "silicon",
                "memory",
                "substrate",
                "PCB",
                "total",
                "w/ HBM3e",
            ],
        );
        for s in &self.samples {
            t2.push_row(vec![
                Cell::int(i64::from(s.num_cus)),
                Cell::num(s.cost.silicon / norm, 2),
                Cell::num(s.cost.memory / norm, 2),
                Cell::num(s.cost.substrate / norm, 2),
                Cell::num(s.cost.pcb / norm, 2),
                Cell::num(s.cost.total() / norm, 2),
                Cell::num(s.cost_hbm3e / norm, 2),
            ]);
        }
        t2.push_row(vec![
            Cell::str("8xH100"),
            Cell::str(""),
            Cell::str(""),
            Cell::str(""),
            Cell::str(""),
            Cell::num(self.dgx_cost / norm, 2),
            Cell::str(""),
        ]);
        vec![t1, t2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_dominates_epi() {
        let f = run();
        for s in &f.samples {
            assert!(
                s.epi_mem_j / s.epi_j() > 0.5,
                "CUs {}: mem share {}",
                s.num_cus,
                s.epi_mem_j / s.epi_j()
            );
        }
    }

    #[test]
    fn epi_improves_with_scale_then_saturates() {
        // Paper: energy per inference improves steadily with scale until
        // ~268 CUs where the highest BW/Cap SKU is reached.
        let f = run();
        let first = f.samples.first().unwrap();
        let last = f.samples.last().unwrap();
        assert!(last.epi_j() < first.epi_j());
        // Once the best SKU is selected, further scale barely helps.
        let best_bwcap = f.samples.iter().map(|s| s.bw_per_cap).fold(0.0, f64::max);
        let saturated: Vec<&ScaleSample> = f
            .samples
            .iter()
            .filter(|s| s.bw_per_cap == best_bwcap)
            .collect();
        if saturated.len() >= 2 {
            let a = saturated[0].epi_j();
            let b = saturated.last().unwrap().epi_j();
            assert!((a - b).abs() / a < 0.25, "saturated EPI drift {a} vs {b}");
        }
    }

    #[test]
    fn hbmco_beats_hbm3e_energy_by_about_2x() {
        // §VIII: up to 2.2x lower EPI than HBM3e BW/Cap memory.
        let f = run();
        let best = f
            .samples
            .iter()
            .map(|s| s.epi_hbm3e_j / s.epi_j())
            .fold(0.0, f64::max);
        assert!(best > 1.5 && best < 3.0, "max EPI ratio {best}");
    }

    #[test]
    fn rpu_epi_lower_than_4xh100() {
        // §VIII: 6.5x lower EPI than a measured 4xH100.
        let f = run();
        let best_epi = f
            .samples
            .iter()
            .map(ScaleSample::epi_j)
            .fold(f64::INFINITY, f64::min);
        let ratio = f.h100_epi_j / best_epi;
        assert!(ratio > 3.0 && ratio < 15.0, "EPI ratio vs 4xH100 {ratio}");
    }

    #[test]
    fn silicon_cost_linear_memory_sublinear() {
        let f = run();
        let a = &f.samples[0];
        let b = f.samples.last().unwrap();
        let cu_ratio = f64::from(b.num_cus) / f64::from(a.num_cus);
        let silicon_ratio = b.cost.silicon / a.cost.silicon;
        let memory_ratio = b.cost.memory / a.cost.memory;
        assert!((silicon_ratio - cu_ratio).abs() / cu_ratio < 1e-9);
        assert!(memory_ratio < cu_ratio, "memory must grow sublinearly");
    }

    #[test]
    fn hbmco_cuts_system_cost_an_order_of_magnitude() {
        // §VIII: up to 12.4x cheaper than fixed HBM3e memory.
        let f = run();
        let best = f
            .samples
            .iter()
            .map(|s| s.cost_hbm3e / s.cost.total())
            .fold(0.0, f64::max);
        assert!(best > 8.0 && best < 16.0, "max cost ratio {best}");
    }

    #[test]
    fn large_rpu_cost_comparable_to_dgx() {
        let f = run();
        let last = f.samples.last().unwrap();
        let ratio = last.cost.total() / f.dgx_cost;
        assert!(ratio > 0.2 && ratio < 3.0, "RPU/DGX cost ratio {ratio}");
    }

    #[test]
    fn bw_per_cap_monotonically_rises_with_scale() {
        let f = run();
        for w in f.samples.windows(2) {
            assert!(w[1].bw_per_cap >= w[0].bw_per_cap);
        }
    }
}
