//! Fleet scale: the event core's width sweep to 1000 replicas.
//!
//! The fleet sweep asks a capacity question at planner scale (a
//! handful of replicas); this sweep asks the *event core* question
//! behind it: **does the calendar-queue driver keep its per-event cost
//! flat as the fleet gets wide?** It drives the same analytic-cost
//! serving stack across fleets of 8 to 1000 replicas at a constant
//! per-replica offered load (~95% decode utilisation), and reports
//! events processed, events per request, peak slab occupancy and the
//! fleet-report digest at every width.
//!
//! The registry run keeps the request count small (a fixed number of
//! requests *per replica*) so the sweep stays cheap enough for the
//! golden/differential gates that execute every registry target; the
//! `fleet_scale` bench in `rpu-bench` reuses [`scale_workload`] and
//! [`run_point`] at 10M requests to time the full-scale run and record
//! `BENCH_fleet_scale.json`.
//!
//! The digest column is the determinism pin: the golden snapshot holds
//! the exact [`rpu_serve::ReportDigest`] of every width, so any change
//! to routing order, slab reuse or telemetry accounting at 1000
//! replicas shows up as a byte diff — at every engine job count.

use crate::engine::Engine;
use rpu_serve::{
    digest_fleet_report, AnalyticCostModel, CostModel, Fifo, FleetBuilder, ReportDigest,
    RoundRobin, SchedulingPolicy, ServeConfig, Workload,
};
use rpu_util::table::{Cell, Table};

/// Fleet widths swept, ascending. The top rung is the paper-scale
/// target: 1000 replicas behind one router.
pub const WIDTH_SWEEP: [u32; 4] = [8, 64, 256, 1000];

/// Requests per replica in the registry sweep — enough churn that
/// every replica's slab sees reuse, small enough that the 1000-replica
/// rung stays test-cheap.
pub const REQUESTS_PER_REPLICA: u32 = 8;

/// Offered load per replica, requests/second. Saturating-but-stable
/// on [`AnalyticCostModel::small`] with 256/16 token requests: decode
/// stays ~fully busy and queues run deep enough to keep batches full,
/// but the backlog does not grow without bound — at an *overloaded*
/// rate a long run's per-replica queue grows linearly and admission
/// cost with it, which is a property of the workload, not the event
/// core this sweep measures.
pub const RATE_PER_REPLICA_RPS: f64 = 280.0;

/// Serving batch-size cap per replica.
pub const MAX_BATCH: u32 = 8;

/// The swept workload at one fleet width: constant per-replica load,
/// width-dependent seed so no two rungs share an arrival tape.
#[must_use]
pub fn scale_workload(replicas: u32, num_requests: u32) -> Workload {
    Workload {
        seed: 0x5CA1E ^ u64::from(replicas),
        ..Workload::poisson(
            RATE_PER_REPLICA_RPS * f64::from(replicas),
            256,
            16,
            num_requests,
        )
    }
}

/// The serving config every swept replica runs — shared with the
/// `fleet_scale` bench so the timed 10M-request run exercises exactly
/// the registry sweep's machine shape.
#[must_use]
pub fn scale_config() -> ServeConfig {
    ServeConfig {
        max_batch: MAX_BATCH,
        ..ServeConfig::default()
    }
}

/// One fleet width's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalePoint {
    /// Fleet width.
    pub replicas: u32,
    /// Requests served.
    pub requests: u32,
    /// Discrete events the driver processed.
    pub events: u64,
    /// Highest number of simultaneously resident requests any single
    /// replica's slab ever held.
    pub peak_slab_occupancy: u32,
    /// Fleet decode utilisation over the run.
    pub fleet_utilization: f64,
    /// Decode-load imbalance (max/mean) across replicas.
    pub imbalance: f64,
    /// Digest of the full fleet report — the determinism pin.
    pub digest: ReportDigest,
}

/// Runs one width to completion through the calendar-queue driver and
/// summarises it. Deterministic per `(replicas, workload)`; the bench
/// wraps this same function in a timer at 10M requests.
#[must_use]
pub fn run_point(replicas: u32, wl: &Workload) -> ScalePoint {
    let mut fleet = FleetBuilder::new()
        .group(
            replicas as usize,
            &scale_config(),
            || Box::new(AnalyticCostModel::small()) as Box<dyn CostModel>,
            || Box::new(Fifo) as Box<dyn SchedulingPolicy>,
        )
        .build();
    let mut router = RoundRobin::new();
    let mut run = fleet.start(wl);
    while run.step(&mut fleet, &mut router) {}
    let events = run.events();
    let peak = run.peak_slab_occupancy();
    let report = run.into_report();
    ScalePoint {
        replicas,
        requests: wl.num_requests,
        events,
        peak_slab_occupancy: peak,
        fleet_utilization: report.fleet_utilization(),
        imbalance: report.imbalance(),
        digest: digest_fleet_report(&report),
    }
}

/// Results of the scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetScale {
    /// Samples, ascending fleet width.
    pub points: Vec<ScalePoint>,
}

/// Runs the sweep sequentially.
#[must_use]
pub fn run() -> FleetScale {
    run_with(&Engine::sequential())
}

/// Runs the sweep with each fleet width as one engine grid point. The
/// widths are independent runs, so the engine fans them out; the
/// digests pin that job count never leaks into any rung's report.
#[must_use]
pub fn run_with(engine: &Engine) -> FleetScale {
    let points = engine.par_map(&WIDTH_SWEEP, |_, &replicas| {
        let wl = scale_workload(replicas, replicas * REQUESTS_PER_REPLICA);
        run_point(replicas, &wl)
    });
    FleetScale { points }
}

impl FleetScale {
    /// The sample at one fleet width.
    ///
    /// # Panics
    ///
    /// Panics if the width is not a sweep rung.
    #[must_use]
    pub fn point(&self, replicas: u32) -> &ScalePoint {
        self.points
            .iter()
            .find(|p| p.replicas == replicas)
            .expect("width is a sweep rung")
    }

    /// Renders the sweep as one table: a row per fleet width with the
    /// event counts, occupancy and the report digest.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Fleet scale: calendar event core, {} req/s per replica, batch {MAX_BATCH}, \
                 {REQUESTS_PER_REPLICA} requests per replica",
                RATE_PER_REPLICA_RPS
            ),
            &[
                "replicas",
                "requests",
                "events",
                "events/req",
                "peak slab",
                "fleet util",
                "imbalance",
                "digest",
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                Cell::int(i64::from(p.replicas)),
                Cell::int(i64::from(p.requests)),
                Cell::int(p.events as i64),
                Cell::num(p.events as f64 / f64::from(p.requests), 2),
                Cell::int(i64::from(p.peak_slab_occupancy)),
                Cell::num(p.fleet_utilization, 3),
                Cell::num(p.imbalance, 2),
                Cell::str(p.digest.to_string()),
            ]);
        }
        t
    }
}

/// Per-subsystem hot-path counters behind the `repro --counters`
/// probe: the 64-replica rung run once per built-in router, one line
/// each with the [`rpu_serve::PerfCounters`] the fleet driver kept and
/// the reporting path's scratch-buffer reuse hits.
///
/// The load is the sweep's own saturating-but-stable point, so the
/// join-shortest-queue argmin always has KV headroom and
/// `route_scan_fallbacks` must read 0 for every built-in router — the
/// line CI greps to prove the `O(R)` route scans stayed retired.
#[must_use]
pub fn counters_report() -> String {
    use rpu_serve::{JoinShortestQueue, LeastKvLoad, Router, SessionAffinity};

    const REPLICAS: u32 = 64;
    const REQUESTS: u32 = REPLICAS * 50;

    type MkRouter = fn() -> Box<dyn Router>;
    let routers: [(&str, MkRouter); 4] = [
        ("round_robin", || Box::new(RoundRobin::new())),
        ("jsq", || Box::new(JoinShortestQueue)),
        ("least_kv", || Box::new(LeastKvLoad)),
        ("affinity", || Box::new(SessionAffinity::new())),
    ];
    let wl = scale_workload(REPLICAS, REQUESTS);
    let mut out = String::new();
    for (name, mk) in routers {
        let mut fleet = FleetBuilder::new()
            .group(
                REPLICAS as usize,
                &scale_config(),
                || Box::new(AnalyticCostModel::small()) as Box<dyn CostModel>,
                || Box::new(Fifo) as Box<dyn SchedulingPolicy>,
            )
            .build();
        let mut router = mk();
        let mut run = fleet.start(&wl);
        while run.step(&mut fleet, router.as_mut()) {}
        let c = run.perf_counters();
        let hits_before = rpu_serve::scratch_reuse_hits();
        // Latency percentiles are computed when the SLO summary is
        // built — that is the selection-over-scratch path whose reuse
        // the counter watches.
        let _ = run.into_report().multi_class(&wl.classes);
        let scratch_hits = rpu_serve::scratch_reuse_hits() - hits_before;
        out.push_str(&format!(
            "counters[{name}]: replicas={REPLICAS} requests={REQUESTS} \
             route_calls={} route_index_hits={} route_scan_fallbacks={} \
             index_leaf_updates={} index_marks={} wheel_ops={} \
             scratch_reuse_hits={scratch_hits}\n",
            c.route_calls,
            c.route_index_hits,
            c.route_scan_fallbacks,
            c.index_leaf_updates,
            c.index_marks,
            c.wheel_ops,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The sweep is deterministic; run it once and share it across the
    /// suite (the reproducibility test still runs its own fresh copies).
    fn sweep() -> &'static FleetScale {
        static CACHE: OnceLock<FleetScale> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn sweeps_every_width_to_completion() {
        let s = sweep();
        assert_eq!(s.points.len(), WIDTH_SWEEP.len());
        for (&w, p) in WIDTH_SWEEP.iter().zip(&s.points) {
            assert_eq!(p.replicas, w);
            assert_eq!(p.requests, w * REQUESTS_PER_REPLICA);
            // Every request costs at least an enqueue event plus one
            // scheduling step; completed work means a busy fleet.
            assert!(p.events > u64::from(p.requests));
            assert!(p.peak_slab_occupancy >= 1);
            assert!(p.fleet_utilization > 0.0);
            assert!(p.imbalance >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn top_rung_reaches_a_thousand_replicas() {
        // Acceptance: the sweep's top rung really is the paper-scale
        // width, and its digest is pinned (any drift in slab reuse or
        // routing order at width 1000 must fail loudly here and in the
        // golden).
        let p = sweep().point(1000);
        assert_eq!(p.replicas, 1000);
        assert_eq!(p.requests, 8000);
        assert_eq!(
            p.digest,
            digest_fleet_report(&{
                let wl = scale_workload(1000, 8000);
                let mut fleet = FleetBuilder::new()
                    .group(
                        1000,
                        &scale_config(),
                        || Box::new(AnalyticCostModel::small()) as Box<dyn CostModel>,
                        || Box::new(Fifo) as Box<dyn SchedulingPolicy>,
                    )
                    .build();
                fleet.serve(&wl, &mut RoundRobin::new())
            })
        );
    }

    #[test]
    fn bit_reproducible_across_invocations_and_job_counts() {
        // Acceptance: digest equality between `--jobs 1` and `--jobs N`
        // at every width — the thousand-replica smoke test for the
        // engine's index-stamping.
        let a = sweep();
        assert_eq!(a, &run());
        assert_eq!(a, &run_with(&Engine::new(8)));
    }

    #[test]
    fn counters_probe_covers_every_builtin_router_with_zero_scan_fallbacks() {
        // The CI perf-counters leg greps these lines: every built-in
        // router must route entirely off the index, and the routed
        // work must actually show up in the counters.
        let report = counters_report();
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(lines.len(), 4, "one line per built-in router:\n{report}");
        for name in ["round_robin", "jsq", "least_kv", "affinity"] {
            assert!(
                lines
                    .iter()
                    .any(|l| l.starts_with(&format!("counters[{name}]"))),
                "missing router line `{name}`:\n{report}"
            );
        }
        for line in &lines {
            assert!(
                line.contains("route_scan_fallbacks=0"),
                "built-in router fell back to an O(R) scan: {line}"
            );
            assert!(
                !line.contains("route_calls=0 "),
                "probe routed nothing: {line}"
            );
            assert!(!line.contains("wheel_ops=0 "), "calendar idle: {line}");
            assert!(
                !line.ends_with("scratch_reuse_hits=0"),
                "report path reallocated per metric: {line}"
            );
        }
    }

    #[test]
    fn table_has_one_row_per_width_and_carries_digests() {
        let t = sweep().table();
        assert_eq!(t.len(), WIDTH_SWEEP.len());
        let rendered = t.to_string();
        for p in &sweep().points {
            assert!(
                rendered.contains(&p.digest.to_string()),
                "digest column missing width {}",
                p.replicas
            );
        }
    }
}
