//! Checkpointed reproduction runs: persist rendered targets mid-sweep,
//! resume later, emit bytes identical to an uninterrupted run.
//!
//! A full `repro` regeneration walks every registry target; on a slow
//! machine (or under a CI wall clock) that is the kind of run worth
//! interrupting. [`RunCheckpoint`] captures the completed prefix — each
//! target's *rendered output*, keyed by name, plus the output format —
//! in the same versioned, checksummed byte format the serving layer
//! uses for run snapshots ([`rpu_serve::snapshot`]). Because every
//! experiment is deterministic, re-rendering a missing target later
//! produces exactly the bytes it would have produced in one sitting, so
//! a checkpointed-and-resumed regeneration is byte-identical to an
//! uninterrupted one — the repro smoke job diffs the two against the
//! golden files to prove it.
//!
//! [`render_resumed`] completes a checkpoint in one parallel sweep
//! (via [`Engine::par_map_resume`], which only computes the missing
//! targets); [`advance`] makes bounded progress — at most `max_new`
//! targets, in registry order — for `--checkpoint-every`/`--halt-after`
//! style drivers that persist between batches.

use super::{render, Experiment, Format};
use crate::engine::Engine;
use rpu_serve::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Section id for the checkpoint payload. Distinct from the serving
/// run sections (1–5) so a checkpoint never thaws as a run snapshot's
/// leading section or vice versa.
const SECTION_CHECKPOINT: u8 = 64;

/// The completed prefix of a reproduction run: rendered outputs keyed
/// by target name, plus the format they were rendered in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCheckpoint {
    format: Format,
    entries: Vec<(String, String)>,
}

impl RunCheckpoint {
    /// An empty checkpoint for runs rendered in `format`.
    #[must_use]
    pub fn new(format: Format) -> Self {
        Self {
            format,
            entries: Vec::new(),
        }
    }

    /// The format every entry was rendered in.
    #[must_use]
    pub fn format(&self) -> Format {
        self.format
    }

    /// Number of completed targets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no target has completed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The rendered output recorded for `name`, if completed.
    #[must_use]
    pub fn rendered(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, body)| body.as_str())
    }

    /// Records `body` as the rendered output of `name`, replacing any
    /// prior entry for the same target.
    pub fn record(&mut self, name: &str, body: String) {
        if let Some(entry) = self.entries.iter_mut().find(|(n, _)| n == name) {
            entry.1 = body;
        } else {
            self.entries.push((name.to_string(), body));
        }
    }

    /// Serialises the checkpoint into the snapshot byte format (magic,
    /// versions, one checksummed section).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.begin_section(SECTION_CHECKPOINT);
        w.put_u8(match self.format {
            Format::Text => 0,
            Format::Json => 1,
            Format::Csv => 2,
        });
        w.put_usize(self.entries.len());
        for (name, body) in &self.entries {
            w.put_str(name);
            w.put_str(body);
        }
        w.end_section();
        w.finish()
    }

    /// Deserialises a checkpoint written by [`RunCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: corruption, truncation, version skew, or
    /// a byte stream that is a run snapshot rather than a checkpoint.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        r.begin_section(SECTION_CHECKPOINT)?;
        let format = match r.get_u8()? {
            0 => Format::Text,
            1 => Format::Json,
            2 => Format::Csv,
            _ => return Err(SnapshotError::Corrupt("bad format tag")),
        };
        let n = r.get_count(16)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_str()?;
            let body = r.get_str()?;
            entries.push((name, body));
        }
        r.end_section()?;
        if !r.is_exhausted() {
            return Err(SnapshotError::Corrupt("trailing bytes after checkpoint"));
        }
        Ok(Self { format, entries })
    }
}

/// Completes `checkpoint` over `targets` in one resumable parallel
/// sweep and returns every target's rendered output, in target order.
///
/// Already-checkpointed targets are *not* re-run — their recorded
/// bytes are returned as-is ([`Engine::par_map_resume`] skips them);
/// missing targets run with `inner` grid parallelism while `outer`
/// fans the targets themselves out. For deterministic experiments the
/// returned outputs are byte-identical to an uninterrupted
/// [`render`] sweep. All fresh results are folded back into
/// `checkpoint`.
pub fn render_resumed(
    targets: &[&dyn Experiment],
    outer: &Engine,
    inner: &Engine,
    checkpoint: &mut RunCheckpoint,
) -> Vec<String> {
    let format = checkpoint.format();
    let partial: Vec<Option<String>> = targets
        .iter()
        .map(|t| checkpoint.rendered(t.name()).map(String::from))
        .collect();
    let bodies = outer.par_map_resume(targets, partial, |_, t| render(*t, &t.run(inner), format));
    for (t, body) in targets.iter().zip(&bodies) {
        checkpoint.record(t.name(), body.clone());
    }
    bodies
}

/// Runs at most `max_new` not-yet-checkpointed targets, in target
/// order, folding their rendered outputs into `checkpoint`. Returns
/// how many targets actually ran (less than `max_new` once the sweep
/// nears completion; zero when the checkpoint already covers every
/// target). Drivers persist the checkpoint between calls to get
/// `--checkpoint-every` semantics.
pub fn advance(
    targets: &[&dyn Experiment],
    engine: &Engine,
    checkpoint: &mut RunCheckpoint,
    max_new: usize,
) -> usize {
    let format = checkpoint.format();
    let mut fresh = 0;
    for t in targets {
        if fresh >= max_new {
            break;
        }
        if checkpoint.rendered(t.name()).is_some() {
            continue;
        }
        checkpoint.record(t.name(), render(*t, &t.run(engine), format));
        fresh += 1;
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{find, registry};

    fn cheap_targets() -> Vec<&'static dyn Experiment> {
        // Closed-form figures: fast enough to run several times per test.
        ["fig4", "fig3", "design-points"]
            .iter()
            .map(|n| find(n).expect("registry target"))
            .collect()
    }

    #[test]
    fn checkpoint_bytes_round_trip() {
        let mut ck = RunCheckpoint::new(Format::Csv);
        ck.record("fig4", "alpha\n".into());
        ck.record("fig9", "beta — émis\n".into());
        let thawed = RunCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(thawed, ck);
        assert_eq!(thawed.format(), Format::Csv);
        assert_eq!(thawed.rendered("fig9"), Some("beta — émis\n"));
        assert_eq!(thawed.rendered("fig1"), None);
        assert_eq!(thawed.len(), 2);
    }

    #[test]
    fn empty_checkpoint_round_trips() {
        let ck = RunCheckpoint::new(Format::Text);
        let thawed = RunCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert!(thawed.is_empty());
        assert_eq!(thawed.format(), Format::Text);
    }

    #[test]
    fn corrupt_checkpoints_are_rejected() {
        let mut ck = RunCheckpoint::new(Format::Text);
        ck.record("fig4", "body".into());
        let bytes = ck.to_bytes();
        for i in 0..bytes.len() {
            let mut evil = bytes.clone();
            evil[i] ^= 0xFF;
            assert!(
                RunCheckpoint::from_bytes(&evil).is_err(),
                "flipping checkpoint byte {i} was accepted"
            );
        }
        for cut in 0..bytes.len() {
            assert!(RunCheckpoint::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn record_replaces_by_name() {
        let mut ck = RunCheckpoint::new(Format::Text);
        ck.record("fig4", "old".into());
        ck.record("fig4", "new".into());
        assert_eq!(ck.len(), 1);
        assert_eq!(ck.rendered("fig4"), Some("new"));
    }

    #[test]
    fn resumed_render_is_byte_identical_to_uninterrupted() {
        let targets = cheap_targets();
        let seq = Engine::sequential();
        let uninterrupted: Vec<String> = targets
            .iter()
            .map(|t| render(*t, &t.run(&seq), Format::Text))
            .collect();

        // Interrupt after one target, persist, thaw, finish.
        let mut ck = RunCheckpoint::new(Format::Text);
        assert_eq!(advance(&targets, &seq, &mut ck, 1), 1);
        assert_eq!(ck.len(), 1);
        let mut thawed = RunCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        let resumed = render_resumed(&targets, &Engine::new(3), &seq, &mut thawed);
        assert_eq!(resumed, uninterrupted);
        assert_eq!(thawed.len(), targets.len());
    }

    #[test]
    fn advance_is_bounded_and_terminates() {
        let targets = cheap_targets();
        let seq = Engine::sequential();
        let mut ck = RunCheckpoint::new(Format::Text);
        assert_eq!(advance(&targets, &seq, &mut ck, 2), 2);
        assert_eq!(advance(&targets, &seq, &mut ck, 2), 1);
        assert_eq!(advance(&targets, &seq, &mut ck, 2), 0);
        assert_eq!(ck.len(), targets.len());
        // And the piecewise outputs equal the one-shot ones.
        for t in &targets {
            let direct = render(*t, &t.run(&seq), Format::Text);
            assert_eq!(ck.rendered(t.name()), Some(direct.as_str()));
        }
    }

    #[test]
    fn run_snapshots_and_checkpoints_do_not_cross_thaw() {
        // A serving run snapshot must not parse as a checkpoint.
        let wl = rpu_serve::Workload::poisson(500.0, 64, 8, 8);
        let mut run = rpu_serve::ServeRun::new(&wl, &rpu_serve::ServeConfig::default());
        let mut cost = rpu_serve::AnalyticCostModel::small();
        while run.step(&mut cost, &mut rpu_serve::Fifo) {}
        assert!(matches!(
            RunCheckpoint::from_bytes(&run.snapshot()),
            Err(SnapshotError::SectionMismatch { .. })
        ));
    }

    #[test]
    fn registry_is_untouched_by_the_checkpoint_layer() {
        assert_eq!(registry().len(), 20);
    }
}
