//! One module per paper figure/table, each regenerating the rows or
//! series the paper plots.
//!
//! Every module exposes a `run(...)` function returning a structured
//! result plus a `table()` (or `tables()`) rendering for the `repro`
//! binary. Benches in `rpu-bench` call the same `run(...)` functions, so
//! the printed numbers and the benchmarked code paths are identical.

pub mod ablations;
pub mod design_points;
pub mod ext_scaleout;
pub mod fig01_roofline;
pub mod fig02_h100_profile;
pub mod fig03_kernel_power;
pub mod fig04_landscape;
pub mod fig05_hbmco_tradeoffs;
pub mod fig08_pipeline_trace;
pub mod fig09_pareto;
pub mod fig10_sku_map;
pub mod fig11_scaling;
pub mod fig12_energy_cost;
pub mod fig13_batch_sweep;
pub mod fig14_platforms;
pub mod fleet_sweep;
pub mod policy_sweep;
pub mod serving_sweep;
