//! One module per paper figure/table, each regenerating the rows or
//! series the paper plots — unified behind the [`Experiment`] trait.
//!
//! Every module exposes a `run(...)` function returning a structured
//! result plus a `table()` (or `tables()`) rendering; the hot sweeps
//! additionally take a [`crate::engine::Engine`] via `run_with(...)` to
//! fan their grids out over worker threads. Benches in `rpu-bench` call
//! the same functions, so the printed numbers and the benchmarked code
//! paths are identical.
//!
//! The [`registry`] lists every experiment as an [`Experiment`] trait
//! object; the `repro` binary is a thin driver over it — selection,
//! parallelism ([`crate::engine::Engine`]) and rendering ([`render`],
//! [`Format`]) all live here so tests can pin the exact bytes `repro`
//! emits.

pub mod ablations;
pub mod autoscale;
pub mod checkpoint;
pub mod design_points;
pub mod ext_scaleout;
pub mod fig01_roofline;
pub mod fig02_h100_profile;
pub mod fig03_kernel_power;
pub mod fig04_landscape;
pub mod fig05_hbmco_tradeoffs;
pub mod fig08_pipeline_trace;
pub mod fig09_pareto;
pub mod fig10_sku_map;
pub mod fig11_scaling;
pub mod fig12_energy_cost;
pub mod fig13_batch_sweep;
pub mod fig14_platforms;
pub mod fleet_scale;
pub mod fleet_sweep;
pub mod policy_sweep;
pub mod serving_sweep;

use crate::engine::Engine;
use rpu_util::table::Table;

/// One reproducible experiment: a named unit of the paper's evaluation
/// that renders to structured [`Table`]s.
///
/// Implementations must be deterministic *per grid point*: given the
/// same inputs, [`Experiment::run`] returns the same tables at every
/// [`Engine`] job count (the engine index-stamps results, so thread
/// interleaving never leaks into output order).
///
/// # Examples
///
/// Adding a new experiment is implementing this trait — sweep your grid
/// through the engine, return typed rows and register the value:
///
/// ```
/// use rpu_core::engine::{grid, Engine};
/// use rpu_core::experiments::{render, Experiment, Format};
/// use rpu_util::table::{Cell, Table};
///
/// struct SquareSweep;
///
/// impl Experiment for SquareSweep {
///     fn name(&self) -> &'static str {
///         "squares"
///     }
///
///     fn about(&self) -> &'static str {
///         "x^2 over a toy grid"
///     }
///
///     fn run(&self, engine: &Engine) -> Vec<Table> {
///         // The sweep grid: every point independent, so let the
///         // engine fan it out. Results come back in input order.
///         let points = grid(&[1i64, 2, 3], &[10i64]);
///         let rows = engine.par_map(&points, |_, &(x, scale)| (x, x * x * scale));
///         let mut t = Table::new("Squares", &["x", "x^2 (scaled)"]);
///         for (x, y) in rows {
///             t.push_row(vec![Cell::int(x), Cell::int(y)]);
///         }
///         vec![t]
///     }
/// }
///
/// // The driver renders any experiment the same way, at any job count.
/// let seq = render(&SquareSweep, &SquareSweep.run(&Engine::sequential()), Format::Text);
/// let par = render(&SquareSweep, &SquareSweep.run(&Engine::new(8)), Format::Text);
/// assert_eq!(seq, par);
/// assert!(seq.starts_with("==== squares — x^2 over a toy grid"));
/// ```
pub trait Experiment: Sync {
    /// The registry/CLI name, e.g. `"fig11"`.
    fn name(&self) -> &'static str;

    /// A one-line description for listings.
    fn about(&self) -> &'static str;

    /// Runs the experiment, fanning independent grid points out through
    /// `engine`, and returns its rendered-ready tables.
    fn run(&self, engine: &Engine) -> Vec<Table>;
}

/// A registry entry: static metadata plus the run function.
struct Entry {
    name: &'static str,
    about: &'static str,
    run: fn(&Engine) -> Vec<Table>,
}

impl Experiment for Entry {
    fn name(&self) -> &'static str {
        self.name
    }

    fn about(&self) -> &'static str {
        self.about
    }

    fn run(&self, engine: &Engine) -> Vec<Table> {
        (self.run)(engine)
    }
}

/// Every experiment of the reproduction, in `repro`'s canonical order.
static REGISTRY: [Entry; 20] = [
    Entry {
        name: "fig1",
        about: "rooflines: H100 vs RPU at ISO-TDP; AI vs batch",
        run: |_| fig01_roofline::run().tables(),
    },
    Entry {
        name: "fig2",
        about: "H100 power trace and VMM bandwidth utilisation",
        run: |_| fig02_h100_profile::run().tables(),
    },
    Entry {
        name: "fig3",
        about: "H100 kernel power and energy per FLOP vs batch",
        run: |_| vec![fig03_kernel_power::run().table()],
    },
    Entry {
        name: "fig4",
        about: "memory technology landscape (Goldilocks gap)",
        run: |_| vec![fig04_landscape::run().table()],
    },
    Entry {
        name: "fig5",
        about: "HBM-CO design space: cost/GB and energy/bit",
        run: |_| fig05_hbmco_tradeoffs::run().tables(),
    },
    Entry {
        name: "fig8",
        about: "one-CU pipeline timelines, BS=1 vs BS=32",
        run: |_| fig08_pipeline_trace::run().tables(),
    },
    Entry {
        name: "fig9",
        about: "HBM-CO Pareto frontier for Llama3-405B, 64 CUs",
        run: |_| vec![fig09_pareto::run().table()],
    },
    Entry {
        name: "fig10",
        about: "SKU selection map and slowdown matrix (Maverick)",
        run: |_| fig10_sku_map::run().tables(),
    },
    Entry {
        name: "fig11",
        about: "strong scaling vs H100 ISO-TDP; batched throughput",
        run: |e| fig11_scaling::run_with(e).tables(),
    },
    Entry {
        name: "fig12",
        about: "energy per inference and system cost vs CU count",
        run: |_| fig12_energy_cost::run().tables(),
    },
    Entry {
        name: "fig13",
        about: "speedup and energy vs H100 across batch sizes",
        run: |e| vec![fig13_batch_sweep::run_with(e).table()],
    },
    Entry {
        name: "fig14",
        about: "platform comparison under speculative decoding",
        run: |_| vec![fig14_platforms::run().table()],
    },
    Entry {
        name: "ablations",
        about: "section IX decomposed contributions",
        run: |e| vec![ablations::run_with(e).table()],
    },
    Entry {
        name: "design-points",
        about: "section VIII edge/datacenter/peak design points",
        run: |_| vec![design_points::run().table()],
    },
    Entry {
        name: "ext-scaleout",
        about: "extension: two-level ring vs flat-ring plateau",
        run: |_| vec![ext_scaleout::run().table()],
    },
    Entry {
        name: "serving",
        about: "request-level SLO sweep over offered load (rpu-serve)",
        run: |e| vec![serving_sweep::run_with(e).table()],
    },
    Entry {
        name: "policy",
        about: "scheduling policies vs offered load, two SLO classes",
        run: |e| vec![policy_sweep::run_with(e).table()],
    },
    Entry {
        name: "fleet",
        about: "capacity planning: replicas to hold the SLO, per router",
        run: |e| vec![fleet_sweep::run_with(e).table()],
    },
    Entry {
        name: "fleet-scale",
        about: "event-core width sweep to 1000 replicas, digest-pinned",
        run: |e| vec![fleet_scale::run_with(e).table()],
    },
    Entry {
        name: "autoscale",
        about: "autoscaler vs static fleets: SLO-seconds vs machine-seconds",
        run: |e| vec![autoscale::run_with(e).table()],
    },
];

/// Every registered experiment, in `repro`'s canonical order.
#[must_use]
pub fn registry() -> Vec<&'static dyn Experiment> {
    REGISTRY.iter().map(|e| e as &dyn Experiment).collect()
}

/// Looks an experiment up by its registry name.
#[must_use]
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY
        .iter()
        .find(|e| e.name == name)
        .map(|e| e as &dyn Experiment)
}

/// An output format of the `repro` driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Aligned text tables (the golden-pinned default).
    Text,
    /// One JSON object per experiment with typed cells.
    Json,
    /// CSV, one `#`-titled block per table.
    Csv,
}

impl Format {
    /// The file extension `repro --out` uses for this format.
    #[must_use]
    pub fn extension(self) -> &'static str {
        match self {
            Self::Text => "txt",
            Self::Json => "json",
            Self::Csv => "csv",
        }
    }
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "text" => Ok(Self::Text),
            "json" => Ok(Self::Json),
            "csv" => Ok(Self::Csv),
            other => Err(format!("unknown format `{other}` (text|json|csv)")),
        }
    }
}

/// Renders one experiment's tables in the given format.
///
/// The text rendering is the byte-stability contract of the whole
/// refactor: it reproduces exactly what `repro` has always printed per
/// target (`==== name — about`, blank line, each table followed by two
/// blank lines), so the golden snapshots under `tests/golden/repro/`
/// pin it across job counts and refactors.
#[must_use]
pub fn render(exp: &dyn Experiment, tables: &[Table], format: Format) -> String {
    let mut out = String::new();
    match format {
        Format::Text => {
            out.push_str(&format!("==== {} — {}\n\n", exp.name(), exp.about()));
            for t in tables {
                out.push_str(&t.to_string());
                out.push('\n');
                out.push('\n');
            }
        }
        Format::Json => {
            out.push_str(&format!(
                "{{\"name\":{},\"about\":{},\"tables\":[",
                rpu_util::table::json_string(exp.name()),
                rpu_util::table::json_string(exp.about())
            ));
            for (i, t) in tables.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&t.to_json());
            }
            out.push_str("]}");
        }
        Format::Csv => {
            out.push_str(&format!("# ==== {} — {}\n", exp.name(), exp.about()));
            for t in tables {
                out.push_str(&format!("# {}\n", t.title()));
                out.push_str(&t.to_csv());
                out.push('\n');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_findable() {
        let reg = registry();
        assert_eq!(reg.len(), 20);
        for e in &reg {
            assert!(std::ptr::eq(find(e.name()).unwrap(), *e));
            assert!(!e.about().is_empty());
        }
        let mut names: Vec<&str> = reg.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), reg.len(), "duplicate registry name");
        assert!(find("no-such-target").is_none());
    }

    #[test]
    fn format_parses_and_maps_extensions() {
        assert_eq!("text".parse::<Format>().unwrap(), Format::Text);
        assert_eq!("json".parse::<Format>().unwrap(), Format::Json);
        assert_eq!("csv".parse::<Format>().unwrap(), Format::Csv);
        assert!("yaml".parse::<Format>().is_err());
        assert_eq!(Format::Json.extension(), "json");
    }

    #[test]
    fn text_render_matches_the_historical_repro_layout() {
        // A cheap target pins the frame: header line, blank line, table,
        // two trailing blank lines.
        let exp = find("fig4").unwrap();
        let tables = exp.run(&Engine::sequential());
        let s = render(exp, &tables, Format::Text);
        assert!(s.starts_with("==== fig4 — memory technology landscape (Goldilocks gap)\n\n== "));
        assert!(s.ends_with("\n\n\n"));
    }

    #[test]
    fn json_render_is_one_object_per_experiment() {
        let exp = find("fig4").unwrap();
        let tables = exp.run(&Engine::sequential());
        let s = render(exp, &tables, Format::Json);
        assert!(s.starts_with("{\"name\":\"fig4\","));
        assert!(s.ends_with("]}"));
        assert_eq!(s.matches("\"title\"").count(), tables.len());
    }

    #[test]
    fn csv_render_titles_every_table() {
        let exp = find("fig1").unwrap();
        let tables = exp.run(&Engine::sequential());
        let s = render(exp, &tables, Format::Csv);
        assert!(s.starts_with("# ==== fig1"));
        assert_eq!(s.matches("\n# ").count(), tables.len());
    }
}
