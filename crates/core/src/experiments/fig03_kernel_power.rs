//! Fig. 3: isolated dense-linear kernel profiling on the H100 — power
//! consumption (left) and energy per FLOP (right) across batch sizes and
//! matrix dimensions, BF16.

use rpu_gpu::{gpu_power_w, GpuSpec, GpuSystem};
use rpu_models::{Kernel, KernelKind, Precision};
use rpu_util::table::{Cell, Table};

/// One `(batch, N)` profile sample.
#[derive(Debug, Clone, Copy)]
pub struct KernelSample {
    /// Batch size (GEMM M dimension).
    pub batch: u32,
    /// Square matrix dimension (K = N).
    pub n: u32,
    /// Kernel execution time, seconds.
    pub time_s: f64,
    /// Average device power, watts.
    pub power_w: f64,
    /// Energy per FLOP, picojoules.
    pub pj_per_flop: f64,
}

/// Results for Fig. 3.
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// Samples over the `(batch, N)` grid.
    pub samples: Vec<KernelSample>,
}

/// The batch sizes the paper sweeps (4 … 16384, log-spaced).
pub const BATCHES: [u32; 7] = [4, 32, 256, 1024, 2048, 8192, 16384];

/// The matrix dimensions the paper sweeps.
pub const SIZES: [u32; 3] = [1024, 2048, 4096];

/// Runs the Fig. 3 sweep on a single H100.
#[must_use]
pub fn run() -> Fig03 {
    let gpu = GpuSystem::new(GpuSpec::h100_sxm(), 1);
    let bf16 = Precision::bf16();
    let mut samples = Vec::new();
    for &n in &SIZES {
        for &batch in &BATCHES {
            let k = Kernel::vmm(
                KernelKind::GateUp,
                u64::from(batch),
                u64::from(n),
                u64::from(n),
                bf16,
            );
            let time_s = gpu.kernel_time(&k);
            let comp_util = (k.flops / time_s / gpu.spec.peak_bf16_flops).clamp(0.0, 1.0);
            let bw_util = (k.total_mem_bytes() / time_s / gpu.spec.mem_bandwidth).clamp(0.0, 1.0);
            let power_w = gpu_power_w(&gpu.spec, comp_util, bw_util);
            samples.push(KernelSample {
                batch,
                n,
                time_s,
                power_w,
                pj_per_flop: power_w * time_s / k.flops * 1e12,
            });
        }
    }
    Fig03 { samples }
}

impl Fig03 {
    /// The sample for `(batch, n)`, if in the sweep.
    #[must_use]
    pub fn sample(&self, batch: u32, n: u32) -> Option<&KernelSample> {
        self.samples.iter().find(|s| s.batch == batch && s.n == n)
    }

    /// Renders both panels as one table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 3: H100 dense-linear kernels (BF16): power and energy per FLOP",
            &["N", "batch", "time (us)", "power (W)", "pJ/FLOP"],
        );
        for s in &self.samples {
            t.push_row(vec![
                Cell::int(i64::from(s.n)),
                Cell::int(i64::from(s.batch)),
                Cell::num(s.time_s * 1e6, 2),
                Cell::num(s.power_w, 1),
                Cell::num(s.pj_per_flop, 2),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_batch_low_power() {
        // Paper: batch <= 64 consistently yields < 30% TDP.
        let f = run();
        for s in f.samples.iter().filter(|s| s.batch <= 32) {
            assert!(
                s.power_w < 0.4 * 700.0,
                "batch {} N {} power {}",
                s.batch,
                s.n,
                s.power_w
            );
        }
    }

    #[test]
    fn high_batch_approaches_tdp() {
        let f = run();
        let s = f.sample(16384, 4096).unwrap();
        assert!(s.power_w > 0.6 * 700.0, "power {}", s.power_w);
    }

    #[test]
    fn high_ai_kernels_near_1pj_per_flop() {
        // Paper: compute-bound kernels reach ~1.0 pJ/BF16 FLOP.
        let f = run();
        let s = f.sample(16384, 4096).unwrap();
        assert!(
            s.pj_per_flop > 0.4 && s.pj_per_flop < 2.5,
            "pJ/FLOP {}",
            s.pj_per_flop
        );
    }

    #[test]
    fn low_batch_degrades_10_to_1000x() {
        // Paper: energy/FLOP degrades 10-1000x at low batch.
        let f = run();
        let hi = f.sample(16384, 4096).unwrap().pj_per_flop;
        let lo = f.sample(4, 1024).unwrap().pj_per_flop;
        let degradation = lo / hi;
        assert!(
            degradation > 10.0 && degradation < 2000.0,
            "degradation {degradation}"
        );
    }

    #[test]
    fn energy_per_flop_monotonically_improves_with_batch() {
        let f = run();
        for &n in &SIZES {
            let series: Vec<f64> = BATCHES
                .iter()
                .map(|&b| f.sample(b, n).unwrap().pj_per_flop)
                .collect();
            for w in series.windows(2) {
                assert!(w[1] <= w[0] * 1.05, "N={n}: {series:?}");
            }
        }
    }

    #[test]
    fn larger_matrices_use_more_power_at_fixed_batch() {
        let f = run();
        let p1 = f.sample(256, 1024).unwrap().power_w;
        let p4 = f.sample(256, 4096).unwrap().power_w;
        assert!(p4 > p1, "N=4096 {p4} vs N=1024 {p1}");
    }

    #[test]
    fn table_has_full_grid() {
        assert_eq!(run().table().len(), BATCHES.len() * SIZES.len());
    }
}
