//! §IX decomposed contributions: ablations isolating each of the RPU's
//! three design pillars.
//!
//! 1. **HBM-CO memory** versus HBM3e-class stacks: energy per inference,
//!    system cost, and ISO-TDP latency.
//! 2. **Power/area provisioning** versus an H100-like 200 Ops/Byte
//!    compute-to-bandwidth ratio: die cost, TDP utilisation and ISO-TDP
//!    latency.
//! 3. **Microarchitectural decoupling**: coupled pipelines (no
//!    prefetch-ahead), global synchronisation on collectives, and
//!    stream-decode off (SRAM-interface energy).

use crate::dse::optimal_memory;
use crate::engine::Engine;
use crate::{system_cost, CostModel, RpuSystem};
use rpu_arch::{cu_mem_power, cu_tdp, iso_tdp_cus, EnergyCoeffs, RpuConfig};
use rpu_hbmco::HbmCoConfig;
use rpu_models::{ModelConfig, Precision};
use rpu_sim::SimConfig;
use rpu_util::table::{Cell, Table};

/// Contribution-1 ablation results (HBM-CO vs HBM3e-class memory).
#[derive(Debug, Clone, Copy)]
pub struct MemoryAblation {
    /// Energy-per-inference ratio (HBM3e / HBM-CO) at equal scale.
    pub energy_ratio: f64,
    /// System-cost ratio (HBM3e / HBM-CO) at equal scale.
    pub cost_ratio: f64,
    /// ISO-TDP latency ratio (HBM3e / HBM-CO): cheaper, cooler memory
    /// lets more CUs fit the power budget.
    pub iso_tdp_latency_ratio: f64,
}

/// Contribution-2 ablation results (provisioning vs H100-like ratio).
#[derive(Debug, Clone, Copy)]
pub struct ProvisioningAblation {
    /// Ops/Byte of the RPU.
    pub rpu_ops_per_byte: f64,
    /// Ops/Byte of the H100-like variant.
    pub h100_like_ops_per_byte: f64,
    /// Die-cost ratio (H100-like / RPU) from the extra compute area.
    pub die_cost_ratio: f64,
    /// TDP-utilisation ratio during memory-bound decode (RPU /
    /// H100-like).
    pub tdp_util_ratio: f64,
    /// ISO-TDP latency ratio (H100-like / RPU).
    pub iso_tdp_latency_ratio: f64,
}

/// Contribution-3 ablation results (decoupling switches).
#[derive(Debug, Clone, Copy)]
pub struct DecouplingAblation {
    /// BS=1 slowdown from coupling memory/compute pipelines (paper: up
    /// to 1.2× from serialized kernel execution).
    pub coupled_bs1_slowdown: f64,
    /// BS=32 slowdown from coupling (paper: up to 1.6× losing the
    /// phase-imbalance buffer).
    pub coupled_bs32_slowdown: f64,
    /// BS=1 slowdown from global-barrier collectives (paper: up to
    /// 2.0×).
    pub global_sync_slowdown: f64,
    /// SRAM-interface energy ratio without on-the-fly stream decode
    /// (paper: 1.7×).
    pub sram_energy_ratio: f64,
}

/// All §IX ablations.
#[derive(Debug, Clone, Copy)]
pub struct Ablations {
    /// Contribution 1.
    pub memory: MemoryAblation,
    /// Contribution 2.
    pub provisioning: ProvisioningAblation,
    /// Contribution 3.
    pub decoupling: DecouplingAblation,
}

/// The HBM3e-BW/Cap comparison SKU (full capacity structures).
fn hbm3e_class() -> HbmCoConfig {
    HbmCoConfig {
        ranks: 4,
        banks_per_group: 4,
        ..HbmCoConfig::candidate()
    }
}

fn memory_ablation() -> MemoryAblation {
    let model = ModelConfig::llama3_405b();
    let prec = Precision::mxfp4_inference();
    let seq = 8192;
    let cus = 164;
    let sku = optimal_memory(&model, prec, 1, seq, cus).expect("405B fits");
    let co = RpuSystem::build(cus, sku.config, prec).expect("valid");
    let e3 = RpuSystem::build(cus, hbm3e_class(), prec).expect("valid");
    let rep_co = co.decode_step(&model, 1, seq).expect("sim");
    let rep_e3 = e3.decode_step(&model, 1, seq).expect("sim");

    let cm = CostModel::paper();
    let cost_ratio = system_cost(&e3.arch, &cm).total() / system_cost(&co.arch, &cm).total();

    // ISO-TDP: fix the budget at the HBM3e system's TDP and ask how many
    // CUs each memory choice affords; memory-bound latency scales
    // inversely with CU count.
    let coeffs = EnergyCoeffs::paper();
    let budget = e3.tdp_w();
    let cus_e3 = iso_tdp_cus(budget, hbm3e_class(), &coeffs);
    let cus_co = iso_tdp_cus(budget, sku.config, &coeffs);
    let iso_tdp_latency_ratio = f64::from(cus_co) / f64::from(cus_e3);

    MemoryAblation {
        energy_ratio: rep_e3.system_energy_j() / rep_co.system_energy_j(),
        cost_ratio,
        iso_tdp_latency_ratio,
    }
}

fn provisioning_ablation() -> ProvisioningAblation {
    let rpu = RpuConfig::new(64, HbmCoConfig::candidate()).expect("valid");
    let coeffs = EnergyCoeffs::paper();
    let rpu_ops_per_byte = rpu.ops_per_byte();
    let h100_like_ops_per_byte = 200.0;
    let compute_scale = h100_like_ops_per_byte / rpu_ops_per_byte;

    // Power: memory interfaces keep their share; compute power and area
    // scale with the provisioning ratio.
    let mem_w = cu_mem_power(&rpu, &coeffs);
    let comp_w = cu_tdp(&rpu, &coeffs) - mem_w;
    let cu_tdp_rpu = mem_w + comp_w;
    let cu_tdp_h100like = mem_w + comp_w * compute_scale;

    // During memory-bound decode both variants draw ~the memory power:
    // TDP utilisation = drawn / provisioned.
    let tdp_util_ratio = (mem_w / cu_tdp_rpu) / (mem_w / cu_tdp_h100like);

    // Die cost: compute area dominates a CU die; the non-compute share
    // (IO shoreline, buffers) is ~35 % and does not scale.
    let fixed = 0.35;
    let die_cost_ratio = (fixed + (1.0 - fixed) * compute_scale) / 1.0;

    // ISO-TDP latency: at a fixed blade budget the CU count scales
    // inversely with per-CU TDP.
    let iso_tdp_latency_ratio = cu_tdp_h100like / cu_tdp_rpu;

    ProvisioningAblation {
        rpu_ops_per_byte,
        h100_like_ops_per_byte,
        die_cost_ratio,
        tdp_util_ratio,
        iso_tdp_latency_ratio,
    }
}

fn decoupling_ablation(engine: &Engine) -> DecouplingAblation {
    let model = ModelConfig::llama3_8b();
    let prec = Precision::mxfp4_inference();
    let cus = 64;

    let base = SimConfig::default();
    let coupled = SimConfig {
        coupled_pipelines: true,
        ..base
    };
    let global = SimConfig {
        global_sync: true,
        ..base
    };
    let no_decode = SimConfig {
        stream_decode: false,
        ..base
    };

    // The six simulator runs are independent: one engine grid point
    // each.
    let runs = [
        (1u32, 16 * 1024u32, base),
        (1, 16 * 1024, coupled),
        (1, 16 * 1024, global),
        (32, 8 * 1024, base),
        (32, 8 * 1024, coupled),
        (1, 16 * 1024, no_decode),
    ];
    let reports = engine.par_map(&runs, |_, &(batch, seq, cfg)| {
        let mut sys =
            RpuSystem::with_optimal_memory(&model, prec, batch, seq, cus).expect("8B fits");
        sys.sim_config = cfg;
        sys.decode_step(&model, batch, seq).expect("sim")
    });
    let [bs1, bs1_coupled, bs1_global, bs32, bs32_coupled, bs1_nodecode] = &reports[..] else {
        unreachable!("par_map returns one report per run");
    };

    DecouplingAblation {
        coupled_bs1_slowdown: bs1_coupled.total_time_s / bs1.total_time_s,
        coupled_bs32_slowdown: bs32_coupled.total_time_s / bs32.total_time_s,
        global_sync_slowdown: bs1_global.total_time_s / bs1.total_time_s,
        sram_energy_ratio: bs1_nodecode.energy.sram / bs1.energy.sram,
    }
}

/// One ablation pillar's result, for fanning the three out as engine
/// grid points.
enum Pillar {
    Memory(MemoryAblation),
    Provisioning(ProvisioningAblation),
    Decoupling(DecouplingAblation),
}

/// Runs all §IX ablations sequentially.
#[must_use]
pub fn run() -> Ablations {
    run_with(&Engine::sequential())
}

/// Runs all §IX ablations, the three pillars (and the decoupling
/// pillar's six simulator runs) as engine grid points.
#[must_use]
pub fn run_with(engine: &Engine) -> Ablations {
    let pillars = engine.par_map(&[0usize, 1, 2], |_, &i| match i {
        0 => Pillar::Memory(memory_ablation()),
        1 => Pillar::Provisioning(provisioning_ablation()),
        _ => Pillar::Decoupling(decoupling_ablation(engine)),
    });
    let (mut memory, mut provisioning, mut decoupling) = (None, None, None);
    for p in pillars {
        match p {
            Pillar::Memory(m) => memory = Some(m),
            Pillar::Provisioning(p) => provisioning = Some(p),
            Pillar::Decoupling(d) => decoupling = Some(d),
        }
    }
    Ablations {
        memory: memory.expect("memory pillar ran"),
        provisioning: provisioning.expect("provisioning pillar ran"),
        decoupling: decoupling.expect("decoupling pillar ran"),
    }
}

impl Ablations {
    /// Renders the decomposed contributions.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Decomposed contributions (§IX)",
            &["ablation", "metric", "measured", "paper"],
        );
        let m = &self.memory;
        t.push_row(vec![
            Cell::str("HBM-CO vs HBM3e"),
            Cell::str("energy/inf"),
            Cell::num(m.energy_ratio, 2),
            Cell::str("2.2x"),
        ]);
        t.push_row(vec![
            Cell::str("HBM-CO vs HBM3e"),
            Cell::str("system cost"),
            Cell::num(m.cost_ratio, 2),
            Cell::str("12.4x"),
        ]);
        t.push_row(vec![
            Cell::str("HBM-CO vs HBM3e"),
            Cell::str("ISO-TDP latency"),
            Cell::num(m.iso_tdp_latency_ratio, 2),
            Cell::str("2.1x"),
        ]);
        let p = &self.provisioning;
        t.push_row(vec![
            Cell::str("provisioning"),
            Cell::str("die cost"),
            Cell::num(p.die_cost_ratio, 2),
            Cell::str("3.3x"),
        ]);
        t.push_row(vec![
            Cell::str("provisioning"),
            Cell::str("TDP util"),
            Cell::num(p.tdp_util_ratio, 2),
            Cell::str("2.6x"),
        ]);
        t.push_row(vec![
            Cell::str("provisioning"),
            Cell::str("ISO-TDP latency"),
            Cell::num(p.iso_tdp_latency_ratio, 2),
            Cell::str("2.2x"),
        ]);
        let d = &self.decoupling;
        t.push_row(vec![
            Cell::str("decoupling"),
            Cell::str("BS=1 coupled"),
            Cell::num(d.coupled_bs1_slowdown, 2),
            Cell::str("1.2x"),
        ]);
        t.push_row(vec![
            Cell::str("decoupling"),
            Cell::str("BS=32 coupled"),
            Cell::num(d.coupled_bs32_slowdown, 2),
            Cell::str("1.6x"),
        ]);
        t.push_row(vec![
            Cell::str("decoupling"),
            Cell::str("global sync"),
            Cell::num(d.global_sync_slowdown, 2),
            Cell::str("2.0x"),
        ]);
        t.push_row(vec![
            Cell::str("decoupling"),
            Cell::str("SRAM energy"),
            Cell::num(d.sram_energy_ratio, 2),
            Cell::str("1.7x"),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_ablation_matches_paper_bands() {
        let m = memory_ablation();
        assert!(
            m.energy_ratio > 1.5 && m.energy_ratio < 3.0,
            "energy {}",
            m.energy_ratio
        );
        assert!(
            m.cost_ratio > 8.0 && m.cost_ratio < 16.0,
            "cost {}",
            m.cost_ratio
        );
        assert!(
            m.iso_tdp_latency_ratio > 1.3 && m.iso_tdp_latency_ratio < 3.0,
            "iso-tdp {}",
            m.iso_tdp_latency_ratio
        );
    }

    #[test]
    fn provisioning_ablation_matches_paper_bands() {
        let p = provisioning_ablation();
        assert!((p.rpu_ops_per_byte - 32.0).abs() < 2.0);
        assert!(
            p.die_cost_ratio > 2.5 && p.die_cost_ratio < 5.0,
            "die {}",
            p.die_cost_ratio
        );
        assert!(
            p.tdp_util_ratio > 1.8 && p.tdp_util_ratio < 4.0,
            "tdp {}",
            p.tdp_util_ratio
        );
        assert!(
            p.iso_tdp_latency_ratio > 1.6 && p.iso_tdp_latency_ratio < 4.0,
            "latency {}",
            p.iso_tdp_latency_ratio
        );
    }

    #[test]
    fn coupling_pipelines_hurts() {
        let d = decoupling_ablation(&Engine::sequential());
        assert!(
            d.coupled_bs1_slowdown > 1.02 && d.coupled_bs1_slowdown < 1.6,
            "BS=1 {}",
            d.coupled_bs1_slowdown
        );
        assert!(
            d.coupled_bs32_slowdown > 1.05 && d.coupled_bs32_slowdown < 2.2,
            "BS=32 {}",
            d.coupled_bs32_slowdown
        );
    }

    #[test]
    fn global_sync_hurts_more_than_coupling_at_bs1() {
        let d = decoupling_ablation(&Engine::sequential());
        assert!(
            d.global_sync_slowdown > 1.1 && d.global_sync_slowdown < 2.5,
            "global {}",
            d.global_sync_slowdown
        );
        assert!(d.global_sync_slowdown > d.coupled_bs1_slowdown);
    }

    #[test]
    fn stream_decode_saves_sram_energy() {
        let d = decoupling_ablation(&Engine::sequential());
        // Paper reports 1.7x; our MXFP4 expansion factor (16-bit decoded
        // vs ~4.25-bit stored) lands slightly higher once memory-buffer
        // writes are included.
        assert!(
            d.sram_energy_ratio > 1.3 && d.sram_energy_ratio < 2.6,
            "SRAM energy {}",
            d.sram_energy_ratio
        );
    }

    #[test]
    fn table_reports_all_ten_rows() {
        assert_eq!(run().table().len(), 10);
    }
}
