//! Fig. 4: memory technology landscape — bandwidth-per-capacity versus
//! ideal latency per token at 100 % capacity utilisation, exposing the
//! *Goldilocks* gap no commercial technology fills.

use rpu_hbmco::landscape::{commercial_landscape, in_goldilocks, MemoryTech};
use rpu_hbmco::{pareto_frontier, HbmCoConfig};
use rpu_util::table::{Cell, Table};

/// One technology point on the landscape.
#[derive(Debug, Clone)]
pub struct TechPoint {
    /// Technology name (e.g. `"HBM3e"`).
    pub name: String,
    /// Bandwidth / capacity, 1/s.
    pub bw_per_cap: f64,
    /// Ideal latency per token at full capacity utilisation, seconds.
    pub latency_per_token: f64,
    /// Whether the point falls in the Goldilocks band.
    pub goldilocks: bool,
}

/// Results for Fig. 4.
#[derive(Debug, Clone)]
pub struct Fig04 {
    /// Commercial technologies (HBM, GDDR, LPDDR, SRAM, eNVM).
    pub commercial: Vec<TechPoint>,
    /// The HBM-CO design-space span `(min BW/Cap, max BW/Cap)` over the
    /// Pareto frontier.
    pub hbmco_span: (f64, f64),
    /// The candidate HBM-CO device's point.
    pub candidate: TechPoint,
}

fn tech_point(t: &MemoryTech) -> TechPoint {
    TechPoint {
        name: t.name.to_string(),
        bw_per_cap: t.bw_per_cap(),
        latency_per_token: t.latency_per_token(),
        goldilocks: in_goldilocks(t.bw_per_cap()),
    }
}

/// Runs the Fig. 4 analysis.
#[must_use]
pub fn run() -> Fig04 {
    let commercial = commercial_landscape().iter().map(tech_point).collect();
    let frontier = pareto_frontier();
    let span = frontier
        .iter()
        .fold((f64::INFINITY, 0.0_f64), |(lo, hi), p| {
            (lo.min(p.bw_per_cap), hi.max(p.bw_per_cap))
        });
    let co = HbmCoConfig::candidate();
    let candidate = TechPoint {
        name: "HBM-CO (candidate)".to_string(),
        bw_per_cap: co.bw_per_cap(),
        latency_per_token: rpu_hbmco::ideal_token_latency(co.bw_per_cap()),
        goldilocks: in_goldilocks(co.bw_per_cap()),
    };
    Fig04 {
        commercial,
        hbmco_span: span,
        candidate,
    }
}

impl Fig04 {
    /// Renders the landscape as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 4: memory technology landscape (100% capacity utilisation)",
            &[
                "technology",
                "BW/Cap (1/s)",
                "latency/token (ms)",
                "Goldilocks?",
            ],
        );
        for p in self
            .commercial
            .iter()
            .chain(std::iter::once(&self.candidate))
        {
            t.push_row(vec![
                Cell::str(p.name.clone()),
                Cell::num(p.bw_per_cap, 1),
                Cell::num(p.latency_per_token * 1e3, 3),
                Cell::str(if p.goldilocks { "yes" } else { "-" }),
            ]);
        }
        t.push_row(vec![
            Cell::str("HBM-CO design space"),
            Cell::str(format!(
                "{:.0} - {:.0}",
                self.hbmco_span.0, self.hbmco_span.1
            )),
            Cell::str(""),
            Cell::str("spans"),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_hbmco::landscape::GOLDILOCKS_BW_PER_CAP;

    #[test]
    fn no_commercial_tech_in_goldilocks() {
        // The paper's central claim for Fig. 4: a technology gap exists.
        let f = run();
        assert!(
            f.commercial.iter().all(|p| !p.goldilocks),
            "some commercial tech already sits in the Goldilocks band"
        );
    }

    #[test]
    fn candidate_fills_the_gap() {
        let f = run();
        assert!(
            f.candidate.goldilocks,
            "candidate BW/Cap {}",
            f.candidate.bw_per_cap
        );
        // ~2.9 ms ideal token latency (paper, §III).
        assert!(f.candidate.latency_per_token > 2.0e-3 && f.candidate.latency_per_token < 4.0e-3);
    }

    #[test]
    fn dram_below_sram_above() {
        // DRAM-class techs sit below the band, SRAM far above it.
        let f = run();
        let hbm = f
            .commercial
            .iter()
            .find(|p| p.name.contains("HBM3e"))
            .unwrap();
        let sram = f
            .commercial
            .iter()
            .find(|p| p.name.contains("SRAM"))
            .unwrap();
        assert!(hbm.bw_per_cap < GOLDILOCKS_BW_PER_CAP.0);
        assert!(sram.bw_per_cap > GOLDILOCKS_BW_PER_CAP.1);
    }

    #[test]
    fn hbmco_span_covers_goldilocks_low_end() {
        let f = run();
        assert!(f.hbmco_span.0 < GOLDILOCKS_BW_PER_CAP.0);
        assert!(f.hbmco_span.1 > GOLDILOCKS_BW_PER_CAP.0);
    }

    #[test]
    fn latency_inversely_tracks_bw_per_cap() {
        let f = run();
        for p in &f.commercial {
            let expect = 1.0 / p.bw_per_cap;
            assert!(
                (p.latency_per_token - expect).abs() / expect < 1e-9,
                "{}",
                p.name
            );
        }
    }

    #[test]
    fn table_lists_all_technologies() {
        let f = run();
        assert_eq!(f.table().len(), f.commercial.len() + 2);
    }
}
