//! Fig. 9: system implications of capacity-optimised memory — the
//! Pareto frontier of HBM-CO configurations for Llama3-405B inference on
//! a 64-CU RPU, normalised energy per inference versus system capacity,
//! annotated with the capacity-reduction step between neighbours.

use crate::dse::required_bytes_per_core;
use rpu_hbmco::{energy_per_bit, pareto_frontier, DesignPoint, HbmCoConfig};
use rpu_models::{DecodeWorkload, ModelConfig, Precision};
use rpu_util::table::{Cell, Table};
use rpu_util::units::GB;

/// Fraction of inference energy that is *not* memory-device energy when
/// running on the HBM3e-class configuration (datapath, compute, network).
/// Fig. 12's breakdown shows memory dominating; this constant sets the
/// floor the energy curve approaches as memory energy shrinks.
const NON_MEMORY_FRACTION_AT_HBM3E: f64 = 0.18;

/// One Pareto point of the Fig. 9 frontier.
#[derive(Debug, Clone)]
pub struct ParetoEntry {
    /// The memory design point.
    pub point: DesignPoint,
    /// Total system capacity at 64 CUs (128 stacks), bytes.
    pub system_capacity: f64,
    /// Energy per inference, normalised to the HBM3e-class config.
    pub norm_energy: f64,
    /// Whether this SKU can hold the workload at 64 CUs.
    pub feasible: bool,
    /// Which capacity structure was reduced relative to the previous
    /// (larger) Pareto point: `"R"`, `"B/G"`, `"SA"` or combinations.
    pub step: String,
}

/// Results for Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig09 {
    /// Frontier entries, largest capacity first (paper's right-to-left).
    pub entries: Vec<ParetoEntry>,
    /// Required model capacity (weights + KV) at the workload, bytes.
    pub model_capacity: f64,
    /// The optimal (smallest feasible) entry index.
    pub optimal: usize,
}

/// Number of CUs in the Fig. 9 system.
pub const NUM_CUS: u32 = 64;

fn step_label(prev: &HbmCoConfig, cur: &HbmCoConfig) -> String {
    let mut parts = Vec::new();
    if cur.ranks < prev.ranks {
        parts.push("R");
    }
    if cur.banks_per_group < prev.banks_per_group {
        parts.push("B/G");
    }
    if cur.subarray_scale < prev.subarray_scale {
        parts.push("SA");
    }
    if cur.channels_per_layer < prev.channels_per_layer {
        parts.push("Ch");
    }
    parts.join("  ")
}

/// Energy per inference for a memory SKU: the whole model footprint is
/// streamed once through the device at `e_bit`, plus the (constant)
/// datapath/compute/network energy.
fn energy_per_inference(footprint_bytes: f64, cfg: &HbmCoConfig, hbm3e_pj: f64) -> f64 {
    let bits = footprint_bytes * 8.0;
    let mem = bits * energy_per_bit(cfg).total() * 1e-12;
    let non_mem_j = bits * hbm3e_pj * 1e-12 * NON_MEMORY_FRACTION_AT_HBM3E
        / (1.0 - NON_MEMORY_FRACTION_AT_HBM3E);
    mem + non_mem_j
}

/// Runs the Fig. 9 analysis: Llama3-405B, batch 1, seq 8k, 64 CUs.
#[must_use]
pub fn run() -> Fig09 {
    let model = ModelConfig::llama3_405b();
    let prec = Precision::mxfp4_inference();
    let (batch, seq) = (1, 8 * 1024);
    let footprint = DecodeWorkload::new(&model, prec, batch, seq).streaming_bytes();
    let required_per_core = required_bytes_per_core(&model, prec, batch, seq, NUM_CUS);
    let hbm3e_pj = energy_per_bit(&HbmCoConfig::hbm3e_like()).total();

    let mut frontier = pareto_frontier();
    // Largest capacity first, matching the paper's annotation direction.
    frontier.sort_by(|a, b| b.capacity_bytes.total_cmp(&a.capacity_bytes));

    let stacks = f64::from(NUM_CUS) * 2.0;
    let baseline = energy_per_inference(footprint, &frontier[0].config, hbm3e_pj);
    let mut entries: Vec<ParetoEntry> = Vec::new();
    for p in frontier {
        let step = entries
            .last()
            .map(|prev: &ParetoEntry| step_label(&prev.point.config, &p.config))
            .unwrap_or_default();
        entries.push(ParetoEntry {
            system_capacity: p.capacity_bytes * stacks,
            norm_energy: energy_per_inference(footprint, &p.config, hbm3e_pj) / baseline,
            feasible: p.capacity_per_pch() >= required_per_core,
            step,
            point: p,
        });
    }
    let optimal = entries
        .iter()
        .enumerate()
        .filter(|(_, e)| e.feasible)
        .min_by(|a, b| a.1.system_capacity.total_cmp(&b.1.system_capacity))
        .map(|(i, _)| i)
        .expect("405B fits a 64-CU RPU with some SKU");
    Fig09 {
        entries,
        model_capacity: footprint,
        optimal,
    }
}

impl Fig09 {
    /// The optimal entry.
    #[must_use]
    pub fn optimal_entry(&self) -> &ParetoEntry {
        &self.entries[self.optimal]
    }

    /// Renders the frontier as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 9: HBM-CO Pareto frontier, Llama3-405B, 64 CUs, BS=1, 8K",
            &[
                "config",
                "system cap (GB)",
                "norm energy/inf",
                "step",
                "feasible",
            ],
        );
        for (i, e) in self.entries.iter().enumerate() {
            let mut tag = String::new();
            if i == self.optimal {
                tag = " <- optimal".into();
            }
            t.push_row(vec![
                Cell::str(e.point.config.label() + &tag),
                Cell::num(e.system_capacity / GB, 0),
                Cell::num(e.norm_energy, 3),
                Cell::str(e.step.clone()),
                Cell::str(if e.feasible {
                    "yes"
                } else {
                    "capacity-limited"
                }),
            ]);
        }
        t.push_row(vec![
            Cell::str("model capacity"),
            Cell::num(self.model_capacity / GB, 0),
            Cell::str(""),
            Cell::str(""),
            Cell::str(""),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::units::MIB;

    #[test]
    fn optimal_is_192mb_per_core() {
        // Fig. 9 annotation: optimal = 192 MB/core, 2 ranks | 1
        // bank/group | 1.0x sub-arrays.
        let f = run();
        let e = f.optimal_entry();
        assert!((e.point.capacity_per_pch() - 192.0 * MIB).abs() < 1.0);
        assert_eq!(e.point.config.ranks, 2);
        assert_eq!(e.point.config.banks_per_group, 1);
        assert!((e.point.config.subarray_scale - 1.0).abs() < 1e-12);
    }

    #[test]
    fn energy_improves_monotonically_down_the_frontier() {
        // Smaller capacity => shorter wires => lower energy.
        let f = run();
        for w in f.entries.windows(2) {
            assert!(
                w[1].norm_energy <= w[0].norm_energy + 1e-12,
                "{} -> {}",
                w[0].point.config.label(),
                w[1].point.config.label()
            );
        }
    }

    #[test]
    fn optimal_improves_energy_about_1_7x() {
        // §VII: system-level energy per inference improves by 1.7x vs
        // the HBM3e-class configuration.
        let f = run();
        let gain = 1.0 / f.optimal_entry().norm_energy;
        assert!(gain > 1.4 && gain < 2.1, "energy gain {gain}");
    }

    #[test]
    fn some_lower_energy_skus_are_infeasible_at_64_cus() {
        // §VII: "several HBM-CO configurations offer even lower energy
        // per inference but remain inaccessible at the current 64-CU
        // scale".
        let f = run();
        let opt = f.optimal_entry().norm_energy;
        assert!(f.entries.iter().any(|e| !e.feasible && e.norm_energy < opt));
    }

    #[test]
    fn steps_are_annotated() {
        let f = run();
        // Every non-first entry must name at least one reduced structure.
        for e in &f.entries[1..] {
            assert!(
                !e.step.is_empty(),
                "missing step annotation for {}",
                e.point.config.label()
            );
        }
    }

    #[test]
    fn frontier_spans_the_paper_axis() {
        // Paper x-axis: ~32 GB to ~2048 GB system capacity.
        let f = run();
        let lo = f.entries.last().unwrap().system_capacity;
        let hi = f.entries[0].system_capacity;
        assert!(lo < 64.0 * GB, "smallest {lo}");
        assert!(hi > 1000.0 * GB, "largest {hi}");
    }

    #[test]
    fn table_marks_the_optimum() {
        assert!(run().table().to_string().contains("optimal"));
    }
}
