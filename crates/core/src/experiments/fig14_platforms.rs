//! Fig. 14: comparison of leading hardware platforms under speculative
//! decoding of Llama3-70B — published vendor numbers for H200,
//! SambaNova SN40L, Groq LPU and Cerebras WSE-3 versus the RPU-200CU
//! configuration computed by this reproduction.
//!
//! Vendor rows are constants from the paper's citations (refs 2, 52,
//! 57 and 64); only the RPU row is computed (DESIGN.md §3,
//! substitution 5).

use crate::RpuSystem;
use rpu_models::{Precision, SpeculativeConfig};
use rpu_util::table::{Cell, Table};

/// One platform row.
#[derive(Debug, Clone)]
pub struct PlatformRow {
    /// System name.
    pub system: &'static str,
    /// Main-memory technology.
    pub memory: &'static str,
    /// Bandwidth / capacity of the main memory, 1/s.
    pub bw_per_cap: f64,
    /// System TDP in watts (whole deployment for the 70B workload).
    pub tdp_w: f64,
    /// Compute-to-bandwidth ratio, Ops/Byte.
    pub comp_per_bw: f64,
    /// Devices needed to serve speculative Llama3-70B.
    pub devices: f64,
    /// Published (or computed) speculative-decoding throughput, tokens/s.
    pub tokens_per_s: f64,
    /// Whether the row is computed by this reproduction (vs published).
    pub computed: bool,
}

/// Results for Fig. 14.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// All platform rows, RPU last.
    pub rows: Vec<PlatformRow>,
    /// The RPU speculative speedup over its own plain decoding.
    pub rpu_spec_speedup: f64,
}

/// Number of CUs in the paper's speculative-decoding RPU configuration.
pub const RPU_CUS: u32 = 200;

/// Vendor-published rows (from the paper's Fig. 14 and citations).
#[must_use]
pub fn published_rows() -> Vec<PlatformRow> {
    vec![
        PlatformRow {
            system: "NVIDIA H200",
            memory: "HBM3e",
            bw_per_cap: 34.0,
            tdp_w: 700.0,
            comp_per_bw: 206.0,
            devices: 1.0,
            tokens_per_s: 704.0,
            computed: false,
        },
        PlatformRow {
            system: "SambaNova SN40L",
            memory: "HBM3",
            bw_per_cap: 25.0,
            tdp_w: 10_000.0,
            comp_per_bw: 399.0,
            devices: 16.0,
            tokens_per_s: 660.0,
            computed: false,
        },
        PlatformRow {
            system: "Groq LPU",
            memory: "SRAM",
            bw_per_cap: 355_000.0,
            tdp_w: 100_000.0,
            comp_per_bw: 2.4,
            devices: 500.0,
            tokens_per_s: 1660.0,
            computed: false,
        },
        PlatformRow {
            system: "Cerebras WSE-3",
            memory: "SRAM",
            bw_per_cap: 477_000.0,
            tdp_w: 136_000.0,
            comp_per_bw: 6.0,
            devices: 4.0,
            tokens_per_s: 2148.0,
            computed: false,
        },
    ]
}

/// Runs the Fig. 14 comparison: the RPU-200CU row is simulated with the
/// paper's 8-token lookahead / 4.6-accepted speculative setup.
#[must_use]
pub fn run() -> Fig14 {
    let spec = SpeculativeConfig::paper_setup();
    let prec = Precision::mxfp4_inference();
    let seq = 8192;

    let target = spec.target;
    let draft = spec.draft;
    let sys = RpuSystem::with_optimal_memory(&target, prec, 1, seq, RPU_CUS)
        .expect("70B fits a 200-CU RPU");
    let target_step = sys
        .token_latency(&target, 1, seq)
        .expect("target step simulates");
    // The draft model runs on a slice of the same machine: a small model
    // over-sharded across all 200 CUs would be broadcast-bound, so the
    // deployment picks the slice width that minimises draft latency.
    let draft_step = [32u32, 64, 128, RPU_CUS]
        .iter()
        .filter_map(|&slice| {
            let s = RpuSystem::with_optimal_memory(&draft, prec, 1, seq, slice).ok()?;
            s.token_latency(&draft, 1, seq).ok()
        })
        .fold(f64::INFINITY, f64::min);
    assert!(draft_step.is_finite(), "draft model fits some slice");
    // Verify pass: the target at batch `lookahead + 1` (one step).
    let verify_step = sys
        .token_latency(&target, spec.lookahead + 1, seq)
        .expect("verify step simulates");

    let tokens_per_s = spec.tokens_per_second(draft_step, verify_step);
    let rpu_spec_speedup = spec.speedup(draft_step, verify_step, target_step);

    let mut rows = published_rows();
    let mem = &sys.arch.memory;
    rows.push(PlatformRow {
        system: "RPU-200CU",
        memory: "HBM-CO",
        bw_per_cap: mem.bw_per_cap(),
        tdp_w: sys.tdp_w(),
        comp_per_bw: sys.arch.ops_per_byte(),
        devices: f64::from(RPU_CUS),
        tokens_per_s,
        computed: true,
    });
    Fig14 {
        rows,
        rpu_spec_speedup,
    }
}

impl Fig14 {
    /// The RPU row.
    #[must_use]
    pub fn rpu(&self) -> &PlatformRow {
        self.rows.last().expect("RPU row present")
    }

    /// Renders the comparison.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 14: platform comparison, speculative decoding Llama3-70B",
            &[
                "system",
                "memory",
                "BW/Cap (1/s)",
                "TDP (W)",
                "Comp/BW (Ops/B)",
                "devices",
                "tokens/s",
                "source",
            ],
        );
        for r in &self.rows {
            t.push_row(vec![
                Cell::str(r.system),
                Cell::str(r.memory),
                Cell::num(r.bw_per_cap, 0),
                Cell::num(r.tdp_w, 0),
                Cell::num(r.comp_per_bw, 1),
                Cell::num(r.devices, 0),
                Cell::num(r.tokens_per_s, 0),
                Cell::str(if r.computed { "simulated" } else { "published" }),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpu_beats_every_published_platform() {
        // §X: "The RPU-200U configuration is lower latency than all
        // evaluated systems."
        let f = run();
        let rpu = f.rpu().tokens_per_s;
        for r in f.rows.iter().filter(|r| !r.computed) {
            assert!(
                rpu > r.tokens_per_s,
                "RPU {rpu} vs {} {}",
                r.system,
                r.tokens_per_s
            );
        }
    }

    #[test]
    fn spec_decoding_speedup_near_paper() {
        // Paper: 4.6 accepted per 8-token window accelerates end-to-end
        // inference by 1.8x. Our batch-9 verify pass pays the full
        // 9-query KV$ streaming cost, which lands the gain lower but the
        // technique must still win clearly.
        let f = run();
        assert!(
            f.rpu_spec_speedup > 1.15 && f.rpu_spec_speedup < 3.0,
            "spec speedup {}",
            f.rpu_spec_speedup
        );
    }

    #[test]
    fn rpu_sits_between_dram_and_sram_bw_per_cap() {
        // Fig. 14's thesis: HBM-CO occupies the Goldilocks middle.
        let f = run();
        let rpu = f.rpu().bw_per_cap;
        let h200 = f.rows.iter().find(|r| r.system.contains("H200")).unwrap();
        let groq = f.rows.iter().find(|r| r.system.contains("Groq")).unwrap();
        assert!(rpu > h200.bw_per_cap && rpu < groq.bw_per_cap);
    }

    #[test]
    fn rpu_comp_per_bw_is_32() {
        let f = run();
        assert!((f.rpu().comp_per_bw - 32.0).abs() < 2.0);
    }

    #[test]
    fn rpu_tdp_in_blade_range() {
        // 200 CUs at 8-18 W/CU: a 1.6-3.6 kW blade, comparable to the
        // figure's "1.5k" column.
        let f = run();
        let w = f.rpu().tdp_w;
        assert!(w > 1000.0 && w < 4500.0, "RPU TDP {w}");
    }

    #[test]
    fn table_has_five_platforms() {
        assert_eq!(run().table().len(), 5);
    }
}
