//! Fig. 11: strong scaling of the RPU across CU counts versus H100 at
//! ISO-TDP (top), batched output tokens/s per query on 128 CUs versus an
//! 8×H200 (bottom left), and memory-bandwidth utilisation versus batch
//! size (bottom right).

use crate::engine::{grid, Engine};
use crate::RpuSystem;
use rpu_arch::{iso_tdp_cus, EnergyCoeffs};
use rpu_gpu::{GpuSpec, GpuSystem};
use rpu_models::{DecodeWorkload, ModelConfig, Precision};
use rpu_util::table::{Cell, Table};

/// One point of the strong-scaling curve.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// CU count.
    pub num_cus: u32,
    /// Token latency, seconds.
    pub latency_s: f64,
    /// Speedup versus the minimum-capacity configuration.
    pub speedup: f64,
}

/// Strong-scaling results for one model.
#[derive(Debug, Clone)]
pub struct ModelScaling {
    /// Model name.
    pub model: &'static str,
    /// Scaling curve, ascending CU count.
    pub points: Vec<ScalePoint>,
}

/// An H100 ISO-TDP comparison marker.
#[derive(Debug, Clone)]
pub struct GpuMarker {
    /// Model name.
    pub model: &'static str,
    /// GPU count (1, 2, 4).
    pub num_gpus: u32,
    /// GPU decode latency, seconds.
    pub gpu_latency_s: f64,
    /// ISO-TDP RPU CU count.
    pub iso_cus: u32,
    /// RPU latency at that scale, seconds.
    pub rpu_latency_s: f64,
}

impl GpuMarker {
    /// RPU speedup over the GPU at ISO-TDP.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.gpu_latency_s / self.rpu_latency_s
    }
}

/// One batched-throughput sample (bottom panels).
#[derive(Debug, Clone)]
pub struct BatchPoint {
    /// Model name.
    pub model: &'static str,
    /// Batch size.
    pub batch: u32,
    /// RPU output tokens/s per query (128 CUs).
    pub rpu_otps_per_query: f64,
    /// 8×H200 output tokens/s per query.
    pub h200_otps_per_query: f64,
    /// RPU memory-bandwidth utilisation.
    pub rpu_bw_util: f64,
}

/// Results for Fig. 11.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Strong scaling per model (top).
    pub scaling: Vec<ModelScaling>,
    /// H100 ISO-TDP markers.
    pub markers: Vec<GpuMarker>,
    /// Batched throughput / BW-utilisation samples (bottom).
    pub batched: Vec<BatchPoint>,
}

/// CU counts swept in the strong-scaling study.
pub const CU_SWEEP: [u32; 12] = [4, 8, 16, 32, 64, 96, 128, 192, 256, 308, 428, 512];

/// Batch sizes for the bottom panels.
pub const BATCH_SWEEP: [u32; 5] = [1, 8, 32, 64, 128];

fn rpu_latency(
    model: &ModelConfig,
    prec: Precision,
    cus: u32,
    batch: u32,
    seq: u32,
) -> Option<f64> {
    let sys = RpuSystem::with_optimal_memory(model, prec, batch, seq, cus).ok()?;
    sys.token_latency(model, batch, seq).ok()
}

/// Runs the full Fig. 11 study sequentially.
#[must_use]
pub fn run() -> Fig11 {
    run_with(&Engine::sequential())
}

/// Runs the full Fig. 11 study, fanning the strong-scaling,
/// ISO-TDP-marker and batched-throughput grids out through the engine.
/// Every grid point deploys and simulates its own system, so the
/// panels are embarrassingly parallel and bit-identical at any job
/// count.
#[must_use]
pub fn run_with(engine: &Engine) -> Fig11 {
    let prec = Precision::mxfp4_inference();
    let seq = 8192;

    // Top panel: one grid point per (model, CU count); the per-model
    // speedup normalisation needs the whole curve, so it stays on the
    // assembling thread.
    let zoo = ModelConfig::zoo();
    let scale_grid = grid(&zoo, &CU_SWEEP);
    let latencies = engine.par_map(&scale_grid, |_, (model, cus)| {
        rpu_latency(model, prec, *cus, 1, seq)
    });
    let mut scaling = Vec::new();
    for (model, chunk) in zoo.iter().zip(latencies.chunks(CU_SWEEP.len())) {
        let mut points: Vec<ScalePoint> = CU_SWEEP
            .iter()
            .zip(chunk)
            .filter_map(|(&cus, latency)| {
                latency.map(|latency_s| ScalePoint {
                    num_cus: cus,
                    latency_s,
                    speedup: 0.0,
                })
            })
            .collect();
        if let Some(base) = points.first().map(|p| p.latency_s) {
            for p in &mut points {
                p.speedup = base / p.latency_s;
            }
        }
        scaling.push(ModelScaling {
            model: model.name,
            points,
        });
    }

    // ISO-TDP markers: the paper pairs (70B, 2xH100) and (405B, 4xH100),
    // plus (8B, 1xH100). Each marker's grow-until-fit search is
    // sequential inside its grid point.
    let gpu_prec = Precision::gpu_w4a16();
    let pairs = [
        (ModelConfig::llama3_8b(), 1u32),
        (ModelConfig::llama3_70b(), 2),
        (ModelConfig::llama3_405b(), 4),
    ];
    let markers = engine.par_map(&pairs, |_, &(model, num_gpus)| {
        let coeffs = EnergyCoeffs::paper();
        let gpus = GpuSystem::new(GpuSpec::h100_sxm(), num_gpus);
        let wl = DecodeWorkload::new(&model, gpu_prec, 1, seq);
        let gpu_latency_s = gpus.decode_step_latency(&wl);
        // ISO-TDP CU count with the workload's optimal SKU at that scale
        // (fixed point: the SKU choice barely moves CU TDP).
        let mut iso_cus = iso_tdp_cus(gpus.tdp_w(), rpu_hbmco::HbmCoConfig::candidate(), &coeffs);
        let mut rpu_latency_s = rpu_latency(&model, prec, iso_cus, 1, seq);
        // If the model does not fit at ISO-TDP scale, grow to the
        // smallest fitting count (the paper's markers always fit).
        while rpu_latency_s.is_none() && iso_cus < 1024 {
            iso_cus += 4;
            rpu_latency_s = rpu_latency(&model, prec, iso_cus, 1, seq);
        }
        GpuMarker {
            model: model.name,
            num_gpus,
            gpu_latency_s,
            iso_cus,
            rpu_latency_s: rpu_latency_s.expect("marker config fits"),
        }
    });

    // Bottom panels: 128-CU RPU vs 8xH200, one grid point per
    // (model, batch); non-deploying points drop out in order.
    let batch_models = [
        ModelConfig::llama3_70b(),
        ModelConfig::llama3_405b(),
        ModelConfig::llama4_scout(),
        ModelConfig::llama4_maverick(),
    ];
    let batch_grid = grid(&batch_models, &BATCH_SWEEP);
    let batched = engine
        .par_map(&batch_grid, |_, (model, batch)| {
            let batch = *batch;
            let sys = RpuSystem::with_optimal_memory(model, prec, batch, seq, 128).ok()?;
            let report = sys.decode_step(model, batch, seq).ok()?;
            let h200 = GpuSystem::new(GpuSpec::h200(), 8);
            let wl = DecodeWorkload::new(model, gpu_prec, batch, seq);
            Some(BatchPoint {
                model: model.name,
                batch,
                rpu_otps_per_query: 1.0 / report.total_time_s,
                h200_otps_per_query: 1.0 / h200.decode_step_latency(&wl),
                rpu_bw_util: report.mem_bw_utilization(),
            })
        })
        .into_iter()
        .flatten()
        .collect();

    Fig11 {
        scaling,
        markers,
        batched,
    }
}

impl Fig11 {
    /// The scaling curve for `model`.
    #[must_use]
    pub fn model_scaling(&self, model: &str) -> Option<&ModelScaling> {
        self.scaling.iter().find(|m| m.model == model)
    }

    /// The marker for `model`.
    #[must_use]
    pub fn marker(&self, model: &str) -> Option<&GpuMarker> {
        self.markers.iter().find(|m| m.model == model)
    }

    /// Renders the figure's three panels.
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            "Fig. 11 (top): strong scaling, BS=1, seq 8K",
            &["model", "CUs", "ms/token", "speedup vs min-cap"],
        );
        for m in &self.scaling {
            for p in &m.points {
                t1.push_row(vec![
                    Cell::str(m.model),
                    Cell::int(i64::from(p.num_cus)),
                    Cell::num(p.latency_s * 1e3, 3),
                    Cell::str(format!("{:.1}x", p.speedup)),
                ]);
            }
        }
        let mut tm = Table::new(
            "Fig. 11 (top): H100 ISO-TDP markers",
            &[
                "model",
                "GPUs",
                "GPU ms/tok",
                "ISO CUs",
                "RPU ms/tok",
                "speedup",
            ],
        );
        for mk in &self.markers {
            tm.push_row(vec![
                Cell::str(mk.model),
                Cell::str(format!("{}xH100", mk.num_gpus)),
                Cell::num(mk.gpu_latency_s * 1e3, 2),
                Cell::int(i64::from(mk.iso_cus)),
                Cell::num(mk.rpu_latency_s * 1e3, 2),
                Cell::str(format!("{:.1}x", mk.speedup())),
            ]);
        }
        let mut t2 = Table::new(
            "Fig. 11 (bottom): OTPS/query and BW util vs batch (128 CUs vs 8xH200)",
            &[
                "model",
                "batch",
                "RPU OTPS/query",
                "8xH200 OTPS/query",
                "RPU BW util",
            ],
        );
        for b in &self.batched {
            t2.push_row(vec![
                Cell::str(b.model),
                Cell::int(i64::from(b.batch)),
                Cell::num(b.rpu_otps_per_query, 0),
                Cell::num(b.h200_otps_per_query, 0),
                Cell::num(b.rpu_bw_util, 2),
            ]);
        }
        vec![t1, tm, t2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_tdp_speedups_are_order_tens() {
        // Paper: 47.0x vs 2xH100 (70B), 45.3x vs 4xH100 (405B). Shape
        // target: order tens at ISO-TDP.
        let f = run();
        let m70 = f.marker("Llama3-70B").unwrap();
        let m405 = f.marker("Llama3-405B").unwrap();
        assert!(
            m70.speedup() > 15.0 && m70.speedup() < 90.0,
            "70B {}",
            m70.speedup()
        );
        assert!(
            m405.speedup() > 15.0 && m405.speedup() < 90.0,
            "405B {}",
            m405.speedup()
        );
    }

    #[test]
    fn scaling_improves_then_plateaus() {
        // §VIII: performance scales with CUs, then plateaus as the
        // activation broadcast dominates.
        let f = run();
        let s = f.model_scaling("Llama3-405B").unwrap();
        assert!(s.points.len() >= 4, "need several scale points");
        let first = &s.points[0];
        let last = s.points.last().unwrap();
        assert!(last.speedup > 3.0, "largest speedup {}", last.speedup);
        assert!(first.speedup == 1.0);
        // Diminishing returns: the last doubling gains less than the
        // first doubling.
        let mid = &s.points[s.points.len() / 2];
        let early_gain = mid.speedup / first.speedup;
        let late_gain = last.speedup / mid.speedup;
        assert!(
            late_gain < early_gain,
            "early {early_gain} late {late_gain}"
        );
    }

    #[test]
    fn peak_latencies_match_paper_order() {
        // Paper: 70B @ 204 CUs -> 0.4 ms; 405B @ 428 CUs -> 1.0 ms;
        // Maverick @ 128 CUs -> 0.2 ms. Check the band at our sweep's
        // nearest scales.
        let f = run();
        let p70 = f
            .model_scaling("Llama3-70B")
            .unwrap()
            .points
            .iter()
            .find(|p| p.num_cus == 192)
            .unwrap();
        assert!(
            p70.latency_s > 0.1e-3 && p70.latency_s < 1.2e-3,
            "70B {}",
            p70.latency_s
        );
        let p405 = f
            .model_scaling("Llama3-405B")
            .unwrap()
            .points
            .iter()
            .find(|p| p.num_cus == 428)
            .unwrap();
        assert!(
            p405.latency_s > 0.3e-3 && p405.latency_s < 3e-3,
            "405B {}",
            p405.latency_s
        );
    }

    #[test]
    fn otps_per_query_decreases_with_batch() {
        let f = run();
        for model in ["Llama3-70B", "Llama4-Maverick"] {
            let series: Vec<&BatchPoint> = f.batched.iter().filter(|b| b.model == model).collect();
            for w in series.windows(2) {
                assert!(
                    w[1].rpu_otps_per_query <= w[0].rpu_otps_per_query * 1.02,
                    "{model}: batch {} -> {}",
                    w[0].batch,
                    w[1].batch
                );
            }
        }
    }

    #[test]
    fn rpu_outpaces_h200_per_query() {
        let f = run();
        for b in f.batched.iter().filter(|b| b.batch <= 8) {
            assert!(
                b.rpu_otps_per_query > b.h200_otps_per_query,
                "{} batch {}: RPU {} vs H200 {}",
                b.model,
                b.batch,
                b.rpu_otps_per_query,
                b.h200_otps_per_query
            );
        }
    }

    #[test]
    fn llama4_sustains_bandwidth_at_high_batch() {
        // Paper: Llama4 models maintain >80% BW utilisation up to batch
        // 128; Llama3-405B becomes compute-bound past batch 8.
        let f = run();
        let mav = f
            .batched
            .iter()
            .find(|b| b.model == "Llama4-Maverick" && b.batch == 128);
        if let Some(m) = mav {
            assert!(
                m.rpu_bw_util > 0.5,
                "Maverick@128 BW util {}",
                m.rpu_bw_util
            );
        }
        let b405 = f
            .batched
            .iter()
            .find(|b| b.model == "Llama3-405B" && b.batch == 128);
        if let Some(p) = b405 {
            let low = f
                .batched
                .iter()
                .find(|b| b.model == "Llama3-405B" && b.batch == 1)
                .unwrap();
            assert!(
                p.rpu_bw_util < low.rpu_bw_util,
                "405B util must fall with batch"
            );
        }
    }

    #[test]
    fn tables_render_all_panels() {
        let t = run().tables();
        assert_eq!(t.len(), 3);
        assert!(t[1].to_string().contains("xH100"));
    }

    #[test]
    fn parallel_runs_render_identically() {
        // Acceptance: the engine's index stamping makes jobs = 8
        // byte-identical to the sequential reference.
        let seq = run().tables();
        let par = run_with(&Engine::new(8)).tables();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.to_string(), b.to_string());
        }
    }
}
