//! Fig. 10: HBM-CO SKU selection map for a 64-CU RPU running
//! Llama4-Maverick — the optimal BW/Cap per (batch, sequence-length)
//! cell (top) and the slowdown relative to BS=1 / 8K with KV-cache
//! capacity shares (bottom).

use crate::dse::optimal_memory;
use crate::RpuSystem;
use rpu_models::{DecodeWorkload, ModelConfig, Precision};
use rpu_util::table::{Cell, Table};
use rpu_util::units::GB;

/// One (batch, seq-len) cell of the map.
#[derive(Debug, Clone)]
pub struct SkuCell {
    /// Batch size.
    pub batch: u32,
    /// Sequence length.
    pub seq_len: u32,
    /// Optimal SKU's BW/Cap (1/s); `None` when nothing fits at 64 CUs.
    pub bw_per_cap: Option<f64>,
    /// Total system capacity with that SKU, bytes.
    pub system_capacity: Option<f64>,
    /// Per-query token latency, seconds.
    pub token_latency_s: f64,
    /// KV-cache share of the streamed bytes per token.
    pub kv_share: f64,
    /// KV-cache share of total system capacity.
    pub kv_capacity_share: f64,
}

/// Results for Fig. 10.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// All cells, batch-major.
    pub cells: Vec<SkuCell>,
    /// The reference cell's latency (BS=1, 8K).
    pub reference_latency_s: f64,
}

/// Batch sizes on the map's x-axis.
pub const BATCHES: [u32; 6] = [1, 2, 4, 8, 16, 32];

/// Sequence lengths on the map's y-axis.
pub const SEQ_LENS: [u32; 5] = [8192, 16384, 32768, 65536, 131_072];

/// Number of CUs (fixed 32 TB/s system bandwidth).
pub const NUM_CUS: u32 = 64;

/// Runs the Fig. 10 sweep.
#[must_use]
pub fn run() -> Fig10 {
    let model = ModelConfig::llama4_maverick();
    let prec = Precision::mxfp4_inference();
    let mut cells = Vec::new();
    for &seq in &SEQ_LENS {
        for &batch in &BATCHES {
            cells.push(cell(&model, prec, batch, seq));
        }
    }
    let reference_latency_s = cells
        .iter()
        .find(|c| c.batch == 1 && c.seq_len == 8192)
        .expect("reference cell present")
        .token_latency_s;
    Fig10 {
        cells,
        reference_latency_s,
    }
}

fn cell(model: &ModelConfig, prec: Precision, batch: u32, seq: u32) -> SkuCell {
    let sku = optimal_memory(model, prec, batch, seq, NUM_CUS);
    let (bw_per_cap, system_capacity, token_latency_s) = match &sku {
        Some(p) => {
            let sys = RpuSystem::build(NUM_CUS, p.config, prec).expect("valid system");
            let t = sys
                .token_latency(model, batch, seq)
                .expect("simulation succeeds");
            (
                Some(p.bw_per_cap),
                Some(p.capacity_bytes * f64::from(NUM_CUS) * 2.0),
                t,
            )
        }
        None => {
            // Out of capacity even with the largest SKU: report the
            // roofline latency so the slowdown map stays complete.
            let wl = DecodeWorkload::new(model, prec, batch, seq);
            let bw = 32.0e12;
            (None, None, wl.streaming_bytes() / bw)
        }
    };
    let wl = DecodeWorkload::new(model, prec, batch, seq);
    let kv = wl.kv_read_bytes();
    let active = wl.streaming_bytes();
    let kv_total = model.kv_bytes_per_token(prec) * f64::from(batch) * f64::from(seq);
    SkuCell {
        batch,
        seq_len: seq,
        bw_per_cap,
        system_capacity,
        token_latency_s,
        kv_share: kv / active,
        kv_capacity_share: system_capacity.map_or(1.0, |c| (kv_total / c).min(1.0)),
    }
}

impl Fig10 {
    /// The cell for `(batch, seq_len)`.
    #[must_use]
    pub fn cell(&self, batch: u32, seq_len: u32) -> Option<&SkuCell> {
        self.cells
            .iter()
            .find(|c| c.batch == batch && c.seq_len == seq_len)
    }

    /// Slowdown of a cell versus the BS=1 / 8K reference.
    #[must_use]
    pub fn slowdown(&self, c: &SkuCell) -> f64 {
        c.token_latency_s / self.reference_latency_s
    }

    /// Renders both panels.
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            "Fig. 10 (top): optimal HBM-CO BW/Cap | system capacity (Llama4-Maverick, 64 CUs)",
            &["seq len", "batch", "BW/Cap (1/s)", "system cap (GB)"],
        );
        let mut t2 = Table::new(
            "Fig. 10 (bottom): slowdown vs BS=1/8K | KV share of streamed bytes | KV share of capacity",
            &["seq len", "batch", "slowdown", "KV stream", "KV cap"],
        );
        for c in &self.cells {
            let seq = format!("{}K", c.seq_len / 1024);
            t1.push_row(vec![
                Cell::str(seq.clone()),
                Cell::int(i64::from(c.batch)),
                c.bw_per_cap.map_or(Cell::str("-"), |v| Cell::num(v, 0)),
                c.system_capacity
                    .map_or(Cell::str("over capacity"), |v| Cell::num(v / GB, 0)),
            ]);
            t2.push_row(vec![
                Cell::str(seq),
                Cell::int(i64::from(c.batch)),
                Cell::str(format!("{:.1}x", self.slowdown(c))),
                Cell::str(format!("{:.0}%", c.kv_share * 100.0)),
                Cell::str(format!("{:.0}%", c.kv_capacity_share * 100.0)),
            ]);
        }
        vec![t1, t2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_workloads_need_lower_bw_per_cap() {
        // Fig. 10 top: the (1, 8K) cell uses the highest BW/Cap SKU; the
        // (32, 128K) cell the lowest (or none).
        let f = run();
        let small = f.cell(1, 8192).unwrap().bw_per_cap.unwrap();
        let big = f.cell(32, 131_072).unwrap();
        // `None` (over capacity) is an even stronger statement.
        if let Some(v) = big.bw_per_cap {
            assert!(v < small, "big {v} vs small {small}");
        }
    }

    #[test]
    fn slowdown_grows_with_batch_and_seq() {
        let f = run();
        let s_ref = f.slowdown(f.cell(1, 8192).unwrap());
        assert!((s_ref - 1.0).abs() < 1e-9);
        let s_batch = f.slowdown(f.cell(32, 8192).unwrap());
        let s_seq = f.slowdown(f.cell(1, 131_072).unwrap());
        let s_both = f.slowdown(f.cell(32, 131_072).unwrap());
        assert!(s_batch > 2.0, "batch slowdown {s_batch}");
        assert!(s_seq > 1.3, "seq slowdown {s_seq}");
        assert!(s_both > s_batch && s_both > s_seq, "corner {s_both}");
    }

    #[test]
    fn corner_slowdown_matches_paper_magnitude() {
        // Paper: 50.7x at BS=32, 128K.
        let f = run();
        let s = f.slowdown(f.cell(32, 131_072).unwrap());
        assert!(s > 20.0 && s < 100.0, "corner slowdown {s}");
    }

    #[test]
    fn kv_dominates_long_context_cells() {
        // Paper: "more than 50% of the active parameters are KV$ for
        // BS=8 128k".
        let f = run();
        let c = f.cell(8, 131_072).unwrap();
        assert!(c.kv_share > 0.4, "KV share {}", c.kv_share);
        let short = f.cell(1, 8192).unwrap();
        assert!(
            short.kv_share < 0.2,
            "short-context KV share {}",
            short.kv_share
        );
    }

    #[test]
    fn reference_cell_uses_highest_bw_per_cap_on_map() {
        let f = run();
        let r = f.cell(1, 8192).unwrap().bw_per_cap.unwrap();
        for c in &f.cells {
            if let Some(v) = c.bw_per_cap {
                assert!(v <= r + 1e-9, "cell ({}, {})", c.batch, c.seq_len);
            }
        }
    }

    #[test]
    fn map_is_complete() {
        let f = run();
        assert_eq!(f.cells.len(), BATCHES.len() * SEQ_LENS.len());
        assert_eq!(f.tables()[0].len(), f.cells.len());
    }
}
