//! Fig. 13: RPU speedup and energy-per-inference improvement over an
//! H100 swept across batch sizes, for Llama3-8B (vs 64 CUs) and
//! Llama3-70B (vs 128 CUs), 8k prefill / 2k decode.

use crate::engine::{grid, Engine};
use crate::RpuSystem;
use rpu_gpu::{GpuSpec, GpuSystem};
use rpu_models::{DecodeWorkload, ModelConfig, Precision};
use rpu_util::table::{Cell, Table};

/// One batch-size sample for one pairing.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Model name.
    pub model: &'static str,
    /// Batch size.
    pub batch: u32,
    /// RPU step latency, seconds.
    pub rpu_latency_s: f64,
    /// GPU step latency, seconds.
    pub gpu_latency_s: f64,
    /// RPU energy per generated token, joules.
    pub rpu_energy_j: f64,
    /// GPU energy per generated token, joules.
    pub gpu_energy_j: f64,
}

impl SweepPoint {
    /// Latency speedup over the GPU.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.gpu_latency_s / self.rpu_latency_s
    }

    /// Energy-per-inference improvement over the GPU.
    #[must_use]
    pub fn epi_improvement(&self) -> f64 {
        self.gpu_energy_j / self.rpu_energy_j
    }
}

/// Results for Fig. 13.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// All samples, model-major then ascending batch.
    pub points: Vec<SweepPoint>,
}

/// Batch sizes swept.
pub const BATCHES: [u32; 6] = [1, 2, 4, 8, 16, 64];

/// The pairings the paper plots: `(model, number of RPU CUs, H100s)`.
#[must_use]
pub fn pairings() -> Vec<(ModelConfig, u32, u32)> {
    vec![
        (ModelConfig::llama3_8b(), 64, 1),
        (ModelConfig::llama3_70b(), 128, 1),
    ]
}

/// Runs the Fig. 13 sweep sequentially.
#[must_use]
pub fn run() -> Fig13 {
    run_with(&Engine::sequential())
}

/// Runs the Fig. 13 sweep at mid-generation context (8k prefill + ~1k
/// of the 2k decode tokens), one engine grid point per
/// (pairing, batch); non-deploying points drop out in order.
#[must_use]
pub fn run_with(engine: &Engine) -> Fig13 {
    let seq = 9 * 1024;
    let prec = Precision::mxfp4_inference();
    let gpu_prec = Precision::gpu_w4a16();
    let sweep_grid = grid(&pairings(), &BATCHES);
    let points = engine
        .par_map(&sweep_grid, |_, ((model, cus, gpus), batch)| {
            let batch = *batch;
            let gpu = GpuSystem::new(GpuSpec::h100_sxm(), *gpus);
            let sys = RpuSystem::with_optimal_memory(model, prec, batch, seq, *cus).ok()?;
            let report = sys.decode_step(model, batch, seq).ok()?;
            let wl = DecodeWorkload::new(model, gpu_prec, batch, seq);
            let b = f64::from(batch);
            Some(SweepPoint {
                model: model.name,
                batch,
                rpu_latency_s: report.total_time_s,
                gpu_latency_s: gpu.decode_step_latency(&wl),
                rpu_energy_j: report.system_energy_j() / b,
                gpu_energy_j: gpu.decode_step_energy_j(&wl) / b,
            })
        })
        .into_iter()
        .flatten()
        .collect();
    Fig13 { points }
}

impl Fig13 {
    /// The sample for `(model, batch)`.
    #[must_use]
    pub fn point(&self, model: &str, batch: u32) -> Option<&SweepPoint> {
        self.points
            .iter()
            .find(|p| p.model == model && p.batch == batch)
    }

    /// Renders the sweep.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fig. 13: RPU vs H100 across batch sizes (8k/2k)",
            &[
                "model",
                "batch",
                "RPU ms/step",
                "H100 ms/step",
                "speedup",
                "EPI improvement",
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                Cell::str(p.model),
                Cell::int(i64::from(p.batch)),
                Cell::num(p.rpu_latency_s * 1e3, 3),
                Cell::num(p.gpu_latency_s * 1e3, 2),
                Cell::str(format!("{:.1}x", p.speedup())),
                Cell::str(format!("{:.1}x", p.epi_improvement())),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batch_speedup_over_40x() {
        // Paper: "At small batch sizes, the RPU shines, delivering over
        // 40-50x speedup".
        let f = run();
        let p = f.point("Llama3-70B", 1).unwrap();
        assert!(
            p.speedup() > 25.0 && p.speedup() < 90.0,
            "70B BS1 speedup {}",
            p.speedup()
        );
    }

    #[test]
    fn speedup_declines_with_batch() {
        // Larger batches improve the GPU's compute efficiency, so the
        // gap narrows (plateauing at ~15-20x in the paper).
        let f = run();
        for model in ["Llama3-8B", "Llama3-70B"] {
            let lo = f.point(model, 1).unwrap().speedup();
            let hi = f.point(model, 64).unwrap().speedup();
            assert!(hi < lo, "{model}: speedup must decline ({lo} -> {hi})");
            assert!(hi > 3.0, "{model}: RPU must stay ahead at batch 64 ({hi})");
        }
    }

    #[test]
    fn energy_improvement_high_at_low_batch() {
        // Paper: 8-10x energy-per-inference at small batch.
        let f = run();
        let p = f.point("Llama3-70B", 1).unwrap();
        assert!(
            p.epi_improvement() > 4.0 && p.epi_improvement() < 25.0,
            "EPI improvement {}",
            p.epi_improvement()
        );
    }

    #[test]
    fn rpu_keeps_energy_lead_across_batches() {
        let f = run();
        for p in &f.points {
            assert!(
                p.epi_improvement() > 1.0,
                "{} batch {}: GPU must not win on energy",
                p.model,
                p.batch
            );
        }
    }

    #[test]
    fn per_token_energy_falls_with_batch_on_both() {
        let f = run();
        for model in ["Llama3-8B", "Llama3-70B"] {
            let lo = f.point(model, 1).unwrap();
            let hi = f.point(model, 64).unwrap();
            assert!(
                hi.gpu_energy_j < lo.gpu_energy_j,
                "{model}: GPU energy/token"
            );
        }
    }

    #[test]
    fn table_covers_both_models() {
        let s = run().table().to_string();
        assert!(s.contains("Llama3-8B") && s.contains("Llama3-70B"));
    }

    #[test]
    fn parallel_runs_render_identically() {
        let seq = run().table().to_string();
        let par = run_with(&Engine::new(8)).table().to_string();
        assert_eq!(seq, par);
    }
}
