//! §VIII named design points: edge and datacenter RPU deployments sized
//! by TDP budget, the peak-performance configurations, the >200 TB/s
//! tensor-parallel bandwidth claim, and the 412× EDP improvement.

use crate::dse::optimal_memory;
use crate::RpuSystem;
use rpu_gpu::{GpuSpec, GpuSystem};
use rpu_models::{DecodeWorkload, ModelConfig, Precision};
use rpu_util::table::{Cell, Table};

/// One named deployment.
#[derive(Debug, Clone)]
pub struct DesignPoint {
    /// Deployment label.
    pub label: String,
    /// Model name.
    pub model: &'static str,
    /// CU count.
    pub num_cus: u32,
    /// System TDP, watts.
    pub tdp_w: f64,
    /// Selected memory BW/Cap, 1/s.
    pub bw_per_cap: f64,
    /// Token latency, ms.
    pub ms_per_token: f64,
    /// Aggregate memory bandwidth, TB/s.
    pub mem_bw_tb_s: f64,
}

/// Results for the §VIII design-point study.
#[derive(Debug, Clone)]
pub struct DesignPoints {
    /// All named deployments.
    pub points: Vec<DesignPoint>,
    /// EDP improvement of the 428-CU 405B RPU over a 4×H100.
    pub edp_improvement_405b: f64,
}

fn build_point(
    label: &str,
    model: &ModelConfig,
    num_cus: u32,
    prec: Precision,
    seq: u32,
) -> Option<DesignPoint> {
    let sku = optimal_memory(model, prec, 1, seq, num_cus)?;
    let sys = RpuSystem::build(num_cus, sku.config, prec).ok()?;
    let latency = sys.token_latency(model, 1, seq).ok()?;
    Some(DesignPoint {
        label: label.to_string(),
        model: model.name,
        num_cus,
        tdp_w: sys.tdp_w(),
        bw_per_cap: sku.bw_per_cap,
        ms_per_token: latency * 1e3,
        mem_bw_tb_s: sys.arch.mem_bandwidth() / 1e12,
    })
}

/// Largest CU count whose system TDP fits `budget_w` for the workload's
/// optimal SKU (searched over the SKU/CU fixed point).
fn cus_for_budget(model: &ModelConfig, prec: Precision, seq: u32, budget_w: f64) -> u32 {
    let mut best = 0;
    for cus in (4..=1024).step_by(4) {
        let Some(sku) = optimal_memory(model, prec, 1, seq, cus) else {
            continue;
        };
        let Ok(sys) = RpuSystem::build(cus, sku.config, prec) else {
            continue;
        };
        if sys.tdp_w() <= budget_w {
            best = cus;
        } else if best > 0 {
            break;
        }
    }
    best
}

/// Runs the design-point study.
#[must_use]
pub fn run() -> DesignPoints {
    let prec = Precision::mxfp4_inference();
    let seq = 8192;
    let llama70 = ModelConfig::llama3_70b();
    let llama405 = ModelConfig::llama3_405b();
    let maverick = ModelConfig::llama4_maverick();

    let mut points = Vec::new();
    // Edge deployments (§VIII: 220 W / 260 W).
    let edge70 = cus_for_budget(&llama70, prec, seq, 220.0);
    points.extend(build_point("edge", &llama70, edge70, prec, seq));
    let edge_mav = cus_for_budget(&maverick, prec, seq, 260.0);
    points.extend(build_point("edge", &maverick, edge_mav, prec, seq));
    // Datacenter deployments (1 kW).
    let dc70 = cus_for_budget(&llama70, prec, seq, 1000.0);
    points.extend(build_point("datacenter", &llama70, dc70, prec, seq));
    let dc_mav = cus_for_budget(&maverick, prec, seq, 1000.0);
    points.extend(build_point("datacenter", &maverick, dc_mav, prec, seq));
    // Peak-performance configurations.
    points.extend(build_point("peak", &llama70, 204, prec, seq));
    points.extend(build_point("peak", &llama405, 428, prec, seq));
    points.extend(build_point("peak", &maverick, 128, prec, seq));

    // EDP vs 4xH100 for 405B at the peak configuration.
    let peak405 = points
        .iter()
        .find(|p| p.model == "Llama3-405B" && p.label == "peak")
        .expect("peak 405B point exists");
    let sys = RpuSystem::with_optimal_memory(&llama405, prec, 1, seq, peak405.num_cus)
        .expect("405B fits at peak scale");
    let report = sys.decode_step(&llama405, 1, seq).expect("sim");
    let rpu_edp = report.system_energy_j() * report.total_time_s;
    let gpus = GpuSystem::new(GpuSpec::h100_sxm(), 4);
    let wl = DecodeWorkload::new(&llama405, Precision::gpu_w4a16(), 1, seq);
    let gpu_edp = gpus.decode_step_energy_j(&wl) * gpus.decode_step_latency(&wl);

    DesignPoints {
        points,
        edp_improvement_405b: gpu_edp / rpu_edp,
    }
}

impl DesignPoints {
    /// The point matching `label` and `model`, if present.
    #[must_use]
    pub fn point(&self, label: &str, model: &str) -> Option<&DesignPoint> {
        self.points
            .iter()
            .find(|p| p.label == label && p.model == model)
    }

    /// Renders the design points.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Design points (§VIII): edge, datacenter and peak deployments",
            &[
                "deployment",
                "model",
                "CUs",
                "TDP (W)",
                "BW/Cap",
                "ms/token",
                "mem BW (TB/s)",
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                Cell::str(p.label.clone()),
                Cell::str(p.model),
                Cell::int(i64::from(p.num_cus)),
                Cell::num(p.tdp_w, 0),
                Cell::num(p.bw_per_cap, 0),
                Cell::num(p.ms_per_token, 2),
                Cell::num(p.mem_bw_tb_s, 1),
            ]);
        }
        t.push_row(vec![
            Cell::str("EDP vs 4xH100 (405B)"),
            Cell::str(format!("{:.0}x", self.edp_improvement_405b)),
            Cell::str(""),
            Cell::str(""),
            Cell::str(""),
            Cell::str(""),
            Cell::str(""),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_points_fit_their_budgets() {
        let d = run();
        let e70 = d.point("edge", "Llama3-70B").unwrap();
        assert!(e70.tdp_w <= 220.0, "edge 70B TDP {}", e70.tdp_w);
        let emav = d.point("edge", "Llama4-Maverick").unwrap();
        assert!(emav.tdp_w <= 260.0, "edge Maverick TDP {}", emav.tdp_w);
    }

    #[test]
    fn edge_70b_latency_in_paper_band() {
        // Paper: 3.5 ms/token at 220 W.
        let d = run();
        let p = d.point("edge", "Llama3-70B").unwrap();
        assert!(
            p.ms_per_token > 1.5 && p.ms_per_token < 7.0,
            "{}",
            p.ms_per_token
        );
    }

    #[test]
    fn datacenter_faster_than_edge() {
        let d = run();
        for model in ["Llama3-70B", "Llama4-Maverick"] {
            let edge = d.point("edge", model).unwrap();
            let dc = d.point("datacenter", model).unwrap();
            assert!(dc.ms_per_token < edge.ms_per_token, "{model}");
            assert!(
                dc.bw_per_cap >= edge.bw_per_cap,
                "{model}: bigger scale, higher BW/Cap"
            );
        }
    }

    #[test]
    fn peak_405b_sustains_over_200_tb_s() {
        // §VIII: "the first system capable of sustaining over 200 TB/s of
        // tensor-parallel memory bandwidth during inference".
        let d = run();
        let p = d.point("peak", "Llama3-405B").unwrap();
        assert!(p.mem_bw_tb_s > 200.0, "405B peak BW {}", p.mem_bw_tb_s);
        assert!(
            p.ms_per_token > 0.3 && p.ms_per_token < 3.0,
            "{}",
            p.ms_per_token
        );
    }

    #[test]
    fn peak_latencies_ordered_by_active_size() {
        // Maverick (17B active) < 70B < 405B at their peak scales.
        let d = run();
        let mav = d.point("peak", "Llama4-Maverick").unwrap().ms_per_token;
        let l70 = d.point("peak", "Llama3-70B").unwrap().ms_per_token;
        let l405 = d.point("peak", "Llama3-405B").unwrap().ms_per_token;
        assert!(mav < l70 && l70 < l405, "{mav} < {l70} < {l405}");
    }

    #[test]
    fn edp_improvement_is_two_orders() {
        // Paper: 412x EDP vs 4xH100.
        let d = run();
        assert!(
            d.edp_improvement_405b > 100.0 && d.edp_improvement_405b < 2000.0,
            "EDP {}",
            d.edp_improvement_405b
        );
    }

    #[test]
    fn table_lists_every_point() {
        let d = run();
        assert_eq!(d.table().len(), d.points.len() + 1);
    }
}
