//! Serving sweep: request-level SLO metrics versus offered load.
//!
//! Drives the `rpu-serve` continuous-batching scheduler with the real
//! simulator-backed cost model ([`crate::serving::RpuCostModel`]) over
//! a ladder of Poisson arrival rates, from light load to past
//! saturation, plus one bursty on/off rung at a matched mean load. The
//! headline behaviour is the classic queueing hockey-stick: TTFT and
//! end-to-end tail latency degrade monotonically as offered load
//! approaches the machine's token throughput, while decode utilisation
//! climbs toward 1 — and at the *same* mean load, bursty arrivals pay
//! a far heavier tail than smooth ones.
//!
//! Every rung of the ladder is independent, so [`run_with`] fans the
//! grid out through [`Engine::par_map`]; the memoised cost model is
//! shared across worker threads and only ever caches deterministic
//! simulator outputs, so any job count produces identical bytes.

use crate::engine::Engine;
use crate::serving::sweep_cost_model;
use rpu_models::{LengthDistribution, ModelConfig};
use rpu_serve::{serve, ArrivalProcess, ServeConfig, SloReport, SloTargets, Workload};
use rpu_util::table::{num, Cell, Table};

/// One offered-load sample.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered load (long-run mean), requests/second.
    pub rate_rps: f64,
    /// SLO metrics at this load.
    pub slo: SloReport,
}

/// Results of the serving sweep.
#[derive(Debug, Clone)]
pub struct ServingSweep {
    /// Model served.
    pub model: &'static str,
    /// Decode CUs.
    pub num_cus: u32,
    /// Poisson samples, ascending offered load.
    pub points: Vec<LoadPoint>,
    /// The bursty on/off rung at [`BURSTY_MEAN_RPS`] mean load.
    pub bursty: LoadPoint,
}

/// Decode system scale.
pub const NUM_CUS: u32 = 64;

/// Serving batch-size cap.
pub const MAX_BATCH: u32 = 8;

/// Prompt tokens per request.
pub const PROMPT_LEN: u32 = 1024;

/// Output tokens per request.
pub const OUTPUT_LEN: u32 = 128;

/// Requests simulated per load point.
pub const NUM_REQUESTS: u32 = 160;

/// Offered loads, requests/second (the top rungs sit past saturation).
pub const RATE_SWEEP: [f64; 5] = [60.0, 120.0, 240.0, 480.0, 960.0];

/// Mean offered load of the bursty rung — matched to the middle Poisson
/// rung so the two rows isolate the cost of burstiness alone.
pub const BURSTY_MEAN_RPS: f64 = 240.0;

/// ON-state arrival rate of the bursty rung (50 % duty cycle doubles
/// the instantaneous rate).
pub const BURSTY_ON_RPS: f64 = 480.0;

/// Mean ON and OFF sojourn of the bursty rung, seconds.
pub const BURSTY_SOJOURN_S: f64 = 0.05;

/// The swept workload at one offered load.
#[must_use]
pub fn workload(rate_rps: f64) -> Workload {
    Workload {
        arrivals: ArrivalProcess::Poisson { rate_rps },
        prompt_lens: LengthDistribution::Fixed(PROMPT_LEN),
        output_lens: LengthDistribution::Fixed(OUTPUT_LEN),
        num_requests: NUM_REQUESTS,
        seed: 0x5E21,
        ..Workload::default()
    }
}

/// The bursty on/off workload at [`BURSTY_MEAN_RPS`] mean offered load.
#[must_use]
pub fn bursty_workload() -> Workload {
    let arrivals = ArrivalProcess::OnOff {
        rate_rps: BURSTY_ON_RPS,
        mean_on_s: BURSTY_SOJOURN_S,
        mean_off_s: BURSTY_SOJOURN_S,
    };
    debug_assert!(
        (arrivals.mean_rate_rps().expect("open loop") - BURSTY_MEAN_RPS).abs() < 1e-9,
        "bursty rung must match its Poisson twin's mean load"
    );
    Workload {
        arrivals,
        ..workload(BURSTY_MEAN_RPS)
    }
}

/// Runs one rung: the workload against a handle of the shared memoised
/// cost model.
fn run_point(
    rate_rps: f64,
    wl: &Workload,
    cost: &crate::serving::SharedRpuCostModel,
    config: &ServeConfig,
) -> LoadPoint {
    let mut cost = cost.clone();
    let report = serve(wl, &mut cost, config);
    LoadPoint {
        rate_rps,
        slo: SloReport::new(&report, &SloTargets::interactive()),
    }
}

/// Runs the sweep sequentially: Llama3-8B decode on a 64-CU RPU, GPU
/// prefill tier.
#[must_use]
pub fn run() -> ServingSweep {
    run_with(&Engine::sequential())
}

/// Runs the sweep with every load rung as one engine grid point.
///
/// # Panics
///
/// Panics if the model cannot be deployed at [`NUM_CUS`] (it can).
#[must_use]
pub fn run_with(engine: &Engine) -> ServingSweep {
    let model = ModelConfig::llama3_8b();
    let (config, cost) = sweep_cost_model(NUM_CUS, MAX_BATCH, PROMPT_LEN + OUTPUT_LEN);

    let mut rungs: Vec<(f64, Workload)> = RATE_SWEEP.iter().map(|&r| (r, workload(r))).collect();
    rungs.push((BURSTY_MEAN_RPS, bursty_workload()));
    let mut points = engine.par_map(&rungs, |_, (rate_rps, wl)| {
        run_point(*rate_rps, wl, &cost, &config)
    });
    let bursty = points.pop().expect("the bursty rung is always swept");
    ServingSweep {
        model: model.name,
        num_cus: NUM_CUS,
        points,
        bursty,
    }
}

impl ServingSweep {
    /// The Poisson rung at the bursty rung's mean load — the smooth
    /// twin the bursty row is compared against.
    ///
    /// # Panics
    ///
    /// Panics if [`BURSTY_MEAN_RPS`] is not a sweep rung (it is).
    #[must_use]
    pub fn bursty_twin(&self) -> &LoadPoint {
        self.points
            .iter()
            .find(|p| p.rate_rps == BURSTY_MEAN_RPS)
            .expect("the bursty rung mirrors a Poisson rung")
    }

    /// Renders the sweep as one table, one row per offered load, with
    /// the bursty rung last.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Serving sweep: {} on {} CUs, batch {}, {}+{} tokens",
                self.model, self.num_cus, MAX_BATCH, PROMPT_LEN, OUTPUT_LEN
            ),
            &[
                "req/s",
                "TTFT p50 (ms)",
                "TTFT p99 (ms)",
                "TPOT p99 (ms)",
                "E2E p99 (ms)",
                "goodput (req/s)",
                "util",
            ],
        )
        .with_units(&["req/s", "ms", "ms", "ms", "ms", "req/s", ""]);
        for p in &self.points {
            t.push_row(Self::cells(num(p.rate_rps, 0), p));
        }
        t.push_row(Self::cells(
            format!("{} (bursty)", num(BURSTY_MEAN_RPS, 0)),
            &self.bursty,
        ));
        t
    }

    fn cells(label: String, p: &LoadPoint) -> Vec<Cell> {
        vec![
            Cell::Str(label),
            Cell::num(p.slo.ttft.p50 * 1e3, 2),
            Cell::num(p.slo.ttft.p99 * 1e3, 2),
            Cell::num(p.slo.tpot.p99 * 1e3, 2),
            Cell::num(p.slo.e2e.p99 * 1e3, 2),
            Cell::num(p.slo.goodput_rps, 1),
            Cell::num(p.slo.utilization, 2),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The sweep is deterministic; run it once and share it across the
    /// suite (the reproducibility test still runs its own fresh copy).
    fn sweep() -> &'static ServingSweep {
        static CACHE: OnceLock<ServingSweep> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn tail_latency_degrades_monotonically_with_load() {
        // Acceptance: TTFT/TPOT/p99 degrade monotonically toward
        // saturation (same seed, so arrival tapes are time-scaled
        // copies of each other).
        let s = sweep();
        assert_eq!(s.points.len(), RATE_SWEEP.len());
        for w in s.points.windows(2) {
            assert!(
                w[1].slo.ttft.p99 >= w[0].slo.ttft.p99 * 0.999,
                "TTFT p99 fell: {} -> {}",
                w[0].slo.ttft.p99,
                w[1].slo.ttft.p99
            );
            assert!(
                w[1].slo.ttft.p50 >= w[0].slo.ttft.p50 * 0.999,
                "TTFT p50 fell: {} -> {}",
                w[0].slo.ttft.p50,
                w[1].slo.ttft.p50
            );
            // TPOT is dominated by batch size; admission interleaving
            // wobbles the p99 a few percent between adjacent rungs, so
            // allow that noise while requiring the trend.
            assert!(
                w[1].slo.tpot.p99 >= w[0].slo.tpot.p99 * 0.93,
                "TPOT p99 fell: {} -> {}",
                w[0].slo.tpot.p99,
                w[1].slo.tpot.p99
            );
            assert!(
                w[1].slo.e2e.p99 >= w[0].slo.e2e.p99 * 0.999,
                "E2E p99 fell: {} -> {}",
                w[0].slo.e2e.p99,
                w[1].slo.e2e.p99
            );
        }
        // Across the whole sweep the trends are strict: deeper batches
        // at saturation slow every token.
        let (first, last) = (&s.points[0].slo, &s.points.last().unwrap().slo);
        assert!(last.ttft.p99 > first.ttft.p99);
        assert!(last.tpot.p99 > first.tpot.p99);
        assert!(last.e2e.p99 > first.e2e.p99);
    }

    #[test]
    fn saturation_is_reached_by_the_top_rung() {
        let s = sweep();
        let first = &s.points[0].slo;
        let last = &s.points.last().unwrap().slo;
        // Light load: most requests in SLO, low utilisation.
        assert!(
            first.slo_attainment > 0.9,
            "light-load attainment {}",
            first.slo_attainment
        );
        // Past saturation: queueing dominates; tail latency explodes,
        // SLO attainment erodes and goodput rolls over (the classic
        // throughput-collapse signature).
        assert!(last.ttft.p99 > 10.0 * first.ttft.p99);
        assert!(last.utilization > first.utilization);
        assert!(
            last.slo_attainment < 0.9,
            "attainment {}",
            last.slo_attainment
        );
        let peak_goodput = s
            .points
            .iter()
            .map(|p| p.slo.goodput_rps)
            .fold(0.0, f64::max);
        assert!(
            last.goodput_rps < peak_goodput,
            "goodput must roll over: top rung {} vs peak {peak_goodput}",
            last.goodput_rps
        );
    }

    #[test]
    fn every_point_completes_the_workload() {
        let s = sweep();
        for p in s.points.iter().chain(std::iter::once(&s.bursty)) {
            assert_eq!(p.slo.completed, NUM_REQUESTS);
            assert_eq!(p.slo.rejected, 0);
            assert!(p.slo.peak_batch <= MAX_BATCH);
        }
    }

    #[test]
    fn bursts_cost_tail_latency_at_matched_mean_load() {
        // The bursty rung offers the same long-run load as its Poisson
        // twin but concentrates it into on-periods at twice the rate,
        // so its TTFT tail must be at least as bad.
        let s = sweep();
        let twin = s.bursty_twin();
        assert_eq!(s.bursty.rate_rps, twin.rate_rps);
        assert!(
            s.bursty.slo.ttft.p99 >= twin.slo.ttft.p99,
            "bursty p99 TTFT {} vs Poisson twin {}",
            s.bursty.slo.ttft.p99,
            twin.slo.ttft.p99
        );
    }

    #[test]
    fn bit_reproducible_across_invocations_and_job_counts() {
        // Acceptance: a seeded run is bit-reproducible, sequentially
        // and through the parallel engine.
        let a = sweep();
        for b in [run(), run_with(&Engine::new(8))] {
            for (x, y) in a.points.iter().zip(&b.points) {
                assert_eq!(x.slo, y.slo);
            }
            assert_eq!(a.bursty.slo, b.bursty.slo);
        }
    }

    #[test]
    fn table_has_one_row_per_rate_plus_the_bursty_rung() {
        let t = sweep().table();
        assert_eq!(t.len(), RATE_SWEEP.len() + 1);
        assert!(t.to_string().contains("(bursty)"));
    }
}
