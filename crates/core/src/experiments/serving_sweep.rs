//! Serving sweep: request-level SLO metrics versus offered load.
//!
//! Drives the `rpu-serve` continuous-batching scheduler with the real
//! simulator-backed cost model ([`RpuCostModel`]) over a ladder of
//! Poisson arrival rates, from light load to past saturation. The
//! headline behaviour is the classic queueing hockey-stick: TTFT and
//! end-to-end tail latency degrade monotonically as offered load
//! approaches the machine's token throughput, while decode utilisation
//! climbs toward 1.

use crate::serving::RpuCostModel;
use crate::RpuSystem;
use rpu_models::{LengthDistribution, ModelConfig, Precision};
use rpu_serve::{serve, ArrivalProcess, ServeConfig, SloReport, SloTargets, Workload};
use rpu_util::table::{num, Table};

/// One offered-load sample.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Offered load, requests/second.
    pub rate_rps: f64,
    /// SLO metrics at this load.
    pub slo: SloReport,
}

/// Results of the serving sweep.
#[derive(Debug, Clone)]
pub struct ServingSweep {
    /// Model served.
    pub model: &'static str,
    /// Decode CUs.
    pub num_cus: u32,
    /// Samples, ascending offered load.
    pub points: Vec<LoadPoint>,
}

/// Decode system scale.
pub const NUM_CUS: u32 = 64;

/// Serving batch-size cap.
pub const MAX_BATCH: u32 = 8;

/// Prompt tokens per request.
pub const PROMPT_LEN: u32 = 1024;

/// Output tokens per request.
pub const OUTPUT_LEN: u32 = 128;

/// Requests simulated per load point.
pub const NUM_REQUESTS: u32 = 160;

/// Offered loads, requests/second (the top rungs sit past saturation).
pub const RATE_SWEEP: [f64; 5] = [60.0, 120.0, 240.0, 480.0, 960.0];

/// The swept workload at one offered load.
#[must_use]
pub fn workload(rate_rps: f64) -> Workload {
    Workload {
        arrivals: ArrivalProcess::Poisson { rate_rps },
        prompt_lens: LengthDistribution::Fixed(PROMPT_LEN),
        output_lens: LengthDistribution::Fixed(OUTPUT_LEN),
        num_requests: NUM_REQUESTS,
        seed: 0x5E21,
        ..Workload::default()
    }
}

/// Runs the sweep: Llama3-8B decode on a 64-CU RPU, GPU prefill tier.
///
/// # Panics
///
/// Panics if the model cannot be deployed at [`NUM_CUS`] (it can).
#[must_use]
pub fn run() -> ServingSweep {
    let model = ModelConfig::llama3_8b();
    let prec = Precision::mxfp4_inference();
    let config = ServeConfig {
        max_batch: MAX_BATCH,
        ..ServeConfig::default()
    };
    // Provision for the *bucketed* maximum context: decode iterations
    // are priced at bucketed contexts, so that is the KV footprint the
    // machine must actually hold.
    let max_context = config.bucket(PROMPT_LEN + OUTPUT_LEN);
    let sys = RpuSystem::with_optimal_memory(&model, prec, MAX_BATCH, max_context, NUM_CUS)
        .expect("8B deploys on 64 CUs");
    let slo = SloTargets::interactive();

    let mut points = Vec::new();
    for &rate_rps in &RATE_SWEEP {
        // A fresh cost model per point keeps points independent; the
        // memoised decode steps repeat across points anyway.
        let mut cost = RpuCostModel::new(sys, model);
        let report = serve(&workload(rate_rps), &mut cost, &config);
        points.push(LoadPoint {
            rate_rps,
            slo: SloReport::new(&report, &slo),
        });
    }
    ServingSweep {
        model: model.name,
        num_cus: NUM_CUS,
        points,
    }
}

impl ServingSweep {
    /// Renders the sweep as one table, one row per offered load.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Serving sweep: {} on {} CUs, batch {}, {}+{} tokens",
                self.model, self.num_cus, MAX_BATCH, PROMPT_LEN, OUTPUT_LEN
            ),
            &[
                "req/s",
                "TTFT p50 (ms)",
                "TTFT p99 (ms)",
                "TPOT p99 (ms)",
                "E2E p99 (ms)",
                "goodput (req/s)",
                "util",
            ],
        );
        for p in &self.points {
            t.row(&[
                num(p.rate_rps, 0),
                num(p.slo.ttft.p50 * 1e3, 2),
                num(p.slo.ttft.p99 * 1e3, 2),
                num(p.slo.tpot.p99 * 1e3, 2),
                num(p.slo.e2e.p99 * 1e3, 2),
                num(p.slo.goodput_rps, 1),
                num(p.slo.utilization, 2),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The sweep is deterministic; run it once and share it across the
    /// suite (the reproducibility test still runs its own fresh copy).
    fn sweep() -> &'static ServingSweep {
        static CACHE: OnceLock<ServingSweep> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn tail_latency_degrades_monotonically_with_load() {
        // Acceptance: TTFT/TPOT/p99 degrade monotonically toward
        // saturation (same seed, so arrival tapes are time-scaled
        // copies of each other).
        let s = sweep();
        assert_eq!(s.points.len(), RATE_SWEEP.len());
        for w in s.points.windows(2) {
            assert!(
                w[1].slo.ttft.p99 >= w[0].slo.ttft.p99 * 0.999,
                "TTFT p99 fell: {} -> {}",
                w[0].slo.ttft.p99,
                w[1].slo.ttft.p99
            );
            assert!(
                w[1].slo.ttft.p50 >= w[0].slo.ttft.p50 * 0.999,
                "TTFT p50 fell: {} -> {}",
                w[0].slo.ttft.p50,
                w[1].slo.ttft.p50
            );
            // TPOT is dominated by batch size; admission interleaving
            // wobbles the p99 a few percent between adjacent rungs, so
            // allow that noise while requiring the trend.
            assert!(
                w[1].slo.tpot.p99 >= w[0].slo.tpot.p99 * 0.93,
                "TPOT p99 fell: {} -> {}",
                w[0].slo.tpot.p99,
                w[1].slo.tpot.p99
            );
            assert!(
                w[1].slo.e2e.p99 >= w[0].slo.e2e.p99 * 0.999,
                "E2E p99 fell: {} -> {}",
                w[0].slo.e2e.p99,
                w[1].slo.e2e.p99
            );
        }
        // Across the whole sweep the trends are strict: deeper batches
        // at saturation slow every token.
        let (first, last) = (&s.points[0].slo, &s.points.last().unwrap().slo);
        assert!(last.ttft.p99 > first.ttft.p99);
        assert!(last.tpot.p99 > first.tpot.p99);
        assert!(last.e2e.p99 > first.e2e.p99);
    }

    #[test]
    fn saturation_is_reached_by_the_top_rung() {
        let s = sweep();
        let first = &s.points[0].slo;
        let last = &s.points.last().unwrap().slo;
        // Light load: most requests in SLO, low utilisation.
        assert!(
            first.slo_attainment > 0.9,
            "light-load attainment {}",
            first.slo_attainment
        );
        // Past saturation: queueing dominates; tail latency explodes,
        // SLO attainment erodes and goodput rolls over (the classic
        // throughput-collapse signature).
        assert!(last.ttft.p99 > 10.0 * first.ttft.p99);
        assert!(last.utilization > first.utilization);
        assert!(
            last.slo_attainment < 0.9,
            "attainment {}",
            last.slo_attainment
        );
        let peak_goodput = s
            .points
            .iter()
            .map(|p| p.slo.goodput_rps)
            .fold(0.0, f64::max);
        assert!(
            last.goodput_rps < peak_goodput,
            "goodput must roll over: top rung {} vs peak {peak_goodput}",
            last.goodput_rps
        );
    }

    #[test]
    fn every_point_completes_the_workload() {
        let s = sweep();
        for p in &s.points {
            assert_eq!(p.slo.completed, NUM_REQUESTS);
            assert_eq!(p.slo.rejected, 0);
            assert!(p.slo.peak_batch <= MAX_BATCH);
        }
    }

    #[test]
    fn bit_reproducible_across_invocations() {
        // Acceptance: a seeded Poisson run is bit-reproducible
        // (one fresh run compared against the shared one).
        let a = sweep();
        let b = run();
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.slo, y.slo);
        }
    }

    #[test]
    fn table_has_one_row_per_rate() {
        let t = sweep().table();
        assert_eq!(t.len(), RATE_SWEEP.len());
    }
}
