//! Fleet sweep: capacity planning across router policies.
//!
//! The policy sweep asks "which *scheduler* holds the interactive SLO
//! on one machine?"; this sweep asks the question a capacity planner
//! asks next: **at a given offered load, how many replicas do I need —
//! and how much does the router choice change that number?** It serves
//! a two-class workload (interactive chat sharing the fleet with
//! offline batch jobs) across [`rpu_serve::Fleet`]s of 1..N
//! simulator-backed replicas, once per [`RouterKind`], and reports the
//! minimum replica count at which the interactive class's p99 TTFT
//! meets its target.
//!
//! The headline is the capacity-planning gap: blind round-robin keeps
//! landing long batch jobs on already-backlogged replicas, so at high
//! load it needs strictly more replicas than join-shortest-queue (and
//! least-KV-load) to hold the same tail — telemetry-driven routing is
//! worth real machines.

use crate::engine::{grid, Engine};
use crate::serving::{sweep_cost_model, SharedRpuCostModel};
use rpu_models::{LengthDistribution, ModelConfig};
use rpu_serve::{
    ArrivalProcess, ClassSpec, Fifo, FleetBuilder, FleetReport, JoinShortestQueue, LeastKvLoad,
    RoundRobin, Router, ServeConfig, SessionAffinity, Workload,
};
use rpu_util::table::{num, Cell, Table};

/// Decode CUs per replica (a quarter of the policy sweep's machine:
/// capacity planning is about counting small boxes, not sizing one big
/// one).
pub const NUM_CUS: u32 = 16;

/// Serving batch-size cap per replica.
pub const MAX_BATCH: u32 = 4;

/// Requests simulated per (load, router, fleet-size) point.
pub const NUM_REQUESTS: u32 = 128;

/// Largest fleet tried before a router is declared unable to hold the
/// SLO at a load.
pub const MAX_REPLICAS: u32 = 10;

/// Offered loads, requests/second. One replica holds the bottom rung;
/// the top rung needs most of the allowed fleet.
pub const RATE_SWEEP: [f64; 4] = [50.0, 100.0, 200.0, 400.0];

/// The fleet routers under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Blind rotation (the baseline).
    RoundRobin,
    /// Fewest queued + resident requests, KV-capacity aware.
    Jsq,
    /// Lowest committed-KV fraction.
    LeastKv,
    /// Consistent hashing on the session key.
    Affinity,
}

impl RouterKind {
    /// Every router, in table order.
    pub const ALL: [Self; 4] = [Self::RoundRobin, Self::Jsq, Self::LeastKv, Self::Affinity];

    /// Short name for tables and golden keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::RoundRobin => "rr",
            Self::Jsq => "jsq",
            Self::LeastKv => "least-kv",
            Self::Affinity => "affinity",
        }
    }

    /// Instantiates the router (fresh cursor/ring state per run).
    #[must_use]
    pub fn build(self) -> Box<dyn Router> {
        match self {
            Self::RoundRobin => Box::new(RoundRobin::new()),
            Self::Jsq => Box::new(JoinShortestQueue),
            Self::LeastKv => Box::new(LeastKvLoad),
            Self::Affinity => Box::new(SessionAffinity::new()),
        }
    }
}

/// The two tenant classes sharing the fleet: many short interactive
/// sessions and a few heavy batch jobs. The batch jobs are what blind
/// routing mishandles — two of them stacked on one replica wedge its
/// queue for hundreds of milliseconds.
#[must_use]
pub fn classes() -> Vec<ClassSpec> {
    vec![
        ClassSpec {
            share: 0.8,
            tenants: 24,
            prompt_lens: Some(LengthDistribution::Uniform { lo: 64, hi: 384 }),
            output_lens: Some(LengthDistribution::Exponential {
                mean: 24.0,
                cap: 96,
            }),
            ..ClassSpec::interactive()
        },
        ClassSpec {
            share: 0.2,
            tenants: 4,
            prompt_lens: Some(LengthDistribution::Fixed(1536)),
            output_lens: Some(LengthDistribution::Fixed(384)),
            ..ClassSpec::batch()
        },
    ]
}

/// The swept workload at one offered load.
#[must_use]
pub fn workload(rate_rps: f64) -> Workload {
    Workload {
        arrivals: ArrivalProcess::Poisson { rate_rps },
        prompt_lens: LengthDistribution::Fixed(256),
        output_lens: LengthDistribution::Fixed(32),
        num_requests: NUM_REQUESTS,
        seed: 0xF1EE7,
        classes: vec![],
    }
    .with_classes(classes())
}

/// One router's capacity answer at one offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct RouterCapacity {
    /// Which router.
    pub router: RouterKind,
    /// Minimum replicas holding the interactive p99 TTFT target, or
    /// `None` if even [`MAX_REPLICAS`] does not.
    pub replicas_needed: Option<u32>,
    /// Interactive-class p99 TTFT at that fleet size (at
    /// [`MAX_REPLICAS`] when the target was never met), seconds.
    pub p99_ttft_s: f64,
    /// Decode-load imbalance (max/mean) at that fleet size.
    pub imbalance: f64,
    /// Fleet decode utilisation at that fleet size.
    pub fleet_utilization: f64,
}

/// All routers at one offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct CapacityPoint {
    /// Offered load, requests/second.
    pub rate_rps: f64,
    /// One entry per [`RouterKind::ALL`] entry, in that order.
    pub routers: Vec<RouterCapacity>,
}

impl CapacityPoint {
    /// The capacity answer for one router.
    ///
    /// # Panics
    ///
    /// Panics if the router is missing (the sweep always runs all).
    #[must_use]
    pub fn router(&self, router: RouterKind) -> &RouterCapacity {
        self.routers
            .iter()
            .find(|r| r.router == router)
            .expect("sweep runs every router")
    }
}

/// Results of the fleet sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSweep {
    /// Model served.
    pub model: &'static str,
    /// Decode CUs per replica.
    pub num_cus: u32,
    /// Samples, ascending offered load.
    pub points: Vec<CapacityPoint>,
}

/// Runs one fleet simulation: `n` identical replicas (FIFO admission,
/// shared memoised cost model) under one router.
fn run_fleet(
    n: u32,
    cost: &SharedRpuCostModel,
    config: &ServeConfig,
    wl: &Workload,
    router: RouterKind,
) -> FleetReport {
    let mut fleet = FleetBuilder::new()
        .group(
            n as usize,
            config,
            || Box::new(cost.clone()),
            || Box::new(Fifo),
        )
        .build();
    fleet.serve(wl, router.build().as_mut())
}

/// Runs the sweep sequentially: Llama3-8B decode on 16-CU replicas,
/// GPU prefill tier, every router at every load, fleets grown until
/// the interactive p99 TTFT target holds.
#[must_use]
pub fn run() -> FleetSweep {
    run_with(&Engine::sequential())
}

/// Runs the sweep with every (load, router) pair as one engine grid
/// point — the grow-the-fleet loop inside a point is inherently
/// sequential (each size decides whether to try the next), but the
/// 16 points are independent.
///
/// Every replica of every fleet size — across all worker threads —
/// shares one memoised cost model: identical machines price identical
/// decode steps, so the slow part (event-driven simulation) runs once
/// per distinct (batch, context) across the whole sweep, and the cache
/// holds the same deterministic values no matter which thread fills it.
///
/// # Panics
///
/// Panics if the model cannot be deployed at [`NUM_CUS`] (it can).
#[must_use]
pub fn run_with(engine: &Engine) -> FleetSweep {
    let model = ModelConfig::llama3_8b();
    // Provision each replica for the longest class's bucketed context
    // (the batch class: 1536 prompt + 384 output tokens).
    let (config, cost) = sweep_cost_model(NUM_CUS, MAX_BATCH, 1536 + 384);
    let specs = classes();
    let target = specs[0].slo.ttft_s;

    let points_grid = grid(&RATE_SWEEP, &RouterKind::ALL);
    let capacities = engine.par_map(&points_grid, |_, &(rate_rps, kind)| {
        let wl = workload(rate_rps);
        // Grow the fleet until the target holds; when even
        // MAX_REPLICAS does not, the last-tried state is reported
        // with `replicas_needed: None`.
        let mut capacity: Option<RouterCapacity> = None;
        for n in 1..=MAX_REPLICAS {
            let report = run_fleet(n, &cost, &config, &wl, kind);
            let p99 = report.multi_class(&specs).classes[0].report.ttft.p99;
            let met = p99 <= target;
            capacity = Some(RouterCapacity {
                router: kind,
                replicas_needed: met.then_some(n),
                p99_ttft_s: p99,
                imbalance: report.imbalance(),
                fleet_utilization: report.fleet_utilization(),
            });
            if met {
                break;
            }
        }
        capacity.expect("at least one fleet size is tried")
    });
    // Reassemble the row-major grid into one CapacityPoint per rate.
    let mut capacities = capacities.into_iter();
    let points = RATE_SWEEP
        .iter()
        .map(|&rate_rps| CapacityPoint {
            rate_rps,
            routers: capacities.by_ref().take(RouterKind::ALL.len()).collect(),
        })
        .collect();
    FleetSweep {
        model: model.name,
        num_cus: NUM_CUS,
        points,
    }
}

impl FleetSweep {
    /// Minimum replicas holding the interactive p99 TTFT target for one
    /// router at one offered load ([`MAX_REPLICAS`]` + 1` when it never
    /// holds — a sortable "more than the budget" sentinel).
    ///
    /// # Panics
    ///
    /// Panics if the rate is not a sweep rung.
    #[must_use]
    pub fn replicas_needed(&self, router: RouterKind, rate_rps: f64) -> u32 {
        let point = self
            .points
            .iter()
            .find(|p| p.rate_rps == rate_rps)
            .expect("rate is a sweep rung");
        point
            .router(router)
            .replicas_needed
            .unwrap_or(MAX_REPLICAS + 1)
    }

    /// Replicas the informed routers save over round-robin at the top
    /// rung: `rr - min(jsq, least-kv, affinity)`. The sweep's headline;
    /// positive means telemetry is worth machines.
    #[must_use]
    pub fn top_rung_savings(&self) -> i64 {
        let top = *RATE_SWEEP.last().expect("non-empty sweep");
        let best_informed = [RouterKind::Jsq, RouterKind::LeastKv, RouterKind::Affinity]
            .into_iter()
            .map(|k| self.replicas_needed(k, top))
            .min()
            .expect("non-empty router set");
        i64::from(self.replicas_needed(RouterKind::RoundRobin, top)) - i64::from(best_informed)
    }

    /// Renders the sweep as one table: per load, each router's minimum
    /// replica count (with the p99 TTFT it achieves there).
    #[must_use]
    pub fn table(&self) -> Table {
        let target = classes()[0].slo.ttft_s;
        let mut header: Vec<String> = vec!["req/s".into()];
        for kind in RouterKind::ALL {
            header.push(format!("{} replicas", kind.name()));
        }
        for kind in RouterKind::ALL {
            header.push(format!("{} p99 TTFT (ms)", kind.name()));
        }
        header.push("jsq imbalance".into());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            &format!(
                "Fleet sweep: {} on {}-CU replicas, batch {}, replicas to hold \
                 interactive p99 TTFT <= {} ms (max {})",
                self.model,
                self.num_cus,
                MAX_BATCH,
                num(target * 1e3, 0),
                MAX_REPLICAS
            ),
            &header_refs,
        );
        for p in &self.points {
            let mut row = vec![Cell::num(p.rate_rps, 0)];
            for kind in RouterKind::ALL {
                row.push(match p.router(kind).replicas_needed {
                    Some(n) => Cell::int(i64::from(n)),
                    None => Cell::str(format!(">{MAX_REPLICAS}")),
                });
            }
            for kind in RouterKind::ALL {
                row.push(Cell::num(p.router(kind).p99_ttft_s * 1e3, 2));
            }
            row.push(Cell::num(p.router(RouterKind::Jsq).imbalance, 2));
            t.push_row(row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The sweep is deterministic; run it once and share it across the
    /// suite (the reproducibility test still runs its own fresh copy).
    fn sweep() -> &'static FleetSweep {
        static CACHE: OnceLock<FleetSweep> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn headline_informed_routing_saves_replicas_at_high_load() {
        // Acceptance: at the top rung, join-shortest-queue (or another
        // telemetry-driven router) holds the interactive p99 TTFT
        // target with strictly fewer replicas than round-robin.
        let s = sweep();
        let top = *RATE_SWEEP.last().unwrap();
        let rr = s.replicas_needed(RouterKind::RoundRobin, top);
        let jsq = s.replicas_needed(RouterKind::Jsq, top);
        assert!(
            jsq < rr,
            "JSQ must need fewer replicas than round-robin at {top} req/s: jsq {jsq} vs rr {rr}"
        );
        assert!(s.top_rung_savings() >= 1);
    }

    #[test]
    fn every_router_meets_the_target_within_budget_at_the_bottom_rung() {
        let s = sweep();
        for kind in RouterKind::ALL {
            let n = s.replicas_needed(kind, RATE_SWEEP[0]);
            assert!(
                n <= MAX_REPLICAS,
                "{} needs {n} replicas at the bottom rung",
                kind.name()
            );
        }
    }

    #[test]
    fn replica_demand_is_monotone_in_load() {
        let s = sweep();
        for kind in RouterKind::ALL {
            for w in s.points.windows(2) {
                let lo = w[0]
                    .router(kind)
                    .replicas_needed
                    .unwrap_or(MAX_REPLICAS + 1);
                let hi = w[1]
                    .router(kind)
                    .replicas_needed
                    .unwrap_or(MAX_REPLICAS + 1);
                assert!(
                    hi >= lo,
                    "{}: more load needs at least as many replicas ({lo} -> {hi})",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn capacity_points_carry_sane_fleet_metrics() {
        let s = sweep();
        assert_eq!(s.points.len(), RATE_SWEEP.len());
        for p in &s.points {
            assert_eq!(p.routers.len(), RouterKind::ALL.len());
            for r in &p.routers {
                assert!(r.p99_ttft_s > 0.0);
                assert!(r.imbalance >= 1.0 - 1e-9);
                assert!((0.0..=1.0 + 1e-9).contains(&r.fleet_utilization));
            }
        }
    }

    #[test]
    fn bit_reproducible_across_invocations_and_job_counts() {
        // Acceptance: the whole sweep (every router, load and fleet
        // size) is bit-reproducible for the fixed seed — sequentially
        // and through the parallel engine.
        let a = sweep();
        assert_eq!(a, &run());
        assert_eq!(a, &run_with(&Engine::new(8)));
    }

    #[test]
    fn table_has_one_row_per_rate() {
        let t = sweep().table();
        assert_eq!(t.len(), RATE_SWEEP.len());
        let rendered = t.to_string();
        assert!(rendered.contains("jsq"), "missing router column");
    }
}
