//! Fig. 8: simulation of one compute unit — decoupled memory / compute /
//! network pipeline timelines, buffer occupancy and power, for batch
//! size 1 (seq 16k) and batch size 32 (seq 8k) Llama3-8B on a 64-CU RPU.

use crate::RpuSystem;
use rpu_models::{ModelConfig, Precision};
use rpu_sim::{SimConfig, SimReport};
use rpu_util::table::{Cell, Table};

/// One simulated scenario (a batch/seq-len pairing).
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Batch size.
    pub batch: u32,
    /// Sequence length.
    pub seq_len: u32,
    /// Full simulator report, with the time-binned trace attached.
    pub report: SimReport,
}

/// Results for Fig. 8.
#[derive(Debug, Clone)]
pub struct Fig08 {
    /// Batch-1, 16k-context scenario (top panel).
    pub bs1: Scenario,
    /// Batch-32, 8k-context scenario (bottom panel).
    pub bs32: Scenario,
}

fn simulate(batch: u32, seq_len: u32) -> Scenario {
    let model = ModelConfig::llama3_8b();
    let prec = Precision::mxfp4_inference();
    let mut sys = RpuSystem::with_optimal_memory(&model, prec, batch, seq_len, 64)
        .expect("Llama3-8B fits a 64-CU RPU");
    // Bin the trace finely enough to resolve single layers (~0.07 us of
    // weight streaming per layer at BS=1).
    sys.sim_config = SimConfig {
        trace_bin_s: Some(50e-9),
        ..SimConfig::default()
    };
    let report = sys
        .decode_step(&model, batch, seq_len)
        .expect("simulation succeeds");
    Scenario {
        batch,
        seq_len,
        report,
    }
}

/// Runs both Fig. 8 scenarios.
#[must_use]
pub fn run() -> Fig08 {
    Fig08 {
        bs1: simulate(1, 16 * 1024),
        bs32: simulate(32, 8 * 1024),
    }
}

impl Scenario {
    /// Summary row: `(label, step time us, mem util, comp util, net
    /// util, peak buffer KB, avg power W/CU)`.
    #[must_use]
    pub fn summary(&self) -> (String, f64, f64, f64, f64, f64, f64) {
        let r = &self.report;
        let cores_per_cu = 16.0;
        let cu_power = r.avg_system_power_w() / r.plan.num_cus as f64;
        (
            format!("BS={} seq={}k", self.batch, self.seq_len / 1024),
            r.total_time_s * 1e6,
            r.mem_bw_utilization(),
            r.compute_utilization(),
            r.net_busy_s / r.total_time_s,
            r.peak_buffer_bytes as f64 * cores_per_cu / 1024.0,
            cu_power,
        )
    }
}

impl Fig08 {
    /// Per-token slowdown of the batch-32 step relative to batch-1
    /// (paper: ~13×).
    #[must_use]
    pub fn bs32_step_slowdown(&self) -> f64 {
        self.bs32.report.total_time_s / self.bs1.report.total_time_s
    }

    /// Renders the scenario summaries and trace excerpts.
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut t = Table::new(
            "Fig. 8: one-CU simulation, Llama3-8B MXFP4, 64 CUs",
            &[
                "scenario",
                "step (us)",
                "mem util",
                "comp util",
                "net util",
                "peak buf (KB/CU)",
                "power (W/CU)",
            ],
        );
        for s in [&self.bs1, &self.bs32] {
            let (label, us, m, c, n, buf, p) = s.summary();
            t.push_row(vec![
                Cell::str(label),
                Cell::num(us, 1),
                Cell::num(m, 2),
                Cell::num(c, 2),
                Cell::num(n, 2),
                Cell::num(buf, 0),
                Cell::num(p, 1),
            ]);
        }
        let mut tr = Table::new(
            "Fig. 8: trace excerpt (first bins, BS=1)",
            &["bin", "mem util", "comp util", "net util", "power (W/CU)"],
        );
        if let Some(trace) = &self.bs1.report.trace {
            let cores = 16.0;
            for i in (0..trace.mem_util.len().min(400)).step_by(40) {
                tr.push_row(vec![
                    Cell::int(i as i64),
                    Cell::num(trace.mem_util[i], 2),
                    Cell::num(trace.comp_util[i], 2),
                    Cell::num(trace.net_util[i], 2),
                    Cell::num(trace.power_w[i] * cores, 1),
                ]);
            }
        }
        vec![t, tr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bs1_saturates_memory_bandwidth() {
        // §VI: "At batch size 1, the RPU saturates memory bandwidth and
        // achieves roofline performance."
        let s = simulate(1, 16 * 1024);
        assert!(
            s.report.mem_bw_utilization() > 0.85,
            "BS=1 mem BW util {}",
            s.report.mem_bw_utilization()
        );
    }

    #[test]
    fn bs32_much_slower_per_step() {
        // Fig. 8 caption: batch 32 generates tokens ~13x slower than
        // batch 1, primarily due to sequential KV$ computations.
        let f = run();
        let slow = f.bs32_step_slowdown();
        assert!(slow > 6.0 && slow < 25.0, "BS=32 step slowdown {slow}");
    }

    #[test]
    fn bs32_has_higher_compute_utilisation() {
        let f = run();
        assert!(f.bs32.report.compute_utilization() > 2.0 * f.bs1.report.compute_utilization());
    }

    #[test]
    fn traces_are_attached_and_nonempty() {
        let f = run();
        for s in [&f.bs1, &f.bs32] {
            let tr = s.report.trace.as_ref().expect("trace enabled");
            assert!(!tr.mem_util.is_empty());
            assert_eq!(tr.mem_util.len(), tr.comp_util.len());
            assert_eq!(tr.mem_util.len(), tr.net_util.len());
            assert!(tr.mem_util.iter().all(|&u| (0.0..=1.0 + 1e-9).contains(&u)));
        }
    }

    #[test]
    fn memory_power_dominates() {
        // Fig. 8: "Memory power dominates total system power".
        let f = run();
        assert!(
            f.bs1.report.energy.memory_fraction() > 0.5,
            "memory energy fraction {}",
            f.bs1.report.energy.memory_fraction()
        );
    }

    #[test]
    fn buffer_absorbs_phase_imbalance_at_bs32() {
        // §VI batch-32 walkthrough: the memory pipeline prefetches ahead,
        // filling the on-chip buffer far deeper than at BS=1.
        let f = run();
        assert!(f.bs32.report.peak_buffer_bytes > f.bs1.report.peak_buffer_bytes);
    }

    #[test]
    fn tables_render() {
        let f = run();
        let t = f.tables();
        assert!(t[0].to_string().contains("BS=1"));
        assert!(t[0].to_string().contains("BS=32"));
    }
}
