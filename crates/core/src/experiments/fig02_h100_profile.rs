//! Fig. 2: H100 power and utilisation characterisation — the prefill
//! versus decode power trace (left) and isolated-VMM memory-bandwidth
//! utilisation versus layer capacity (right).
//!
//! The paper measures these with NVML on physical hardware; here the
//! calibrated analytical GPU baseline regenerates the same curves (the
//! substitution documented in DESIGN.md §3).

use rpu_gpu::{bw_utilization, GpuSpec, GpuSystem};
use rpu_models::{DecodeWorkload, Kernel, KernelKind, ModelConfig, Precision, PrefillWorkload};
use rpu_util::table::{Cell, Table};
use rpu_util::units::KIB;

/// One VMM bandwidth-utilisation sample (right panel).
#[derive(Debug, Clone)]
pub struct BwUtilPoint {
    /// Matrix label, e.g. `"llama3-8B wQKV"`.
    pub label: String,
    /// Per-GPU layer working-set capacity, bytes.
    pub capacity_bytes: f64,
    /// Achieved fraction of peak memory bandwidth.
    pub bw_util: f64,
}

/// Results for Fig. 2.
#[derive(Debug, Clone)]
pub struct Fig02 {
    /// Average prefill power, watts (paper: 634.2 W).
    pub prefill_power_w: f64,
    /// Average prefill compute utilisation (paper: 70.3 %).
    pub prefill_comp_util: f64,
    /// Average decode power, watts (paper: 239.9 W).
    pub decode_power_w: f64,
    /// Average decode memory-bandwidth utilisation (paper: 32.2 %).
    pub decode_bw_util: f64,
    /// Prefill phase duration, seconds.
    pub prefill_time_s: f64,
    /// Decode phase duration (2k output tokens), seconds.
    pub decode_time_s: f64,
    /// Right panel: BW utilisation vs layer capacity.
    pub bw_points: Vec<BwUtilPoint>,
}

/// Runs the Fig. 2 characterisation: Llama3-70B, FP8 weights, batch 32,
/// 16k prefill / 2k decode on 4×H100.
#[must_use]
pub fn run() -> Fig02 {
    let gpus = GpuSystem::new(GpuSpec::h100_sxm(), 4);
    let model = ModelConfig::llama3_70b();
    let prec = Precision::fp8_weights();

    let prefill = PrefillWorkload::new(&model, prec, 32, 16 * 1024);
    let prefill_time_s = gpus.prefill_latency(&prefill);
    let prefill_comp_util = rpu_gpu::PREFILL_COMPUTE_UTIL;
    let prefill_power_w = rpu_gpu::gpu_power_w(&gpus.spec, prefill_comp_util, 0.35);

    // Decode at mid-generation context (16k prompt + ~1k generated).
    let decode = DecodeWorkload::new(&model, prec, 32, 17 * 1024);
    let step = gpus.decode_step_latency(&decode);
    let decode_time_s = 2048.0 * step;
    let decode_bw_util = gpus.effective_bw_utilization(&decode);
    let decode_power_w = gpus.decode_power_w(&decode) / f64::from(gpus.num_gpus);

    // Right panel: isolated VMMs across models/matrices, BF16, batch 1,
    // sharded over 1 GPU (the paper's isolated-kernel setup).
    let one = GpuSystem::new(GpuSpec::h100_sxm(), 1);
    let bf16 = Precision::bf16();
    let mut bw_points = Vec::new();
    for (label, model) in [
        ("llama3-8B", ModelConfig::llama3_8b()),
        ("llama3-70B", ModelConfig::llama3_70b()),
    ] {
        let h = u64::from(model.hidden);
        let q = u64::from(model.num_heads) * u64::from(model.head_dim);
        let kv = u64::from(model.num_kv_heads) * u64::from(model.head_dim);
        let inter = u64::from(model.intermediate);
        for (mat, k, n) in [
            ("wQKV", h, q + 2 * kv),
            ("wO", q, h),
            ("wUpGate", h, 2 * inter),
        ] {
            let kernel = Kernel::vmm(KernelKind::QkvProj, 1, k, n, bf16);
            let t = one.kernel_time(&kernel);
            bw_points.push(BwUtilPoint {
                label: format!("{label} {mat}"),
                capacity_bytes: kernel.weight_bytes,
                bw_util: kernel.streaming_bytes() / t / one.mem_bandwidth(),
            });
        }
    }
    // Anchor points: tiny and huge synthetic working sets.
    for (label, bytes) in [("tiny 64KB", 64.0 * KIB), ("huge 4GB", 4e9)] {
        bw_points.push(BwUtilPoint {
            label: label.to_string(),
            capacity_bytes: bytes,
            bw_util: bw_utilization(bytes),
        });
    }

    Fig02 {
        prefill_power_w,
        prefill_comp_util,
        decode_power_w,
        decode_bw_util,
        prefill_time_s,
        decode_time_s,
        bw_points,
    }
}

impl Fig02 {
    /// Renders both panels as tables.
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            "Fig. 2 (left): H100 power trace, Llama3-70B FP8 BS=32 16k/2k (4xH100)",
            &["phase", "duration (s)", "avg power (W)", "utilisation"],
        );
        t1.push_row(vec![
            Cell::str("prefill"),
            Cell::num(self.prefill_time_s, 2),
            Cell::num(self.prefill_power_w, 1),
            Cell::str(format!("{:.1}% comp", self.prefill_comp_util * 100.0)),
        ]);
        t1.push_row(vec![
            Cell::str("decode"),
            Cell::num(self.decode_time_s, 2),
            Cell::num(self.decode_power_w, 1),
            Cell::str(format!("{:.1}% mem BW", self.decode_bw_util * 100.0)),
        ]);
        let mut t2 = Table::new(
            "Fig. 2 (right): H100 VMM memory-BW utilisation vs layer capacity",
            &["matrix", "capacity (KB)", "BW util"],
        );
        for p in &self.bw_points {
            t2.push_row(vec![
                Cell::str(p.label.clone()),
                Cell::num(p.capacity_bytes / KIB, 0),
                Cell::num(p.bw_util, 3),
            ]);
        }
        vec![t1, t2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_power_matches_paper_band() {
        // Paper: decode averages 239.9 W (34% of TDP) per GPU.
        let f = run();
        assert!(
            f.decode_power_w > 170.0 && f.decode_power_w < 320.0,
            "decode power {}",
            f.decode_power_w
        );
        assert!(
            f.decode_power_w / 700.0 < 0.5,
            "decode must sit far below TDP"
        );
    }

    #[test]
    fn prefill_power_near_tdp() {
        // Paper: 634.2 W average, ~90% of TDP.
        let f = run();
        assert!(f.prefill_power_w > 550.0 && f.prefill_power_w <= 700.0);
        assert!(f.prefill_power_w > 2.0 * f.decode_power_w);
    }

    #[test]
    fn decode_bw_util_near_32_percent() {
        let f = run();
        assert!(
            f.decode_bw_util > 0.2 && f.decode_bw_util < 0.45,
            "decode BW util {}",
            f.decode_bw_util
        );
    }

    #[test]
    fn full_bw_needs_gigabyte_working_sets() {
        // Paper: full bandwidth only when the working set exceeds ~1 GB.
        let f = run();
        let huge = f
            .bw_points
            .iter()
            .find(|p| p.label.contains("huge"))
            .unwrap();
        let tiny = f
            .bw_points
            .iter()
            .find(|p| p.label.contains("tiny"))
            .unwrap();
        assert!(huge.bw_util > 0.9);
        assert!(tiny.bw_util < 0.2);
        // Real LLM matrices sit well below full utilisation.
        for p in f.bw_points.iter().filter(|p| p.label.contains("llama")) {
            assert!(p.bw_util < 0.85, "{} util {}", p.label, p.bw_util);
        }
    }

    #[test]
    fn bigger_matrices_utilise_more_bandwidth() {
        let f = run();
        let small = f
            .bw_points
            .iter()
            .find(|p| p.label == "llama3-8B wO")
            .unwrap();
        let big = f
            .bw_points
            .iter()
            .find(|p| p.label == "llama3-70B wUpGate")
            .unwrap();
        assert!(big.capacity_bytes > small.capacity_bytes);
        assert!(big.bw_util > small.bw_util);
    }

    #[test]
    fn tables_render_both_phases() {
        let t = run().tables();
        assert!(t[0].to_string().contains("prefill"));
        assert!(t[0].to_string().contains("decode"));
        assert!(t[1].len() >= 6);
    }
}
