//! Autoscale: SLO-seconds lost vs machine-seconds spent.
//!
//! The fleet sweep answers the static planner's question — how many
//! replicas hold the SLO at a fixed offered load. This experiment asks
//! the elastic one: **on a diurnal load with flash crowds, what does a
//! reactive autoscaler buy over static over-provisioning?** Every
//! condition serves the *same* [`diurnal_workload`] — a compressed
//! diurnal cycle ([`ArrivalProcess::DiurnalOnOff`]) whose envelope
//! swings between a deep trough and a peak several replicas wide, with
//! periodic flash crowds doubling the instantaneous rate — and the
//! table reports two cost axes, measured identically for all rows:
//!
//! - **machine-seconds**: replica-seconds in a non-down lifecycle
//!   state ([`rpu_serve::FleetReport::machine_seconds`]) — what you
//!   pay;
//! - **SLO-violation-seconds**: wall-clock spent in fixed arrival
//!   windows whose windowed p99 TTFT misses [`TTFT_TARGET_S`] — what
//!   your users lose (the compressed-day analogue of SLO-hours lost
//!   vs machine-hours spent).
//!
//! Static fleets of 2–6 always-live replicas bracket the trade: small
//! fleets are cheap and violate through every peak, the 6-wide fleet
//! holds the SLO by burning machines through every trough. The
//! autoscaled condition provisions the same 6 slots but starts only
//! [`AUTOSCALED_INITIAL_LIVE`] live and lets the reactive
//! [`Autoscaler`] join/drain replicas under hysteresis as the windowed
//! p99 TTFT and KV occupancy move.
//!
//! The digest column pins every condition's full fleet report, so the
//! golden snapshot catches any drift in lifecycle ordering, autoscaler
//! decisions or re-routing — at every engine job count.

use crate::engine::Engine;
use rpu_serve::{
    digest_fleet_report, run_autoscaled, AnalyticCostModel, ArrivalProcess, Autoscaler,
    AutoscalerConfig, CostModel, Fifo, FleetBuilder, FleetReport, JoinShortestQueue,
    LifecycleState, ReportDigest, SchedulingPolicy, ServeConfig, Workload,
};
use rpu_util::stats::Percentiles;
use rpu_util::table::{Cell, Table};

/// Provisioned replica slots — the static ceiling and the autoscaler's
/// `max_live`.
pub const PROVISIONED: usize = 6;

/// Live replicas the autoscaled condition starts with; the remaining
/// slots are provisioned down (spares).
pub const AUTOSCALED_INITIAL_LIVE: usize = 2;

/// Static always-live fleet widths bracketing the trade.
pub const STATIC_WIDTHS: [usize; 4] = [2, 3, 4, 6];

/// The compressed-day p99 TTFT target every condition is scored
/// against (and the autoscaler's scale-up trigger).
pub const TTFT_TARGET_S: f64 = 0.025;

/// Fixed window the violation clock integrates over, seconds: the run
/// is cut into arrival windows of this width and each window whose p99
/// TTFT misses [`TTFT_TARGET_S`] counts as violated wall-clock.
pub const SLO_WINDOW_S: f64 = 0.05;

/// Serving batch cap per replica (shared across conditions).
pub const MAX_BATCH: u32 = 8;

/// The diurnal workload every condition serves: ~0.5 s compressed
/// "days" swinging between a 135 req/s trough and a 900 req/s peak,
/// with a 2x flash crowd cutting in every 0.35 s. ~3 days of load.
#[must_use]
pub fn diurnal_workload() -> Workload {
    Workload {
        arrivals: ArrivalProcess::DiurnalOnOff {
            rate_rps: 900.0,
            mean_on_s: 0.02,
            mean_off_s: 0.01,
            period_s: 0.5,
            trough: 0.15,
            flash_every_s: 0.35,
            flash_width_s: 0.02,
            flash_mult: 2.0,
        },
        seed: 0xD1A_CA5E,
        ..Workload::poisson(900.0, 256, 16, 512)
    }
}

/// The serving config every replica runs.
#[must_use]
pub fn scale_config() -> ServeConfig {
    ServeConfig {
        max_batch: MAX_BATCH,
        ..ServeConfig::default()
    }
}

/// The reactive controller under test: scale-up is eager (one hot
/// control boundary joins a spare), scale-down is conservative (a
/// sustained cold stretch drains one), the asymmetry that keeps the
/// controller from oscillating through every diurnal shoulder.
#[must_use]
pub fn scaler_config() -> AutoscalerConfig {
    AutoscalerConfig {
        interval_s: 0.0125,
        window_s: 0.05,
        ttft_p99_high_s: TTFT_TARGET_S,
        kv_high: 0.75,
        kv_low: 0.2,
        up_after: 1,
        down_after: 12,
        cooldown_s: 0.0125,
        min_live: 1,
        max_live: PROVISIONED,
    }
}

/// One experimental condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Condition {
    /// A fixed fleet of `n` always-live replicas.
    Static(usize),
    /// [`PROVISIONED`] slots, [`AUTOSCALED_INITIAL_LIVE`] initially
    /// live, driven by the reactive [`Autoscaler`].
    Autoscaled,
}

/// Every condition, in table order: static widths ascending, then the
/// autoscaler.
pub const CONDITIONS: [Condition; 5] = [
    Condition::Static(STATIC_WIDTHS[0]),
    Condition::Static(STATIC_WIDTHS[1]),
    Condition::Static(STATIC_WIDTHS[2]),
    Condition::Static(STATIC_WIDTHS[3]),
    Condition::Autoscaled,
];

/// One condition's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscalePoint {
    /// The condition this row measures.
    pub condition: Condition,
    /// Replica-seconds spent in a non-down state.
    pub machine_seconds: f64,
    /// Wall-clock seconds in arrival windows whose p99 TTFT missed
    /// [`TTFT_TARGET_S`].
    pub slo_violation_s: f64,
    /// Whole-run p99 TTFT, seconds.
    pub p99_ttft_s: f64,
    /// Requests completed / rejected.
    pub completed: u32,
    /// Requests rejected at admission.
    pub rejected: u32,
    /// Autoscaler joins applied (0 for static rows).
    pub joins: u32,
    /// Autoscaler drains applied (0 for static rows).
    pub drains: u32,
    /// Digest of the full fleet report — the determinism pin.
    pub digest: ReportDigest,
}

impl Condition {
    /// The row label.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Self::Static(n) => format!("static-{n}"),
            Self::Autoscaled => format!("autoscaled {AUTOSCALED_INITIAL_LIVE}..{PROVISIONED}"),
        }
    }

    /// Builds this condition's fleet — shared with the `autoscale`
    /// bench so the timed run exercises exactly the registry shape.
    #[must_use]
    pub fn fleet(self) -> rpu_serve::Fleet {
        let cfg = scale_config();
        let cost = || Box::new(AnalyticCostModel::small()) as Box<dyn CostModel>;
        let policy = || Box::new(Fifo) as Box<dyn SchedulingPolicy>;
        match self {
            Self::Static(n) => FleetBuilder::new().group(n, &cfg, cost, policy).build(),
            Self::Autoscaled => FleetBuilder::new()
                .migration_delay_s(0.002)
                .group(AUTOSCALED_INITIAL_LIVE, &cfg, cost, policy)
                .group_with_state(
                    LifecycleState::Down,
                    PROVISIONED - AUTOSCALED_INITIAL_LIVE,
                    &cfg,
                    cost,
                    policy,
                )
                .build(),
        }
    }
}

/// Sums the wall-clock spent in violated arrival windows: the run is
/// cut into [`SLO_WINDOW_S`]-wide windows by arrival time and each
/// window whose completed-request p99 TTFT exceeds [`TTFT_TARGET_S`]
/// contributes its full width. Identical scoring for every condition.
#[must_use]
pub fn slo_violation_seconds(report: &FleetReport) -> f64 {
    let records = &report.aggregate.records;
    let horizon = records.iter().fold(0.0f64, |m, r| m.max(r.arrival_s));
    let windows = (horizon / SLO_WINDOW_S).floor() as usize + 1;
    let mut ttfts: Vec<Vec<f64>> = vec![Vec::new(); windows];
    for r in records {
        ttfts[(r.arrival_s / SLO_WINDOW_S).floor() as usize].push(r.ttft_s());
    }
    let violated = ttfts
        .iter()
        .filter(|w| !w.is_empty() && Percentiles::from_samples(w).p99 > TTFT_TARGET_S)
        .count();
    violated as f64 * SLO_WINDOW_S
}

/// Runs one condition to completion and scores it. Deterministic per
/// condition; the `autoscale` bench wraps the same function in a timer.
#[must_use]
pub fn run_point(condition: Condition) -> AutoscalePoint {
    let wl = diurnal_workload();
    let mut fleet = condition.fleet();
    let mut router = JoinShortestQueue;
    let report = match condition {
        Condition::Static(_) => fleet.serve(&wl, &mut router),
        Condition::Autoscaled => {
            let mut scaler = Autoscaler::new(scaler_config());
            run_autoscaled(&mut fleet, &wl, &mut router, &mut scaler)
        }
    };
    let ttfts: Vec<f64> = report
        .aggregate
        .records
        .iter()
        .map(rpu_serve::RequestRecord::ttft_s)
        .collect();
    AutoscalePoint {
        condition,
        machine_seconds: report.machine_seconds,
        slo_violation_s: slo_violation_seconds(&report),
        p99_ttft_s: Percentiles::from_samples(&ttfts).p99,
        completed: report.aggregate.records.len() as u32,
        rejected: report.aggregate.rejected,
        joins: report.lifecycle.joins,
        drains: report.lifecycle.drains,
        digest: digest_fleet_report(&report),
    }
}

/// Results of the autoscale comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct AutoscaleSweep {
    /// One point per [`CONDITIONS`] entry, in order.
    pub points: Vec<AutoscalePoint>,
}

/// Runs every condition sequentially.
#[must_use]
pub fn run() -> AutoscaleSweep {
    run_with(&Engine::sequential())
}

/// Runs every condition as one engine grid point; conditions are
/// independent runs, so the engine fans them out and the digests pin
/// that job count never leaks into any row.
#[must_use]
pub fn run_with(engine: &Engine) -> AutoscaleSweep {
    let points = engine.par_map(&CONDITIONS, |_, &c| run_point(c));
    AutoscaleSweep { points }
}

impl AutoscaleSweep {
    /// The point for one condition.
    ///
    /// # Panics
    ///
    /// Panics if the condition was not swept.
    #[must_use]
    pub fn point(&self, condition: Condition) -> &AutoscalePoint {
        self.points
            .iter()
            .find(|p| p.condition == condition)
            .expect("condition is swept")
    }

    /// Renders the headline table: SLO-seconds lost vs machine-seconds
    /// spent, a row per condition.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            &format!(
                "Autoscale: SLO-seconds lost vs machine-seconds spent — diurnal load with \
                 flash crowds, p99 TTFT target {:.0} ms over {:.0} ms windows",
                TTFT_TARGET_S * 1e3,
                SLO_WINDOW_S * 1e3,
            ),
            &[
                "condition",
                "machine-s",
                "slo-viol-s",
                "p99 ttft ms",
                "completed",
                "rejected",
                "joins",
                "drains",
                "digest",
            ],
        );
        for p in &self.points {
            t.push_row(vec![
                Cell::str(p.condition.label()),
                Cell::num(p.machine_seconds, 3),
                Cell::num(p.slo_violation_s, 2),
                Cell::num(p.p99_ttft_s * 1e3, 2),
                Cell::int(i64::from(p.completed)),
                Cell::int(i64::from(p.rejected)),
                Cell::int(i64::from(p.joins)),
                Cell::int(i64::from(p.drains)),
                Cell::str(p.digest.to_string()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The sweep is deterministic; run it once and share it (the
    /// reproducibility test still runs its own fresh copies).
    fn sweep() -> &'static AutoscaleSweep {
        static CACHE: OnceLock<AutoscaleSweep> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn sweeps_every_condition_and_serves_every_request() {
        let s = sweep();
        assert_eq!(s.points.len(), CONDITIONS.len());
        for (c, p) in CONDITIONS.iter().zip(&s.points) {
            assert_eq!(p.condition, *c);
            assert_eq!(
                p.completed + p.rejected,
                diurnal_workload().num_requests,
                "{}: lost requests",
                c.label()
            );
            assert!(p.machine_seconds > 0.0);
        }
    }

    #[test]
    fn autoscaler_actually_scales_and_static_rows_do_not() {
        let s = sweep();
        let auto = s.point(Condition::Autoscaled);
        assert!(auto.joins >= 1, "autoscaler never joined a spare");
        for &w in &STATIC_WIDTHS {
            let p = s.point(Condition::Static(w));
            assert_eq!((p.joins, p.drains), (0, 0), "static-{w} saw lifecycle");
        }
    }

    #[test]
    fn the_headline_trade_off_materialises() {
        // Acceptance: the table actually shows the trade. The smallest
        // static fleet violates the SLO more than the full one; full
        // static provisioning burns more machine-seconds than the
        // autoscaler; the autoscaler holds violations below the
        // smallest static fleet.
        let s = sweep();
        let tight = s.point(Condition::Static(STATIC_WIDTHS[0]));
        let full = s.point(Condition::Static(PROVISIONED));
        let auto = s.point(Condition::Autoscaled);
        assert!(
            tight.slo_violation_s > full.slo_violation_s,
            "under-provisioning shows no SLO cost: {} vs {}",
            tight.slo_violation_s,
            full.slo_violation_s
        );
        assert!(
            auto.machine_seconds < full.machine_seconds,
            "autoscaler spends no fewer machine-seconds than static-{PROVISIONED}: {} vs {}",
            auto.machine_seconds,
            full.machine_seconds
        );
        assert!(
            auto.slo_violation_s < tight.slo_violation_s,
            "autoscaler loses no fewer SLO-seconds than static-{}: {} vs {}",
            STATIC_WIDTHS[0],
            auto.slo_violation_s,
            tight.slo_violation_s
        );
    }

    #[test]
    fn bit_reproducible_across_invocations_and_job_counts() {
        let a = sweep();
        assert_eq!(a, &run());
        assert_eq!(a, &run_with(&Engine::new(8)));
    }

    #[test]
    fn table_has_one_row_per_condition_and_carries_digests() {
        let t = sweep().table();
        assert_eq!(t.len(), CONDITIONS.len());
        let rendered = t.to_string();
        for p in &sweep().points {
            assert!(
                rendered.contains(&p.digest.to_string()),
                "digest column missing {}",
                p.condition.label()
            );
        }
    }
}
