//! Fig. 1: rooflines of H100 vs RPU at ISO-TDP, kernel arithmetic
//! intensities, and the impact of batching on AI for dense vs MoE
//! models.

use rpu_arch::{Roofline, RpuConfig};
use rpu_gpu::GpuSpec;
use rpu_hbmco::HbmCoConfig;
use rpu_models::{DecodeWorkload, Kernel, KernelClass, KernelKind, ModelConfig, Precision};
use rpu_util::table::{Cell, Table};

/// A kernel point on the roofline: intensity and attainable throughput.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    /// Label, e.g. `"BS=1 Linear"`.
    pub label: String,
    /// Arithmetic intensity, FLOPs/byte.
    pub ai: f64,
    /// Attainable throughput on the RPU roofline, FLOP/s.
    pub rpu_flops: f64,
    /// Attainable throughput on the H100 roofline, FLOP/s.
    pub h100_flops: f64,
}

/// Results for Fig. 1.
#[derive(Debug, Clone)]
pub struct Fig01 {
    /// H100 roofline.
    pub h100: Roofline,
    /// RPU-40CU roofline (ISO-TDP with one H100).
    pub rpu: Roofline,
    /// Kernel-class intensity points for Llama4-Maverick at 8K.
    pub points: Vec<KernelPoint>,
    /// `(batch, dense AI, MoE AI)` rows for the batching sub-plot.
    pub ai_vs_batch: Vec<(u32, f64, f64)>,
}

fn is_moe(kind: KernelKind) -> bool {
    matches!(
        kind,
        KernelKind::Router | KernelKind::MoeGateUp | KernelKind::MoeDown
    )
}

/// Average AI of a set of kernels within a decode step.
fn kernels_ai<'a>(kernels: impl Iterator<Item = &'a Kernel>) -> f64 {
    let (f, b) = kernels.fold((0.0, 0.0), |(f, b), k| {
        (f + k.flops, b + k.streaming_bytes())
    });
    if b == 0.0 {
        0.0
    } else {
        f / b
    }
}

/// Runs the Fig. 1 analysis.
#[must_use]
pub fn run() -> Fig01 {
    let prec = Precision::mxfp4_inference();
    let h100_spec = GpuSpec::h100_sxm();
    let h100 = Roofline::new(h100_spec.peak_bf16_flops, h100_spec.mem_bandwidth);
    let rpu_cfg = RpuConfig::new(40, HbmCoConfig::candidate()).expect("valid RPU");
    let rpu = Roofline::new(rpu_cfg.peak_flops(), rpu_cfg.mem_bandwidth());

    let maverick = ModelConfig::llama4_maverick();
    let mut points = Vec::new();
    for batch in [1u32, 32] {
        let wl = DecodeWorkload::new(&maverick, prec, batch, 8192);
        // The paper plots dense Linear and MoE layers separately: MoE
        // expert traffic has far lower reuse per weight byte.
        let linear = kernels_ai(
            wl.kernels()
                .iter()
                .filter(|k| k.class == KernelClass::Vmm && !is_moe(k.kind)),
        );
        let moe = kernels_ai(wl.kernels().iter().filter(|k| is_moe(k.kind)));
        let sdpa = kernels_ai(
            wl.kernels()
                .iter()
                .filter(|k| k.class == KernelClass::Attention),
        );
        let avg = wl.arithmetic_intensity();
        for (name, ai) in [
            ("Linear", linear),
            ("MoE", moe),
            ("SDPA", sdpa),
            ("Avg.", avg),
        ] {
            points.push(KernelPoint {
                label: format!("BS={batch} {name}"),
                ai,
                rpu_flops: rpu.attainable(ai),
                h100_flops: h100.attainable(ai),
            });
        }
    }

    let dense = ModelConfig::llama3_70b();
    let ai_vs_batch = [1u32, 2, 4, 8, 16, 32]
        .iter()
        .map(|&b| {
            let d = DecodeWorkload::new(&dense, prec, b, 8192).arithmetic_intensity();
            let m = DecodeWorkload::new(&maverick, prec, b, 8192).arithmetic_intensity();
            (b, d, m)
        })
        .collect();

    Fig01 {
        h100,
        rpu,
        points,
        ai_vs_batch,
    }
}

impl Fig01 {
    /// Renders the figure's series as tables.
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            "Fig. 1 (left): rooflines and kernel points (Llama4-Maverick, 8K, FP4)",
            &[
                "point",
                "AI (FLOP/B)",
                "RPU-40CU (TFLOP/s)",
                "H100 (TFLOP/s)",
            ],
        );
        t1.push_row(vec![
            Cell::str("RPU ridge"),
            Cell::num(self.rpu.ridge_ai(), 1),
            Cell::num(self.rpu.peak_flops / 1e12, 1),
            Cell::str(""),
        ]);
        t1.push_row(vec![
            Cell::str("H100 ridge"),
            Cell::num(self.h100.ridge_ai(), 1),
            Cell::str(""),
            Cell::num(self.h100.peak_flops / 1e12, 1),
        ]);
        for p in &self.points {
            t1.push_row(vec![
                Cell::str(p.label.clone()),
                Cell::num(p.ai, 2),
                Cell::num(p.rpu_flops / 1e12, 2),
                Cell::num(p.h100_flops / 1e12, 2),
            ]);
        }
        let mut t2 = Table::new(
            "Fig. 1 (right): impact of batching on AI (8K seq len)",
            &["batch", "Dense Llama3-70B AI", "MoE Llama4-Maverick AI"],
        );
        for (b, d, m) in &self.ai_vs_batch {
            t2.push_row(vec![
                Cell::int(i64::from(*b)),
                Cell::num(*d, 2),
                Cell::num(*m, 2),
            ]);
        }
        vec![t1, t2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpu_shifts_roofline_down_and_left() {
        let f = run();
        assert!(f.rpu.peak_flops < f.h100.peak_flops, "down");
        assert!(f.rpu.ridge_ai() < f.h100.ridge_ai(), "left");
        // ISO-TDP: more bandwidth than the H100.
        assert!(f.rpu.bandwidth > 2.0 * f.h100.bandwidth);
    }

    #[test]
    fn ai_rises_with_batch_but_stays_low() {
        // Paper: "Even up to BS=32, arithmetic intensity remains low".
        let f = run();
        let (b0, d0, m0) = f.ai_vs_batch[0];
        let (bn, dn, mn) = *f.ai_vs_batch.last().unwrap();
        assert_eq!((b0, bn), (1, 32));
        assert!(dn > d0 && mn > m0);
        assert!(
            mn < 64.0,
            "MoE BS=32 AI {mn} must stay below the H100 ridge"
        );
    }

    #[test]
    fn bs32_straddles_rpu_roofline() {
        // §I: BS=32 kernels straddle the RPU roofline — Linear above the
        // ridge, SDPA and MoE below.
        let f = run();
        let ridge = f.rpu.ridge_ai();
        let linear = f.points.iter().find(|p| p.label == "BS=32 Linear").unwrap();
        let sdpa = f.points.iter().find(|p| p.label == "BS=32 SDPA").unwrap();
        let moe = f.points.iter().find(|p| p.label == "BS=32 MoE").unwrap();
        assert!(linear.ai > ridge, "Linear {} vs ridge {ridge}", linear.ai);
        assert!(sdpa.ai < ridge, "SDPA {} vs ridge {ridge}", sdpa.ai);
        assert!(moe.ai < ridge, "MoE {} vs ridge {ridge}", moe.ai);
    }

    #[test]
    fn moe_ai_stays_low_even_at_bs32() {
        // Fig. 1 legend: the BS=32 MoE point sits far left of BS=32
        // Linear — experts see few tokens each, so reuse stays low.
        let f = run();
        let linear = f.points.iter().find(|p| p.label == "BS=32 Linear").unwrap();
        let moe = f.points.iter().find(|p| p.label == "BS=32 MoE").unwrap();
        assert!(
            moe.ai < 0.5 * linear.ai,
            "MoE {} vs Linear {}",
            moe.ai,
            linear.ai
        );
    }

    #[test]
    fn tables_render() {
        let tables = run().tables();
        assert_eq!(tables.len(), 2);
        assert!(tables[0].to_string().contains("BS=1"));
        assert!(tables[1].len() == 6);
    }
}
