//! Fig. 5: tradeoffs in HBM-CO memories — cost per GB versus capacity
//! and energy per bit versus BW/Cap across the full design space.

use rpu_hbmco::{enumerate_design_space, DesignPoint, HbmCoConfig};
use rpu_util::table::{Cell, Table};
use rpu_util::units::GIB;

/// Results for Fig. 5.
#[derive(Debug, Clone)]
pub struct Fig05 {
    /// Every evaluated design point.
    pub points: Vec<DesignPoint>,
    /// The HBM3e-like anchor.
    pub hbm3e: DesignPoint,
    /// The candidate Pareto-optimal HBM-CO.
    pub candidate: DesignPoint,
}

/// Runs the Fig. 5 design-space sweep.
#[must_use]
pub fn run() -> Fig05 {
    Fig05 {
        points: enumerate_design_space(),
        hbm3e: DesignPoint::evaluate(HbmCoConfig::hbm3e_like()),
        candidate: DesignPoint::evaluate(HbmCoConfig::candidate()),
    }
}

impl Fig05 {
    /// Cost per GB of `p` normalised to the HBM3e anchor.
    #[must_use]
    pub fn norm_cost_per_gb(&self, p: &DesignPoint) -> f64 {
        p.cost_per_gb / self.hbm3e.cost_per_gb
    }

    /// Renders both panels as tables (a subsample of the design space,
    /// plus the two anchors).
    #[must_use]
    pub fn tables(&self) -> Vec<Table> {
        let mut t1 = Table::new(
            "Fig. 5 (left): cost/GB (normalised to HBM3e) vs capacity",
            &["config", "capacity (GB)", "cost/GB (norm)"],
        );
        let mut t2 = Table::new(
            "Fig. 5 (right): energy per bit vs BW/Cap",
            &["config", "BW/Cap (1/s)", "pJ/bit"],
        );
        let mut show: Vec<&DesignPoint> = self.points.iter().collect();
        show.sort_by(|a, b| a.capacity_bytes.total_cmp(&b.capacity_bytes));
        // Subsample so the table stays readable while spanning the space.
        let step = (show.len() / 16).max(1);
        for p in show.iter().step_by(step) {
            t1.push_row(vec![
                Cell::str(p.config.label()),
                Cell::num(p.capacity_bytes / GIB, 2),
                Cell::num(self.norm_cost_per_gb(p), 2),
            ]);
            t2.push_row(vec![
                Cell::str(p.config.label()),
                Cell::num(p.bw_per_cap, 0),
                Cell::num(p.energy_pj_per_bit, 2),
            ]);
        }
        for (name, p) in [
            ("HBM3e anchor", &self.hbm3e),
            ("Candidate HBM-CO", &self.candidate),
        ] {
            t1.push_row(vec![
                Cell::str(format!("{name} ({})", p.config.label())),
                Cell::num(p.capacity_bytes / GIB, 2),
                Cell::num(self.norm_cost_per_gb(p), 2),
            ]);
            t2.push_row(vec![
                Cell::str(name),
                Cell::num(p.bw_per_cap, 0),
                Cell::num(p.energy_pj_per_bit, 2),
            ]);
        }
        vec![t1, t2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn anchors_match_paper() {
        let f = run();
        assert_approx(f.hbm3e.energy_pj_per_bit, 3.44, 0.05, "HBM3e pJ/bit");
        assert_approx(
            f.candidate.energy_pj_per_bit,
            1.45,
            0.05,
            "candidate pJ/bit",
        );
        assert_approx(
            f.norm_cost_per_gb(&f.candidate),
            1.81,
            0.10,
            "candidate cost/GB",
        );
    }

    #[test]
    fn candidate_energy_ratio_near_2_4x() {
        let f = run();
        let ratio = f.hbm3e.energy_pj_per_bit / f.candidate.energy_pj_per_bit;
        assert!(ratio > 2.0 && ratio < 2.6, "energy ratio {ratio}");
    }

    #[test]
    fn smaller_capacity_costs_more_per_gb() {
        // Fixed die costs dominate at low capacity (paper, §III).
        let f = run();
        let mut pts = f.points.clone();
        pts.sort_by(|a, b| a.capacity_bytes.total_cmp(&b.capacity_bytes));
        let smallest = f.norm_cost_per_gb(&pts[0]);
        let largest = f.norm_cost_per_gb(pts.last().unwrap());
        assert!(smallest > largest, "cost/GB must fall with capacity");
    }

    #[test]
    fn energy_falls_with_bw_per_cap() {
        // Across the space, the highest-BW/Cap point must be the most
        // energy-efficient and the lowest the least.
        let f = run();
        let lo = f
            .points
            .iter()
            .min_by(|a, b| a.bw_per_cap.total_cmp(&b.bw_per_cap))
            .unwrap();
        let hi = f
            .points
            .iter()
            .max_by(|a, b| a.bw_per_cap.total_cmp(&b.bw_per_cap))
            .unwrap();
        assert!(hi.energy_pj_per_bit < lo.energy_pj_per_bit);
    }

    #[test]
    fn design_space_covers_paper_axes() {
        // Paper plots BW/Cap up to ~700/s and capacities up to ~50 GB.
        let f = run();
        let max_bwcap = f.points.iter().map(|p| p.bw_per_cap).fold(0.0, f64::max);
        let max_cap = f
            .points
            .iter()
            .map(|p| p.capacity_bytes)
            .fold(0.0, f64::max);
        assert!(max_bwcap > 600.0, "max BW/Cap {max_bwcap}");
        assert!(max_cap > 40.0 * GIB, "max capacity {max_cap}");
    }

    #[test]
    fn tables_include_anchors() {
        let tables = run().tables();
        let s = tables[0].to_string();
        assert!(s.contains("HBM3e anchor") && s.contains("Candidate"));
    }
}
