//! Policy sweep: scheduling policies versus offered load on a shared
//! two-class fleet.
//!
//! Serves one multi-tenant workload — an interactive chat class
//! (priority 0, tight TTFT SLO, short requests) multiplexed with an
//! offline batch class (priority 2, relaxed SLO, long prompts and
//! generations) — through every [`PolicyKind`] over a ladder of offered
//! loads, with the real simulator-backed cost model. The headline
//! artifact is the crossover: FIFO admission lets queued batch work
//! head-of-line-block the interactive class, collapsing its p99 TTFT
//! one to two rungs *below* machine saturation, while priority
//! scheduling with aging (and preemptive EDF) hold the interactive SLO
//! all the way past the load where FIFO has already failed.

use crate::engine::{grid, Engine};
use crate::serving::sweep_cost_model;
use rpu_models::{LengthDistribution, ModelConfig};
use rpu_serve::{
    serve_with, ArrivalProcess, ClassSpec, DeadlineEdf, Fifo, MultiClassReport, PriorityAging,
    SchedulingPolicy, ShortestJobFirst, Workload,
};
use rpu_util::table::{num, Cell, Table};

/// Decode system scale.
pub const NUM_CUS: u32 = 64;

/// Serving batch-size cap.
pub const MAX_BATCH: u32 = 8;

/// Requests simulated per (load, policy) point.
pub const NUM_REQUESTS: u32 = 160;

/// Aging horizon for the priority policy, seconds: the bound on how
/// long a batch request can wait behind later-arriving interactive
/// work.
pub const AGING_HORIZON_S: f64 = 2.0;

/// Offered loads, requests/second. The machine saturates near the
/// middle of the ladder; the top rungs are past collapse for FIFO.
pub const RATE_SWEEP: [f64; 5] = [50.0, 100.0, 200.0, 400.0, 800.0];

/// The scheduling policies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Arrival order, no overtaking (the PR-2 baseline).
    Fifo,
    /// Predicted-length shortest-job-first.
    Sjf,
    /// Priority classes with bounded-starvation aging.
    Priority,
    /// Preemptive earliest-deadline-first.
    Edf,
}

impl PolicyKind {
    /// Every policy, in table order.
    pub const ALL: [Self; 4] = [Self::Fifo, Self::Sjf, Self::Priority, Self::Edf];

    /// Short name for tables and golden keys.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Fifo => "fifo",
            Self::Sjf => "sjf",
            Self::Priority => "priority",
            Self::Edf => "edf",
        }
    }

    /// Instantiates the policy for a workload.
    #[must_use]
    pub fn build(self, workload: &Workload) -> Box<dyn SchedulingPolicy> {
        match self {
            Self::Fifo => Box::new(Fifo),
            Self::Sjf => Box::new(ShortestJobFirst::for_workload(workload)),
            Self::Priority => Box::new(PriorityAging::new(AGING_HORIZON_S)),
            Self::Edf => Box::new(DeadlineEdf),
        }
    }
}

/// The two tenant classes sharing the fleet.
#[must_use]
pub fn classes() -> Vec<ClassSpec> {
    vec![
        ClassSpec {
            share: 0.7,
            tenants: 4,
            // Variable lengths: predicted-length SJF genuinely reorders
            // within the class, instead of degenerating to priority
            // order.
            prompt_lens: Some(LengthDistribution::Uniform { lo: 64, hi: 512 }),
            output_lens: Some(LengthDistribution::Exponential {
                mean: 32.0,
                cap: 128,
            }),
            ..ClassSpec::interactive()
        },
        ClassSpec {
            share: 0.3,
            tenants: 2,
            prompt_lens: Some(LengthDistribution::Fixed(2048)),
            output_lens: Some(LengthDistribution::Fixed(1024)),
            ..ClassSpec::batch()
        },
    ]
}

/// The swept workload at one offered load.
#[must_use]
pub fn workload(rate_rps: f64) -> Workload {
    Workload {
        arrivals: ArrivalProcess::Poisson { rate_rps },
        prompt_lens: LengthDistribution::Fixed(256),
        output_lens: LengthDistribution::Fixed(32),
        num_requests: NUM_REQUESTS,
        seed: 0x9A7C,
        classes: vec![],
    }
    .with_classes(classes())
}

/// One policy's outcome at one offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRun {
    /// Which policy.
    pub policy: PolicyKind,
    /// Per-class and aggregate SLO metrics.
    pub slo: MultiClassReport,
    /// Preemptions performed (0 for non-preemptive policies).
    pub preemptions: u32,
}

/// All policies at one offered load.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadPoint {
    /// Offered load, requests/second.
    pub rate_rps: f64,
    /// One run per [`PolicyKind::ALL`] entry, in that order.
    pub runs: Vec<PolicyRun>,
}

impl LoadPoint {
    /// The run for one policy.
    ///
    /// # Panics
    ///
    /// Panics if the policy is missing (the sweep always runs all).
    #[must_use]
    pub fn run(&self, policy: PolicyKind) -> &PolicyRun {
        self.runs
            .iter()
            .find(|r| r.policy == policy)
            .expect("sweep runs every policy")
    }
}

/// Results of the policy sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicySweep {
    /// Model served.
    pub model: &'static str,
    /// Decode CUs.
    pub num_cus: u32,
    /// Samples, ascending offered load.
    pub points: Vec<LoadPoint>,
}

/// Runs the sweep sequentially: Llama3-8B decode on a 64-CU RPU, GPU
/// prefill tier, every policy at every load.
#[must_use]
pub fn run() -> PolicySweep {
    run_with(&Engine::sequential())
}

/// Runs the sweep with every (load, policy) pair as one engine grid
/// point. One memoised cost model is shared across all worker threads:
/// the cache only stores deterministic simulator results, so sharing it
/// changes nothing but wall-clock time.
///
/// # Panics
///
/// Panics if the model cannot be deployed at [`NUM_CUS`] (it can).
#[must_use]
pub fn run_with(engine: &Engine) -> PolicySweep {
    let model = ModelConfig::llama3_8b();
    // Provision for the longest class's bucketed context (the batch
    // class: 2048 prompt + 1024 output tokens).
    let (config, cost) = sweep_cost_model(NUM_CUS, MAX_BATCH, 2048 + 1024);
    let specs = classes();

    let points_grid = grid(&RATE_SWEEP, &PolicyKind::ALL);
    let runs = engine.par_map(&points_grid, |_, &(rate_rps, kind)| {
        let wl = workload(rate_rps);
        let mut cost = cost.clone();
        let mut policy = kind.build(&wl);
        let report = serve_with(&wl, &mut cost, &config, policy.as_mut());
        PolicyRun {
            policy: kind,
            slo: MultiClassReport::new(&report, &specs),
            preemptions: report.preemptions,
        }
    });
    // Reassemble the row-major grid into one LoadPoint per rate.
    let mut runs = runs.into_iter();
    let points = RATE_SWEEP
        .iter()
        .map(|&rate_rps| LoadPoint {
            rate_rps,
            runs: runs.by_ref().take(PolicyKind::ALL.len()).collect(),
        })
        .collect();
    PolicySweep {
        model: model.name,
        num_cus: NUM_CUS,
        points,
    }
}

impl PolicySweep {
    /// Interactive-class p99 TTFT for one policy at one load, seconds.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not a sweep rung.
    #[must_use]
    pub fn interactive_p99_ttft(&self, policy: PolicyKind, rate_rps: f64) -> f64 {
        let point = self
            .points
            .iter()
            .find(|p| p.rate_rps == rate_rps)
            .expect("rate is a sweep rung");
        point.run(policy).slo.classes[0].report.ttft.p99
    }

    /// The highest swept load at which the policy still meets the
    /// interactive class's p99 TTFT target, requests/second (0.0 if it
    /// meets it nowhere). The FIFO-vs-priority gap between these is the
    /// sweep's headline.
    #[must_use]
    pub fn sustained_load_rps(&self, policy: PolicyKind) -> f64 {
        let target = classes()[0].slo.ttft_s;
        self.points
            .iter()
            .filter(|p| p.run(policy).slo.classes[0].report.ttft.p99 <= target)
            .map(|p| p.rate_rps)
            .fold(0.0, f64::max)
    }

    /// Renders the sweep as one table: per load, each policy's
    /// interactive-class p99 TTFT and SLO attainment.
    #[must_use]
    pub fn table(&self) -> Table {
        let target = classes()[0].slo.ttft_s;
        let mut header: Vec<String> = vec!["req/s".into()];
        for kind in PolicyKind::ALL {
            header.push(format!("{} p99 TTFT (ms)", kind.name()));
        }
        for kind in PolicyKind::ALL {
            header.push(format!("{} SLO %", kind.name()));
        }
        header.push("edf preempt".into());
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            &format!(
                "Policy sweep: {} on {} CUs, batch {}, interactive target p99 TTFT <= {} ms",
                self.model,
                self.num_cus,
                MAX_BATCH,
                num(target * 1e3, 0)
            ),
            &header_refs,
        );
        for p in &self.points {
            let mut row = vec![Cell::num(p.rate_rps, 0)];
            for kind in PolicyKind::ALL {
                let ttft = p.run(kind).slo.classes[0].report.ttft.p99;
                let mark = if ttft <= target { "" } else { " !" };
                row.push(Cell::str(format!("{}{mark}", num(ttft * 1e3, 2))));
            }
            for kind in PolicyKind::ALL {
                row.push(Cell::num(
                    p.run(kind).slo.classes[0].report.slo_attainment * 100.0,
                    1,
                ));
            }
            row.push(Cell::int(i64::from(p.run(PolicyKind::Edf).preemptions)));
            t.push_row(row);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    /// The sweep is deterministic; run it once and share it across the
    /// suite (the reproducibility test still runs its own fresh copy).
    fn sweep() -> &'static PolicySweep {
        static CACHE: OnceLock<PolicySweep> = OnceLock::new();
        CACHE.get_or_init(run)
    }

    #[test]
    fn headline_priority_outlives_fifo_on_interactive_ttft() {
        // Acceptance: there is an offered load where FIFO has already
        // violated the interactive p99 TTFT target while priority
        // scheduling still meets it.
        let s = sweep();
        let fifo = s.sustained_load_rps(PolicyKind::Fifo);
        let prio = s.sustained_load_rps(PolicyKind::Priority);
        assert!(
            prio > fifo,
            "priority must sustain past FIFO: priority {prio} vs fifo {fifo} req/s"
        );
        // And at priority's sustained rung, FIFO is in violation.
        let target = classes()[0].slo.ttft_s;
        assert!(s.interactive_p99_ttft(PolicyKind::Fifo, prio) > target);
        assert!(s.interactive_p99_ttft(PolicyKind::Priority, prio) <= target);
    }

    #[test]
    fn every_policy_completes_every_request_at_every_load() {
        let s = sweep();
        assert_eq!(s.points.len(), RATE_SWEEP.len());
        for p in &s.points {
            assert_eq!(p.runs.len(), PolicyKind::ALL.len());
            for r in &p.runs {
                assert_eq!(
                    r.slo.aggregate.completed,
                    NUM_REQUESTS,
                    "{}",
                    r.policy.name()
                );
                assert_eq!(r.slo.aggregate.rejected, 0);
                assert!(r.slo.aggregate.peak_batch <= MAX_BATCH);
                let by_class: u32 = r.slo.classes.iter().map(|c| c.report.completed).sum();
                assert_eq!(by_class, NUM_REQUESTS);
            }
        }
    }

    #[test]
    fn non_preemptive_policies_never_preempt_and_edf_does() {
        let s = sweep();
        for p in &s.points {
            for kind in [PolicyKind::Fifo, PolicyKind::Sjf, PolicyKind::Priority] {
                assert_eq!(p.run(kind).preemptions, 0, "{}", kind.name());
            }
        }
        let edf_total: u32 = s
            .points
            .iter()
            .map(|p| p.run(PolicyKind::Edf).preemptions)
            .sum();
        assert!(edf_total > 0, "EDF never preempted across the sweep");
    }

    #[test]
    fn interactive_ttft_degrades_with_load_under_fifo() {
        let s = sweep();
        let first = s.interactive_p99_ttft(PolicyKind::Fifo, RATE_SWEEP[0]);
        let last = s.interactive_p99_ttft(PolicyKind::Fifo, *RATE_SWEEP.last().unwrap());
        assert!(last > 10.0 * first, "FIFO must collapse: {first} -> {last}");
    }

    #[test]
    fn bit_reproducible_across_invocations_and_job_counts() {
        // Acceptance: the whole sweep (every policy, every load) is
        // bit-reproducible for the fixed seed — sequentially and
        // through the parallel engine.
        let a = sweep();
        assert_eq!(a, &run());
        assert_eq!(a, &run_with(&Engine::new(8)));
    }

    #[test]
    fn table_has_one_row_per_rate_and_marks_violations() {
        let t = sweep().table();
        assert_eq!(t.len(), RATE_SWEEP.len());
        let rendered = t.to_string();
        assert!(rendered.contains('!'), "no SLO violation marked in table");
    }
}
