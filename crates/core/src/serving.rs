//! Adapting [`RpuSystem`] to the request-level serving simulator.
//!
//! `rpu-serve`'s continuous-batching scheduler is machine-agnostic: it
//! asks a [`CostModel`] for decode-iteration and prefill latencies and
//! for KV-capacity admission. [`RpuCostModel`] answers those questions
//! with the real stack — each distinct (batch, bucketed-context) decode
//! iteration is compiled and run through the event-driven simulator
//! once via [`RpuSystem::token_latency`] and memoised, and admission
//! uses [`RpuSystem::fits`] on the conservative KV reservation.
//!
//! Prefill follows the paper's Splitwise/Dynamo assumption (prefill on
//! GPUs, decode on the RPU) by default: [`PrefillBackend::Gpu`] prices
//! prompts on the calibrated GPU baseline with its measured kernel
//! efficiencies. [`PrefillBackend::OnRpu`] instead charges the RPU's
//! own *ideal* roofline — an optimistic bound, since the decoupled
//! pipelines are not modelled for prefill — and pairs with the
//! scheduler's `collocated_prefill` stall to study single-box
//! interference.

use crate::RpuSystem;
use rpu_gpu::{GpuSpec, GpuSystem};
use rpu_models::{ModelConfig, Precision, PrefillWorkload};
use rpu_serve::{CostModel, LatencyLut, LutBuilder, ServeConfig};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Where prefill runs and how it is priced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefillBackend {
    /// A disaggregated GPU prefill tier (the paper's deployment model).
    Gpu(GpuSystem),
    /// Prefill on the RPU itself, at its roofline.
    OnRpu,
}

/// [`RpuSystem`] as a serving cost model, with memoised simulator runs.
#[derive(Debug, Clone)]
pub struct RpuCostModel {
    sys: RpuSystem,
    model: ModelConfig,
    prefill: PrefillBackend,
    /// Precision used to price GPU-side prefill.
    gpu_precision: Precision,
    /// Largest KV residency `sys.fits` accepts, precomputed once for
    /// fleet telemetry.
    kv_capacity_tokens: u64,
    decode_cache: HashMap<(u32, u32), f64>,
    prefill_cache: HashMap<u32, f64>,
}

impl RpuCostModel {
    /// Builds the paper-default cost model: decode on `sys`, prefill on
    /// one H100.
    #[must_use]
    pub fn new(sys: RpuSystem, model: ModelConfig) -> Self {
        Self::with_prefill(
            sys,
            model,
            PrefillBackend::Gpu(GpuSystem::new(GpuSpec::h100_sxm(), 1)),
        )
    }

    /// Builds a cost model with an explicit prefill backend.
    #[must_use]
    pub fn with_prefill(sys: RpuSystem, model: ModelConfig, prefill: PrefillBackend) -> Self {
        // Binary search the capacity boundary once: `fits` is monotone
        // in tokens (KV bytes only grow), so the largest accepted
        // residency is well-defined. Published in fleet telemetry.
        let kv_capacity_tokens = if sys.fits(&model, 1, 0) {
            let (mut lo, mut hi) = (0u32, u32::MAX);
            while lo < hi {
                let mid = lo + (hi - lo) / 2 + (hi - lo) % 2;
                if sys.fits(&model, 1, mid) {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            u64::from(lo)
        } else {
            0
        };
        Self {
            sys,
            model,
            prefill,
            gpu_precision: Precision::gpu_w4a16(),
            kv_capacity_tokens,
            decode_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
        }
    }

    /// Number of distinct decode-step simulations performed so far —
    /// the scheduler's context bucketing keeps this small.
    #[must_use]
    pub fn distinct_decode_sims(&self) -> usize {
        self.decode_cache.len()
    }
}

/// Simulates one decode iteration — the expensive, deterministic call
/// both the exclusive and the shared cost model memoise.
fn simulate_decode(sys: &RpuSystem, model: &ModelConfig, batch: u32, max_context: u32) -> f64 {
    sys.token_latency(model, batch, max_context)
        .expect("decode step simulates")
}

/// Prices one prompt's prefill on the configured backend.
fn price_prefill(
    sys: &RpuSystem,
    model: &ModelConfig,
    gpu_precision: Precision,
    prefill: &PrefillBackend,
    prompt_len: u32,
) -> f64 {
    match prefill {
        PrefillBackend::Gpu(gpus) => {
            let wl = PrefillWorkload::new(model, gpu_precision, 1, prompt_len);
            gpus.prefill_latency(&wl)
        }
        PrefillBackend::OnRpu => {
            // Deployment precision on the RPU's own roofline.
            let wl = PrefillWorkload::new(model, sys.precision, 1, prompt_len);
            (wl.bytes() / sys.arch.mem_bandwidth()).max(wl.flops() / sys.arch.peak_flops())
        }
    }
}

impl CostModel for RpuCostModel {
    fn decode_step_s(&mut self, batch: u32, max_context: u32) -> f64 {
        if let Some(v) = self.decode_cache.get(&(batch, max_context)) {
            return *v;
        }
        let v = simulate_decode(&self.sys, &self.model, batch, max_context);
        self.decode_cache.insert((batch, max_context), v);
        v
    }

    fn prefill_s(&mut self, prompt_len: u32) -> f64 {
        if let Some(v) = self.prefill_cache.get(&prompt_len) {
            return *v;
        }
        let v = price_prefill(
            &self.sys,
            &self.model,
            self.gpu_precision,
            &self.prefill,
            prompt_len,
        );
        self.prefill_cache.insert(prompt_len, v);
        v
    }

    fn fits(&self, context_tokens: u64) -> bool {
        // Weights + `context_tokens` resident KV tokens: exactly the
        // (batch = 1, seq = tokens) footprint.
        let tokens = u32::try_from(context_tokens).unwrap_or(u32::MAX);
        self.sys.fits(&self.model, 1, tokens)
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.kv_capacity_tokens
    }
}

/// One memoised [`RpuCostModel`] shared by every replica of a fleet
/// SKU — and, because it is `Send + Sync`, by every worker thread of a
/// parallel sweep.
///
/// A homogeneous `rpu_serve::Fleet` wants N cost models for N replicas,
/// but each distinct (batch, bucketed-context) decode step prices
/// identically on identical machines — simulating it once per replica
/// would multiply the slowest part of a fleet sweep by N for bit-equal
/// results. Handles clone cheaply and share one mutex-guarded cache;
/// the cache only ever stores deterministic simulator outputs, so
/// sharing changes nothing but wall-clock time — no matter which
/// thread populates an entry first, it holds the same value.
#[derive(Debug, Clone)]
pub struct SharedRpuCostModel(Arc<Mutex<RpuCostModel>>);

impl SharedRpuCostModel {
    /// Wraps a cost model for sharing.
    #[must_use]
    pub fn new(inner: RpuCostModel) -> Self {
        Self(Arc::new(Mutex::new(inner)))
    }

    /// Number of distinct decode-step simulations across *all* handles.
    ///
    /// # Panics
    ///
    /// Panics if a sweep worker panicked while holding the memo lock.
    #[must_use]
    pub fn distinct_decode_sims(&self) -> usize {
        self.lock().distinct_decode_sims()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RpuCostModel> {
        self.0.lock().expect("cost-model cache poisoned")
    }
}

impl CostModel for SharedRpuCostModel {
    /// Double-checked memoisation: the lock is held only for the cache
    /// lookup and the insert, never across the event-driven simulation
    /// — so a cache miss on one worker never blocks the other workers'
    /// cache hits. Two workers racing on the same miss both simulate,
    /// but the simulator is deterministic, so whichever insert lands
    /// first holds the identical value.
    fn decode_step_s(&mut self, batch: u32, max_context: u32) -> f64 {
        let (sys, model) = {
            let guard = self.lock();
            if let Some(v) = guard.decode_cache.get(&(batch, max_context)) {
                return *v;
            }
            (guard.sys, guard.model)
        };
        let v = simulate_decode(&sys, &model, batch, max_context);
        *self
            .lock()
            .decode_cache
            .entry((batch, max_context))
            .or_insert(v)
    }

    fn prefill_s(&mut self, prompt_len: u32) -> f64 {
        let (sys, model, gpu_precision, prefill) = {
            let guard = self.lock();
            if let Some(v) = guard.prefill_cache.get(&prompt_len) {
                return *v;
            }
            (guard.sys, guard.model, guard.gpu_precision, guard.prefill)
        };
        let v = price_prefill(&sys, &model, gpu_precision, &prefill, prompt_len);
        *self.lock().prefill_cache.entry(prompt_len).or_insert(v)
    }

    fn fits(&self, context_tokens: u64) -> bool {
        self.lock().fits(context_tokens)
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.lock().kv_capacity_tokens()
    }
}

/// Builds the shared serving test-bed every request-level sweep starts
/// from: Llama3-8B decode at MXFP4 on `num_cus` CUs with a GPU prefill
/// tier, provisioned for `longest_context` (prompt + output tokens of
/// the longest class, bucketed), and one memoised [`SharedRpuCostModel`]
/// that all runs — across policies, routers, fleet sizes and sweep
/// worker threads — price decode steps through.
///
/// Returns the [`ServeConfig`] (batch capped at `max_batch`) alongside
/// the cost model so callers sweep the exact machine the model prices.
///
/// # Panics
///
/// Panics if Llama3-8B cannot be deployed at `num_cus` (it can at every
/// scale the sweeps use).
#[must_use]
pub fn sweep_cost_model(
    num_cus: u32,
    max_batch: u32,
    longest_context: u32,
) -> (ServeConfig, SharedRpuCostModel) {
    let model = ModelConfig::llama3_8b();
    let prec = Precision::mxfp4_inference();
    let config = ServeConfig {
        max_batch,
        ..ServeConfig::default()
    };
    // Provision for the *bucketed* maximum context: decode iterations
    // are priced at bucketed contexts, so that is the KV footprint the
    // machine must actually hold.
    let max_context = config.bucket(longest_context);
    let sys = RpuSystem::with_optimal_memory(&model, prec, max_batch, max_context, num_cus)
        .expect("Llama3-8B deploys at every sweep scale");
    let cost = SharedRpuCostModel::new(RpuCostModel::new(sys, model));
    (config, cost)
}

/// Flattens the shared sweep cost model into a [`LatencyLut`]: the
/// same test-bed as [`sweep_cost_model`], with the simulator-backed
/// model sampled once per knot and frozen into dense arrays.
///
/// The context axis is pinned to the scheduler's `seq_bucket`, so every
/// bucketed context a run can price decode at lands **on a knot** — the
/// LUT then reproduces [`SharedRpuCostModel`] decode pricing
/// bit-for-bit, and whole runs driven through the LUT are bit-identical
/// as long as prompt lengths also sit on prefill knots. Off-knot
/// prompts interpolate linearly on an axis adaptively refined to 0.5%
/// midpoint tolerance — the GPU prefill surface has a kink where its
/// launch/bandwidth floor gives way to compute-bound growth, which
/// uniform spacing cannot bound; `crates/core/tests/lut.rs` holds the
/// off-grid error below 1%.
///
/// Returns the [`ServeConfig`], the frozen LUT, and the shared source
/// model it was sampled from (still memoised — callers can
/// differential-test the two or reuse the cache).
///
/// # Panics
///
/// Panics if Llama3-8B cannot be deployed at `num_cus`.
#[must_use]
pub fn sweep_latency_lut(
    num_cus: u32,
    max_batch: u32,
    longest_context: u32,
) -> (ServeConfig, LatencyLut, SharedRpuCostModel) {
    let (config, cost) = sweep_cost_model(num_cus, max_batch, longest_context);
    let mut sampler = cost.clone();
    let lut = LutBuilder::new(max_batch, config.bucket(longest_context))
        .context_step(config.seq_bucket)
        .prefill_step(config.seq_bucket)
        .prefill_tolerance(0.005)
        .build(&mut sampler);
    (config, lut, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_serve::{serve, ServeConfig, Workload};

    fn system() -> (RpuSystem, ModelConfig) {
        let model = ModelConfig::llama3_8b();
        let prec = Precision::mxfp4_inference();
        let sys = RpuSystem::with_optimal_memory(&model, prec, 8, 4096, 64).unwrap();
        (sys, model)
    }

    #[test]
    fn decode_costs_are_memoised_and_positive() {
        let (sys, model) = system();
        let mut cm = RpuCostModel::new(sys, model);
        let a = cm.decode_step_s(1, 1024);
        let b = cm.decode_step_s(1, 1024);
        assert_eq!(a, b);
        assert!(a > 0.0);
        assert_eq!(cm.distinct_decode_sims(), 1);
        // Larger batch at the same context costs more.
        assert!(cm.decode_step_s(8, 1024) > a);
        assert_eq!(cm.distinct_decode_sims(), 2);
    }

    #[test]
    fn prefill_backends_price_prompts_sensibly() {
        let (sys, model) = system();
        let mut gpu = RpuCostModel::new(sys, model);
        let mut rpu = RpuCostModel::with_prefill(sys, model, PrefillBackend::OnRpu);
        for cm in [&mut gpu, &mut rpu] {
            let short = cm.prefill_s(256);
            let long = cm.prefill_s(4096);
            assert!(short > 0.0);
            assert!(long > short, "prefill must grow with prompt length");
            // Memoised: identical draw, no drift.
            assert_eq!(cm.prefill_s(256), short);
        }
        // The backends are genuinely different machines.
        assert_ne!(gpu.prefill_s(2048), rpu.prefill_s(2048));
        // Prefill is compute-bound at 2k tokens: both tiers take
        // milliseconds-to-tens-of-milliseconds, far above a decode step.
        let decode = gpu.decode_step_s(1, 2048);
        assert!(gpu.prefill_s(2048) > 10.0 * decode);
    }

    #[test]
    fn fits_tracks_kv_residency() {
        let (sys, model) = system();
        let cm = RpuCostModel::new(sys, model);
        assert!(cm.fits(8 * 4096));
        assert!(!cm.fits(u64::from(u32::MAX)));
    }

    #[test]
    fn published_capacity_is_the_fits_boundary() {
        let (sys, model) = system();
        let cm = RpuCostModel::new(sys, model);
        let cap = cm.kv_capacity_tokens();
        assert!(cap >= 8 * 4096, "provisioned for batch 8 x 4096: {cap}");
        assert!(cm.fits(cap));
        assert!(!cm.fits(cap + 1));
    }

    #[test]
    fn shared_cost_model_crosses_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedRpuCostModel>();
        // Concurrent lookups through clones of one handle agree and
        // share the memo cache.
        let (sys, model) = system();
        let shared = SharedRpuCostModel::new(RpuCostModel::new(sys, model));
        let priced: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let mut cm = shared.clone();
                    s.spawn(move || cm.decode_step_s(2, 1024))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(priced.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(shared.distinct_decode_sims(), 1);
    }

    #[test]
    fn sweep_cost_model_prices_like_the_handwritten_setup() {
        let (config, mut cost) = sweep_cost_model(64, 8, 1024 + 128);
        assert_eq!(config.max_batch, 8);
        let model = ModelConfig::llama3_8b();
        let prec = Precision::mxfp4_inference();
        let sys = RpuSystem::with_optimal_memory(&model, prec, 8, config.bucket(1024 + 128), 64)
            .expect("8B deploys on 64 CUs");
        let mut by_hand = RpuCostModel::new(sys, model);
        assert_eq!(cost.decode_step_s(4, 1024), by_hand.decode_step_s(4, 1024));
        assert_eq!(cost.prefill_s(1024), by_hand.prefill_s(1024));
        assert_eq!(cost.kv_capacity_tokens(), by_hand.kv_capacity_tokens());
    }

    #[test]
    fn shared_handles_share_one_memo_cache() {
        let (sys, model) = system();
        let shared = SharedRpuCostModel::new(RpuCostModel::new(sys, model));
        let mut a = shared.clone();
        let mut b = shared.clone();
        let x = a.decode_step_s(2, 1024);
        let y = b.decode_step_s(2, 1024);
        assert_eq!(x, y);
        assert_eq!(shared.distinct_decode_sims(), 1);
        assert_eq!(a.kv_capacity_tokens(), b.kv_capacity_tokens());
        assert!(a.fits(1024) && b.fits(1024));
    }

    #[test]
    fn sweep_lut_covers_every_bucketed_context_as_a_knot() {
        let (config, lut, _cost) = sweep_latency_lut(64, 4, 1024);
        // Every context the scheduler can price decode at is a bucket
        // boundary; all of them must be knots so lookups are exact.
        let knots = lut.context_knots();
        let mut ctx = 0u32;
        while ctx <= config.bucket(1024) {
            assert!(knots.contains(&ctx), "bucket boundary {ctx} not a knot");
            ctx += config.seq_bucket;
        }
        assert_eq!(*knots.last().unwrap(), config.bucket(1024));
        assert_eq!(lut.max_batch(), 4);
    }

    #[test]
    fn end_to_end_serve_with_the_real_stack() {
        let (sys, model) = system();
        let mut cm = RpuCostModel::new(sys, model);
        let wl = Workload::poisson(100.0, 512, 16, 12);
        let cfg = ServeConfig {
            max_batch: 4,
            ..ServeConfig::default()
        };
        let r = serve(&wl, &mut cm, &cfg);
        assert_eq!(r.records.len(), 12);
        assert!(r.peak_batch <= 4);
        // Bucketing bounds the distinct simulator calls.
        assert!(cm.distinct_decode_sims() <= 4 * 4);
    }
}
