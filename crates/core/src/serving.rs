//! Adapting [`RpuSystem`] to the request-level serving simulator.
//!
//! `rpu-serve`'s continuous-batching scheduler is machine-agnostic: it
//! asks a [`CostModel`] for decode-iteration and prefill latencies and
//! for KV-capacity admission. [`RpuCostModel`] answers those questions
//! with the real stack — each distinct (batch, bucketed-context) decode
//! iteration is compiled and run through the event-driven simulator
//! once via [`RpuSystem::token_latency`] and memoised, and admission
//! uses [`RpuSystem::fits`] on the conservative KV reservation.
//!
//! Prefill follows the paper's Splitwise/Dynamo assumption (prefill on
//! GPUs, decode on the RPU) by default: [`PrefillBackend::Gpu`] prices
//! prompts on the calibrated GPU baseline with its measured kernel
//! efficiencies. [`PrefillBackend::OnRpu`] instead charges the RPU's
//! own *ideal* roofline — an optimistic bound, since the decoupled
//! pipelines are not modelled for prefill — and pairs with the
//! scheduler's `collocated_prefill` stall to study single-box
//! interference.

use crate::RpuSystem;
use rpu_gpu::{GpuSpec, GpuSystem};
use rpu_models::{ModelConfig, Precision, PrefillWorkload};
use rpu_serve::CostModel;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Where prefill runs and how it is priced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PrefillBackend {
    /// A disaggregated GPU prefill tier (the paper's deployment model).
    Gpu(GpuSystem),
    /// Prefill on the RPU itself, at its roofline.
    OnRpu,
}

/// [`RpuSystem`] as a serving cost model, with memoised simulator runs.
#[derive(Debug, Clone)]
pub struct RpuCostModel {
    sys: RpuSystem,
    model: ModelConfig,
    prefill: PrefillBackend,
    /// Precision used to price GPU-side prefill.
    gpu_precision: Precision,
    /// Largest KV residency `sys.fits` accepts, precomputed once for
    /// fleet telemetry.
    kv_capacity_tokens: u64,
    decode_cache: HashMap<(u32, u32), f64>,
    prefill_cache: HashMap<u32, f64>,
}

impl RpuCostModel {
    /// Builds the paper-default cost model: decode on `sys`, prefill on
    /// one H100.
    #[must_use]
    pub fn new(sys: RpuSystem, model: ModelConfig) -> Self {
        Self::with_prefill(
            sys,
            model,
            PrefillBackend::Gpu(GpuSystem::new(GpuSpec::h100_sxm(), 1)),
        )
    }

    /// Builds a cost model with an explicit prefill backend.
    #[must_use]
    pub fn with_prefill(sys: RpuSystem, model: ModelConfig, prefill: PrefillBackend) -> Self {
        // Binary search the capacity boundary once: `fits` is monotone
        // in tokens (KV bytes only grow), so the largest accepted
        // residency is well-defined. Published in fleet telemetry.
        let kv_capacity_tokens = if sys.fits(&model, 1, 0) {
            let (mut lo, mut hi) = (0u32, u32::MAX);
            while lo < hi {
                let mid = lo + (hi - lo) / 2 + (hi - lo) % 2;
                if sys.fits(&model, 1, mid) {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            u64::from(lo)
        } else {
            0
        };
        Self {
            sys,
            model,
            prefill,
            gpu_precision: Precision::gpu_w4a16(),
            kv_capacity_tokens,
            decode_cache: HashMap::new(),
            prefill_cache: HashMap::new(),
        }
    }

    /// Number of distinct decode-step simulations performed so far —
    /// the scheduler's context bucketing keeps this small.
    #[must_use]
    pub fn distinct_decode_sims(&self) -> usize {
        self.decode_cache.len()
    }
}

impl CostModel for RpuCostModel {
    fn decode_step_s(&mut self, batch: u32, max_context: u32) -> f64 {
        *self
            .decode_cache
            .entry((batch, max_context))
            .or_insert_with(|| {
                self.sys
                    .token_latency(&self.model, batch, max_context)
                    .expect("decode step simulates")
            })
    }

    fn prefill_s(&mut self, prompt_len: u32) -> f64 {
        let (sys, model, gpu_precision, prefill) =
            (&self.sys, &self.model, self.gpu_precision, &self.prefill);
        *self.prefill_cache.entry(prompt_len).or_insert_with(|| {
            match prefill {
                PrefillBackend::Gpu(gpus) => {
                    let wl = PrefillWorkload::new(model, gpu_precision, 1, prompt_len);
                    gpus.prefill_latency(&wl)
                }
                PrefillBackend::OnRpu => {
                    // Deployment precision on the RPU's own roofline.
                    let wl = PrefillWorkload::new(model, sys.precision, 1, prompt_len);
                    (wl.bytes() / sys.arch.mem_bandwidth()).max(wl.flops() / sys.arch.peak_flops())
                }
            }
        })
    }

    fn fits(&self, context_tokens: u64) -> bool {
        // Weights + `context_tokens` resident KV tokens: exactly the
        // (batch = 1, seq = tokens) footprint.
        let tokens = u32::try_from(context_tokens).unwrap_or(u32::MAX);
        self.sys.fits(&self.model, 1, tokens)
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.kv_capacity_tokens
    }
}

/// One memoised [`RpuCostModel`] shared by every replica of a fleet
/// SKU.
///
/// A homogeneous `rpu_serve::Fleet` wants N cost models for N replicas,
/// but each distinct (batch, bucketed-context) decode step prices
/// identically on identical machines — simulating it once per replica
/// would multiply the slowest part of a fleet sweep by N for bit-equal
/// results. Handles clone cheaply and share one cache; the cache only
/// ever stores deterministic simulator outputs, so sharing changes
/// nothing but wall-clock time.
#[derive(Debug, Clone)]
pub struct SharedRpuCostModel(Rc<RefCell<RpuCostModel>>);

impl SharedRpuCostModel {
    /// Wraps a cost model for sharing.
    #[must_use]
    pub fn new(inner: RpuCostModel) -> Self {
        Self(Rc::new(RefCell::new(inner)))
    }

    /// Number of distinct decode-step simulations across *all* handles.
    #[must_use]
    pub fn distinct_decode_sims(&self) -> usize {
        self.0.borrow().distinct_decode_sims()
    }
}

impl CostModel for SharedRpuCostModel {
    fn decode_step_s(&mut self, batch: u32, max_context: u32) -> f64 {
        self.0.borrow_mut().decode_step_s(batch, max_context)
    }

    fn prefill_s(&mut self, prompt_len: u32) -> f64 {
        self.0.borrow_mut().prefill_s(prompt_len)
    }

    fn fits(&self, context_tokens: u64) -> bool {
        self.0.borrow().fits(context_tokens)
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.0.borrow().kv_capacity_tokens()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_serve::{serve, ServeConfig, Workload};

    fn system() -> (RpuSystem, ModelConfig) {
        let model = ModelConfig::llama3_8b();
        let prec = Precision::mxfp4_inference();
        let sys = RpuSystem::with_optimal_memory(&model, prec, 8, 4096, 64).unwrap();
        (sys, model)
    }

    #[test]
    fn decode_costs_are_memoised_and_positive() {
        let (sys, model) = system();
        let mut cm = RpuCostModel::new(sys, model);
        let a = cm.decode_step_s(1, 1024);
        let b = cm.decode_step_s(1, 1024);
        assert_eq!(a, b);
        assert!(a > 0.0);
        assert_eq!(cm.distinct_decode_sims(), 1);
        // Larger batch at the same context costs more.
        assert!(cm.decode_step_s(8, 1024) > a);
        assert_eq!(cm.distinct_decode_sims(), 2);
    }

    #[test]
    fn prefill_backends_price_prompts_sensibly() {
        let (sys, model) = system();
        let mut gpu = RpuCostModel::new(sys, model);
        let mut rpu = RpuCostModel::with_prefill(sys, model, PrefillBackend::OnRpu);
        for cm in [&mut gpu, &mut rpu] {
            let short = cm.prefill_s(256);
            let long = cm.prefill_s(4096);
            assert!(short > 0.0);
            assert!(long > short, "prefill must grow with prompt length");
            // Memoised: identical draw, no drift.
            assert_eq!(cm.prefill_s(256), short);
        }
        // The backends are genuinely different machines.
        assert_ne!(gpu.prefill_s(2048), rpu.prefill_s(2048));
        // Prefill is compute-bound at 2k tokens: both tiers take
        // milliseconds-to-tens-of-milliseconds, far above a decode step.
        let decode = gpu.decode_step_s(1, 2048);
        assert!(gpu.prefill_s(2048) > 10.0 * decode);
    }

    #[test]
    fn fits_tracks_kv_residency() {
        let (sys, model) = system();
        let cm = RpuCostModel::new(sys, model);
        assert!(cm.fits(8 * 4096));
        assert!(!cm.fits(u64::from(u32::MAX)));
    }

    #[test]
    fn published_capacity_is_the_fits_boundary() {
        let (sys, model) = system();
        let cm = RpuCostModel::new(sys, model);
        let cap = cm.kv_capacity_tokens();
        assert!(cap >= 8 * 4096, "provisioned for batch 8 x 4096: {cap}");
        assert!(cm.fits(cap));
        assert!(!cm.fits(cap + 1));
    }

    #[test]
    fn shared_handles_share_one_memo_cache() {
        let (sys, model) = system();
        let shared = SharedRpuCostModel::new(RpuCostModel::new(sys, model));
        let mut a = shared.clone();
        let mut b = shared.clone();
        let x = a.decode_step_s(2, 1024);
        let y = b.decode_step_s(2, 1024);
        assert_eq!(x, y);
        assert_eq!(shared.distinct_decode_sims(), 1);
        assert_eq!(a.kv_capacity_tokens(), b.kv_capacity_tokens());
        assert!(a.fits(1024) && b.fits(1024));
    }

    #[test]
    fn end_to_end_serve_with_the_real_stack() {
        let (sys, model) = system();
        let mut cm = RpuCostModel::new(sys, model);
        let wl = Workload::poisson(100.0, 512, 16, 12);
        let cfg = ServeConfig {
            max_batch: 4,
            ..ServeConfig::default()
        };
        let r = serve(&wl, &mut cm, &cfg);
        assert_eq!(r.records.len(), 12);
        assert!(r.peak_batch <= 4);
        // Bucketing bounds the distinct simulator calls.
        assert!(cm.distinct_decode_sims() <= 4 * 4);
    }
}
