//! Memory design-space exploration: pick the optimal HBM-CO SKU for a
//! workload and system scale (the selection rule of Figs. 9, 10, 12).

use rpu_hbmco::{select_sku, DesignPoint};
use rpu_models::{ModelConfig, Precision};

/// Memory bytes each core must hold: the model footprint (weights + KV
/// cache for the batch/context) divided across all cores.
#[must_use]
pub fn required_bytes_per_core(
    model: &ModelConfig,
    precision: Precision,
    batch: u32,
    seq_len: u32,
    num_cus: u32,
) -> f64 {
    let cores = f64::from(num_cus) * 16.0;
    model.footprint_bytes(precision, batch, seq_len) / cores
}

/// Selects the highest-BW/Cap (smallest) HBM-CO SKU on the Pareto
/// frontier whose per-core capacity fits the workload, or `None` if even
/// the largest SKU cannot hold it at this scale.
///
/// # Examples
///
/// ```
/// use rpu_core::optimal_memory;
/// use rpu_models::{ModelConfig, Precision};
///
/// let sku = optimal_memory(
///     &ModelConfig::llama3_405b(),
///     Precision::mxfp4_inference(),
///     1,
///     8192,
///     64,
/// )
/// .unwrap();
/// // Fig. 9: 192 MiB/core (2 ranks | 1 bank/group | 1.0x sub-arrays).
/// assert_eq!(sku.config.ranks, 2);
/// ```
#[must_use]
pub fn optimal_memory(
    model: &ModelConfig,
    precision: Precision,
    batch: u32,
    seq_len: u32,
    num_cus: u32,
) -> Option<DesignPoint> {
    select_sku(required_bytes_per_core(
        model, precision, batch, seq_len, num_cus,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::units::MIB;

    #[test]
    fn fig9_anchor_405b_64cu() {
        let sku = optimal_memory(
            &ModelConfig::llama3_405b(),
            Precision::mxfp4_inference(),
            1,
            8192,
            64,
        )
        .expect("405B fits a 64-CU RPU");
        assert!((sku.capacity_per_pch() - 192.0 * MIB).abs() < 1.0);
        assert_eq!(sku.config.ranks, 2);
        assert_eq!(sku.config.banks_per_group, 1);
    }

    #[test]
    fn larger_systems_pick_smaller_skus() {
        let m = ModelConfig::llama3_405b();
        let p = Precision::mxfp4_inference();
        let small = optimal_memory(&m, p, 1, 8192, 64).unwrap();
        let big = optimal_memory(&m, p, 1, 8192, 428).unwrap();
        assert!(big.capacity_per_pch() < small.capacity_per_pch());
        assert!(big.bw_per_cap > small.bw_per_cap);
        assert!(big.energy_pj_per_bit < small.energy_pj_per_bit);
    }

    #[test]
    fn longer_context_needs_more_capacity() {
        let m = ModelConfig::llama4_maverick();
        let p = Precision::mxfp4_inference();
        let short = required_bytes_per_core(&m, p, 1, 8192, 64);
        let long = required_bytes_per_core(&m, p, 32, 128 * 1024, 64);
        assert!(long > short);
    }

    #[test]
    fn too_small_system_has_no_sku() {
        // 405B cannot fit on 8 CUs even with the largest stack
        // (8 x 16 x 1536 MiB = 192 GiB < required?). It actually fits:
        // use 4 CUs (96 GiB) which cannot hold 204 GB.
        let m = ModelConfig::llama3_405b();
        let p = Precision::mxfp4_inference();
        assert!(optimal_memory(&m, p, 1, 8192, 4).is_none());
    }
}
