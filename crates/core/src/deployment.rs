//! End-to-end reasoning-turn deployment: the Splitwise/Dynamo split the
//! paper assumes (§I), with prefill on a GPU system, KV-cache handoff
//! over the ring station's external network, and decode on the RPU.
//!
//! This module operationalises the paper's application domain (§IX):
//! human-computer interaction tolerates roughly ten seconds before users
//! context-switch, so a reasoning model that thinks for thousands of
//! tokens needs the RPU's token latency to stay interactive.

use crate::RpuSystem;
use rpu_gpu::GpuSystem;
use rpu_models::{DecodeWorkload, ModelConfig, PrefillWorkload};
use rpu_sim::SimError;

/// The interaction-latency threshold from the HCI literature the paper
/// cites (§IX): beyond ~10 s, working memory decays and users context
/// switch.
pub const INTERACTION_THRESHOLD_S: f64 = 10.0;

/// A reasoning workload: prompt, hidden chain-of-thought, and the
/// visible answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReasoningTask {
    /// Prompt length, tokens (prefill).
    pub prompt_tokens: u32,
    /// Hidden reasoning ("thinking") tokens generated before the answer.
    pub reasoning_tokens: u32,
    /// Visible answer tokens.
    pub answer_tokens: u32,
}

impl ReasoningTask {
    /// Multi-step planning: short prompt, long deliberation.
    #[must_use]
    pub fn planning() -> Self {
        Self {
            prompt_tokens: 2 * 1024,
            reasoning_tokens: 8 * 1024,
            answer_tokens: 1024,
        }
    }

    /// Iterative coding: large context (repository excerpts), moderate
    /// deliberation.
    #[must_use]
    pub fn coding() -> Self {
        Self {
            prompt_tokens: 16 * 1024,
            reasoning_tokens: 4 * 1024,
            answer_tokens: 2 * 1024,
        }
    }

    /// Writing assistance: medium prompt, shallow deliberation.
    #[must_use]
    pub fn writing() -> Self {
        Self {
            prompt_tokens: 4 * 1024,
            reasoning_tokens: 2 * 1024,
            answer_tokens: 2 * 1024,
        }
    }

    /// Total generated (decode) tokens.
    #[must_use]
    pub fn decode_tokens(&self) -> u32 {
        self.reasoning_tokens + self.answer_tokens
    }

    /// Final context length after the turn.
    #[must_use]
    pub fn final_seq_len(&self) -> u32 {
        self.prompt_tokens + self.decode_tokens()
    }
}

/// A disaggregated deployment: GPU prefill engine + RPU decode engine.
#[derive(Debug, Clone, Copy)]
pub struct Deployment {
    /// The prefill system (compute-bound work stays on GPUs, §I).
    pub prefill: GpuSystem,
    /// The decode system.
    pub decode: RpuSystem,
    /// KV-cache handoff bandwidth between the engines, bytes/s (the
    /// ring station's external network, e.g. 100 Gb Ethernet per §IV).
    pub kv_link_bytes_per_s: f64,
}

/// Per-phase latency of one reasoning turn, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TurnLatency {
    /// Prompt prefill on the GPU engine.
    pub prefill_s: f64,
    /// KV-cache transfer into RPU memory.
    pub kv_transfer_s: f64,
    /// Token generation (reasoning + answer) on the decode engine.
    pub decode_s: f64,
}

impl TurnLatency {
    /// End-to-end turn latency.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.prefill_s + self.kv_transfer_s + self.decode_s
    }

    /// `true` when the turn completes within the interaction threshold.
    #[must_use]
    pub fn interactive(&self) -> bool {
        self.total() <= INTERACTION_THRESHOLD_S
    }
}

impl Deployment {
    /// A deployment with the paper's ring-station external network
    /// (100 Gb Ethernet ≈ 12.5 GB/s).
    #[must_use]
    pub fn new(prefill: GpuSystem, decode: RpuSystem) -> Self {
        Self {
            prefill,
            decode,
            kv_link_bytes_per_s: 12.5e9,
        }
    }

    /// Latency of one full reasoning turn for `model` on `task`,
    /// batch 1 (the latency-critical interactive regime).
    ///
    /// Decode latency is simulated once at the turn's mid-generation
    /// context and scaled by the token count (token latency varies
    /// slowly with context within one turn).
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn turn_latency(
        &self,
        model: &ModelConfig,
        task: &ReasoningTask,
    ) -> Result<TurnLatency, SimError> {
        let prefill_wl = PrefillWorkload::new(model, self.decode.precision, 1, task.prompt_tokens);
        let prefill_s = self.prefill.prefill_latency(&prefill_wl);

        let kv_bytes =
            model.kv_bytes_per_token(self.decode.precision) * f64::from(task.prompt_tokens);
        let kv_transfer_s = kv_bytes / self.kv_link_bytes_per_s;

        let mid_seq = task.prompt_tokens + task.decode_tokens() / 2;
        let per_token = self.decode.token_latency(model, 1, mid_seq)?;
        Ok(TurnLatency {
            prefill_s,
            kv_transfer_s,
            decode_s: per_token * f64::from(task.decode_tokens()),
        })
    }

    /// The same turn served entirely by the GPU system (prefill and
    /// decode), for comparison.
    #[must_use]
    pub fn gpu_only_turn_latency(&self, model: &ModelConfig, task: &ReasoningTask) -> TurnLatency {
        let prefill_wl = PrefillWorkload::new(
            model,
            rpu_models::Precision::gpu_w4a16(),
            1,
            task.prompt_tokens,
        );
        let prefill_s = self.prefill.prefill_latency(&prefill_wl);
        let mid_seq = task.prompt_tokens + task.decode_tokens() / 2;
        let wl = DecodeWorkload::new(model, rpu_models::Precision::gpu_w4a16(), 1, mid_seq);
        TurnLatency {
            prefill_s,
            kv_transfer_s: 0.0,
            decode_s: self.prefill.decode_step_latency(&wl) * f64::from(task.decode_tokens()),
        }
    }

    /// Maximum decode tokens that keep a turn under the interaction
    /// threshold, given the task's prompt.
    ///
    /// # Errors
    ///
    /// Propagates simulator failures.
    pub fn max_interactive_tokens(
        &self,
        model: &ModelConfig,
        task: &ReasoningTask,
    ) -> Result<u32, SimError> {
        let base = self.turn_latency(model, task)?;
        let fixed = base.prefill_s + base.kv_transfer_s;
        if fixed >= INTERACTION_THRESHOLD_S {
            return Ok(0);
        }
        let per_token = base.decode_s / f64::from(task.decode_tokens());
        Ok(((INTERACTION_THRESHOLD_S - fixed) / per_token) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_gpu::GpuSpec;
    use rpu_models::Precision;

    fn deployment_70b() -> (ModelConfig, Deployment) {
        let model = ModelConfig::llama3_70b();
        let decode =
            RpuSystem::with_optimal_memory(&model, Precision::mxfp4_inference(), 1, 32 * 1024, 128)
                .expect("70B fits");
        (
            model,
            Deployment::new(GpuSystem::new(GpuSpec::h100_sxm(), 4), decode),
        )
    }

    #[test]
    fn planning_turn_is_interactive_on_rpu_not_on_gpu() {
        // The paper's motivation in one assertion: a multi-step planning
        // turn (9k generated tokens) stays interactive on the RPU but
        // blows far past the threshold on the GPU system.
        let (model, d) = deployment_70b();
        let task = ReasoningTask::planning();
        let rpu = d.turn_latency(&model, &task).expect("simulates");
        let gpu = d.gpu_only_turn_latency(&model, &task);
        assert!(rpu.interactive(), "RPU turn {}s", rpu.total());
        assert!(
            !gpu.interactive(),
            "GPU turn {}s should exceed 10s",
            gpu.total()
        );
        assert!(gpu.total() / rpu.total() > 5.0);
    }

    #[test]
    fn decode_dominates_rpu_turn() {
        // Prefill and KV handoff are small against thousands of decode
        // steps.
        let (model, d) = deployment_70b();
        let t = d
            .turn_latency(&model, &ReasoningTask::planning())
            .expect("simulates");
        assert!(
            t.decode_s > 0.8 * t.total(),
            "decode share {}",
            t.decode_s / t.total()
        );
    }

    #[test]
    fn kv_transfer_scales_with_prompt() {
        let (model, d) = deployment_70b();
        let short = d
            .turn_latency(&model, &ReasoningTask::writing())
            .expect("simulates");
        let long = d
            .turn_latency(&model, &ReasoningTask::coding())
            .expect("simulates");
        assert!(long.kv_transfer_s > 2.0 * short.kv_transfer_s);
    }

    #[test]
    fn max_interactive_tokens_is_thousands_on_rpu() {
        // §IX: reasoning requires thousands of tokens within the
        // interaction budget — exactly what the RPU unlocks.
        let (model, d) = deployment_70b();
        let n = d
            .max_interactive_tokens(&model, &ReasoningTask::planning())
            .expect("simulates");
        assert!(n > 5_000, "interactive budget {n} tokens");
    }

    #[test]
    fn task_presets_are_consistent() {
        for t in [
            ReasoningTask::planning(),
            ReasoningTask::coding(),
            ReasoningTask::writing(),
        ] {
            assert_eq!(t.decode_tokens(), t.reasoning_tokens + t.answer_tokens);
            assert_eq!(t.final_seq_len(), t.prompt_tokens + t.decode_tokens());
            assert!(t.reasoning_tokens > 0);
        }
    }
}
