//! Accuracy battery for [`sweep_latency_lut`]: the flattened LUT must
//! reproduce the simulator-backed cost model exactly at every knot,
//! stay within 1% of it off-grid, and drive whole serving runs that
//! conserve tokens and never admit past KV capacity.

use proptest::prelude::*;
use rpu_core::serving::{sweep_latency_lut, SharedRpuCostModel};
use rpu_models::LengthDistribution;
use rpu_serve::{serve, CostModel, LatencyLut, RequestSource, ServeConfig, Workload};
use std::sync::OnceLock;

/// One shared test-bed: building the LUT runs the event-driven
/// simulator once per knot, so every test reuses the same instance.
fn bed() -> &'static (ServeConfig, LatencyLut, SharedRpuCostModel) {
    static BED: OnceLock<(ServeConfig, LatencyLut, SharedRpuCostModel)> = OnceLock::new();
    BED.get_or_init(|| sweep_latency_lut(64, 4, 1024))
}

#[test]
fn lut_is_exact_at_every_knot() {
    let (_, lut, cost) = bed();
    let mut cost = cost.clone();
    for batch in 1..=lut.max_batch() {
        for &ctx in lut.context_knots() {
            assert_eq!(
                lut.decode_lookup_s(batch, ctx).to_bits(),
                cost.decode_step_s(batch, ctx).to_bits(),
                "decode batch {batch} ctx {ctx} must read back bit-exactly"
            );
        }
    }
    for &p in lut.prefill_knots() {
        assert_eq!(
            lut.prefill_lookup_s(p).to_bits(),
            cost.prefill_s(p).to_bits(),
            "prefill prompt {p} must read back bit-exactly"
        );
    }
    assert_eq!(lut.kv_capacity_tokens(), cost.kv_capacity_tokens());
}

#[test]
fn off_grid_error_stays_below_one_percent() {
    let (_, lut, cost) = bed();
    let mut cost = cost.clone();
    // Probe midpoints and quarter-points of every context interval —
    // the worst case for linear interpolation of a smooth surface.
    let knots: Vec<u32> = lut.context_knots().to_vec();
    for batch in 1..=lut.max_batch() {
        for w in knots.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            for ctx in [
                lo + (hi - lo) / 4,
                lo + (hi - lo) / 2,
                lo + 3 * (hi - lo) / 4,
            ] {
                let got = lut.decode_lookup_s(batch, ctx);
                let want = cost.decode_step_s(batch, ctx);
                let rel = (got - want).abs() / want;
                assert!(
                    rel < 0.01,
                    "decode batch {batch} ctx {ctx}: {got} vs {want} ({:.3}% off)",
                    rel * 100.0
                );
            }
        }
    }
    let pknots: Vec<u32> = lut.prefill_knots().to_vec();
    for w in pknots.windows(2) {
        let p = w[0] + (w[1] - w[0]) / 2;
        let got = lut.prefill_lookup_s(p);
        let want = cost.prefill_s(p);
        let rel = (got - want).abs() / want;
        assert!(
            rel < 0.01,
            "prefill prompt {p}: {got} vs {want} ({:.3}% off)",
            rel * 100.0
        );
    }
}

#[test]
fn knot_aligned_runs_are_bit_identical_to_the_simulator_model() {
    // Prompt and context lengths on knots → every price the scheduler
    // asks for is an exact table read, so the whole run is
    // bit-identical to driving the memoised simulator model directly.
    let (config, lut, cost) = bed();
    let wl = Workload::poisson(400.0, 512, 24, 48);
    let fast = serve(&wl, &mut lut.clone(), config);
    let slow = serve(&wl, &mut cost.clone(), config);
    assert_eq!(fast, slow);
}

/// Sum of output tokens over every request the workload issues.
fn issued_output_tokens(wl: &Workload) -> u64 {
    // Poisson arrivals are open-loop: the issue schedule is independent
    // of completions, so draining the source enumerates exactly the
    // requests a serving run will see.
    let mut src = RequestSource::new(wl);
    let mut total = 0u64;
    while let Some(t) = src.next_arrival_s() {
        let req = src.pop_ready(t).expect("arrival is due");
        total += u64::from(req.output_len);
    }
    total
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LUT-backed runs complete every admitted token (conservation) and
    /// the conservative KV reservation never exceeds the capacity the
    /// LUT carried over from the simulator model.
    #[test]
    fn lut_runs_conserve_tokens_and_respect_capacity(
        rate_rps in 100.0f64..3000.0,
        num_requests in 4u32..32,
        seed in 0u64..1 << 48,
        prompt_hi in 64u32..1024,
        output_hi in 4u32..32,
    ) {
        let (config, lut, _) = bed();
        let mut wl = Workload::poisson(rate_rps, 64, 16, num_requests);
        wl.seed = seed;
        wl.prompt_lens = LengthDistribution::Uniform { lo: 16, hi: prompt_hi };
        wl.output_lens = LengthDistribution::Uniform { lo: 1, hi: output_hi };
        let mut model = lut.clone();
        let report = serve(&wl, &mut model, config);
        // Every issued request either completes or is rejected, and
        // every issued output token is accounted for by exactly one of
        // the two buckets — none lost, none invented.
        prop_assert_eq!(
            report.records.len() as u32 + report.rejected,
            num_requests
        );
        let completed = report.output_tokens();
        let rejected: u64 = report
            .rejected_requests
            .iter()
            .map(|r| u64::from(r.output_len))
            .sum();
        prop_assert_eq!(completed + rejected, issued_output_tokens(&wl));
        // Admission is gated on the carried-over KV capacity.
        prop_assert!(report.peak_reserved_tokens <= lut.kv_capacity_tokens());
    }
}
