//! # RPU — a Reasoning Processing Unit, reproduced in Rust
//!
//! This facade crate re-exports the full public API of the reproduction
//! of *"RPU – A Reasoning Processing Unit"* (Adiletta, Wei, Brooks —
//! HPCA 2026): a chiplet-based accelerator architecture for low-latency
//! (low-batch) LLM decode, built around three ideas:
//!
//! 1. **HBM-CO** ([`hbmco`]) — capacity-optimised high-bandwidth memory:
//!    keep the shoreline bandwidth, shrink the capacity structures
//!    (ranks, banks, sub-arrays), gain up to ~2.4× energy per bit and
//!    ~35× module cost.
//! 2. **A bandwidth-first chiplet fabric** ([`arch`]) — 70–80 % of power
//!    to memory interfaces, 32 Ops/Byte compute-to-bandwidth ratio,
//!    composed core → compute unit → package → ring.
//! 3. **Decoupled pipelines** ([`isa`], [`sim`]) — per-core memory /
//!    compute / network instruction streams synchronised only through
//!    buffer-resident valid counters, so memory prefetch hides network
//!    collectives and phase imbalance.
//!
//! The [`core`] module composes these into deployable systems and
//! regenerates every figure of the paper's evaluation; [`gpu`] provides
//! the calibrated H100/H200 baseline; [`models`] the Llama 3/4 workload
//! zoo; [`serve`] lifts the per-token cost models to request-level
//! serving (continuous batching, arrival processes, TTFT/TPOT SLOs).
//!
//! # Quickstart
//!
//! ```
//! use rpu::core::RpuSystem;
//! use rpu::models::{ModelConfig, Precision};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Deploy Llama3-70B on a 128-CU RPU with the optimal HBM-CO SKU.
//! let model = ModelConfig::llama3_70b();
//! let sys = RpuSystem::with_optimal_memory(
//!     &model,
//!     Precision::mxfp4_inference(),
//!     1,      // batch
//!     8192,   // context length
//!     128,    // compute units
//! )?;
//! let report = sys.decode_step(&model, 1, 8192)?;
//! println!(
//!     "token latency {:.2} ms at {:.0}% memory-bandwidth utilisation",
//!     report.total_time_s * 1e3,
//!     report.mem_bw_utilization() * 100.0,
//! );
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

/// The HBM-CO analytical memory model (paper §III).
pub mod hbmco {
    pub use rpu_hbmco::*;
}

/// LLM workload models: the Llama 3/4 zoo, datatypes, kernels, phases.
pub mod models {
    pub use rpu_models::*;
}

/// The RPU chiplet architecture model (paper §IV, Fig. 6).
pub mod arch {
    pub use rpu_arch::*;
}

/// The calibrated H100/H200 analytical baseline (paper §II).
pub mod gpu {
    pub use rpu_gpu::*;
}

/// The RPU ISA and transformer compiler (paper §V–VI).
pub mod isa {
    pub use rpu_isa::*;
}

/// The event-driven microarchitectural simulator (paper §VI).
pub mod sim {
    pub use rpu_sim::*;
}

/// System composition, SKU selection, and the paper's experiments.
pub mod core {
    pub use rpu_core::*;
}

/// Request-level serving: arrivals, continuous batching, SLO metrics.
pub mod serve {
    pub use rpu_serve::*;
}

pub use rpu_core::{optimal_memory, BuildError, RpuSystem};
pub use rpu_hbmco::HbmCoConfig;
pub use rpu_models::{ModelConfig, Precision};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        let sku = crate::optimal_memory(
            &crate::ModelConfig::llama3_8b(),
            crate::Precision::mxfp4_inference(),
            1,
            4096,
            64,
        )
        .expect("8B fits a 64-CU RPU");
        assert!(sku.bw_per_cap > 0.0);
    }
}
