//! Error-path tests for the simulator: deadlock detection and the
//! event-budget safety limit, exercised with minimal hand-built
//! [`CoreProgram`]s rather than compiler output.

use rpu_hbmco::HbmCoConfig;
use rpu_isa::{CoreProgram, Instr, Op, Production, ShardPlan, Tag};
use rpu_models::{KernelKind, Precision};
use rpu_sim::{SimConfig, SimError, Simulator};

fn load(out: Tag, bytes: u64) -> Instr {
    Instr {
        kernel: KernelKind::QkvProj,
        layer: 0,
        op: Op::MemLoad {
            out,
            bytes,
            valid_count: 1,
        },
    }
}

fn store_waiting_on(input: Tag) -> Instr {
    Instr {
        kernel: KernelKind::QkvProj,
        layer: 0,
        op: Op::MemStore {
            input: Some(input),
            bytes: 64,
        },
    }
}

fn vmm(weights: Tag, out: Option<Tag>, weight_bytes: u64) -> Instr {
    Instr {
        kernel: KernelKind::QkvProj,
        layer: 0,
        op: Op::Vmm {
            weights,
            acts: vec![],
            out: out.map(|tag| Production {
                tag,
                bytes: 64,
                valid_count: 1,
            }),
            weight_bytes,
            flops: 8 * weight_bytes,
        },
    }
}

fn simulator(config: SimConfig) -> Simulator {
    Simulator::new(
        HbmCoConfig::candidate(),
        Precision::mxfp4_inference(),
        ShardPlan::new(1, 16),
        config,
    )
}

#[test]
fn circular_wait_deadlocks_with_pc_report() {
    // mem:  [ MemStore(waits tag 2), MemLoad(produces tag 1) ]
    // comp: [ Vmm(drains tag 1, produces tag 2) ]
    //
    // The store heads the in-order memory stream and waits for the VMM
    // output; the VMM waits for weights the blocked stream never loads.
    // Nothing can progress and all program counters sit at 0.
    let mut p = CoreProgram::default();
    p.push(store_waiting_on(2));
    p.push(load(1, 4096));
    p.push(vmm(1, Some(2), 4096));
    p.validate_dataflow().expect("tags are well-formed");

    let err = simulator(SimConfig::default())
        .run(&p)
        .expect_err("circular wait must deadlock");
    match err {
        SimError::Deadlock { pcs } => assert_eq!(pcs, [0, 0, 0]),
        other => panic!("expected Deadlock, got {other:?}"),
    }
}

#[test]
fn deadlock_mid_program_reports_stalled_pcs() {
    // A healthy first chain, then the same cycle: the reported program
    // counters must point at the stalled instructions, not at zero.
    let mut p = CoreProgram::default();
    p.push(load(10, 4096));
    p.push(vmm(10, None, 4096));
    p.push(store_waiting_on(2));
    p.push(load(1, 4096));
    p.push(vmm(1, Some(2), 4096));

    let err = simulator(SimConfig::default())
        .run(&p)
        .expect_err("cycle after healthy prefix must deadlock");
    let SimError::Deadlock { pcs } = err else {
        panic!("expected Deadlock, got {err:?}");
    };
    // mem stalls on its second instruction (the store), comp on its
    // second (the blocked VMM); the empty net stream is done.
    assert_eq!(pcs, [1, 1, 0]);
}

#[test]
fn deadlock_display_names_the_pipelines() {
    let err = SimError::Deadlock { pcs: [3, 1, 4] };
    let msg = err.to_string();
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(
        msg.contains("mem=3") && msg.contains("comp=1") && msg.contains("net=4"),
        "{msg}"
    );
}

#[test]
fn event_budget_exhaustion_is_reported() {
    // A megabyte streamed in 16 KiB chunks needs far more than eight
    // events; the safety limit must trip rather than spin.
    let mut p = CoreProgram::default();
    p.push(load(1, 1 << 20));
    p.push(vmm(1, None, 1 << 20));

    let err = simulator(SimConfig {
        max_events: 8,
        ..SimConfig::default()
    })
    .run(&p)
    .expect_err("event budget of 8 must be exhausted");
    assert_eq!(err, SimError::EventLimit);
    assert!(err.to_string().contains("event limit"), "{err}");
}

#[test]
fn default_budget_completes_the_same_program() {
    // The same program under the default budget runs to completion —
    // the limit in the previous test was the only failure cause.
    let mut p = CoreProgram::default();
    p.push(load(1, 1 << 20));
    p.push(vmm(1, None, 1 << 20));

    let report = simulator(SimConfig::default())
        .run(&p)
        .expect("default budget suffices");
    assert_eq!(report.streamed_bytes, 1 << 20);
    assert!(report.total_time_s > 0.0);
}

#[test]
fn errors_are_values_not_panics() {
    // SimError implements std::error::Error, so callers can propagate
    // failures with `?` instead of unwinding.
    fn run_checked(p: &CoreProgram) -> Result<f64, Box<dyn std::error::Error>> {
        Ok(simulator(SimConfig::default()).run(p)?.total_time_s)
    }
    let mut p = CoreProgram::default();
    p.push(store_waiting_on(2));
    p.push(load(1, 64));
    p.push(vmm(1, Some(2), 64));
    assert!(run_checked(&p).is_err());
}
