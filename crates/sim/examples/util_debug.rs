use rpu_hbmco::HbmCoConfig;
use rpu_isa::{compile_decode_step, ShardPlan};
use rpu_models::{KernelKind, ModelConfig, Precision};
use rpu_sim::{SimConfig, Simulator};

fn main() {
    let prec = Precision::mxfp4_inference();
    let plan = ShardPlan::new(64, 16);
    let model = ModelConfig::llama3_8b();
    let prog = compile_decode_step(&model, prec, 1, 16 * 1024, &plan);
    let sim = Simulator::new(HbmCoConfig::candidate(), prec, plan, SimConfig::default());
    let r = sim.run(&prog).unwrap();
    println!(
        "total {:.1}us mem_busy {:.1}us comp_busy {:.1}us net_busy {:.1}us",
        r.total_time_s * 1e6,
        r.mem_busy_s * 1e6,
        r.comp_busy_s * 1e6,
        r.net_busy_s * 1e6
    );
    let mut ks: Vec<(&KernelKind, &rpu_sim::KernelStat)> = r.kernels.iter().collect();
    ks.sort_by(|a, b| b.1.comp_busy_s.total_cmp(&a.1.comp_busy_s));
    for (k, s) in ks {
        println!(
            "{k:<14} mem {:>8.2}us comp {:>8.2}us net {:>8.2}us",
            s.mem_busy_s * 1e6,
            s.comp_busy_s * 1e6,
            s.net_busy_s * 1e6
        );
    }
}
