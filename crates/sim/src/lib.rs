//! Event-driven simulator for the RPU (§VI, Contribution 4).
//!
//! Executes the three per-core instruction streams produced by
//! `rpu-isa` on a model of the reasoning-core microarchitecture: three
//! decoupled pipelines (memory, compute, network) that communicate only
//! through SRAM buffers guarded by pipeline-arbiter valid counters.
//! Data is symbolic — each event carries (tag, size) like the paper's
//! simulator — and rates come from the Fig. 6 table (32 GB/s HBM-CO
//! pseudo-channel per core, 1024-bit stream-decoder bus, 1 TFLOP TMACs,
//! 16 GB/s per-core ring links, ≤10 ns CU hops).
//!
//! The simulator executes one *representative core*; column sharding
//! makes every core's schedule identical (mirrored symmetry), so
//! system-level latency equals the representative core's latency and
//! system energy is the per-core energy scaled by the core count. This
//! is the same single-CU view the paper's Fig. 8 presents.
//!
//! Ablation switches reproduce §IX: `coupled_pipelines` inserts a
//! barrier between kernels (no prefetch-ahead), `global_sync` makes
//! every network collective a global barrier.
//!
//! # Examples
//!
//! ```
//! use rpu_isa::{compile_decode_step, ShardPlan};
//! use rpu_models::{ModelConfig, Precision};
//! use rpu_sim::{SimConfig, Simulator};
//! use rpu_hbmco::HbmCoConfig;
//!
//! let plan = ShardPlan::new(64, 16);
//! let prec = Precision::mxfp4_inference();
//! let model = ModelConfig::llama3_8b();
//! let prog = compile_decode_step(&model, prec, 1, 8192, &plan);
//! let sim = Simulator::new(HbmCoConfig::candidate(), prec, plan, SimConfig::default());
//! let report = sim.run(&prog).unwrap();
//! // BS=1 decode saturates the memory pipeline.
//! assert!(report.mem_bw_utilization() > 0.9);
//! ```

#![warn(missing_docs)]

mod buffers;
mod engine;
mod report;

pub use buffers::{BufferId, BufferState, DataflowState};
pub use engine::{SimConfig, SimError, Simulator};
pub use report::{EnergyBuckets, KernelStat, SimReport, Trace};
