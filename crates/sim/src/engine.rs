//! The discrete-event engine executing one representative core.

use crate::buffers::{BufferId, DataflowState};
use crate::report::{EnergyBuckets, KernelStat, SimReport, Trace};
use rpu_arch::{
    ring_broadcast_latency, ring_reduce_latency, two_level_broadcast_latency,
    two_level_reduce_latency, CoreSpec, EnergyCoeffs, LinkSpec, TwoLevelRing,
};
use rpu_hbmco::{energy_per_bit, HbmCoConfig};
use rpu_isa::{CollectiveKind, CoreProgram, Instr, Op, Production, ShardPlan, Tag};
use rpu_models::{KernelKind, Precision};
use rpu_util::stats::Binner;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt;

const PS: f64 = 1e12;

/// Simulator knobs, including the §IX ablation switches.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Streaming quantum, bytes (models the chunked DMA transfers).
    pub chunk_bytes: u64,
    /// Ablation: serialise pipelines at kernel boundaries (memory may not
    /// prefetch past what compute is consuming).
    pub coupled_pipelines: bool,
    /// Ablation: every network collective acts as a global barrier.
    pub global_sync: bool,
    /// On-the-fly stream dequantisation (§V). Disabling it stores decoded
    /// BF16 in the buffers, multiplying SRAM-interface traffic.
    pub stream_decode: bool,
    /// Use the hierarchical two-level ring of the paper's §VIII future
    /// direction for collectives instead of the flat CU ring.
    pub two_level_ring: bool,
    /// Bin width for the Fig. 8 traces; `None` disables trace capture.
    pub trace_bin_s: Option<f64>,
    /// Safety limit on processed events.
    pub max_events: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            chunk_bytes: 16 * 1024,
            coupled_pipelines: false,
            global_sync: false,
            stream_decode: true,
            two_level_ring: false,
            trace_bin_s: None,
            max_events: 200_000_000,
        }
    }
}

/// Simulation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// No pipeline can make progress but instructions remain.
    Deadlock {
        /// Program counters (mem, comp, net) at the stall.
        pcs: [usize; 3],
    },
    /// The event budget was exhausted (likely a configuration bug).
    EventLimit,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { pcs } => write!(
                f,
                "simulation deadlock at pcs mem={} comp={} net={}",
                pcs[0], pcs[1], pcs[2]
            ),
            SimError::EventLimit => f.write_str("simulation event limit exceeded"),
        }
    }
}

impl std::error::Error for SimError {}

/// The simulator: machine parameters plus configuration.
#[derive(Debug, Clone)]
pub struct Simulator {
    core: CoreSpec,
    coeffs: EnergyCoeffs,
    precision: Precision,
    plan: ShardPlan,
    config: SimConfig,
    mem_pj_bit: f64,
    link: LinkSpec,
}

impl Simulator {
    /// Builds a simulator for the paper-spec core attached to the given
    /// HBM-CO stack, running a program compiled for `plan`.
    #[must_use]
    pub fn new(
        memory: HbmCoConfig,
        precision: Precision,
        plan: ShardPlan,
        config: SimConfig,
    ) -> Self {
        let core = CoreSpec::paper();
        Self {
            core,
            coeffs: EnergyCoeffs::paper(),
            precision,
            plan,
            config,
            mem_pj_bit: energy_per_bit(&memory).total(),
            link: LinkSpec {
                // Ring links operate at CU granularity: all cores of a CU
                // inject in parallel over the 256 GB/s CU link.
                core_bandwidth: f64::from(plan.cores_per_cu) * CoreSpec::paper().net_bandwidth,
                ..LinkSpec::paper()
            },
        }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn decode_rate(&self, kernel: KernelKind) -> f64 {
        let decoded_bytes_per_s =
            f64::from(self.core.compute_bus_bits) / 8.0 * self.core.bus_clock_hz;
        let stored_bits = match kernel {
            KernelKind::AttnScore | KernelKind::AttnContext => {
                self.precision.kv_cache.bits_per_value()
            }
            _ => self.precision.weights.bits_per_value(),
        };
        decoded_bytes_per_s * stored_bits / self.precision.activations.bits_per_value()
    }

    fn expansion(&self, kernel: KernelKind) -> f64 {
        let stored_bits = match kernel {
            KernelKind::AttnScore | KernelKind::AttnContext => {
                self.precision.kv_cache.bits_per_value()
            }
            _ => self.precision.weights.bits_per_value(),
        };
        self.precision.activations.bits_per_value() / stored_bits
    }

    fn vops_rate(&self) -> f64 {
        f64::from(self.core.vops_per_cycle) * self.core.bus_clock_hz
    }

    /// Runs the program to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if the dataflow stalls and
    /// [`SimError::EventLimit`] if the event budget is exhausted.
    pub fn run(&self, program: &CoreProgram) -> Result<SimReport, SimError> {
        Engine::new(self, program).run()
    }
}

#[derive(Debug, Clone)]
struct Pending {
    consumes: Vec<Tag>,
    consumes_done: bool,
    publish: Option<Production>,
    /// (progress delta, instruction complete?)
    advance: (u64, bool),
    energy: EnergyBuckets,
}

#[derive(Debug)]
struct PipeRt<'a> {
    stream: &'a [Instr],
    pc: usize,
    progress: u64,
    free_at: u64,
    pending: Option<Pending>,
}

impl PipeRt<'_> {
    fn finished(&self) -> bool {
        self.pc >= self.stream.len() && self.pending.is_none()
    }
}

struct Engine<'a> {
    sim: &'a Simulator,
    state: DataflowState,
    pipes: [PipeRt<'a>; 3],
    heap: BinaryHeap<Reverse<(u64, u8)>>,
    now_last: u64,
    sync_floor: u64,
    events: u64,
    /// In-flight HP-VOPs operations: the vector unit is a separate
    /// execution resource (§V), so VOps do not hold the compute pipe —
    /// the TMAC feed continues streaming weights underneath them.
    vops_inflight: Vec<(u64, Pending)>,
    /// tag -> index of the compute instruction that consumes it (for the
    /// coupled-pipeline prefetch fence).
    comp_consumer: HashMap<Tag, usize>,
    // accounting
    busy_ps: [u64; 3],
    end_ps: u64,
    kernels: HashMap<KernelKind, KernelStat>,
    energy: EnergyBuckets,
    streamed: u64,
    stored: u64,
    flops: f64,
    peak_buffer: u64,
    util_bins: Option<[Binner; 3]>,
    power_bin: Option<Binner>,
    buffer_samples: Vec<(f64, u64)>,
}

impl<'a> Engine<'a> {
    fn new(sim: &'a Simulator, program: &'a CoreProgram) -> Self {
        let mut state = DataflowState::new(
            sim.core.mem_buf_bytes,
            sim.core.net_buf_bytes,
            sim.core.act_buf_bytes * u64::from(sim.core.tmacs) / 2,
        );
        for i in program.all() {
            let buffer = match i.pipeline() {
                rpu_isa::Pipeline::Memory => BufferId::Mem,
                rpu_isa::Pipeline::Compute => BufferId::Act,
                rpu_isa::Pipeline::Network => BufferId::Net,
            };
            for p in i.productions() {
                state.declare(p.tag, p.bytes, p.valid_count, buffer);
            }
        }
        let mut comp_consumer = HashMap::new();
        for (idx, i) in program.comp.iter().enumerate() {
            for t in i.consumptions() {
                comp_consumer.entry(t).or_insert(idx);
            }
        }
        let mut heap = BinaryHeap::new();
        for p in 0..3u8 {
            heap.push(Reverse((0u64, p)));
        }
        let trace = sim.config.trace_bin_s;
        Self {
            sim,
            state,
            pipes: [
                PipeRt {
                    stream: &program.mem,
                    pc: 0,
                    progress: 0,
                    free_at: 0,
                    pending: None,
                },
                PipeRt {
                    stream: &program.comp,
                    pc: 0,
                    progress: 0,
                    free_at: 0,
                    pending: None,
                },
                PipeRt {
                    stream: &program.net,
                    pc: 0,
                    progress: 0,
                    free_at: 0,
                    pending: None,
                },
            ],
            heap,
            now_last: 0,
            sync_floor: 0,
            events: 0,
            vops_inflight: Vec::new(),
            comp_consumer,
            busy_ps: [0; 3],
            end_ps: 0,
            kernels: HashMap::new(),
            energy: EnergyBuckets::default(),
            streamed: 0,
            stored: 0,
            flops: 0.0,
            peak_buffer: 0,
            util_bins: trace.map(|w| [Binner::new(w), Binner::new(w), Binner::new(w)]),
            power_bin: trace.map(Binner::new),
            buffer_samples: Vec::new(),
        }
    }

    fn wake_others(&mut self, t: u64, me: u8) {
        for p in 0..3u8 {
            if p != me {
                self.heap.push(Reverse((t, p)));
            }
        }
    }

    fn record_busy(&mut self, pipe: u8, kernel: KernelKind, start: u64, end: u64) {
        let dur = end - start;
        self.busy_ps[pipe as usize] += dur;
        self.end_ps = self.end_ps.max(end);
        let ks = self.kernels.entry(kernel).or_default();
        let secs = dur as f64 / PS;
        match pipe {
            0 => ks.mem_busy_s += secs,
            1 => ks.comp_busy_s += secs,
            _ => ks.net_busy_s += secs,
        }
        if let Some(bins) = &mut self.util_bins {
            bins[pipe as usize].add_interval(start as f64 / PS, end as f64 / PS, secs);
        }
    }

    fn deposit_energy(&mut self, e: &EnergyBuckets, start: u64, end: u64) {
        self.energy.mem_device += e.mem_device;
        self.energy.sram += e.sram;
        self.energy.tmac += e.tmac;
        self.energy.vops += e.vops;
        self.energy.decode += e.decode;
        self.energy.net += e.net;
        if let Some(pb) = &mut self.power_bin {
            let cores = f64::from(self.sim.plan.cores_per_cu);
            pb.add_interval(
                start as f64 / PS,
                (end.max(start + 1)) as f64 / PS,
                e.total() * cores,
            );
        }
    }

    fn sample_buffers(&mut self, t: u64) {
        let occ = self.state.total_occupied();
        self.peak_buffer = self.peak_buffer.max(occ);
        if self.util_bins.is_some() {
            self.buffer_samples.push((t as f64 / PS, occ));
        }
    }

    fn apply_pending(&mut self, pipe: u8, t: u64) -> bool {
        let mut pending = self.pipes[pipe as usize]
            .pending
            .take()
            .expect("pending exists");
        if !pending.consumes_done {
            for tag in &pending.consumes {
                self.state.consume(*tag);
            }
            pending.consumes_done = true;
        }
        if let Some(p) = pending.publish {
            if !self.state.can_publish(p.tag) {
                self.pipes[pipe as usize].pending = Some(pending);
                return false;
            }
            self.state.publish(p.tag, p.bytes);
        }
        let start = self.pipes[pipe as usize].free_at.min(t);
        self.deposit_energy(&pending.energy.clone(), start.saturating_sub(1), t);
        let (delta, complete) = pending.advance;
        let rt = &mut self.pipes[pipe as usize];
        rt.progress += delta;
        if complete {
            rt.progress = 0;
            rt.pc += 1;
        }
        self.sample_buffers(t);
        true
    }

    /// Attempts to start the next quantum of `pipe` at wall time `t`.
    /// Returns `true` if something was scheduled.
    fn try_start(&mut self, pipe: u8, t: u64) -> bool {
        let rt = &self.pipes[pipe as usize];
        if rt.pc >= rt.stream.len() {
            return false;
        }
        let instr = &rt.stream[rt.pc];
        let kernel = instr.kernel;
        let start = t.max(if self.sim.config.global_sync {
            self.sync_floor
        } else {
            0
        });
        let chunk = self.sim.config.chunk_bytes;
        let cfg = &self.sim.config;

        match &instr.op {
            Op::MemLoad { out, bytes, .. } => {
                // Coupled ablation: no prefetching past the compute
                // pipeline's current instruction. A global barrier
                // (global_sync) implies the same fence: no pipeline may
                // run ahead of the synchronisation point.
                if cfg.coupled_pipelines || cfg.global_sync {
                    if let Some(&ci) = self.comp_consumer.get(out) {
                        if ci > self.pipes[1].pc {
                            return false;
                        }
                    }
                }
                if !self.state.can_publish(*out) {
                    return false;
                }
                let remaining = bytes - rt.progress;
                let q = remaining.min(chunk);
                let dur = ((q as f64 / self.sim.core.mem_bandwidth) * PS).ceil() as u64;
                let e = EnergyBuckets {
                    mem_device: q as f64 * 8.0 * self.sim.mem_pj_bit * 1e-12,
                    sram: q as f64 * 8.0 * self.sim.coeffs.sram_write_pj_bit * 1e-12,
                    ..EnergyBuckets::default()
                };
                self.streamed += q;
                let last = q == remaining;
                let publish = Some(Production {
                    tag: *out,
                    bytes: q,
                    valid_count: 1,
                });
                // Publication capacity was checked above; the publish in
                // the pending applies unconditionally via overshoot rule.
                self.schedule(
                    pipe,
                    kernel,
                    start,
                    dur,
                    Pending {
                        consumes: vec![],
                        consumes_done: true,
                        publish,
                        advance: (q, last),
                        energy: e,
                    },
                );
                true
            }
            Op::MemStore { input, bytes } => {
                if let Some(i) = input {
                    if !self.state.fully_published(*i) {
                        return false;
                    }
                }
                let dur = ((*bytes as f64 / self.sim.core.mem_bandwidth) * PS).ceil() as u64;
                let e = EnergyBuckets {
                    mem_device: *bytes as f64 * 8.0 * self.sim.mem_pj_bit * 1e-12,
                    sram: *bytes as f64 * 8.0 * self.sim.coeffs.sram_read_pj_bit * 1e-12,
                    ..EnergyBuckets::default()
                };
                self.stored += bytes;
                self.schedule(
                    pipe,
                    kernel,
                    start,
                    dur.max(1),
                    Pending {
                        consumes: input.iter().copied().collect(),
                        consumes_done: false,
                        publish: None,
                        advance: (0, true),
                        energy: e,
                    },
                );
                true
            }
            Op::Vmm {
                weights,
                acts,
                out,
                weight_bytes,
                flops,
            } => {
                let remaining = weight_bytes - rt.progress;
                let q = remaining.min(chunk);
                let last = q == remaining;
                // Column-sharded overlap (§IV): each core starts on its
                // locally available activation fragment while the rest
                // of the vector is still broadcast on the ring, so the
                // VMM streams weights immediately and only its *last*
                // quantum waits for the gathered activations to land.
                if last {
                    for a in acts {
                        if !self.state.fully_published(*a) {
                            return false;
                        }
                    }
                }
                if self.state.stream_available(*weights) < q {
                    return false;
                }
                let flops_q = *flops as f64 * q as f64 / *weight_bytes as f64;
                let t_feed = q as f64 / self.sim.decode_rate(kernel);
                let t_mac = flops_q / self.sim.core.peak_flops();
                let dur = ((t_feed.max(t_mac)) * PS).ceil() as u64;
                let expansion = self.sim.expansion(kernel);
                let sram_factor = if cfg.stream_decode { 1.0 } else { expansion };
                let e = EnergyBuckets {
                    sram: q as f64 * 8.0 * self.sim.coeffs.sram_read_pj_bit * sram_factor * 1e-12,
                    decode: if cfg.stream_decode {
                        q as f64 * 8.0 * self.sim.coeffs.stream_decode_pj_bit * expansion * 1e-12
                    } else {
                        0.0
                    },
                    tmac: flops_q * self.sim.coeffs.flop_pj() * 1e-12,
                    ..EnergyBuckets::default()
                };
                self.flops += flops_q;
                // Drain at quantum start: frees memory-buffer space for
                // the prefetcher (the compute "catch-up" of Fig. 8).
                self.state.drain(*weights, q);
                self.wake_others(start, pipe);
                let (consumes, publish) = if last {
                    (acts.clone(), *out)
                } else {
                    (vec![], None)
                };
                self.schedule(
                    pipe,
                    kernel,
                    start,
                    dur.max(1),
                    Pending {
                        consumes,
                        consumes_done: false,
                        publish,
                        advance: (q, last),
                        energy: e,
                    },
                );
                true
            }
            Op::VOps { inputs, out, flops } => {
                for i in inputs {
                    if !self.state.fully_published(*i) {
                        return false;
                    }
                }
                let dur = ((*flops as f64 / self.sim.vops_rate()) * PS)
                    .ceil()
                    .max(1000.0) as u64;
                let e = EnergyBuckets {
                    vops: *flops as f64 * self.sim.coeffs.vop_pj * 1e-12,
                    ..EnergyBuckets::default()
                };
                self.flops += *flops as f64;
                // HP-VOPs run on a dedicated vector unit, not the TMAC
                // feed: retire the instruction from the compute stream
                // immediately and complete it asynchronously, so weight
                // streaming continues underneath the vector op. Data
                // dependencies still gate consumers via the output tag,
                // which is published only when the op finishes.
                let end = start + dur;
                self.record_busy(pipe, kernel, start, end);
                self.vops_inflight.push((
                    end,
                    Pending {
                        consumes: inputs.clone(),
                        consumes_done: false,
                        publish: *out,
                        advance: (0, true),
                        energy: e,
                    },
                ));
                self.pipes[pipe as usize].pc += 1;
                self.heap.push(Reverse((end, pipe)));
                true
            }
            Op::Collective {
                kind,
                input,
                out,
                fragment_bytes,
                participants,
            } => {
                if let Some(i) = input {
                    if !self.state.fully_published(*i) {
                        return false;
                    }
                }
                // Global-sync ablation: a collective is a barrier — it
                // may only begin once every pipeline has drained its
                // in-flight work, and nothing may start until it ends
                // (via `sync_floor`). This removes the prefetch-ahead
                // that normally hides collective latency.
                let start = if self.sim.config.global_sync {
                    start
                        .max(self.pipes[0].free_at)
                        .max(self.pipes[1].free_at)
                        .max(self.pipes[2].free_at)
                } else {
                    start
                };
                let frag = *fragment_bytes as f64;
                let flat = match kind {
                    CollectiveKind::AllGather | CollectiveKind::GroupGather => {
                        ring_broadcast_latency(*participants, frag, &self.sim.link)
                    }
                    CollectiveKind::Reduce => {
                        ring_reduce_latency(*participants, frag, &self.sim.link)
                    }
                };
                let lat = if self.sim.config.two_level_ring {
                    // The hierarchical topology contains the flat local
                    // rings, so a collective that fits one board never
                    // pays the station hop: route over whichever level
                    // is cheaper.
                    let ring = TwoLevelRing {
                        local: self.sim.link,
                        ..TwoLevelRing::balanced(*participants)
                    };
                    let hier = match kind {
                        CollectiveKind::AllGather | CollectiveKind::GroupGather => {
                            two_level_broadcast_latency(*participants, frag, &ring)
                        }
                        CollectiveKind::Reduce => {
                            two_level_reduce_latency(*participants, frag, &ring)
                        }
                    };
                    hier.min(flat)
                } else {
                    flat
                };
                let dur = (lat * PS).ceil().max(1000.0) as u64;
                let traffic = frag * f64::from(*participants);
                let per_core = traffic / f64::from(self.sim.plan.cores_per_cu);
                let wire = match kind {
                    CollectiveKind::Reduce => 2.0,
                    _ => 1.0,
                };
                let out_bytes = out.map_or(0.0, |p| p.bytes as f64);
                let e = EnergyBuckets {
                    net: (per_core * 8.0 * self.sim.coeffs.ucie_substrate_pj_bit * wire
                        + out_bytes * 8.0 * self.sim.coeffs.sram_write_pj_bit)
                        * 1e-12,
                    ..EnergyBuckets::default()
                };
                let end = start + dur;
                if self.sim.config.global_sync {
                    self.sync_floor = self.sync_floor.max(end);
                }
                self.schedule(
                    pipe,
                    kernel,
                    start,
                    dur,
                    Pending {
                        consumes: input.iter().copied().collect(),
                        consumes_done: false,
                        publish: *out,
                        advance: (0, true),
                        energy: e,
                    },
                );
                true
            }
            Op::Inject { out } => {
                self.schedule(
                    pipe,
                    kernel,
                    start,
                    1,
                    Pending {
                        consumes: vec![],
                        consumes_done: true,
                        publish: Some(*out),
                        advance: (0, true),
                        energy: EnergyBuckets::default(),
                    },
                );
                true
            }
        }
    }

    fn schedule(&mut self, pipe: u8, kernel: KernelKind, start: u64, dur: u64, pending: Pending) {
        let end = start + dur;
        self.record_busy(pipe, kernel, start, end);
        let rt = &mut self.pipes[pipe as usize];
        rt.free_at = end;
        rt.pending = Some(pending);
        self.heap.push(Reverse((end, pipe)));
    }

    /// Completes every in-flight HP-VOPs operation due at or before `t`:
    /// consumes its inputs, publishes its output tag and deposits energy.
    fn flush_vops(&mut self, t: u64) {
        let mut i = 0;
        while i < self.vops_inflight.len() {
            if self.vops_inflight[i].0 <= t {
                let (end, pending) = self.vops_inflight.swap_remove(i);
                for tag in &pending.consumes {
                    self.state.consume(*tag);
                }
                if let Some(p) = pending.publish {
                    // The act/acc buffer is elastic; vector outputs never
                    // block.
                    self.state.publish(p.tag, p.bytes);
                }
                self.deposit_energy(&pending.energy, end.saturating_sub(1), end);
                self.sample_buffers(end);
                self.wake_others(end, 1);
            } else {
                i += 1;
            }
        }
    }

    fn run(mut self) -> Result<SimReport, SimError> {
        while let Some(Reverse((t, pipe))) = self.heap.pop() {
            self.events += 1;
            if self.events > self.sim.config.max_events {
                return Err(SimError::EventLimit);
            }
            // Stale wakes may arrive out of order; track the frontier.
            self.now_last = self.now_last.max(t);
            self.flush_vops(t);
            let rt = &self.pipes[pipe as usize];
            if rt.free_at > t {
                continue; // stale wake; a later wake is queued
            }
            if rt.pending.is_some() {
                if !self.apply_pending(pipe, t) {
                    continue; // publish blocked; retried on next wake
                }
                self.wake_others(t, pipe);
            }
            // Keep starting quanta as long as the pipeline can progress
            // instantly (zero-duration scheduling is prevented by dur>=1).
            if !self.pipes[pipe as usize].finished() {
                let _ = self.try_start(pipe, t);
            }
        }
        if self.pipes.iter().any(|p| !p.finished()) {
            return Err(SimError::Deadlock {
                pcs: [self.pipes[0].pc, self.pipes[1].pc, self.pipes[2].pc],
            });
        }
        let total_time_s = self.end_ps as f64 / PS;
        let trace = self.util_bins.map(|bins| {
            let w = bins[0].width();
            let len = bins
                .iter()
                .map(|b| b.bins().len())
                .chain(self.power_bin.as_ref().map(|p| p.bins().len()))
                .max()
                .unwrap_or(0);
            let norm = |b: &Binner| {
                let mut v: Vec<f64> = b.bins().iter().map(|x| x / w).collect();
                v.resize(len, 0.0);
                v
            };
            Trace {
                bin_s: w,
                mem_util: norm(&bins[0]),
                comp_util: norm(&bins[1]),
                net_util: norm(&bins[2]),
                power_w: self.power_bin.as_ref().map(norm).unwrap_or_default(),
                buffer_samples: self.buffer_samples,
            }
        });
        Ok(SimReport {
            total_time_s,
            mem_busy_s: self.busy_ps[0] as f64 / PS,
            comp_busy_s: self.busy_ps[1] as f64 / PS,
            net_busy_s: self.busy_ps[2] as f64 / PS,
            streamed_bytes: self.streamed,
            stored_bytes: self.stored,
            flops: self.flops,
            peak_buffer_bytes: self.peak_buffer,
            energy: self.energy,
            kernels: self.kernels,
            trace,
            plan: self.sim.plan,
            core_mem_bandwidth: self.sim.core.mem_bandwidth,
            core_peak_flops: self.sim.core.peak_flops(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_isa::{compile_decode_step, ShardPlan};
    use rpu_models::{DecodeWorkload, ModelConfig};
    use rpu_util::assert_approx;

    fn run_model(
        model: &ModelConfig,
        batch: u32,
        seq: u32,
        n_cus: u32,
        config: SimConfig,
    ) -> SimReport {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(n_cus, 16);
        let prog = compile_decode_step(model, prec, batch, seq, &plan);
        Simulator::new(HbmCoConfig::candidate(), prec, plan, config)
            .run(&prog)
            .expect("simulation completes")
    }

    #[test]
    fn bs1_is_memory_bandwidth_bound() {
        // §VI: "At batch size 1, the RPU saturates memory bandwidth and
        // achieves roofline performance."
        let r = run_model(
            &ModelConfig::llama3_8b(),
            1,
            16 * 1024,
            64,
            SimConfig::default(),
        );
        assert!(
            r.mem_bw_utilization() > 0.90,
            "BW util {}",
            r.mem_bw_utilization()
        );
        assert!(
            r.compute_utilization() < 0.25,
            "comp util {}",
            r.compute_utilization()
        );
    }

    #[test]
    fn streamed_bytes_match_program() {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(64, 16);
        let model = ModelConfig::llama3_8b();
        let prog = compile_decode_step(&model, prec, 1, 8192, &plan);
        let r = Simulator::new(HbmCoConfig::candidate(), prec, plan, SimConfig::default())
            .run(&prog)
            .unwrap();
        assert_approx(
            r.streamed_bytes as f64,
            prog.stats().weight_bytes,
            1e-9,
            "streamed bytes conservation",
        );
        assert_approx(
            r.stored_bytes as f64,
            prog.stats().store_bytes,
            1e-9,
            "stored bytes",
        );
    }

    #[test]
    fn latency_bounded_below_by_roofline() {
        let model = ModelConfig::llama3_70b();
        let prec = Precision::mxfp4_inference();
        let r = run_model(&model, 1, 8192, 128, SimConfig::default());
        let wl = DecodeWorkload::new(&model, prec, 1, 8192);
        let plan_cores = 128.0 * 16.0;
        let roofline = wl.streaming_bytes() / plan_cores / 32e9;
        assert!(
            r.total_time_s >= roofline * 0.99,
            "{} < {roofline}",
            r.total_time_s
        );
        // ...and within 40 % of it (decoupling hides most stalls).
        assert!(
            r.total_time_s < roofline * 1.4,
            "{} vs {roofline}",
            r.total_time_s
        );
    }

    #[test]
    fn coupled_pipelines_are_slower() {
        let model = ModelConfig::llama3_8b();
        let fast = run_model(&model, 1, 8192, 64, SimConfig::default());
        let slow = run_model(
            &model,
            1,
            8192,
            64,
            SimConfig {
                coupled_pipelines: true,
                ..SimConfig::default()
            },
        );
        assert!(
            slow.total_time_s > 1.05 * fast.total_time_s,
            "coupled {} vs decoupled {}",
            slow.total_time_s,
            fast.total_time_s
        );
    }

    #[test]
    fn global_sync_is_slower() {
        let model = ModelConfig::llama3_8b();
        let fast = run_model(&model, 1, 8192, 64, SimConfig::default());
        let slow = run_model(
            &model,
            1,
            8192,
            64,
            SimConfig {
                global_sync: true,
                ..SimConfig::default()
            },
        );
        assert!(slow.total_time_s > fast.total_time_s);
    }

    #[test]
    fn bs32_has_compute_bound_phases() {
        // §VI Fig. 8 bottom: BS=32 alternates memory-bound KV$ phases and
        // compute-bound weight phases; overall compute utilisation rises
        // far above the BS=1 level.
        let r1 = run_model(&ModelConfig::llama3_8b(), 1, 8192, 64, SimConfig::default());
        let r32 = run_model(
            &ModelConfig::llama3_8b(),
            32,
            8192,
            64,
            SimConfig::default(),
        );
        assert!(r32.compute_utilization() > 4.0 * r1.compute_utilization());
        assert!(r32.total_time_s > r1.total_time_s);
    }

    #[test]
    fn buffer_occupancy_bounded_by_prefetch_window() {
        let r = run_model(&ModelConfig::llama3_8b(), 1, 8192, 64, SimConfig::default());
        // Peak occupancy stays within the SRAM budget plus one overshoot
        // publication.
        let cap = 512 * 1024 + 256 * 1024 + 64 * 1024 + 64 * 1024;
        assert!(
            r.peak_buffer_bytes <= cap,
            "peak buffer {}",
            r.peak_buffer_bytes
        );
        assert!(
            r.peak_buffer_bytes > 16 * 1024,
            "prefetching should fill buffers"
        );
    }

    #[test]
    fn memory_dominates_energy() {
        // Fig. 8: "Memory power dominates total system power".
        let r = run_model(
            &ModelConfig::llama3_8b(),
            1,
            16 * 1024,
            64,
            SimConfig::default(),
        );
        assert!(
            r.energy.memory_fraction() > 0.6,
            "mem fraction {}",
            r.energy.memory_fraction()
        );
    }

    #[test]
    fn energy_scales_with_system_size() {
        let r = run_model(&ModelConfig::llama3_8b(), 1, 8192, 64, SimConfig::default());
        let sys = r.system_energy_j();
        assert_approx(sys, r.energy.total() * 1024.0, 1e-9, "energy scaling");
    }

    #[test]
    fn traces_capture_utilisation() {
        let model = ModelConfig::llama3_8b();
        let r = run_model(
            &model,
            1,
            8192,
            64,
            SimConfig {
                trace_bin_s: Some(1e-6),
                ..SimConfig::default()
            },
        );
        let t = r.trace.as_ref().expect("trace enabled");
        assert!(!t.mem_util.is_empty());
        assert!(t.mem_util.iter().all(|&u| u <= 1.0 + 1e-6));
        // Average binned utilisation matches the aggregate number.
        let avg = t.mem_util.iter().sum::<f64>() / t.mem_util.len() as f64;
        assert!((avg - r.mem_busy_s / r.total_time_s).abs() < 0.15);
        assert!(!t.buffer_samples.is_empty());
        assert!(!t.power_w.is_empty());
    }

    #[test]
    fn two_level_ring_speeds_up_large_systems() {
        // §VIII future direction, wired end-to-end: hierarchical
        // collectives shorten broadcast-bound decode at 428 CUs.
        let model = ModelConfig::llama3_405b();
        let flat = run_model(&model, 1, 8192, 428, SimConfig::default());
        let two = run_model(
            &model,
            1,
            8192,
            428,
            SimConfig {
                two_level_ring: true,
                ..SimConfig::default()
            },
        );
        assert!(
            two.total_time_s < flat.total_time_s,
            "two-level {} vs flat {}",
            two.total_time_s,
            flat.total_time_s
        );
    }

    #[test]
    fn moe_model_simulates() {
        let r = run_model(
            &ModelConfig::llama4_maverick(),
            1,
            8192,
            64,
            SimConfig::default(),
        );
        assert!(r.total_time_s > 0.0);
        assert!(
            r.mem_bw_utilization() > 0.5,
            "BW util {}",
            r.mem_bw_utilization()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_model(&ModelConfig::llama3_8b(), 2, 4096, 32, SimConfig::default());
        let b = run_model(&ModelConfig::llama3_8b(), 2, 4096, 32, SimConfig::default());
        assert_eq!(a.total_time_s, b.total_time_s);
        assert_eq!(a.streamed_bytes, b.streamed_bytes);
    }
}
