//! Simulation results: latency, utilisation, energy and traces.

use rpu_isa::ShardPlan;
use rpu_models::KernelKind;
use std::collections::HashMap;

/// Per-core energy by component, joules (Fig. 8's power legend).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBuckets {
    /// HBM-CO device energy (activation, movement, TSV, IO).
    pub mem_device: f64,
    /// On-chip SRAM reads/writes.
    pub sram: f64,
    /// TMAC array.
    pub tmac: f64,
    /// HP-VOPs.
    pub vops: f64,
    /// Stream-decoder dequantisation.
    pub decode: f64,
    /// Ring network (UCIe links + net-buffer writes).
    pub net: f64,
}

impl EnergyBuckets {
    /// Total energy, joules.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.mem_device + self.sram + self.tmac + self.vops + self.decode + self.net
    }

    /// Memory-subsystem share (device + SRAM), the paper's dominant
    /// component.
    #[must_use]
    pub fn memory_fraction(&self) -> f64 {
        if self.total() == 0.0 {
            0.0
        } else {
            (self.mem_device + self.sram) / self.total()
        }
    }
}

/// Busy time of one kernel on each pipeline (aggregated over layers).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelStat {
    /// Memory-pipeline busy seconds attributed to this kernel.
    pub mem_busy_s: f64,
    /// Compute-pipeline busy seconds.
    pub comp_busy_s: f64,
    /// Network-pipeline busy seconds.
    pub net_busy_s: f64,
}

/// Binned utilisation / power / buffer traces (the Fig. 8 timelines).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Bin width, seconds.
    pub bin_s: f64,
    /// Memory-pipeline utilisation per bin (0..1).
    pub mem_util: Vec<f64>,
    /// Compute-pipeline utilisation per bin.
    pub comp_util: Vec<f64>,
    /// Network-pipeline utilisation per bin.
    pub net_util: Vec<f64>,
    /// Average power per bin, watts (per CU: 16 cores).
    pub power_w: Vec<f64>,
    /// Buffer occupancy samples `(time s, occupied bytes)` (per core).
    pub buffer_samples: Vec<(f64, u64)>,
}

/// The result of simulating one decode step on the representative core.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// End-to-end step latency, seconds.
    pub total_time_s: f64,
    /// Memory-pipeline busy time, seconds.
    pub mem_busy_s: f64,
    /// Compute-pipeline busy time, seconds.
    pub comp_busy_s: f64,
    /// Network-pipeline busy time, seconds.
    pub net_busy_s: f64,
    /// Bytes streamed from memory by this core (weights + KV).
    pub streamed_bytes: u64,
    /// Bytes written back to memory (KV appends).
    pub stored_bytes: u64,
    /// FLOPs executed by this core.
    pub flops: f64,
    /// Peak combined buffer occupancy observed, bytes.
    pub peak_buffer_bytes: u64,
    /// Per-core energy by component.
    pub energy: EnergyBuckets,
    /// Per-kernel busy breakdown.
    pub kernels: HashMap<KernelKind, KernelStat>,
    /// Optional binned traces.
    pub trace: Option<Trace>,
    /// The shard plan the program was compiled for.
    pub plan: ShardPlan,
    /// Per-core memory read bandwidth used for utilisation, bytes/s.
    pub core_mem_bandwidth: f64,
    /// Per-core peak compute, FLOP/s.
    pub core_peak_flops: f64,
}

impl SimReport {
    /// Memory-bandwidth utilisation of the step: streamed bytes over the
    /// bandwidth-time product.
    #[must_use]
    pub fn mem_bw_utilization(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.streamed_bytes as f64 / (self.total_time_s * self.core_mem_bandwidth)
    }

    /// Compute utilisation of the step.
    #[must_use]
    pub fn compute_utilization(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.flops / (self.total_time_s * self.core_peak_flops)
    }

    /// System-wide energy for the step, joules: per-core energy times
    /// the core count (mirrored symmetry).
    #[must_use]
    pub fn system_energy_j(&self) -> f64 {
        self.energy.total() * self.plan.total_cores()
    }

    /// Average system power during the step, watts.
    #[must_use]
    pub fn avg_system_power_w(&self) -> f64 {
        if self.total_time_s == 0.0 {
            0.0
        } else {
            self.system_energy_j() / self.total_time_s
        }
    }

    /// System-wide streamed bytes (all cores).
    #[must_use]
    pub fn system_streamed_bytes(&self) -> f64 {
        self.streamed_bytes as f64 * self.plan.total_cores()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            total_time_s: 1e-3,
            mem_busy_s: 0.9e-3,
            comp_busy_s: 0.2e-3,
            net_busy_s: 0.1e-3,
            streamed_bytes: 32_000_000,
            stored_bytes: 1000,
            flops: 1e9,
            peak_buffer_bytes: 123,
            energy: EnergyBuckets {
                mem_device: 6e-3,
                sram: 1e-3,
                tmac: 0.5e-3,
                vops: 0.1e-3,
                decode: 0.05e-3,
                net: 0.2e-3,
            },
            kernels: HashMap::new(),
            trace: None,
            plan: ShardPlan::new(4, 16),
            core_mem_bandwidth: 32e9,
            core_peak_flops: 1e12,
        }
    }

    #[test]
    fn bw_utilization_math() {
        let r = report();
        // 32 MB over 1 ms at 32 GB/s = 100 %.
        assert!((r.mem_bw_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn energy_total_and_memory_fraction() {
        let e = report().energy;
        assert!((e.total() - 7.85e-3).abs() < 1e-9);
        assert!(e.memory_fraction() > 0.85);
    }

    #[test]
    fn system_energy_scales_by_cores() {
        let r = report();
        assert!((r.system_energy_j() - r.energy.total() * 64.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_degenerate() {
        let mut r = report();
        r.total_time_s = 0.0;
        assert_eq!(r.mem_bw_utilization(), 0.0);
        assert_eq!(r.compute_utilization(), 0.0);
        assert_eq!(r.avg_system_power_w(), 0.0);
    }
}
