//! SRAM buffer and tag-table state with pipeline-arbiter semantics.

use rpu_isa::Tag;
use std::collections::HashMap;

/// Which per-core SRAM buffer a tag lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferId {
    /// Memory buffer (fed by the memory DMA).
    Mem,
    /// Network / global buffer (fed by the network DMA).
    Net,
    /// Activation / accumulator buffers (fed by the compute pipeline).
    Act,
}

/// State of one tag: bytes published, bytes drained, and the remaining
/// valid count.
#[derive(Debug, Clone, Copy, Default)]
struct TagState {
    published: u64,
    total: u64,
    /// Bytes drained by the streaming consumer (weight streams).
    drained: u64,
    valid_count: u8,
    consumed_count: u8,
    buffer: Option<BufferId>,
}

/// Occupancy-tracked SRAM buffer.
#[derive(Debug, Clone)]
pub struct BufferState {
    /// Capacity in bytes.
    pub capacity: u64,
    /// Currently occupied bytes (may transiently exceed capacity by one
    /// publication — the "at least one message" rule that prevents
    /// deadlock on vectors larger than the buffer).
    pub occupied: u64,
    /// Elastic buffers never refuse publications. Used for the
    /// activation/accumulator buffer: the compiler tiles activations
    /// through stripes (§V), so a full-size symbolic activation tag must
    /// not exert backpressure — on hardware it would stream through the
    /// stripe register files. Occupancy is still tracked for reporting.
    pub elastic: bool,
}

impl BufferState {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            occupied: 0,
            elastic: false,
        }
    }

    /// Creates an empty elastic buffer (never refuses publications).
    #[must_use]
    pub fn new_elastic(capacity: u64) -> Self {
        Self {
            capacity,
            occupied: 0,
            elastic: true,
        }
    }

    /// `true` when a producer may publish more bytes.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.elastic || self.occupied < self.capacity
    }
}

/// The arbiter-guarded dataflow state of one core: three buffers plus the
/// tag table.
#[derive(Debug, Clone)]
pub struct DataflowState {
    buffers: HashMap<BufferId, BufferState>,
    tags: HashMap<Tag, TagState>,
}

impl DataflowState {
    /// Creates the per-core state with the given buffer capacities.
    #[must_use]
    pub fn new(mem_cap: u64, net_cap: u64, act_cap: u64) -> Self {
        let mut buffers = HashMap::new();
        // Only the memory buffer exerts hard backpressure: it bounds how
        // far the memory DMA can prefetch ahead of compute (the Fig. 8
        // lookahead window). Network and activation buffers are elastic:
        // on hardware, gathered activations stream through stripe-
        // granular consumption (§V) rather than being held whole, so the
        // symbolic whole-tensor tags must not head-of-line block.
        buffers.insert(BufferId::Mem, BufferState::new(mem_cap));
        buffers.insert(BufferId::Net, BufferState::new_elastic(net_cap));
        buffers.insert(BufferId::Act, BufferState::new_elastic(act_cap));
        Self {
            buffers,
            tags: HashMap::new(),
        }
    }

    /// Declares a tag before any publish: total size, valid count and
    /// home buffer.
    pub fn declare(&mut self, tag: Tag, total: u64, valid_count: u8, buffer: BufferId) {
        let e = self.tags.entry(tag).or_default();
        e.total = total;
        e.valid_count = valid_count;
        e.buffer = Some(buffer);
    }

    /// Buffer state accessor.
    #[must_use]
    pub fn buffer(&self, id: BufferId) -> &BufferState {
        &self.buffers[&id]
    }

    /// `true` if the tag's home buffer can accept another publication.
    #[must_use]
    pub fn can_publish(&self, tag: Tag) -> bool {
        match self.tags.get(&tag).and_then(|t| t.buffer) {
            Some(b) => self.buffers[&b].can_accept(),
            None => false,
        }
    }

    /// Publishes `bytes` under `tag`, occupying buffer space.
    ///
    /// # Panics
    ///
    /// Panics if the tag was never declared.
    pub fn publish(&mut self, tag: Tag, bytes: u64) {
        let t = self.tags.get_mut(&tag).expect("publish to undeclared tag");
        t.published += bytes;
        let b = t.buffer.expect("declared tag has a buffer");
        self.buffers.get_mut(&b).expect("buffer exists").occupied += bytes;
    }

    /// Bytes published under a tag so far.
    #[must_use]
    pub fn published(&self, tag: Tag) -> u64 {
        self.tags.get(&tag).map_or(0, |t| t.published)
    }

    /// `true` once the producer has published the tag's full size.
    #[must_use]
    pub fn fully_published(&self, tag: Tag) -> bool {
        self.tags
            .get(&tag)
            .is_some_and(|t| t.total > 0 && t.published >= t.total)
    }

    /// Bytes available to the streaming consumer (published − drained).
    #[must_use]
    pub fn stream_available(&self, tag: Tag) -> u64 {
        self.tags
            .get(&tag)
            .map_or(0, |t| t.published.saturating_sub(t.drained))
    }

    /// Drains `bytes` of a stream tag (single-consumer weight streams),
    /// freeing buffer space immediately.
    ///
    /// # Panics
    ///
    /// Panics if more bytes are drained than were published.
    pub fn drain(&mut self, tag: Tag, bytes: u64) {
        let t = self.tags.get_mut(&tag).expect("drain of undeclared tag");
        assert!(
            t.drained + bytes <= t.published,
            "drained past published bytes on tag {tag}"
        );
        t.drained += bytes;
        let b = t.buffer.expect("declared tag has a buffer");
        let buf = self.buffers.get_mut(&b).expect("buffer exists");
        buf.occupied = buf.occupied.saturating_sub(bytes);
    }

    /// Records one consumption of a fully-published tag (the arbiter
    /// decrements the valid counter); frees its remaining buffer space
    /// when the count reaches zero.
    ///
    /// # Panics
    ///
    /// Panics on arbiter underflow (more consumptions than the declared
    /// valid count).
    pub fn consume(&mut self, tag: Tag) {
        let t = self.tags.get_mut(&tag).expect("consume of undeclared tag");
        assert!(
            t.consumed_count < t.valid_count,
            "valid-counter underflow on tag {tag}"
        );
        t.consumed_count += 1;
        if t.consumed_count == t.valid_count {
            let remaining = t.published.saturating_sub(t.drained);
            t.drained = t.published;
            let b = t.buffer.expect("declared tag has a buffer");
            let buf = self.buffers.get_mut(&b).expect("buffer exists");
            buf.occupied = buf.occupied.saturating_sub(remaining);
        }
    }

    /// Total bytes currently occupying all buffers.
    #[must_use]
    pub fn total_occupied(&self) -> u64 {
        self.buffers.values().map(|b| b.occupied).sum()
    }

    /// Occupied bytes of one buffer.
    #[must_use]
    pub fn occupied(&self, id: BufferId) -> u64 {
        self.buffers[&id].occupied
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> DataflowState {
        DataflowState::new(512 * 1024, 256 * 1024, 64 * 1024)
    }

    #[test]
    fn publish_occupies_space() {
        let mut s = state();
        s.declare(1, 1000, 1, BufferId::Mem);
        s.publish(1, 400);
        assert_eq!(s.occupied(BufferId::Mem), 400);
        assert!(!s.fully_published(1));
        s.publish(1, 600);
        assert!(s.fully_published(1));
    }

    #[test]
    fn drain_frees_space_incrementally() {
        let mut s = state();
        s.declare(1, 1000, 1, BufferId::Mem);
        s.publish(1, 1000);
        s.drain(1, 300);
        assert_eq!(s.occupied(BufferId::Mem), 700);
        assert_eq!(s.stream_available(1), 700);
    }

    #[test]
    fn consume_frees_remaining_when_counter_hits_zero() {
        let mut s = state();
        s.declare(2, 100, 2, BufferId::Act);
        s.publish(2, 100);
        s.consume(2);
        assert_eq!(
            s.occupied(BufferId::Act),
            100,
            "space held until last consumer"
        );
        s.consume(2);
        assert_eq!(s.occupied(BufferId::Act), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn arbiter_underflow_detected() {
        let mut s = state();
        s.declare(3, 10, 1, BufferId::Act);
        s.publish(3, 10);
        s.consume(3);
        s.consume(3);
    }

    #[test]
    #[should_panic(expected = "drained past published")]
    fn overdrain_detected() {
        let mut s = state();
        s.declare(4, 100, 1, BufferId::Mem);
        s.publish(4, 10);
        s.drain(4, 20);
    }

    #[test]
    fn can_publish_respects_capacity() {
        let mut s = DataflowState::new(100, 100, 100);
        s.declare(1, 1000, 1, BufferId::Mem);
        assert!(s.can_publish(1));
        s.publish(1, 100);
        assert!(!s.can_publish(1), "full buffer rejects further publishes");
        s.drain(1, 50);
        assert!(s.can_publish(1));
    }

    #[test]
    fn overshoot_allowed_once() {
        // A publication may exceed capacity if the buffer had room —
        // the deadlock-avoidance rule for vectors larger than a buffer.
        let mut s = DataflowState::new(100, 100, 100);
        s.declare(1, 500, 1, BufferId::Mem);
        assert!(s.can_publish(1));
        s.publish(1, 500);
        assert_eq!(s.occupied(BufferId::Mem), 500);
        assert!(!s.can_publish(1));
    }

    #[test]
    fn net_and_act_buffers_are_elastic() {
        // Gathered activations stream through stripe-granular consumption
        // on hardware; the symbolic tags must never head-of-line block.
        let mut s = DataflowState::new(100, 100, 100);
        s.declare(1, 500, 1, BufferId::Net);
        s.declare(2, 500, 1, BufferId::Act);
        s.publish(1, 500);
        s.publish(2, 500);
        assert!(s.can_publish(1), "net buffer must stay elastic");
        assert!(s.can_publish(2), "act buffer must stay elastic");
    }
}
