//! Benchmark harness for the RPU reproduction.
//!
//! Each Criterion bench target under `benches/` regenerates one paper
//! figure by calling the same `rpu_core::experiments::*::run()`
//! functions the `repro` binary prints, so benchmark timings measure the
//! exact code paths that produce the published numbers.
//!
//! The [`checks`] module hosts lightweight result assertions shared by
//! the benches, so a bench run also validates the figure's headline
//! shape (who wins, by roughly what factor).

#![warn(missing_docs)]

/// Shared sanity checks used by the bench targets.
pub mod checks {
    /// Panics unless `value` lies within `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when the value falls outside the expected band, so a
    /// regression in a figure's headline number fails the bench run.
    pub fn expect_band(what: &str, value: f64, lo: f64, hi: f64) {
        assert!(
            value >= lo && value <= hi,
            "{what}: {value} outside expected band [{lo}, {hi}]"
        );
    }
}

/// Measured performance snapshots: the `BENCH_*.json` trajectory.
///
/// Bench targets record their headline numbers (events/sec, ns/event,
/// peak slab occupancy, …) as a [`perf::PerfSnapshot`] and pass it
/// through [`perf::record_or_gate`], which follows the repo's
/// golden-drift pattern:
///
/// - `BENCH_BLESS=1 cargo bench …` (re)writes the committed JSON — the
///   deliberate act that moves the trajectory;
/// - a plain bench run *gates* instead: it parses the committed
///   baseline and fails if the gate metric regressed below the allowed
///   ratio (CI uses 0.75, i.e. >25% throughput regression fails).
///
/// The JSON is hand-rolled (no serde in this tree): a flat
/// `{"schema": …, "metrics": {name: number, …}}` object, one metric
/// per line, written with Rust's shortest-roundtrip float formatting
/// so a bless is reproducible byte-for-byte from the same numbers.
pub mod perf {
    use std::fmt::Write as _;
    use std::path::Path;

    /// Schema tag stamped into every perf snapshot.
    pub const SCHEMA: &str = "rpu-perf-v1";

    /// An ordered set of named measurements from one bench run.
    #[derive(Debug, Clone, PartialEq, Default)]
    pub struct PerfSnapshot {
        metrics: Vec<(String, f64)>,
    }

    impl PerfSnapshot {
        /// An empty snapshot.
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Appends (or overwrites) a metric.
        pub fn put(&mut self, name: &str, value: f64) {
            if let Some(slot) = self.metrics.iter_mut().find(|(n, _)| n == name) {
                slot.1 = value;
            } else {
                self.metrics.push((name.to_string(), value));
            }
        }

        /// Reads a metric back.
        #[must_use]
        pub fn get(&self, name: &str) -> Option<f64> {
            self.metrics
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        }

        /// Renders the snapshot as the committed JSON document.
        #[must_use]
        pub fn to_json(&self) -> String {
            let mut out = String::from("{\n");
            let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
            out.push_str("  \"metrics\": {\n");
            for (i, (name, value)) in self.metrics.iter().enumerate() {
                let sep = if i + 1 == self.metrics.len() { "" } else { "," };
                let _ = writeln!(out, "    \"{name}\": {value}{sep}");
            }
            out.push_str("  }\n}\n");
            out
        }

        /// Parses a document produced by [`PerfSnapshot::to_json`].
        /// Returns `None` on schema mismatch or malformed lines.
        #[must_use]
        pub fn parse(json: &str) -> Option<Self> {
            if !json.contains(&format!("\"schema\": \"{SCHEMA}\"")) {
                return None;
            }
            let mut snap = Self::new();
            for line in json.lines() {
                let line = line.trim().trim_end_matches(',');
                let Some(rest) = line.strip_prefix('"') else {
                    continue;
                };
                let (name, value) = rest.split_once("\": ")?;
                if name == "schema" || value.starts_with('{') {
                    continue;
                }
                snap.put(name, value.parse().ok()?);
            }
            if snap.metrics.is_empty() {
                None
            } else {
                Some(snap)
            }
        }
    }

    /// Records or gates a perf snapshot against the committed baseline
    /// at `path`.
    ///
    /// With `BENCH_BLESS` set in the environment the snapshot is
    /// written to `path` and accepted. Otherwise the baseline is read
    /// and the run fails if `fresh[gate_metric] < min_ratio *
    /// baseline[gate_metric]` — higher is assumed better.
    ///
    /// # Panics
    ///
    /// Panics when the baseline is missing or unreadable (bless first),
    /// when either snapshot lacks the gate metric, or when the gate
    /// detects a regression past `min_ratio`.
    pub fn record_or_gate(path: &Path, fresh: &PerfSnapshot, gate_metric: &str, min_ratio: f64) {
        let measured = fresh
            .get(gate_metric)
            .unwrap_or_else(|| panic!("fresh snapshot lacks gate metric {gate_metric}"));
        if std::env::var_os("BENCH_BLESS").is_some() {
            std::fs::write(path, fresh.to_json())
                .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
            println!("BLESSED {}: {gate_metric} = {measured}", path.display());
            return;
        }
        let baseline_json = std::fs::read_to_string(path).unwrap_or_else(|e| {
            panic!(
                "no perf baseline at {} ({e}); run with BENCH_BLESS=1 to record one",
                path.display()
            )
        });
        let baseline = PerfSnapshot::parse(&baseline_json)
            .unwrap_or_else(|| panic!("unparseable perf baseline at {}", path.display()));
        let committed = baseline
            .get(gate_metric)
            .unwrap_or_else(|| panic!("baseline lacks gate metric {gate_metric}"));
        let ratio = measured / committed;
        println!(
            "PERF {}: {gate_metric} measured {measured} vs committed {committed} (x{ratio:.3})",
            path.display()
        );
        assert!(
            ratio >= min_ratio,
            "{gate_metric} regressed: {measured} is {ratio:.3}x the committed {committed} \
             (gate: {min_ratio}); if intentional, re-bless with BENCH_BLESS=1"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::checks::expect_band;
    use super::perf::PerfSnapshot;

    #[test]
    fn expect_band_accepts_inside() {
        expect_band("x", 1.0, 0.5, 2.0);
    }

    #[test]
    #[should_panic(expected = "outside expected band")]
    fn expect_band_rejects_outside() {
        expect_band("x", 3.0, 0.5, 2.0);
    }

    fn sample() -> PerfSnapshot {
        let mut snap = PerfSnapshot::new();
        snap.put("events_per_sec", 1_234_567.0);
        snap.put("ns_per_event", 810.25);
        snap.put("peak_slab_occupancy", 8.0);
        snap
    }

    #[test]
    fn perf_snapshot_roundtrips_through_json() {
        let snap = sample();
        let json = snap.to_json();
        let back = PerfSnapshot::parse(&json).expect("own output parses");
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), json, "re-render must be byte-identical");
        assert_eq!(back.get("ns_per_event"), Some(810.25));
        assert_eq!(back.get("missing"), None);
    }

    #[test]
    fn perf_snapshot_rejects_foreign_documents() {
        assert_eq!(PerfSnapshot::parse("{}"), None);
        assert_eq!(
            PerfSnapshot::parse("{\"schema\": \"other-v9\", \"metrics\": {\"x\": 1}}"),
            None
        );
        let mangled = sample().to_json().replace("810.25", "fast");
        assert_eq!(PerfSnapshot::parse(&mangled), None);
    }

    #[test]
    fn perf_gate_passes_within_ratio_and_blesses() {
        let dir = std::env::temp_dir().join(format!("rpu-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_gate_ok.json");
        std::fs::write(&path, sample().to_json()).expect("seed baseline");
        let mut slower = sample();
        slower.put("events_per_sec", 1_000_000.0); // 0.81x: inside the gate
        super::perf::record_or_gate(&path, &slower, "events_per_sec", 0.75);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "regressed")]
    fn perf_gate_fails_past_ratio() {
        let dir = std::env::temp_dir().join(format!("rpu-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("BENCH_gate_bad.json");
        std::fs::write(&path, sample().to_json()).expect("seed baseline");
        let mut slower = sample();
        slower.put("events_per_sec", 500_000.0); // 0.4x: >25% regression
        let result = std::panic::catch_unwind(|| {
            super::perf::record_or_gate(&path, &slower, "events_per_sec", 0.75);
        });
        std::fs::remove_file(&path).ok();
        if let Err(payload) = result {
            std::panic::resume_unwind(payload);
        }
    }
}
