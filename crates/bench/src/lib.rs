//! Benchmark harness for the RPU reproduction.
//!
//! Each Criterion bench target under `benches/` regenerates one paper
//! figure by calling the same `rpu_core::experiments::*::run()`
//! functions the `repro` binary prints, so benchmark timings measure the
//! exact code paths that produce the published numbers.
//!
//! The [`checks`] module hosts lightweight result assertions shared by
//! the benches, so a bench run also validates the figure's headline
//! shape (who wins, by roughly what factor).

#![warn(missing_docs)]

/// Shared sanity checks used by the bench targets.
pub mod checks {
    /// Panics unless `value` lies within `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics when the value falls outside the expected band, so a
    /// regression in a figure's headline number fails the bench run.
    pub fn expect_band(what: &str, value: f64, lo: f64, hi: f64) {
        assert!(
            value >= lo && value <= hi,
            "{what}: {value} outside expected band [{lo}, {hi}]"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::checks::expect_band;

    #[test]
    fn expect_band_accepts_inside() {
        expect_band("x", 1.0, 0.5, 2.0);
    }

    #[test]
    #[should_panic(expected = "outside expected band")]
    fn expect_band_rejects_outside() {
        expect_band("x", 3.0, 0.5, 2.0);
    }
}
