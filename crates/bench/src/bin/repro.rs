//! `repro` — regenerates every table and figure of the paper's
//! evaluation as a thin driver over the `rpu_core::experiments`
//! registry.
//!
//! ```text
//! repro                       # run everything, aligned text to stdout
//! repro fig1 fig9             # run selected targets
//! repro --jobs 8              # experiments AND grid points in parallel
//! repro --format json         # one JSON array of experiment objects
//! repro --format csv          # #-titled CSV blocks
//! repro --out results/        # one file per target instead of stdout
//! repro --list                # list available targets
//! ```
//!
//! Output is deterministic at every `--jobs` count: the engine
//! index-stamps grid results, so `--jobs 8` emits bytes identical to
//! `--jobs 1` (pinned by the goldens under `tests/golden/repro/`).

use rpu_core::engine::Engine;
use rpu_core::experiments::{self as exp, Experiment, Format};
use std::process::ExitCode;

struct Options {
    jobs: usize,
    format: Format,
    out: Option<std::path::PathBuf>,
    targets: Vec<&'static dyn Experiment>,
}

fn usage() {
    println!(
        "usage: repro [--list] [--jobs N] [--format text|json|csv] [--out DIR] [target ...]\n"
    );
    println!("Regenerates the paper's tables and figures. With no targets,");
    println!("runs every target in order. --jobs runs experiments and their");
    println!("grid points in parallel without changing a byte of output;");
    println!("--out writes one file per target instead of stdout.");
}

fn parse(args: &[String]) -> Result<Option<Options>, String> {
    let mut jobs = 1usize;
    let mut format = Format::Text;
    let mut out = None;
    let mut targets = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" | "-l" => {
                for t in exp::registry() {
                    println!("{:14} {}", t.name(), t.about());
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                usage();
                return Ok(None);
            }
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v
                    .parse()
                    .map_err(|_| format!("bad --jobs value `{v}` (want a positive integer)"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = v.parse()?;
            }
            "--out" | "-o" => {
                let v = it.next().ok_or("--out needs a directory")?;
                out = Some(std::path::PathBuf::from(v));
            }
            name => {
                let t = exp::find(name).ok_or(format!("unknown target `{name}` (try --list)"))?;
                targets.push(t);
            }
        }
    }
    if targets.is_empty() {
        targets = exp::registry();
    }
    Ok(Some(Options {
        jobs,
        format,
        out,
        targets,
    }))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // The job budget is split across the two levels so the worker
    // count never exceeds --jobs: the outer engine fans experiments
    // out, and each experiment's inner engine gets the remaining
    // budget (all of it when a single target is selected). Rendering
    // happens after the runs, in registry order, so parallelism never
    // reorders output — and the output bytes are engine-independent
    // anyway.
    let outer = Engine::new(opts.jobs.min(opts.targets.len()));
    let inner = Engine::new(opts.jobs / outer.jobs().max(1));
    let rendered: Vec<String> = outer.par_map(&opts.targets, |_, t| {
        exp::render(*t, &t.run(&inner), opts.format)
    });

    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (t, body) in opts.targets.iter().zip(&rendered) {
            let path = dir.join(format!("{}.{}", t.name(), opts.format.extension()));
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "wrote {} target{} to {}",
            rendered.len(),
            if rendered.len() == 1 { "" } else { "s" },
            dir.display()
        );
        return ExitCode::SUCCESS;
    }

    match opts.format {
        Format::Text | Format::Csv => {
            for body in &rendered {
                print!("{body}");
            }
        }
        // One valid JSON document per invocation: an array of
        // experiment objects.
        Format::Json => {
            println!("[{}]", rendered.join(","));
        }
    }
    ExitCode::SUCCESS
}
