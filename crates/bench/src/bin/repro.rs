//! `repro` — regenerates every table and figure of the paper's
//! evaluation as a thin driver over the `rpu_core::experiments`
//! registry.
//!
//! ```text
//! repro                       # run everything, aligned text to stdout
//! repro fig1 fig9             # run selected targets
//! repro --jobs 8              # experiments AND grid points in parallel
//! repro --format json         # one JSON array of experiment objects
//! repro --format csv          # #-titled CSV blocks
//! repro --out results/        # one file per target instead of stdout
//! repro --resume run.ck       # checkpoint to / resume from run.ck
//! repro --resume run.ck --checkpoint-every 2   # persist every 2 targets
//! repro --resume run.ck --halt-after 3         # stop after 3 new targets
//! repro --list                # list available targets
//! ```
//!
//! Output is deterministic at every `--jobs` count: the engine
//! index-stamps grid results, so `--jobs 8` emits bytes identical to
//! `--jobs 1` (pinned by the goldens under `tests/golden/repro/`).
//! Checkpointed runs share the guarantee: interrupting a run
//! (`--halt-after`), then resuming it from the same `--resume` file,
//! emits bytes identical to the uninterrupted run.

use rpu_core::engine::Engine;
use rpu_core::experiments::checkpoint::{self, RunCheckpoint};
use rpu_core::experiments::{self as exp, Experiment, Format};
use std::process::ExitCode;

struct Options {
    jobs: usize,
    format: Format,
    out: Option<std::path::PathBuf>,
    resume: Option<std::path::PathBuf>,
    checkpoint_every: Option<usize>,
    halt_after: Option<usize>,
    targets: Vec<&'static dyn Experiment>,
}

fn usage() {
    println!(
        "usage: repro [--list] [--jobs N] [--format text|json|csv] [--out DIR]\n             [--resume FILE [--checkpoint-every N] [--halt-after K]] [target ...]\n"
    );
    println!("Regenerates the paper's tables and figures. With no targets,");
    println!("runs every target in order. --jobs runs experiments and their");
    println!("grid points in parallel without changing a byte of output;");
    println!("--out writes one file per target instead of stdout.");
    println!("--resume checkpoints completed targets to FILE and skips them");
    println!("on the next invocation; --checkpoint-every persists FILE every");
    println!("N freshly completed targets, --halt-after stops (successfully)");
    println!("after K fresh targets so the run can be finished later.");
}

fn parse(args: &[String]) -> Result<Option<Options>, String> {
    let mut jobs = 1usize;
    let mut format = Format::Text;
    let mut out = None;
    let mut resume = None;
    let mut checkpoint_every = None;
    let mut halt_after = None;
    let mut targets = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" | "-l" => {
                for t in exp::registry() {
                    println!("{:14} {}", t.name(), t.about());
                }
                return Ok(None);
            }
            "--help" | "-h" => {
                usage();
                return Ok(None);
            }
            // Hidden: per-subsystem hot-path counters (wheel ops,
            // index updates, route calls, scratch reuse) from one
            // probe run per built-in router. CI greps the output to
            // assert `route_scan_fallbacks=0` — the built-in routers
            // must never fall back to an O(replicas) scan.
            "--counters" => {
                print!("{}", exp::fleet_scale::counters_report());
                return Ok(None);
            }
            "--jobs" | "-j" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = v
                    .parse()
                    .map_err(|_| format!("bad --jobs value `{v}` (want a positive integer)"))?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--format" | "-f" => {
                let v = it.next().ok_or("--format needs a value")?;
                format = v.parse()?;
            }
            "--out" | "-o" => {
                let v = it.next().ok_or("--out needs a directory")?;
                out = Some(std::path::PathBuf::from(v));
            }
            "--resume" => {
                let v = it.next().ok_or("--resume needs a file")?;
                resume = Some(std::path::PathBuf::from(v));
            }
            "--checkpoint-every" => {
                let v = it.next().ok_or("--checkpoint-every needs a value")?;
                let n: usize = v.parse().map_err(|_| {
                    format!("bad --checkpoint-every value `{v}` (want a positive integer)")
                })?;
                if n == 0 {
                    return Err("--checkpoint-every must be at least 1".into());
                }
                checkpoint_every = Some(n);
            }
            "--halt-after" => {
                let v = it.next().ok_or("--halt-after needs a value")?;
                let n: usize = v.parse().map_err(|_| {
                    format!("bad --halt-after value `{v}` (want a positive integer)")
                })?;
                if n == 0 {
                    return Err("--halt-after must be at least 1".into());
                }
                halt_after = Some(n);
            }
            name => {
                let t = exp::find(name).ok_or(format!("unknown target `{name}` (try --list)"))?;
                targets.push(t);
            }
        }
    }
    if resume.is_none() && (checkpoint_every.is_some() || halt_after.is_some()) {
        return Err("--checkpoint-every/--halt-after need --resume FILE to persist to".into());
    }
    if targets.is_empty() {
        targets = exp::registry();
    }
    Ok(Some(Options {
        jobs,
        format,
        out,
        resume,
        checkpoint_every,
        halt_after,
        targets,
    }))
}

/// Loads the checkpoint at `path`, or a fresh one if the file does not
/// exist yet. The recorded format must match the requested one — mixed
/// formats in one checkpoint file would splice unlike outputs.
fn load_checkpoint(path: &std::path::Path, format: Format) -> Result<RunCheckpoint, String> {
    if !path.exists() {
        return Ok(RunCheckpoint::new(format));
    }
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let ck = RunCheckpoint::from_bytes(&bytes)
        .map_err(|e| format!("cannot resume from {}: {e}", path.display()))?;
    if ck.format() != format {
        return Err(format!(
            "checkpoint {} was rendered in a different format; delete it or match --format",
            path.display()
        ));
    }
    Ok(ck)
}

fn persist_checkpoint(path: &std::path::Path, ck: &RunCheckpoint) -> Result<(), String> {
    std::fs::write(path, ck.to_bytes()).map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// The checkpointed path: resume from `path`, make (possibly bounded)
/// progress, persist, and return the full rendered outputs once every
/// target is present — or `None` when `--halt-after` stopped the run
/// early.
fn run_resumable(opts: &Options, path: &std::path::Path) -> Result<Option<Vec<String>>, String> {
    let mut ck = load_checkpoint(path, opts.format)?;
    let targets: Vec<&dyn Experiment> = opts.targets.to_vec();
    let missing = targets
        .iter()
        .filter(|t| ck.rendered(t.name()).is_none())
        .count();
    let budget = opts.halt_after.unwrap_or(missing).min(missing);

    if opts.checkpoint_every.is_none() && opts.halt_after.is_none() {
        // Unbounded: one resumable parallel sweep, then persist once.
        let outer = Engine::new(opts.jobs.min(targets.len()));
        let inner = Engine::new(opts.jobs / outer.jobs().max(1));
        let rendered = checkpoint::render_resumed(&targets, &outer, &inner, &mut ck);
        persist_checkpoint(path, &ck)?;
        return Ok(Some(rendered));
    }

    // Bounded: advance in persisted batches, in registry order. Grid
    // points still fan out across the full --jobs budget.
    let engine = Engine::new(opts.jobs);
    let mut fresh = 0;
    while fresh < budget {
        let batch = opts.checkpoint_every.unwrap_or(budget).min(budget - fresh);
        let n = checkpoint::advance(&targets, &engine, &mut ck, batch);
        persist_checkpoint(path, &ck)?;
        if n == 0 {
            break;
        }
        fresh += n;
    }
    let left = targets
        .iter()
        .filter(|t| ck.rendered(t.name()).is_none())
        .count();
    if left > 0 {
        eprintln!(
            "halted after {fresh} fresh target{}; {left} remaining (resume with --resume {})",
            if fresh == 1 { "" } else { "s" },
            path.display()
        );
        return Ok(None);
    }
    Ok(Some(
        targets
            .iter()
            .map(|t| {
                ck.rendered(t.name())
                    .expect("complete checkpoint covers every target")
                    .to_string()
            })
            .collect(),
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    let rendered: Vec<String> = if let Some(path) = opts.resume.clone() {
        match run_resumable(&opts, &path) {
            Ok(Some(rendered)) => rendered,
            // --halt-after stopped early: the checkpoint is persisted,
            // nothing is emitted yet.
            Ok(None) => return ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        // The job budget is split across the two levels so the worker
        // count never exceeds --jobs: the outer engine fans experiments
        // out, and each experiment's inner engine gets the remaining
        // budget (all of it when a single target is selected). Rendering
        // happens after the runs, in registry order, so parallelism never
        // reorders output — and the output bytes are engine-independent
        // anyway.
        let outer = Engine::new(opts.jobs.min(opts.targets.len()));
        let inner = Engine::new(opts.jobs / outer.jobs().max(1));
        outer.par_map(&opts.targets, |_, t| {
            exp::render(*t, &t.run(&inner), opts.format)
        })
    };

    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
        for (t, body) in opts.targets.iter().zip(&rendered) {
            let path = dir.join(format!("{}.{}", t.name(), opts.format.extension()));
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
        eprintln!(
            "wrote {} target{} to {}",
            rendered.len(),
            if rendered.len() == 1 { "" } else { "s" },
            dir.display()
        );
        return ExitCode::SUCCESS;
    }

    match opts.format {
        Format::Text | Format::Csv => {
            for body in &rendered {
                print!("{body}");
            }
        }
        // One valid JSON document per invocation: an array of
        // experiment objects.
        Format::Json => {
            println!("[{}]", rendered.join(","));
        }
    }
    ExitCode::SUCCESS
}
