//! `repro` — regenerates every table and figure of the paper's
//! evaluation as text tables.
//!
//! ```text
//! repro              # run everything
//! repro fig1 fig9    # run selected figures
//! repro --list       # list available targets
//! ```

use rpu_core::experiments as exp;
use std::process::ExitCode;

struct Target {
    name: &'static str,
    about: &'static str,
    run: fn(),
}

fn print_tables(tables: &[rpu_util::table::Table]) {
    for t in tables {
        println!("{t}");
        println!();
    }
}

const TARGETS: &[Target] = &[
    Target {
        name: "fig1",
        about: "rooflines: H100 vs RPU at ISO-TDP; AI vs batch",
        run: || print_tables(&exp::fig01_roofline::run().tables()),
    },
    Target {
        name: "fig2",
        about: "H100 power trace and VMM bandwidth utilisation",
        run: || print_tables(&exp::fig02_h100_profile::run().tables()),
    },
    Target {
        name: "fig3",
        about: "H100 kernel power and energy per FLOP vs batch",
        run: || println!("{}\n", exp::fig03_kernel_power::run().table()),
    },
    Target {
        name: "fig4",
        about: "memory technology landscape (Goldilocks gap)",
        run: || println!("{}\n", exp::fig04_landscape::run().table()),
    },
    Target {
        name: "fig5",
        about: "HBM-CO design space: cost/GB and energy/bit",
        run: || print_tables(&exp::fig05_hbmco_tradeoffs::run().tables()),
    },
    Target {
        name: "fig8",
        about: "one-CU pipeline timelines, BS=1 vs BS=32",
        run: || print_tables(&exp::fig08_pipeline_trace::run().tables()),
    },
    Target {
        name: "fig9",
        about: "HBM-CO Pareto frontier for Llama3-405B, 64 CUs",
        run: || println!("{}\n", exp::fig09_pareto::run().table()),
    },
    Target {
        name: "fig10",
        about: "SKU selection map and slowdown matrix (Maverick)",
        run: || print_tables(&exp::fig10_sku_map::run().tables()),
    },
    Target {
        name: "fig11",
        about: "strong scaling vs H100 ISO-TDP; batched throughput",
        run: || print_tables(&exp::fig11_scaling::run().tables()),
    },
    Target {
        name: "fig12",
        about: "energy per inference and system cost vs CU count",
        run: || print_tables(&exp::fig12_energy_cost::run().tables()),
    },
    Target {
        name: "fig13",
        about: "speedup and energy vs H100 across batch sizes",
        run: || println!("{}\n", exp::fig13_batch_sweep::run().table()),
    },
    Target {
        name: "fig14",
        about: "platform comparison under speculative decoding",
        run: || println!("{}\n", exp::fig14_platforms::run().table()),
    },
    Target {
        name: "ablations",
        about: "section IX decomposed contributions",
        run: || println!("{}\n", exp::ablations::run().table()),
    },
    Target {
        name: "design-points",
        about: "section VIII edge/datacenter/peak design points",
        run: || println!("{}\n", exp::design_points::run().table()),
    },
    Target {
        name: "ext-scaleout",
        about: "extension: two-level ring vs flat-ring plateau",
        run: || println!("{}\n", exp::ext_scaleout::run().table()),
    },
    Target {
        name: "serving",
        about: "request-level SLO sweep over offered load (rpu-serve)",
        run: || println!("{}\n", exp::serving_sweep::run().table()),
    },
    Target {
        name: "policy",
        about: "scheduling policies vs offered load, two SLO classes",
        run: || println!("{}\n", exp::policy_sweep::run().table()),
    },
    Target {
        name: "fleet",
        about: "capacity planning: replicas to hold the SLO, per router",
        run: || println!("{}\n", exp::fleet_sweep::run().table()),
    },
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list" || a == "-l") {
        for t in TARGETS {
            println!("{:14} {}", t.name, t.about);
        }
        return ExitCode::SUCCESS;
    }
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: repro [--list] [target ...]\n");
        println!("Regenerates the paper's tables and figures. With no arguments,");
        println!("runs every target in order.");
        return ExitCode::SUCCESS;
    }
    let selected: Vec<&Target> = if args.is_empty() {
        TARGETS.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match TARGETS.iter().find(|t| t.name == a.as_str()) {
                Some(t) => sel.push(t),
                None => {
                    eprintln!("unknown target `{a}` (try --list)");
                    return ExitCode::FAILURE;
                }
            }
        }
        sel
    };
    for t in selected {
        println!("==== {} — {}\n", t.name, t.about);
        (t.run)();
    }
    ExitCode::SUCCESS
}
