//! Route-decision cost across fleet widths: the `O(log R)` pin.
//!
//! Before the routing index, an informed router (join-shortest-queue,
//! least-KV-load) paid an `O(replicas)` telemetry scan on every route
//! call — at 1000 replicas that scan dominated the event loop, and
//! per-event cost grew with fleet width. With the tournament-tree
//! index the route decision is an `O(1)` root read after `O(log R)`
//! lazy leaf repairs, so informed routing at width 1000 must cost
//! about what blind round-robin costs, not a multiple of it.
//!
//! This bench times the three stock routers through the fleet-scale
//! workload at the sweep's bottom and top rungs (8 and 1000 replicas,
//! constant per-replica load) and records the headline numbers into
//! `BENCH_router_scale.json`:
//!
//! - `BENCH_BLESS=1 cargo bench --bench router_scale` re-records the
//!   committed baseline;
//! - a plain run gates `jsq_events_per_sec_w1000` against it, failing
//!   on a >25% regression (ratio < 0.75) — the informed-router rate at
//!   paper scale is the number the index bought;
//! - the bench itself asserts the structural pin: at width 1000, a
//!   join-shortest-queue or least-KV event costs at most 2x a
//!   round-robin event. The retired scan put that multiple at 3x and
//!   growing with width; the index holds it near 1x with margin for
//!   machine noise.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::perf::{record_or_gate, PerfSnapshot};
use rpu_core::experiments::fleet_scale::{scale_config, scale_workload};
use rpu_serve::{
    AnalyticCostModel, CostModel, Fifo, Fleet, FleetBuilder, JoinShortestQueue, LeastKvLoad,
    RoundRobin, Router, SchedulingPolicy, Workload,
};
use std::path::Path;
use std::time::{Duration, Instant};

/// Bottom and top rungs of the registry sweep: the width axis the
/// route cost must stay flat-ish across.
const WIDTHS: [u32; 2] = [8, 1000];

/// Requests per replica — enough events per rung that the route path
/// dominates noise, cheap enough that six timed runs stay CI-sized.
const REQ_PER_REPLICA: u32 = 1000;

fn mk_fleet(replicas: usize) -> Fleet {
    FleetBuilder::new()
        .group(
            replicas,
            &scale_config(),
            || Box::new(AnalyticCostModel::small()) as Box<dyn CostModel>,
            || Box::new(Fifo) as Box<dyn SchedulingPolicy>,
        )
        .build()
}

/// One full pass of the workload through one router; returns events
/// processed and the timed event-loop duration.
fn run_once(wl: &Workload, replicas: usize, router: &mut dyn Router) -> (u64, Duration) {
    let mut fleet = mk_fleet(replicas);
    let mut run = fleet.start(wl);
    let start = Instant::now();
    while run.step(&mut fleet, router) {}
    (run.events(), start.elapsed())
}

/// Best-of-`passes` ns/event and events/sec for one router at one
/// width (the minimum is the least-noise estimator, as in the other
/// gated benches).
fn measure(
    wl: &Workload,
    replicas: usize,
    mk: &dyn Fn() -> Box<dyn Router>,
    passes: u32,
) -> (f64, f64) {
    let (events, mut elapsed) = run_once(wl, replicas, mk().as_mut());
    for _ in 1..passes {
        let (ev, el) = run_once(wl, replicas, mk().as_mut());
        assert_eq!(ev, events, "event count must be deterministic");
        if el < elapsed {
            elapsed = el;
        }
    }
    let ns_per_event = elapsed.as_nanos() as f64 / events as f64;
    let events_per_sec = events as f64 / elapsed.as_secs_f64();
    (ns_per_event, events_per_sec)
}

type MkRouter = Box<dyn Fn() -> Box<dyn Router>>;

fn headline(c: &mut Criterion) {
    let routers: [(&str, MkRouter); 3] = [
        (
            "rr",
            Box::new(|| Box::new(RoundRobin::new()) as Box<dyn Router>),
        ),
        (
            "jsq",
            Box::new(|| Box::new(JoinShortestQueue) as Box<dyn Router>),
        ),
        ("kv", Box::new(|| Box::new(LeastKvLoad) as Box<dyn Router>)),
    ];

    // Warm-up: one cheap pass so page cache and frequency are settled
    // before the first timed rung.
    let warm = scale_workload(8, 8 * REQ_PER_REPLICA);
    let _ = run_once(&warm, 8, &mut RoundRobin::new());

    let mut snap = PerfSnapshot::new();
    let mut ns = std::collections::BTreeMap::new();
    for &width in &WIDTHS {
        let wl = scale_workload(width, width * REQ_PER_REPLICA);
        // The top rung is the gated number: best of three. The bottom
        // rung only anchors the flatness ratio: best of two.
        let passes = if width == 1000 { 3 } else { 2 };
        for (name, mk) in &routers {
            let (ns_per_event, events_per_sec) = measure(&wl, width as usize, mk, passes);
            println!(
                "router_scale: {name} @ {width} replicas: {ns_per_event:.0} ns/event \
                 ({events_per_sec:.0} events/s)"
            );
            snap.put(
                &format!("{name}_ns_per_event_w{width}"),
                ns_per_event.round(),
            );
            ns.insert((name.to_string(), width), ns_per_event);
        }
    }
    for (name, _) in &routers {
        let w8 = ns[&(name.to_string(), 8)];
        let w1000 = ns[&(name.to_string(), 1000)];
        // >1 is cache pressure and deeper queues, not routing; the
        // structural assertion below is the routing pin.
        snap.put(
            &format!("{name}_w1000_over_w8"),
            (w1000 / w8 * 100.0).round() / 100.0,
        );
    }

    // The structural pin: informed routing at paper scale costs about
    // a round-robin event, not a scan of 1000 replicas.
    let rr = ns[&("rr".to_string(), 1000)];
    for name in ["jsq", "kv"] {
        let informed = ns[&(name.to_string(), 1000)];
        assert!(
            informed <= 2.0 * rr,
            "{name} at width 1000 costs {informed:.0} ns/event vs round-robin {rr:.0} — \
             the O(R) route scan is back"
        );
    }

    let wl_top = scale_workload(1000, 1000 * REQ_PER_REPLICA);
    let (_, jsq_eps) = {
        // Re-derive from the recorded ns/event so the gate metric and
        // the printed numbers cannot drift apart.
        let n = ns[&("jsq".to_string(), 1000)];
        (n, 1e9 / n)
    };
    assert_eq!(u64::from(wl_top.num_requests), 1_000_000);
    snap.put("jsq_events_per_sec_w1000", jsq_eps.round());
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_router_scale.json");
    record_or_gate(&path, &snap, "jsq_events_per_sec_w1000", 0.75);

    // A repeatable criterion sample on the 64-wide rung so `cargo
    // bench` trend lines have a stable target.
    let sampled = scale_workload(64, 64 * 100);
    let mut g = c.benchmark_group("router_scale");
    g.sample_size(10);
    g.bench_function("jsq_fleet_64", |b| {
        b.iter(|| run_once(&sampled, 64, &mut JoinShortestQueue))
    });
    g.finish();
}

criterion_group!(benches, headline);
criterion_main!(benches);
