//! Policy bench: scheduling-policy overhead on the pure scheduler and
//! the simulator-backed multi-class sweep's headline shape.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::policy_sweep::{self, PolicyKind};
use rpu_serve::{serve_with, AnalyticCostModel, DeadlineEdf, PriorityAging, ServeConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Headline shape: priority scheduling sustains the interactive-class
    // p99 TTFT target strictly past the load where FIFO collapses.
    let s = policy_sweep::run();
    let fifo = s.sustained_load_rps(PolicyKind::Fifo);
    let prio = s.sustained_load_rps(PolicyKind::Priority);
    expect_band("fifo sustained load is finite", fifo, 1.0, 1e6);
    expect_band(
        "priority sustains at least 2x past fifo",
        prio / fifo,
        2.0,
        1e6,
    );
    let edf_preemptions: u32 = s
        .points
        .iter()
        .map(|p| p.run(PolicyKind::Edf).preemptions)
        .sum();
    expect_band(
        "edf exercises preemption",
        f64::from(edf_preemptions),
        1.0,
        1e9,
    );

    // Pure scheduler throughput under the aging priority policy
    // (analytic cost model, no simulator).
    let wl = policy_sweep::workload(400.0);
    let cfg = ServeConfig::default();
    c.bench_function("policy_priority_analytic", |b| {
        b.iter(|| {
            let mut cost = AnalyticCostModel {
                kv_capacity_tokens: 64 * 1024,
                ..AnalyticCostModel::small()
            };
            let mut policy = PriorityAging::new(policy_sweep::AGING_HORIZON_S);
            serve_with(black_box(&wl), &mut cost, &cfg, &mut policy)
        });
    });

    // Preemptive EDF pays for eviction bookkeeping and re-prefills;
    // measure it on the same workload.
    c.bench_function("policy_edf_analytic", |b| {
        b.iter(|| {
            let mut cost = AnalyticCostModel {
                kv_capacity_tokens: 64 * 1024,
                ..AnalyticCostModel::small()
            };
            serve_with(black_box(&wl), &mut cost, &cfg, &mut DeadlineEdf)
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
