//! Fig. 10 bench: the SKU-selection map over the batch × sequence grid.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fig10_sku_map;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fig10_sku_map::run();
    let corner = f.cell(32, 131_072).expect("corner cell");
    expect_band("corner slowdown", f.slowdown(corner), 20.0, 100.0);

    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.warm_up_time(std::time::Duration::from_secs(2));
    g.bench_function("sku_map_full_grid", |b| {
        b.iter(|| black_box(fig10_sku_map::run()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
