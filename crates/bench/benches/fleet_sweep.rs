//! Fleet bench: router overhead on the pure fleet driver and the
//! simulator-backed capacity sweep's headline shape.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fleet_sweep::{self, RouterKind};
use rpu_serve::{
    AnalyticCostModel, Fifo, FleetBuilder, JoinShortestQueue, ServeConfig, SessionAffinity,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Headline shape: at the top rung, informed routing holds the
    // interactive p99 TTFT target with strictly fewer replicas than
    // round-robin.
    let s = fleet_sweep::run();
    let top = *fleet_sweep::RATE_SWEEP.last().expect("non-empty sweep");
    let rr = f64::from(s.replicas_needed(RouterKind::RoundRobin, top));
    let jsq = f64::from(s.replicas_needed(RouterKind::Jsq, top));
    expect_band("rr needs a real fleet at the top rung", rr, 2.0, 64.0);
    expect_band("jsq saves replicas over rr", rr - jsq, 1.0, 64.0);
    expect_band(
        "informed routing saves at least one replica",
        s.top_rung_savings() as f64,
        1.0,
        64.0,
    );

    // Pure fleet-driver throughput: four analytic replicas behind JSQ
    // (no simulator in the loop).
    let wl = fleet_sweep::workload(400.0);
    let cfg = ServeConfig::default();
    c.bench_function("fleet_jsq_analytic", |b| {
        b.iter(|| {
            let mut fleet = FleetBuilder::new()
                .group(
                    4,
                    &cfg,
                    || {
                        Box::new(AnalyticCostModel {
                            kv_capacity_tokens: 16 * 1024,
                            ..AnalyticCostModel::small()
                        })
                    },
                    || Box::new(Fifo),
                )
                .build();
            fleet.serve(black_box(&wl), &mut JoinShortestQueue)
        });
    });

    // Session affinity pays for ring hashing; measure it on the same
    // workload.
    c.bench_function("fleet_affinity_analytic", |b| {
        b.iter(|| {
            let mut fleet = FleetBuilder::new()
                .group(
                    4,
                    &cfg,
                    || {
                        Box::new(AnalyticCostModel {
                            kv_capacity_tokens: 16 * 1024,
                            ..AnalyticCostModel::small()
                        })
                    },
                    || Box::new(Fifo),
                )
                .build();
            let mut router = SessionAffinity::new();
            fleet.serve(black_box(&wl), &mut router)
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
