//! Fig. 5 bench: the full HBM-CO design-space sweep (energy + cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fig05_hbmco_tradeoffs;
use rpu_hbmco::{energy_per_bit, HbmCoConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fig05_hbmco_tradeoffs::run();
    expect_band("HBM3e pJ/bit", f.hbm3e.energy_pj_per_bit, 3.27, 3.61);
    expect_band(
        "candidate pJ/bit",
        f.candidate.energy_pj_per_bit,
        1.38,
        1.52,
    );

    c.bench_function("fig05_design_space_sweep", |b| {
        b.iter(|| black_box(fig05_hbmco_tradeoffs::run()));
    });
    c.bench_function("fig05_energy_model_single_eval", |b| {
        let cfg = HbmCoConfig::candidate();
        b.iter(|| black_box(energy_per_bit(black_box(&cfg))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
