//! Fig. 14 bench: the speculative-decoding platform comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fig14_platforms;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fig14_platforms::run();
    // Our batch-9 verify pass pays full 9-query KV$ streaming, landing
    // the end-to-end gain below the paper's 1.8x (see EXPERIMENTS.md).
    expect_band("RPU spec-decode speedup", f.rpu_spec_speedup, 1.15, 3.0);
    let best_published = f
        .rows
        .iter()
        .filter(|r| !r.computed)
        .map(|r| r.tokens_per_s)
        .fold(0.0, f64::max);
    expect_band(
        "RPU tokens/s over best published",
        f.rpu().tokens_per_s / best_published,
        1.0,
        20.0,
    );

    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.warm_up_time(std::time::Duration::from_secs(2));
    g.bench_function("spec_decode_comparison", |b| {
        b.iter(|| black_box(fig14_platforms::run()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
