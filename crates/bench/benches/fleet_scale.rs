//! Full-scale event-core run: 10M requests across 1000 replicas.
//!
//! The `fleet-scale` registry target sweeps the same machine shape at
//! test-cheap request counts and digest-pins every width; this bench
//! is its timed counterpart — best-of-three paper-scale passes through
//! exactly the experiment's workload builder and config
//! ([`fleet_scale`]), with
//! the headline numbers recorded into `BENCH_fleet_scale.json` at the
//! workspace root via [`rpu_bench::perf::record_or_gate`]:
//!
//! - `BENCH_BLESS=1 cargo bench --bench fleet_scale` re-records the
//!   committed baseline;
//! - a plain run gates against it, failing on a >25% events/sec
//!   regression (ratio < 0.75) — per-event cost at width 1000 must
//!   hold the trajectory the calendar migration bought.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::perf::{record_or_gate, PerfSnapshot};
use rpu_core::experiments::fleet_scale::{self, scale_config, scale_workload};
use rpu_serve::{
    AnalyticCostModel, CostModel, Fifo, Fleet, FleetBuilder, RoundRobin, SchedulingPolicy, Workload,
};
use std::path::Path;
use std::time::{Duration, Instant};

/// The paper-scale point: the sweep's top rung held for 10M requests.
const REPLICAS: usize = 1000;
const NUM_REQUESTS: u32 = 10_000_000;

fn mk_fleet(replicas: usize) -> Fleet {
    FleetBuilder::new()
        .group(
            replicas,
            &scale_config(),
            || Box::new(AnalyticCostModel::small()) as Box<dyn CostModel>,
            || Box::new(Fifo) as Box<dyn SchedulingPolicy>,
        )
        .build()
}

/// Runs one full workload through the calendar driver, timing only the
/// event loop (fleet construction and the report merge are real costs,
/// but per-event throughput is the gated trajectory).
fn run_timed(wl: &Workload, replicas: usize) -> (u64, Duration, u32) {
    let mut fleet = mk_fleet(replicas);
    let mut router = RoundRobin::new();
    let mut run = fleet.start(wl);
    let start = Instant::now();
    while run.step(&mut fleet, &mut router) {}
    let elapsed = start.elapsed();
    (run.events(), elapsed, run.peak_slab_occupancy())
}

fn headline(c: &mut Criterion) {
    // Warm up on the sweep's own bottom rung.
    let warm = scale_workload(8, 8 * fleet_scale::REQUESTS_PER_REPLICA);
    let _ = run_timed(&warm, 8);

    // The timed run: best of three full passes. The first pass on a
    // cold machine can read 40%+ slower than a warm one (page cache,
    // frequency ramp), and a gate on a single cold sample would bless
    // noise; the minimum is the standard least-noise estimator and
    // matches the `event_core` bench.
    let wl = scale_workload(REPLICAS as u32, NUM_REQUESTS);
    let (mut events, mut elapsed, mut peak) = run_timed(&wl, REPLICAS);
    for _ in 0..2 {
        let (ev, el, pk) = run_timed(&wl, REPLICAS);
        assert_eq!(ev, events, "event count must be deterministic");
        assert_eq!(pk, peak, "peak occupancy must be deterministic");
        if el < elapsed {
            events = ev;
            elapsed = el;
            peak = pk;
        }
    }
    assert_eq!(
        u64::from(NUM_REQUESTS),
        u64::from(wl.num_requests),
        "workload carries the full request count"
    );
    let events_per_sec = events as f64 / elapsed.as_secs_f64();
    let ns_per_event = elapsed.as_nanos() as f64 / events as f64;
    println!(
        "fleet_scale: {REPLICAS} replicas, {NUM_REQUESTS} requests, {events} events in \
         {:.3} s ({events_per_sec:.0} events/s, {ns_per_event:.0} ns/event), \
         peak slab occupancy {peak}",
        elapsed.as_secs_f64(),
    );

    let mut snap = PerfSnapshot::new();
    snap.put("events_per_sec", events_per_sec.round());
    snap.put("ns_per_event", ns_per_event.round());
    snap.put("fleet_events", events as f64);
    snap.put("peak_slab_occupancy", f64::from(peak));
    snap.put("replicas", REPLICAS as f64);
    snap.put("requests", f64::from(NUM_REQUESTS));
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fleet_scale.json");
    record_or_gate(&path, &snap, "events_per_sec", 0.75);

    // A repeatable criterion sample on the registry sweep's 256-wide
    // rung, so `cargo bench` trend lines have a stable target.
    let sampled = scale_workload(256, 256 * fleet_scale::REQUESTS_PER_REPLICA);
    let mut g = c.benchmark_group("fleet_scale");
    g.sample_size(10);
    g.bench_function("calendar_fleet_256x2k", |b| {
        b.iter(|| fleet_scale::run_point(256, &sampled))
    });
    g.finish();
}

criterion_group!(benches, headline);
criterion_main!(benches);
