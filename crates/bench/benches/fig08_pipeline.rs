//! Fig. 8 bench: the event-driven simulator on one decode step
//! (Llama3-8B, 64 CUs), the central performance path of the framework.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_hbmco::HbmCoConfig;
use rpu_isa::{compile_decode_step, ShardPlan};
use rpu_models::{ModelConfig, Precision};
use rpu_sim::{SimConfig, Simulator};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let model = ModelConfig::llama3_8b();
    let prec = Precision::mxfp4_inference();
    let plan = ShardPlan::new(64, 16);

    let prog1 = compile_decode_step(&model, prec, 1, 16 * 1024, &plan);
    let prog32 = compile_decode_step(&model, prec, 32, 8 * 1024, &plan);
    let sim = Simulator::new(HbmCoConfig::candidate(), prec, plan, SimConfig::default());

    let r1 = sim.run(&prog1).expect("BS=1 simulates");
    let r32 = sim.run(&prog32).expect("BS=32 simulates");
    expect_band(
        "BS=1 memory BW utilisation",
        r1.mem_bw_utilization(),
        0.85,
        1.0,
    );
    expect_band(
        "BS=32 step slowdown",
        r32.total_time_s / r1.total_time_s,
        5.0,
        25.0,
    );

    c.bench_function("fig08_sim_bs1_16k", |b| {
        b.iter(|| black_box(sim.run(black_box(&prog1)).unwrap()));
    });
    c.bench_function("fig08_sim_bs32_8k", |b| {
        b.iter(|| black_box(sim.run(black_box(&prog32)).unwrap()));
    });
    c.bench_function("fig08_compile_bs1_16k", |b| {
        b.iter(|| black_box(compile_decode_step(&model, prec, 1, 16 * 1024, &plan)));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
