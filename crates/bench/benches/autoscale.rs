//! Sustained autoscaled serving: the elastic fleet held for 200k
//! requests of diurnal load.
//!
//! The `autoscale` registry target scores the autoscaler against
//! static fleets at a test-cheap request count; this bench is its
//! timed counterpart — best-of-three passes of the same elastic fleet
//! shape and controller ([`autoscale::scaler_config`]) over a long
//! diurnal tape, with the headline numbers recorded into
//! `BENCH_autoscale.json` at the workspace root via
//! [`rpu_bench::perf::record_or_gate`]:
//!
//! - `BENCH_BLESS=1 cargo bench --bench autoscale` re-records the
//!   committed baseline;
//! - a plain run gates against it, failing on a >25% requests/sec
//!   regression (ratio < 0.75) — the lifecycle machinery (routable
//!   masks, telemetry refresh, control boundaries) must stay off the
//!   serving hot path.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::perf::{record_or_gate, PerfSnapshot};
use rpu_core::experiments::autoscale::{self, Condition};
use rpu_serve::{
    digest_fleet_report, run_autoscaled, Autoscaler, JoinShortestQueue, ReportDigest, Workload,
};
use std::path::Path;
use std::time::{Duration, Instant};

/// The sustained run: the registry workload's diurnal arrival process
/// held for many compressed days.
const NUM_REQUESTS: u32 = 200_000;

fn sustained_workload() -> Workload {
    Workload {
        num_requests: NUM_REQUESTS,
        ..autoscale::diurnal_workload()
    }
}

/// One full autoscaled pass, timing the serving loop plus the control
/// loop riding it (both are the product under test).
fn run_timed(wl: &Workload) -> (ReportDigest, u32, u32, Duration) {
    let mut fleet = Condition::Autoscaled.fleet();
    let mut router = JoinShortestQueue;
    let mut scaler = Autoscaler::new(autoscale::scaler_config());
    let start = Instant::now();
    let report = run_autoscaled(&mut fleet, wl, &mut router, &mut scaler);
    let elapsed = start.elapsed();
    assert_eq!(
        report.aggregate.records.len() as u32 + report.aggregate.rejected,
        wl.num_requests,
        "sustained run lost requests"
    );
    (
        digest_fleet_report(&report),
        report.lifecycle.joins,
        report.lifecycle.drains,
        elapsed,
    )
}

fn headline(c: &mut Criterion) {
    // Warm up on the registry-sized workload.
    let _ = run_timed(&autoscale::diurnal_workload());

    // Best of three full passes; the digests pin that the controller's
    // decisions are bit-identical pass to pass.
    let wl = sustained_workload();
    let (digest, joins, drains, mut elapsed) = run_timed(&wl);
    for _ in 0..2 {
        let (d, j, dr, el) = run_timed(&wl);
        assert_eq!(d, digest, "autoscaled run must be deterministic");
        assert_eq!((j, dr), (joins, drains), "controller decisions drifted");
        elapsed = elapsed.min(el);
    }
    assert!(joins >= 1, "sustained diurnal load never triggered a join");
    let requests_per_sec = f64::from(NUM_REQUESTS) / elapsed.as_secs_f64();
    let us_per_request = elapsed.as_micros() as f64 / f64::from(NUM_REQUESTS);
    println!(
        "autoscale: {NUM_REQUESTS} requests in {:.3} s ({requests_per_sec:.0} req/s, \
         {us_per_request:.2} us/req), {joins} joins, {drains} drains",
        elapsed.as_secs_f64(),
    );

    let mut snap = PerfSnapshot::new();
    snap.put("requests_per_sec", requests_per_sec.round());
    snap.put("us_per_request", (us_per_request * 100.0).round() / 100.0);
    snap.put("joins", f64::from(joins));
    snap.put("drains", f64::from(drains));
    snap.put("requests", f64::from(NUM_REQUESTS));
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_autoscale.json");
    record_or_gate(&path, &snap, "requests_per_sec", 0.75);

    // A repeatable criterion sample on the registry-sized condition,
    // so `cargo bench` trend lines have a stable target.
    let mut g = c.benchmark_group("autoscale");
    g.sample_size(10);
    g.bench_function("autoscaled_registry_point", |b| {
        b.iter(|| autoscale::run_point(Condition::Autoscaled))
    });
    g.finish();
}

criterion_group!(benches, headline);
criterion_main!(benches);
