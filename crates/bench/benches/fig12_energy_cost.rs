//! Fig. 12 bench: energy-per-inference and cost sweep over CU counts.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fig12_energy_cost;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fig12_energy_cost::run();
    let best_cost = f
        .samples
        .iter()
        .map(|s| s.cost_hbm3e / s.cost.total())
        .fold(0.0, f64::max);
    expect_band("HBM3e/HBM-CO cost ratio", best_cost, 8.0, 16.0);

    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.warm_up_time(std::time::Duration::from_secs(2));
    g.bench_function("energy_cost_sweep", |b| {
        b.iter(|| black_box(fig12_energy_cost::run()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
