//! Snapshot layer overhead: what freezing, thawing, digesting and
//! replaying a mid-flight serving run costs, so `--checkpoint-every`
//! cadences can be chosen against real numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_serve::{
    digest_serve_report, AnalyticCostModel, Fifo, Fleet, FleetRun, PriorityAging, Router,
    ServeConfig, ServeRun, SessionAffinity, Workload,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let cfg = ServeConfig::default();

    // A single-machine run frozen mid-flight: a deep queue, a full
    // batch and a long command log — the expensive snapshot shape.
    let wl = Workload::poisson(1500.0, 512, 48, 256);
    let mut run = ServeRun::new(&wl, &cfg);
    let mut cost = AnalyticCostModel::small();
    for _ in 0..1500 {
        if !run.step(&mut cost, &mut Fifo) {
            break;
        }
    }
    c.bench_function("snapshot_serve_freeze", |b| {
        b.iter(|| black_box(run.snapshot()));
    });
    let bytes = run.snapshot();
    c.bench_function("snapshot_serve_thaw", |b| {
        b.iter(|| ServeRun::resume(black_box(&wl), black_box(&bytes)).expect("pristine bytes"));
    });
    c.bench_function("snapshot_serve_state_digest", |b| {
        b.iter(|| black_box(run.state_digest()));
    });

    // Fleet snapshot including router state.
    let mut fleet = Fleet::homogeneous(
        4,
        &cfg,
        || Box::new(AnalyticCostModel::small()),
        || Box::new(PriorityAging::new(0.25)),
    );
    let mut router = SessionAffinity::new();
    let mut fleet_run = fleet.start(&wl);
    for _ in 0..1500 {
        if !fleet_run.step(&mut fleet, &mut router) {
            break;
        }
    }
    c.bench_function("snapshot_fleet_freeze", |b| {
        b.iter(|| black_box(fleet_run.snapshot(&router)));
    });
    let fleet_bytes = fleet_run.snapshot(&router);
    c.bench_function("snapshot_fleet_thaw", |b| {
        b.iter(|| {
            let mut thaw_router: Box<dyn Router> = Box::new(SessionAffinity::new());
            FleetRun::resume(
                black_box(&wl),
                black_box(&fleet),
                thaw_router.as_mut(),
                black_box(&fleet_bytes),
            )
            .expect("pristine bytes")
        });
    });

    // Replaying a complete command log against a fresh core — the
    // bisection probe's unit of work.
    let mut full = ServeRun::new(&wl, &cfg);
    let mut cost = AnalyticCostModel::small();
    while full.step(&mut cost, &mut Fifo) {}
    let log = full.log().clone();
    c.bench_function("snapshot_replay_serve_full_log", |b| {
        b.iter(|| {
            let r = log.replay_serve(
                black_box(&wl),
                &mut AnalyticCostModel::small(),
                &cfg,
                &mut Fifo,
            );
            digest_serve_report(&r)
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
