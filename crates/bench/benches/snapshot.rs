//! Snapshot layer overhead: what freezing, thawing, digesting and
//! replaying a mid-flight serving run costs, so `--checkpoint-every`
//! cadences can be chosen against real numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::perf::{record_or_gate, PerfSnapshot};
use rpu_serve::{
    digest_serve_report, AnalyticCostModel, Fifo, FleetBuilder, FleetRun, PriorityAging, Router,
    ServeConfig, ServeRun, SessionAffinity, Workload,
};
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let cfg = ServeConfig::default();

    // A single-machine run frozen mid-flight: a deep queue, a full
    // batch and a long command log — the expensive snapshot shape.
    let wl = Workload::poisson(1500.0, 512, 48, 256);
    let mut run = ServeRun::new(&wl, &cfg);
    let mut cost = AnalyticCostModel::small();
    for _ in 0..1500 {
        if !run.step(&mut cost, &mut Fifo) {
            break;
        }
    }
    c.bench_function("snapshot_serve_freeze", |b| {
        b.iter(|| black_box(run.snapshot()));
    });
    let bytes = run.snapshot();
    c.bench_function("snapshot_serve_thaw", |b| {
        b.iter(|| ServeRun::resume(black_box(&wl), black_box(&bytes)).expect("pristine bytes"));
    });
    c.bench_function("snapshot_serve_state_digest", |b| {
        b.iter(|| black_box(run.state_digest()));
    });

    // Fleet snapshot including router state.
    let mut fleet = FleetBuilder::new()
        .group(
            4,
            &cfg,
            || Box::new(AnalyticCostModel::small()),
            || Box::new(PriorityAging::new(0.25)),
        )
        .build();
    let mut router = SessionAffinity::new();
    let mut fleet_run = fleet.start(&wl);
    for _ in 0..1500 {
        if !fleet_run.step(&mut fleet, &mut router) {
            break;
        }
    }
    c.bench_function("snapshot_fleet_freeze", |b| {
        b.iter(|| black_box(fleet_run.snapshot(&router)));
    });
    let fleet_bytes = fleet_run.snapshot(&router);
    c.bench_function("snapshot_fleet_thaw", |b| {
        b.iter(|| {
            let mut thaw_router: Box<dyn Router> = Box::new(SessionAffinity::new());
            FleetRun::resume(
                black_box(&wl),
                black_box(&fleet),
                thaw_router.as_mut(),
                black_box(&fleet_bytes),
            )
            .expect("pristine bytes")
        });
    });

    // Replaying a complete command log against a fresh core — the
    // bisection probe's unit of work.
    let mut full = ServeRun::new(&wl, &cfg);
    let mut cost = AnalyticCostModel::small();
    while full.step(&mut cost, &mut Fifo) {}
    let log = full.log().clone();
    c.bench_function("snapshot_replay_serve_full_log", |b| {
        b.iter(|| {
            let r = log.replay_serve(
                black_box(&wl),
                &mut AnalyticCostModel::small(),
                &cfg,
                &mut Fifo,
            );
            digest_serve_report(&r)
        });
    });

    // Record the freeze/thaw trajectory into BENCH_snapshot.json,
    // gated: a >25% regression in freeze throughput (ratio < 0.75)
    // fails the bench-trajectory CI leg. 200 iterations amortise the
    // shared-runner noise the old informational gate was hedging
    // against; re-bless deliberate movement with BENCH_BLESS=1.
    let iters = 200u32;
    let t = Instant::now();
    for _ in 0..iters {
        black_box(run.snapshot());
    }
    let freeze_per_sec = f64::from(iters) / t.elapsed().as_secs_f64();
    let t = Instant::now();
    for _ in 0..iters {
        black_box(ServeRun::resume(&wl, &bytes).expect("pristine bytes"));
    }
    let thaw_per_sec = f64::from(iters) / t.elapsed().as_secs_f64();
    let mut snap = PerfSnapshot::new();
    snap.put("serve_freeze_per_sec", freeze_per_sec.round());
    snap.put("serve_thaw_per_sec", thaw_per_sec.round());
    snap.put("serve_snapshot_bytes", bytes.len() as f64);
    snap.put("fleet_snapshot_bytes", fleet_bytes.len() as f64);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_snapshot.json");
    record_or_gate(&path, &snap, "serve_freeze_per_sec", 0.75);
}

criterion_group!(benches, bench);
criterion_main!(benches);
