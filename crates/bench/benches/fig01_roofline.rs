//! Fig. 1 bench: roofline analysis of H100 vs RPU at ISO-TDP.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fig01_roofline;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Validate the figure's headline shape once up front.
    let f = fig01_roofline::run();
    expect_band(
        "RPU/H100 bandwidth ratio",
        f.rpu.bandwidth / f.h100.bandwidth,
        2.0,
        10.0,
    );
    expect_band("RPU ridge AI", f.rpu.ridge_ai(), 28.0, 36.0);

    c.bench_function("fig01_roofline", |b| {
        b.iter(|| black_box(fig01_roofline::run()));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
