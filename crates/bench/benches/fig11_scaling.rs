//! Fig. 11 bench: strong scaling and the simulated decode step at the
//! paper's headline scales.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fig11_scaling;
use rpu_core::RpuSystem;
use rpu_models::{ModelConfig, Precision};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fig11_scaling::run();
    let m405 = f.marker("Llama3-405B").expect("405B marker");
    expect_band("405B ISO-TDP speedup vs 4xH100", m405.speedup(), 15.0, 90.0);

    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.warm_up_time(std::time::Duration::from_secs(2));
    g.bench_function("strong_scaling_full", |b| {
        b.iter(|| black_box(fig11_scaling::run()));
    });
    // The single headline configuration: 405B on 428 CUs.
    let model = ModelConfig::llama3_405b();
    let prec = Precision::mxfp4_inference();
    let sys = RpuSystem::with_optimal_memory(&model, prec, 1, 8192, 428).expect("fits");
    g.bench_function("decode_step_405b_428cu", |b| {
        b.iter(|| black_box(sys.decode_step(&model, 1, 8192).unwrap()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
