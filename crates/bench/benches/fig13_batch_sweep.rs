//! Fig. 13 bench: the RPU-vs-H100 batch sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fig13_batch_sweep;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fig13_batch_sweep::run();
    let p = f.point("Llama3-70B", 1).expect("70B BS=1 point");
    expect_band("70B BS=1 speedup", p.speedup(), 25.0, 90.0);

    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.warm_up_time(std::time::Duration::from_secs(2));
    g.bench_function("batch_sweep_full", |b| {
        b.iter(|| black_box(fig13_batch_sweep::run()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
