//! Fig. 9 bench: Pareto-frontier extraction and SKU selection.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::fig09_pareto;
use rpu_hbmco::{pareto_frontier, select_sku};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let f = fig09_pareto::run();
    expect_band(
        "optimal energy gain vs HBM3e-class",
        1.0 / f.optimal_entry().norm_energy,
        1.4,
        2.1,
    );

    c.bench_function("fig09_pareto_run", |b| {
        b.iter(|| black_box(fig09_pareto::run()));
    });
    c.bench_function("fig09_pareto_frontier", |b| {
        b.iter(|| black_box(pareto_frontier()));
    });
    c.bench_function("fig09_select_sku", |b| {
        b.iter(|| black_box(select_sku(black_box(192.0 * 1024.0 * 1024.0))));
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
