//! Event-core throughput: the calendar-queue fleet driver on a
//! 100k-request, 128-replica workload.
//!
//! This bench is the measured half of the event-core story. The scan
//! reference it was originally measured against is retired (the
//! differential battery in `crates/serve/tests/event_core_diff.rs`
//! now closes the core under its own snapshot/replay mechanisms, and
//! the scan-era cross-checks survive as `debug_assert`s inside the
//! core); what remains load-bearing is the absolute trajectory. The
//! headline numbers — events/sec, ns/event, peak slab occupancy — are
//! recorded into `BENCH_event_core.json` at the workspace root via
//! [`rpu_bench::perf::record_or_gate`]:
//!
//! - `BENCH_BLESS=1 cargo bench --bench event_core` re-records the
//!   committed baseline;
//! - a plain run gates against it, failing on a >25% events/sec
//!   regression (ratio < 0.75).

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::perf::{record_or_gate, PerfSnapshot};
use rpu_serve::{
    AnalyticCostModel, CostModel, Fifo, Fleet, FleetBuilder, FleetReport, RoundRobin,
    SchedulingPolicy, ServeConfig, Workload,
};
use std::path::Path;
use std::time::{Duration, Instant};

/// Replica count for the headline measurement. Wide fleets are the
/// regime the calendar migration targeted: per-event cost must stay
/// logarithmic in the fleet width (the `fleet_scale` bench pushes the
/// width itself to 1000).
const REPLICAS: usize = 128;
const NUM_REQUESTS: u32 = 100_000;

fn workload() -> Workload {
    // ~95% utilization across 128 replicas: queues run deep, so the
    // telemetry cache and calendar wake-ups work over a real backlog.
    Workload::poisson(52_000.0, 256, 16, NUM_REQUESTS)
}

fn config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        ..ServeConfig::default()
    }
}

fn mk_fleet(replicas: usize) -> Fleet {
    FleetBuilder::new()
        .group(
            replicas,
            &config(),
            || Box::new(AnalyticCostModel::small()) as Box<dyn CostModel>,
            || Box::new(Fifo) as Box<dyn SchedulingPolicy>,
        )
        .build()
}

/// Runs the calendar-queue driver to completion, returning the report,
/// the number of discrete events processed, the wall time, and the
/// peak slab occupancy across replicas.
fn run_calendar(wl: &Workload, replicas: usize) -> (FleetReport, u64, Duration, u32) {
    let mut fleet = mk_fleet(replicas);
    let mut router = RoundRobin::new();
    let start = Instant::now();
    let mut run = fleet.start(wl);
    let mut events = 0u64;
    while run.step(&mut fleet, &mut router) {
        events += 1;
    }
    let elapsed = start.elapsed();
    let peak = run.peak_slab_occupancy();
    (run.into_report(), events, elapsed, peak)
}

/// The headline measurement: one full 100k-request run, repeated
/// best-of-3, then recorded or gated against the committed
/// `BENCH_event_core.json`.
fn headline(c: &mut Criterion) {
    let wl = workload();

    // Warm the allocator and caches with a short run before timing.
    let small = Workload::poisson(20_000.0, 256, 16, 2_000);
    let _ = run_calendar(&small, REPLICAS);

    // Best-of-3: the run is deterministic, so the minimum wall time is
    // the least-interference measurement — the right statistic to gate
    // on a shared machine.
    let (fast, events, mut fast_t, peak) = run_calendar(&wl, REPLICAS);
    for _ in 0..2 {
        let (again, e, t, p) = run_calendar(&wl, REPLICAS);
        assert_eq!(
            (e, p, &again),
            (events, peak, &fast),
            "nondeterministic run"
        );
        fast_t = fast_t.min(t);
    }

    let events_per_sec = events as f64 / fast_t.as_secs_f64();
    let ns_per_event = fast_t.as_nanos() as f64 / events as f64;
    println!(
        "event_core: {events} events in {:.3} s ({events_per_sec:.0} events/s, \
         {ns_per_event:.0} ns/event), peak slab occupancy {peak}",
        fast_t.as_secs_f64(),
    );

    let mut snap = PerfSnapshot::new();
    snap.put("events_per_sec", events_per_sec.round());
    snap.put("ns_per_event", ns_per_event.round());
    snap.put("peak_slab_occupancy", f64::from(peak));
    snap.put("fleet_events", events as f64);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_event_core.json");
    record_or_gate(&path, &snap, "events_per_sec", 0.75);

    // A repeatable criterion sample on a smaller slice of the same
    // workload, so `cargo bench` trend lines have a stable target.
    let sampled = Workload::poisson(20_000.0, 256, 16, 5_000);
    let mut g = c.benchmark_group("event_core");
    g.sample_size(10);
    g.bench_function("calendar_fleet_5k", |b| {
        b.iter(|| run_calendar(&sampled, 8))
    });
    g.finish();
}

criterion_group!(benches, headline);
criterion_main!(benches);
