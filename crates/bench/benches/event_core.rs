//! Event-core throughput: the calendar-queue fleet driver vs the
//! retired scan-and-merge reference on a 100k-request workload.
//!
//! This bench is the measured half of the event-core migration story.
//! It drives the same 100k-request Poisson workload through both
//! paths, demands digest-identical reports (the differential battery
//! in `crates/serve/tests/event_core_diff.rs` covers breadth; this
//! covers scale), and records the calendar path's headline numbers —
//! events/sec, ns/event, peak slab occupancy, speedup over the scan
//! path — into `BENCH_event_core.json` at the workspace root via
//! [`rpu_bench::perf::record_or_gate`]:
//!
//! - `BENCH_BLESS=1 cargo bench --bench event_core` re-records the
//!   committed baseline;
//! - a plain run gates against it, failing on a >25% events/sec
//!   regression (ratio < 0.75).

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::perf::{record_or_gate, PerfSnapshot};
use rpu_serve::{
    digest_fleet_report, reference, AnalyticCostModel, CostModel, Fifo, Fleet, FleetReport,
    RoundRobin, SchedulingPolicy, ServeConfig, Workload,
};
use std::path::Path;
use std::time::{Duration, Instant};

/// Replica count for the headline comparison. The scan driver's cost
/// grows linearly with the fleet width on every event (next-event scan)
/// and every arrival (telemetry walk); the calendar driver's grows
/// logarithmically. A wide fleet is exactly the regime the migration
/// targets.
const REPLICAS: usize = 128;
const NUM_REQUESTS: u32 = 100_000;

fn workload() -> Workload {
    // ~95% utilization across 128 replicas: queues run deep, so the
    // scan driver pays its per-arrival telemetry walk over a real
    // backlog while the calendar driver stays incremental.
    Workload::poisson(52_000.0, 256, 16, NUM_REQUESTS)
}

fn config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        ..ServeConfig::default()
    }
}

fn mk_fleet(replicas: usize) -> Fleet {
    Fleet::homogeneous(
        replicas,
        &config(),
        || Box::new(AnalyticCostModel::small()) as Box<dyn CostModel>,
        || Box::new(Fifo) as Box<dyn SchedulingPolicy>,
    )
}

/// Runs the calendar-queue driver to completion, returning the report,
/// the number of discrete events processed, the wall time, and the
/// peak slab occupancy across replicas.
fn run_calendar(wl: &Workload, replicas: usize) -> (FleetReport, u64, Duration, u32) {
    let mut fleet = mk_fleet(replicas);
    let mut router = RoundRobin::new();
    let start = Instant::now();
    let mut run = fleet.start(wl);
    let mut events = 0u64;
    while run.step(&mut fleet, &mut router) {
        events += 1;
    }
    let elapsed = start.elapsed();
    let peak = run.peak_slab_occupancy();
    (run.into_report(), events, elapsed, peak)
}

/// Runs the scan-and-merge reference driver to completion.
fn run_scan(wl: &Workload, replicas: usize) -> (FleetReport, Duration) {
    let mut fleet = mk_fleet(replicas);
    let mut router = RoundRobin::new();
    let start = Instant::now();
    let report = reference::fleet_serve_scan(&mut fleet, wl, &mut router);
    (report, start.elapsed())
}

/// The headline measurement: one full 100k-request run through each
/// driver, equivalence-checked, then recorded or gated against the
/// committed `BENCH_event_core.json`.
fn headline(c: &mut Criterion) {
    let wl = workload();

    // Warm the allocator and caches with a short run before timing.
    let small = Workload::poisson(20_000.0, 256, 16, 2_000);
    let _ = run_calendar(&small, REPLICAS);

    // Best-of-3 on the calendar side: the run is deterministic, so the
    // minimum wall time is the least-interference measurement — the
    // right statistic to gate on a shared machine.
    let (fast, events, mut fast_t, peak) = run_calendar(&wl, REPLICAS);
    for _ in 0..2 {
        let (again, e, t, p) = run_calendar(&wl, REPLICAS);
        assert_eq!(
            (e, p, &again),
            (events, peak, &fast),
            "nondeterministic run"
        );
        fast_t = fast_t.min(t);
    }
    let (slow, slow_t) = run_scan(&wl, REPLICAS);
    assert_eq!(
        digest_fleet_report(&fast),
        digest_fleet_report(&slow),
        "calendar and scan drivers diverged on the bench workload"
    );
    assert_eq!(fast, slow, "reports diverged beyond the digest");

    let events_per_sec = events as f64 / fast_t.as_secs_f64();
    let ns_per_event = fast_t.as_nanos() as f64 / events as f64;
    let speedup = slow_t.as_secs_f64() / fast_t.as_secs_f64();
    println!(
        "event_core: {events} events in {:.3} s ({events_per_sec:.0} events/s, \
         {ns_per_event:.0} ns/event), scan {:.3} s, speedup x{speedup:.1}, \
         peak slab occupancy {peak}",
        fast_t.as_secs_f64(),
        slow_t.as_secs_f64(),
    );
    assert!(
        speedup >= 5.0,
        "calendar path must be at least 5x the scan path on the 100k fleet \
         workload, measured x{speedup:.2}"
    );

    let mut snap = PerfSnapshot::new();
    snap.put("events_per_sec", events_per_sec.round());
    snap.put("ns_per_event", ns_per_event.round());
    snap.put("peak_slab_occupancy", f64::from(peak));
    snap.put("speedup_vs_scan", (speedup * 10.0).round() / 10.0);
    snap.put("fleet_events", events as f64);
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_event_core.json");
    record_or_gate(&path, &snap, "events_per_sec", 0.75);

    // A repeatable criterion sample on a smaller slice of the same
    // workload, so `cargo bench` trend lines have a stable target.
    let sampled = Workload::poisson(20_000.0, 256, 16, 5_000);
    let mut g = c.benchmark_group("event_core");
    g.sample_size(10);
    g.bench_function("calendar_fleet_5k", |b| {
        b.iter(|| run_calendar(&sampled, 8))
    });
    g.finish();
}

criterion_group!(benches, headline);
criterion_main!(benches);
