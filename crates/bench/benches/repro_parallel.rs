//! Engine-speedup bench: the fleet_sweep grid (the heaviest repro
//! target) at `jobs` = 1/2/4/8, plus the raw `par_map` overhead on a
//! trivial grid.
//!
//! Every run builds a fresh shared cost model, so each iteration pays
//! the full simulator cost once per distinct decode step — the work the
//! engine actually parallelises. On a single-core host the four job
//! counts land within noise of each other (the differential suite
//! separately guarantees they emit identical bytes); on a multi-core
//! host the wall-clock ratio `jobs1 / jobsN` is the engine's speedup on
//! a real sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_bench::perf::{record_or_gate, PerfSnapshot};
use rpu_core::engine::{grid, Engine};
use rpu_core::experiments::fleet_sweep;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

fn bench(c: &mut Criterion) {
    // Determinism gate before timing anything: every job count renders
    // the same bytes.
    let reference = fleet_sweep::run_with(&Engine::sequential())
        .table()
        .to_string();
    for jobs in [2usize, 4, 8] {
        let t = fleet_sweep::run_with(&Engine::new(jobs))
            .table()
            .to_string();
        assert_eq!(reference, t, "jobs = {jobs} diverged from sequential");
    }
    expect_band(
        "fleet sweep renders its capacity table",
        fleet_sweep::run().table().len() as f64,
        fleet_sweep::RATE_SWEEP.len() as f64,
        fleet_sweep::RATE_SWEEP.len() as f64,
    );

    let mut g = c.benchmark_group("repro_parallel");
    g.sample_size(10);
    for jobs in [1usize, 2, 4, 8] {
        g.bench_function(&format!("fleet_sweep_jobs{jobs}"), |b| {
            let engine = Engine::new(jobs);
            b.iter(|| fleet_sweep::run_with(black_box(&engine)));
        });
    }
    // The engine's own dispatch overhead, isolated from the simulator:
    // a 4096-point trivial grid.
    for jobs in [1usize, 8] {
        g.bench_function(&format!("par_map_overhead_jobs{jobs}"), |b| {
            let engine = Engine::new(jobs);
            let points = grid(
                &(0u64..64).collect::<Vec<_>>(),
                &(0u64..64).collect::<Vec<_>>(),
            );
            b.iter(|| engine.par_map(black_box(&points), |i, &(x, y)| x * y + i as u64));
        });
    }
    g.finish();

    // Record the engine trajectory into BENCH_repro_parallel.json,
    // gated on the sequential sweep *rate* (sweeps/sec — a
    // higher-is-better metric the >25% rule can bite on): a
    // ratio < 0.75 regression fails the bench-trajectory CI leg. The
    // jobs-8 speedup stays informational — it depends on the runner's
    // core count — and moves via deliberate BENCH_BLESS re-blesses.
    let t = Instant::now();
    black_box(fleet_sweep::run_with(&Engine::new(1)));
    let seq_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    black_box(fleet_sweep::run_with(&Engine::new(8)));
    let par_s = t.elapsed().as_secs_f64();
    let mut snap = PerfSnapshot::new();
    snap.put("fleet_sweep_per_sec", (1.0 / seq_s * 1e3).round() / 1e3);
    snap.put("fleet_sweep_jobs1_ms", (seq_s * 1e3).round());
    snap.put("fleet_sweep_jobs8_ms", (par_s * 1e3).round());
    snap.put(
        "engine_speedup_jobs8",
        (seq_s / par_s * 100.0).round() / 100.0,
    );
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_repro_parallel.json");
    record_or_gate(&path, &snap, "fleet_sweep_per_sec", 0.75);
}

criterion_group!(benches, bench);
criterion_main!(benches);
