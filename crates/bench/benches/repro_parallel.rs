//! Engine-speedup bench: the fleet_sweep grid (the heaviest repro
//! target) at `jobs` = 1/2/4/8, plus the raw `par_map` overhead on a
//! trivial grid.
//!
//! Every run builds a fresh shared cost model, so each iteration pays
//! the full simulator cost once per distinct decode step — the work the
//! engine actually parallelises. On a single-core host the four job
//! counts land within noise of each other (the differential suite
//! separately guarantees they emit identical bytes); on a multi-core
//! host the wall-clock ratio `jobs1 / jobsN` is the engine's speedup on
//! a real sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::engine::{grid, Engine};
use rpu_core::experiments::fleet_sweep;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Determinism gate before timing anything: every job count renders
    // the same bytes.
    let reference = fleet_sweep::run_with(&Engine::sequential())
        .table()
        .to_string();
    for jobs in [2usize, 4, 8] {
        let t = fleet_sweep::run_with(&Engine::new(jobs))
            .table()
            .to_string();
        assert_eq!(reference, t, "jobs = {jobs} diverged from sequential");
    }
    expect_band(
        "fleet sweep renders its capacity table",
        fleet_sweep::run().table().len() as f64,
        fleet_sweep::RATE_SWEEP.len() as f64,
        fleet_sweep::RATE_SWEEP.len() as f64,
    );

    let mut g = c.benchmark_group("repro_parallel");
    g.sample_size(10);
    for jobs in [1usize, 2, 4, 8] {
        g.bench_function(&format!("fleet_sweep_jobs{jobs}"), |b| {
            let engine = Engine::new(jobs);
            b.iter(|| fleet_sweep::run_with(black_box(&engine)));
        });
    }
    // The engine's own dispatch overhead, isolated from the simulator:
    // a 4096-point trivial grid.
    for jobs in [1usize, 8] {
        g.bench_function(&format!("par_map_overhead_jobs{jobs}"), |b| {
            let engine = Engine::new(jobs);
            let points = grid(
                &(0u64..64).collect::<Vec<_>>(),
                &(0u64..64).collect::<Vec<_>>(),
            );
            b.iter(|| engine.par_map(black_box(&points), |i, &(x, y)| x * y + i as u64));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
