//! §IX ablation bench: the decomposed-contribution analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::ablations;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let a = ablations::run();
    expect_band("HBM-CO energy ratio", a.memory.energy_ratio, 1.5, 3.0);
    expect_band(
        "global-sync slowdown",
        a.decoupling.global_sync_slowdown,
        1.1,
        2.5,
    );

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_secs(15));
    g.warm_up_time(std::time::Duration::from_secs(2));
    g.bench_function("all_contributions", |b| {
        b.iter(|| black_box(ablations::run()));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
