//! Serving bench: continuous-batching scheduler throughput and the
//! simulator-backed load sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use rpu_bench::checks::expect_band;
use rpu_core::experiments::serving_sweep;
use rpu_core::serving::RpuCostModel;
use rpu_core::RpuSystem;
use rpu_models::{ModelConfig, Precision};
use rpu_serve::{serve, AnalyticCostModel, ServeConfig, SloReport, SloTargets, Workload};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Headline shape: at the lightest rung of the sweep most requests
    // meet the interactive SLO; past saturation goodput rolls over.
    let s = serving_sweep::run();
    expect_band(
        "light-load SLO attainment",
        s.points[0].slo.slo_attainment,
        0.9,
        1.0,
    );
    let peak = s
        .points
        .iter()
        .map(|p| p.slo.goodput_rps)
        .fold(0.0, f64::max);
    expect_band(
        "goodput rollover past saturation",
        s.points.last().expect("non-empty sweep").slo.goodput_rps / peak,
        0.0,
        0.999,
    );

    // Pure scheduler throughput: analytic cost model, no simulator.
    c.bench_function("serving_scheduler_analytic", |b| {
        let wl = Workload::poisson(400.0, 512, 64, 128);
        let cfg = ServeConfig::default();
        b.iter(|| {
            let mut cost = AnalyticCostModel::small();
            let r = serve(black_box(&wl), &mut cost, &cfg);
            SloReport::new(&r, &SloTargets::interactive())
        });
    });

    // One simulator-backed load point, including the memoised
    // decode-step simulations.
    c.bench_function("serving_rpu_load_point", |b| {
        let model = ModelConfig::llama3_8b();
        let cfg = ServeConfig {
            max_batch: serving_sweep::MAX_BATCH,
            ..ServeConfig::default()
        };
        let sys = RpuSystem::with_optimal_memory(
            &model,
            Precision::mxfp4_inference(),
            serving_sweep::MAX_BATCH,
            cfg.bucket(serving_sweep::PROMPT_LEN + serving_sweep::OUTPUT_LEN),
            serving_sweep::NUM_CUS,
        )
        .expect("8B deploys");
        let wl = serving_sweep::workload(240.0);
        b.iter(|| {
            let mut cost = RpuCostModel::new(sys, model);
            black_box(serve(&wl, &mut cost, &cfg))
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
