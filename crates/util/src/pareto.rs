//! Pareto-frontier extraction for design-space exploration.
//!
//! Used by the HBM-CO design space (Fig. 5 and Fig. 9): points are scored on
//! two axes, and the frontier keeps every point not dominated by another.

/// Orientation of an objective axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Smaller values are better (e.g. energy per bit, cost).
    Minimize,
    /// Larger values are better (e.g. capacity, bandwidth per dollar).
    Maximize,
}

impl Objective {
    /// Returns `true` if `a` is at least as good as `b` on this axis.
    fn at_least(self, a: f64, b: f64) -> bool {
        match self {
            Objective::Minimize => a <= b,
            Objective::Maximize => a >= b,
        }
    }

    /// Returns `true` if `a` is strictly better than `b` on this axis.
    fn better(self, a: f64, b: f64) -> bool {
        match self {
            Objective::Minimize => a < b,
            Objective::Maximize => a > b,
        }
    }
}

/// Returns `true` when point `a` dominates point `b` under the two
/// objectives: at least as good on both axes and strictly better on one.
#[must_use]
pub fn dominates(a: (f64, f64), b: (f64, f64), obj: (Objective, Objective)) -> bool {
    obj.0.at_least(a.0, b.0)
        && obj.1.at_least(a.1, b.1)
        && (obj.0.better(a.0, b.0) || obj.1.better(a.1, b.1))
}

/// Extracts the Pareto frontier of `items` under two objectives.
///
/// `score` maps each item to its `(x, y)` objective values. The result is
/// sorted ascending by `x` and contains every non-dominated item.
///
/// # Examples
///
/// ```
/// use rpu_util::pareto::{frontier, Objective};
///
/// // Minimise both coordinates.
/// let pts = vec![(1.0, 3.0), (2.0, 2.0), (3.0, 1.0), (3.0, 3.0)];
/// let front = frontier(&pts, |p| *p, (Objective::Minimize, Objective::Minimize));
/// assert_eq!(front.len(), 3); // (3,3) is dominated
/// ```
pub fn frontier<T: Clone>(
    items: &[T],
    score: impl Fn(&T) -> (f64, f64),
    obj: (Objective, Objective),
) -> Vec<T> {
    let mut kept: Vec<(T, (f64, f64))> = Vec::new();
    'outer: for item in items {
        let s = score(item);
        if !(s.0.is_finite() && s.1.is_finite()) {
            continue;
        }
        // Drop the candidate if an existing member dominates it; evict
        // members the candidate dominates.
        for (_, ks) in &kept {
            if dominates(*ks, s, obj) {
                continue 'outer;
            }
        }
        kept.retain(|(_, ks)| !dominates(s, *ks, obj));
        kept.push((item.clone(), s));
    }
    kept.sort_by(|a, b| {
        a.1 .0
            .partial_cmp(&b.1 .0)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    kept.into_iter().map(|(t, _)| t).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIN_MIN: (Objective, Objective) = (Objective::Minimize, Objective::Minimize);

    #[test]
    fn dominated_point_removed() {
        let pts = vec![(1.0, 1.0), (2.0, 2.0)];
        let f = frontier(&pts, |p| *p, MIN_MIN);
        assert_eq!(f, vec![(1.0, 1.0)]);
    }

    #[test]
    fn incomparable_points_kept() {
        let pts = vec![(1.0, 3.0), (3.0, 1.0)];
        let f = frontier(&pts, |p| *p, MIN_MIN);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn equal_points_keep_one_each() {
        // A point does not dominate an identical point (no strict axis).
        let pts = vec![(1.0, 1.0), (1.0, 1.0)];
        let f = frontier(&pts, |p| *p, MIN_MIN);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn maximize_axis() {
        // Maximise x (capacity), minimise y (energy).
        let pts = vec![(10.0, 5.0), (20.0, 5.0), (20.0, 7.0)];
        let f = frontier(&pts, |p| *p, (Objective::Maximize, Objective::Minimize));
        assert_eq!(f, vec![(20.0, 5.0)]);
    }

    #[test]
    fn non_finite_scores_skipped() {
        let pts = vec![(f64::NAN, 1.0), (1.0, 1.0)];
        let f = frontier(&pts, |p| *p, MIN_MIN);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn frontier_members_mutually_non_dominating() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| ((i % 7) as f64, ((i * 13) % 11) as f64))
            .collect();
        let f = frontier(&pts, |p| *p, MIN_MIN);
        for a in &f {
            for b in &f {
                assert!(
                    !dominates(*a, *b, MIN_MIN) || a == b,
                    "{a:?} dominates {b:?}"
                );
            }
        }
    }
}
