//! Shared utilities for the RPU reproduction workspace.
//!
//! This crate intentionally contains only domain-neutral helpers used by the
//! other crates: unit constants and conversions ([`units`]), aligned text
//! table rendering ([`table`]), Pareto-frontier extraction ([`pareto`]) and
//! small statistics helpers ([`stats`]).
//!
//! # Examples
//!
//! ```
//! use rpu_util::units::{GIB, GB};
//!
//! assert!(GIB > GB);
//! ```

#![warn(missing_docs)]

pub mod pareto;
pub mod stats;
pub mod table;
pub mod units;

/// Returns `true` when `a` and `b` agree within relative tolerance `rel`.
///
/// Comparison is symmetric and treats two exact zeros as equal. Intended for
/// calibration assertions in tests (e.g. "energy per bit ≈ 3.44 pJ ± 5 %").
///
/// # Examples
///
/// ```
/// assert!(rpu_util::approx_eq(3.44, 3.50, 0.05));
/// assert!(!rpu_util::approx_eq(3.44, 4.50, 0.05));
/// ```
pub fn approx_eq(a: f64, b: f64, rel: f64) -> bool {
    if a == b {
        return true;
    }
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= rel * scale
}

/// Asserts that `a` and `b` agree within relative tolerance `rel`, with a
/// readable panic message on failure.
///
/// # Panics
///
/// Panics when the relative error exceeds `rel`.
#[track_caller]
pub fn assert_approx(a: f64, b: f64, rel: f64, what: &str) {
    assert!(
        approx_eq(a, b, rel),
        "{what}: {a} vs {b} differ by more than {:.1}%",
        rel * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(1.0, 1.0, 0.0));
        assert!(approx_eq(0.0, 0.0, 0.0));
    }

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(100.0, 104.0, 0.05));
        assert!(!approx_eq(100.0, 106.0, 0.05));
    }

    #[test]
    fn approx_eq_symmetric() {
        assert_eq!(approx_eq(3.0, 3.2, 0.1), approx_eq(3.2, 3.0, 0.1));
    }

    #[test]
    #[should_panic(expected = "calibration")]
    fn assert_approx_panics_with_label() {
        assert_approx(1.0, 2.0, 0.01, "calibration");
    }
}
