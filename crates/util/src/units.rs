//! Unit constants and conversions used throughout the workspace.
//!
//! Conventions:
//! - capacities are **bytes** (`f64` for analytics, `u64` in the simulator),
//! - bandwidths are **bytes/second**,
//! - times are **seconds** in analytical models and **picoseconds** (`u64`)
//!   inside the event-driven simulator,
//! - energies are **joules** in totals and **picojoules per bit** for device
//!   coefficients, matching the paper's tables.

/// One kilobyte (decimal, `1e3` bytes).
pub const KB: f64 = 1e3;
/// One megabyte (decimal, `1e6` bytes).
pub const MB: f64 = 1e6;
/// One gigabyte (decimal, `1e9` bytes).
pub const GB: f64 = 1e9;
/// One terabyte (decimal, `1e12` bytes).
pub const TB: f64 = 1e12;

/// One kibibyte (`1024` bytes).
pub const KIB: f64 = 1024.0;
/// One mebibyte (`1024^2` bytes).
pub const MIB: f64 = 1024.0 * 1024.0;
/// One gibibyte (`1024^3` bytes).
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// One microsecond in seconds.
pub const US: f64 = 1e-6;
/// One millisecond in seconds.
pub const MS: f64 = 1e-3;
/// One nanosecond in seconds.
pub const NS: f64 = 1e-9;

/// Picoseconds per second (the simulator's clock domain).
pub const PS_PER_S: f64 = 1e12;

/// Tera-operations (or FLOPs) per second.
pub const TOPS: f64 = 1e12;
/// Giga-operations (or FLOPs) per second.
pub const GOPS: f64 = 1e9;

/// Converts picojoules to joules.
#[must_use]
pub fn pj_to_j(pj: f64) -> f64 {
    pj * 1e-12
}

/// Converts a per-bit energy in pJ/bit and a byte count into joules.
///
/// # Examples
///
/// ```
/// use rpu_util::units::energy_j;
///
/// // 1 GB moved at 1 pJ/bit is 8 mJ.
/// let j = energy_j(1.0, 1e9);
/// assert!((j - 8e-3).abs() < 1e-9);
/// ```
#[must_use]
pub fn energy_j(pj_per_bit: f64, bytes: f64) -> f64 {
    pj_to_j(pj_per_bit) * bytes * 8.0
}

/// Converts seconds to simulator picoseconds, rounding to the nearest tick.
#[must_use]
pub fn secs_to_ps(s: f64) -> u64 {
    (s * PS_PER_S).round().max(0.0) as u64
}

/// Converts simulator picoseconds to seconds.
#[must_use]
pub fn ps_to_secs(ps: u64) -> f64 {
    ps as f64 / PS_PER_S
}

/// Formats a byte count with a human-friendly binary suffix.
///
/// # Examples
///
/// ```
/// assert_eq!(rpu_util::units::fmt_bytes(768.0 * 1024.0 * 1024.0), "768.0 MiB");
/// ```
#[must_use]
pub fn fmt_bytes(bytes: f64) -> String {
    let abs = bytes.abs();
    if abs >= GIB {
        format!("{:.1} GiB", bytes / GIB)
    } else if abs >= MIB {
        format!("{:.1} MiB", bytes / MIB)
    } else if abs >= KIB {
        format!("{:.1} KiB", bytes / KIB)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a duration in seconds using an adaptive unit (s/ms/µs/ns).
///
/// # Examples
///
/// ```
/// assert_eq!(rpu_util::units::fmt_time(2.9e-3), "2.90 ms");
/// ```
#[must_use]
pub fn fmt_time(secs: f64) -> String {
    let abs = secs.abs();
    if abs >= 1.0 {
        format!("{secs:.2} s")
    } else if abs >= 1e-3 {
        format!("{:.2} ms", secs / MS)
    } else if abs >= 1e-6 {
        format!("{:.2} µs", secs / US)
    } else {
        format!("{:.2} ns", secs / NS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_of_zero_bytes_is_zero() {
        assert_eq!(energy_j(3.44, 0.0), 0.0);
    }

    #[test]
    fn ps_round_trip() {
        let s = 1.25e-3;
        let ps = secs_to_ps(s);
        assert!((ps_to_secs(ps) - s).abs() < 1e-12);
    }

    #[test]
    fn fmt_bytes_suffixes() {
        assert_eq!(fmt_bytes(512.0), "512 B");
        assert_eq!(fmt_bytes(2048.0), "2.0 KiB");
        assert_eq!(fmt_bytes(48.0 * GIB), "48.0 GiB");
    }

    #[test]
    fn fmt_time_suffixes() {
        assert_eq!(fmt_time(2.0), "2.00 s");
        assert_eq!(fmt_time(450e-9), "450.00 ns");
        assert_eq!(fmt_time(12e-6), "12.00 µs");
    }

    #[test]
    fn gib_vs_gb() {
        let ratio = GIB / GB;
        assert!(ratio > 1.07 && ratio < 1.08);
    }
}
