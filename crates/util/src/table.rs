//! Aligned text-table rendering for the figure/table reproduction harness.
//!
//! Every experiment in `rpu-core` returns its rows through [`Table`] so
//! the `repro` binary emits the same series the paper plots. Rows hold
//! typed [`Cell`]s (strings, integers, fixed-precision floats) and each
//! column may carry a unit, so one structured table renders to aligned
//! text (diff-friendly, byte-stable), CSV or JSON without the
//! experiments knowing about output formats.

use std::fmt;

/// One typed table cell.
///
/// The text rendering of a [`Cell::Num`] is exactly [`num`]`(value,
/// digits)`, so converting a table from pre-rendered strings to typed
/// cells never changes its bytes.
#[derive(Debug, Clone, PartialEq)]
pub enum Cell {
    /// Free-form text (labels, annotated values).
    Str(String),
    /// An integer count (batch sizes, CU counts, replica counts).
    Int(i64),
    /// A float rendered with a fixed number of decimals.
    Num {
        /// The value.
        value: f64,
        /// Decimals in the text/CSV rendering.
        digits: usize,
    },
}

impl Cell {
    /// A text cell.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Self::Str(s.into())
    }

    /// An integer cell.
    #[must_use]
    pub fn int(v: impl Into<i64>) -> Self {
        Self::Int(v.into())
    }

    /// A fixed-precision float cell (rendered via [`num`]).
    #[must_use]
    pub fn num(value: f64, digits: usize) -> Self {
        Self::Num { value, digits }
    }

    /// The text/CSV rendering of the cell.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Self::Str(s) => s.clone(),
            Self::Int(v) => v.to_string(),
            Self::Num { value, digits } => num(*value, *digits),
        }
    }

    /// The JSON rendering of the cell: strings are quoted and escaped,
    /// integers and finite floats are emitted as JSON numbers (floats at
    /// their table precision, so JSON and text agree), non-finite floats
    /// become `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        match self {
            Self::Str(s) => json_string(s),
            Self::Int(v) => v.to_string(),
            Self::Num { value, digits } => {
                if value.is_finite() {
                    num(*value, *digits)
                } else {
                    "null".to_owned()
                }
            }
        }
    }
}

impl From<String> for Cell {
    fn from(s: String) -> Self {
        Self::Str(s)
    }
}

impl From<&str> for Cell {
    fn from(s: &str) -> Self {
        Self::Str(s.to_owned())
    }
}

/// Escapes a string as a quoted JSON string literal — shared by
/// [`Table::to_json`] and any caller assembling JSON envelopes around
/// tables.
#[must_use]
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A simple aligned table with a title, a header row, optional
/// per-column units and typed data rows.
///
/// # Examples
///
/// ```
/// use rpu_util::table::{Cell, Table};
///
/// let mut t = Table::new("Demo", &["x", "y"]).with_units(&["", "ms"]);
/// t.push_row(vec![Cell::int(1), Cell::num(2.5, 1)]);
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("2.5"));
/// assert!(t.to_json().contains("\"unit\":\"ms\""));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    units: Vec<String>,
    rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            units: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// Attaches per-column units (builder style). Units are metadata for
    /// the structured (JSON) rendering; the text layout is unchanged —
    /// headers that want visible units keep spelling them, e.g.
    /// `"TTFT p99 (ms)"`. Missing trailing entries default to unitless.
    #[must_use]
    pub fn with_units(mut self, units: &[&str]) -> Self {
        self.units = units.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Appends a typed data row. Rows shorter than the header are padded
    /// with empty cells; longer rows are allowed and extend the layout.
    pub fn push_row(&mut self, cells: Vec<Cell>) {
        self.rows.push(cells);
    }

    /// Appends a data row of plain text cells.
    pub fn row(&mut self, cells: &[String]) {
        self.rows
            .push(cells.iter().map(|c| Cell::Str(c.clone())).collect());
    }

    /// Appends a data row built from displayable values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) {
        self.rows
            .push(cells.iter().map(|c| Cell::Str(c.to_string())).collect());
    }

    /// Number of data rows currently in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders the table as CSV (header + rows), for machine consumption.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table as one JSON object:
    /// `{"title": ..., "columns": [{"name", "unit"?}], "rows": [[...]]}`.
    /// Cells keep their types — see [`Cell::to_json`].
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"title\":");
        out.push_str(&json_string(&self.title));
        out.push_str(",\"columns\":[");
        for (i, h) in self.header.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            out.push_str(&json_string(h));
            if let Some(u) = self.units.get(i).filter(|u| !u.is_empty()) {
                out.push_str(",\"unit\":");
                out.push_str(&json_string(u));
            }
            out.push('}');
        }
        out.push_str("],\"rows\":[");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('[');
            for (j, c) in row.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&c.to_json());
            }
            out.push(']');
        }
        out.push_str("]}");
        out
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.render().chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 != widths.len() {
                    line.push_str("   ");
                }
            }
            line.trim_end().to_owned()
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(f, "{}", "-".repeat(total.max(4)))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Cell::render).collect();
            writeln!(f, "{}", fmt_row(&cells))?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` significant decimals, trimming noise.
#[must_use]
pub fn num(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_rows() {
        let mut t = Table::new("T", &["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.starts_with("== T =="));
        assert!(s.contains("a     bb"));
        assert!(s.contains("333"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("T", &["a", "b", "c"]);
        t.row(&["1".into()]);
        let s = t.to_string();
        assert!(s.contains('1'));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row_display(&[42]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn typed_cells_render_like_their_string_twins() {
        // The byte-stability contract: a typed row renders exactly like
        // the pre-rendered strings it replaces.
        let mut typed = Table::new("T", &["s", "i", "f"]);
        typed.push_row(vec![Cell::str("x"), Cell::int(42), Cell::num(1.25, 2)]);
        let mut strings = Table::new("T", &["s", "i", "f"]);
        strings.row(&["x".into(), "42".into(), num(1.25, 2)]);
        assert_eq!(typed.to_string(), strings.to_string());
        assert_eq!(typed.to_csv(), strings.to_csv());
    }

    #[test]
    fn json_has_typed_cells_and_units() {
        let mut t = Table::new("T", &["label", "ms"]).with_units(&["", "ms"]);
        t.push_row(vec![Cell::str("a\"b"), Cell::num(0.5, 3)]);
        t.push_row(vec![
            Cell::int(-7),
            Cell::Num {
                value: f64::NAN,
                digits: 1,
            },
        ]);
        let j = t.to_json();
        assert_eq!(
            j,
            "{\"title\":\"T\",\"columns\":[{\"name\":\"label\"},\
             {\"name\":\"ms\",\"unit\":\"ms\"}],\
             \"rows\":[[\"a\\\"b\",0.500],[-7,null]]}"
        );
    }

    #[test]
    fn json_escapes_control_characters() {
        assert_eq!(json_string("a\nb\t\u{1}"), "\"a\\nb\\t\\u0001\"");
    }
}
