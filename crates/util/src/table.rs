//! Aligned text-table rendering for the figure/table reproduction harness.
//!
//! Every experiment in `rpu-core` prints its rows through [`Table`], so the
//! `repro` binary emits the same series the paper plots, in a diff-friendly
//! plain-text form.

use std::fmt;

/// A simple aligned text table with a title, a header row and data rows.
///
/// # Examples
///
/// ```
/// use rpu_util::table::Table;
///
/// let mut t = Table::new("Demo", &["x", "y"]);
/// t.row(&["1".into(), "2.5".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Demo"));
/// assert!(s.contains("2.5"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    #[must_use]
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row. Rows shorter than the header are padded with
    /// empty cells; longer rows are allowed and extend the layout.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Appends a data row built from displayable values.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Number of data rows currently in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (header + rows), for machine consumption.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.header.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    fn widths(&self) -> Vec<usize> {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.chars().count());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len().saturating_sub(1);
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 != widths.len() {
                    line.push_str("   ");
                }
            }
            line.trim_end().to_owned()
        };
        writeln!(f, "{}", fmt_row(&self.header))?;
        writeln!(f, "{}", "-".repeat(total.max(4)))?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` significant decimals, trimming noise.
#[must_use]
pub fn num(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_header_rows() {
        let mut t = Table::new("T", &["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.row(&["333".into(), "4".into()]);
        let s = t.to_string();
        assert!(s.starts_with("== T =="));
        assert!(s.contains("a     bb"));
        assert!(s.contains("333"));
    }

    #[test]
    fn csv_round_trip_shape() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n1,2\n");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("T", &["a", "b", "c"]);
        t.row(&["1".into()]);
        let s = t.to_string();
        assert!(s.contains('1'));
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new("T", &["a"]);
        assert!(t.is_empty());
        t.row_display(&[42]);
        assert_eq!(t.len(), 1);
    }
}
