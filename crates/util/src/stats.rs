//! Small statistics helpers used by trace post-processing and benches.

/// Arithmetic mean of a slice; `0.0` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices shorter than two.
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Geometric mean of strictly positive values; `0.0` if any value is `<= 0`
/// or the slice is empty.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// The `p`-th percentile (`0.0 ..= 100.0`) of a sample set, by linear
/// interpolation between closest ranks; `NaN` for an empty slice — an
/// empty sample set *has* no percentiles, and reporting `0.0` would be
/// indistinguishable from a genuinely instant latency (a class with
/// zero completed requests must not read as a perfect SLO).
///
/// The input need not be sorted; a sorted copy is taken internally.
/// NaN samples have no rank and are ignored (a slice of only NaNs
/// behaves like an empty one); a NaN `p` yields `NaN`; `p` outside
/// `0 ..= 100` clamps. A single sample is every percentile.
///
/// # Examples
///
/// ```
/// use rpu_util::stats::percentile;
///
/// let xs = [4.0, 1.0, 3.0, 2.0];
/// assert_eq!(percentile(&xs, 0.0), 1.0);
/// assert_eq!(percentile(&xs, 50.0), 2.5);
/// assert_eq!(percentile(&xs, 100.0), 4.0);
/// assert_eq!(percentile(&[2.0, f64::NAN], 50.0), 2.0);
/// assert!(percentile(&[], 99.0).is_nan());
/// ```
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    let mut clean: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
    percentile_mut(&mut clean, p)
}

/// [`percentile`] without the sort: selection over a caller-owned
/// scratch slice, `O(n)` instead of `O(n log n)` and allocation-free.
/// Returns bit-identical results to [`percentile`] on the same
/// samples — the reporting path's quantile equivalence test pins this
/// exhaustively.
///
/// The slice must already be NaN-free ([`percentile`] filters; here
/// the caller owns that step, so one scratch buffer can serve many
/// quantiles). The slice is permuted, not sorted: repeated calls at
/// different `p` on the same scratch stay correct, since selection is
/// order-independent.
///
/// # Panics
///
/// Debug-panics when the slice contains a NaN sample. In release a
/// NaN ranks after every number (`f64::total_cmp` order) instead of
/// being dropped.
#[must_use]
pub fn percentile_mut(xs: &mut [f64], p: f64) -> f64 {
    debug_assert!(
        xs.iter().all(|x| !x.is_nan()),
        "percentile_mut needs a NaN-free slice"
    );
    if p.is_nan() || xs.is_empty() {
        return f64::NAN;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (xs.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    let (_, &mut lo_v, right) = xs.select_nth_unstable_by(lo, f64::total_cmp);
    let hi_v = if hi == lo {
        lo_v
    } else {
        // `hi == lo + 1`, so the next order statistic is the smallest
        // element of the right partition. Ties under `total_cmp` are
        // bit-identical values, so this minimum is exactly the sorted
        // copy's `[hi]`.
        right
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .expect("hi < len, so the right partition is non-empty")
    };
    lo_v + frac * (hi_v - lo_v)
}

/// The p50/p95/p99 latency summary used by SLO reporting, with the mean
/// and maximum alongside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Largest sample.
    pub max: f64,
}

impl Percentiles {
    /// Summarises a sample set (all fields `NaN` for an empty slice —
    /// "no samples" must not masquerade as "zero latency"). NaN
    /// samples are dropped before summarising, consistently with
    /// [`percentile`], so the mean and maximum stay well-defined.
    #[must_use]
    pub fn from_samples(xs: &[f64]) -> Self {
        let mut scratch: Vec<f64> = xs.to_vec();
        Self::from_scratch(&mut scratch)
    }

    /// [`Percentiles::from_samples`] over a caller-owned scratch
    /// buffer: NaNs are filtered out of `scratch` in place (order
    /// preserved, so the mean accumulates in sample order and matches
    /// [`Percentiles::from_samples`] bit-for-bit), then each quantile
    /// is selected without sorting. The buffer is left permuted;
    /// reusing it across metrics amortises the one allocation the
    /// summary needs.
    #[must_use]
    pub fn from_scratch(scratch: &mut Vec<f64>) -> Self {
        scratch.retain(|x| !x.is_nan());
        if scratch.is_empty() {
            return Self {
                p50: f64::NAN,
                p95: f64::NAN,
                p99: f64::NAN,
                mean: f64::NAN,
                max: f64::NAN,
            };
        }
        // Mean and max read the pristine sample order before the
        // selection passes permute the buffer.
        let mean = mean(scratch);
        let max = scratch.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            p50: percentile_mut(scratch, 50.0),
            p95: percentile_mut(scratch, 95.0),
            p99: percentile_mut(scratch, 99.0),
            mean,
            max,
        }
    }
}

/// Linear interpolation of `y` at `x` over sorted `(x, y)` samples.
///
/// Clamps to the first/last sample outside the range. Returns `None` for an
/// empty sample set.
#[must_use]
pub fn interp(samples: &[(f64, f64)], x: f64) -> Option<f64> {
    let first = samples.first()?;
    if x <= first.0 {
        return Some(first.1);
    }
    let last = samples.last().expect("non-empty");
    if x >= last.0 {
        return Some(last.1);
    }
    for w in samples.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if x >= x0 && x <= x1 {
            if x1 == x0 {
                return Some(y0);
            }
            let t = (x - x0) / (x1 - x0);
            return Some(y0 + t * (y1 - y0));
        }
    }
    Some(last.1)
}

/// Accumulates samples into fixed-width time bins (used for power traces).
///
/// # Examples
///
/// ```
/// use rpu_util::stats::Binner;
///
/// let mut b = Binner::new(1.0);
/// b.add(0.5, 2.0);
/// b.add(1.5, 4.0);
/// assert_eq!(b.bins(), &[2.0, 4.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Binner {
    width: f64,
    bins: Vec<f64>,
}

impl Binner {
    /// Creates a binner with the given bin width (same unit as `t` in
    /// [`Binner::add`]).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive.
    #[must_use]
    pub fn new(width: f64) -> Self {
        assert!(width > 0.0, "bin width must be positive");
        Self {
            width,
            bins: Vec::new(),
        }
    }

    /// Adds `amount` into the bin containing time `t` (negative `t` clamps
    /// to the first bin).
    pub fn add(&mut self, t: f64, amount: f64) {
        let idx = (t.max(0.0) / self.width).floor() as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0.0);
        }
        self.bins[idx] += amount;
    }

    /// Spreads `amount` uniformly over the interval `[t0, t1)` across bins.
    pub fn add_interval(&mut self, t0: f64, t1: f64, amount: f64) {
        if t1 <= t0 || amount == 0.0 {
            if t1 == t0 {
                self.add(t0, amount);
            }
            return;
        }
        let rate = amount / (t1 - t0);
        let mut t = t0.max(0.0);
        while t < t1 {
            let idx = (t / self.width).floor();
            let mut bin_end = (idx + 1.0) * self.width;
            if bin_end <= t {
                // Floating-point rounding can place the computed bin
                // boundary at or before `t`; skip to the next boundary so
                // the sweep always makes forward progress.
                bin_end = (idx + 2.0) * self.width;
            }
            let seg_end = bin_end.min(t1);
            // Attribute the segment at its midpoint: when rounding
            // forced a boundary skip, `t` itself may sit in the next
            // bin, and the midpoint always lands in the bin that owns
            // the bulk of the segment.
            self.add(0.5 * (t + seg_end), rate * (seg_end - t));
            t = seg_end;
        }
    }

    /// The accumulated bins.
    #[must_use]
    pub fn bins(&self) -> &[f64] {
        &self.bins
    }

    /// The bin width supplied at construction.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_interval_makes_progress_on_hostile_boundaries() {
        // Regression: with a 50 ns bin width, rounding could compute a
        // bin boundary at or before `t`, looping forever. Sweep many
        // boundary-adjacent intervals and require termination + mass
        // conservation.
        let mut b = Binner::new(50e-9);
        let mut total = 0.0;
        for i in 0..10_000u64 {
            let t0 = i as f64 * 50e-9;
            let t1 = t0 + 37.3e-9;
            b.add_interval(t0, t1, 1.0);
            total += 1.0;
        }
        let sum: f64 = b.bins().iter().sum();
        assert!((sum - total).abs() / total < 1e-6, "mass {sum} vs {total}");
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geo_mean(&[1.0, -1.0]), 0.0);
    }

    /// The sort-based reference [`percentile`] replaced: a full
    /// `total_cmp` sort, then closest-rank interpolation.
    fn percentile_by_sort(xs: &[f64], p: f64) -> f64 {
        if p.is_nan() {
            return f64::NAN;
        }
        let mut sorted: Vec<f64> = xs.iter().copied().filter(|x| !x.is_nan()).collect();
        if sorted.is_empty() {
            return f64::NAN;
        }
        sorted.sort_by(f64::total_cmp);
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        sorted[lo] + frac * (sorted[hi] - sorted[lo])
    }

    #[test]
    fn selection_percentile_equals_sort_percentile_exhaustively() {
        // Every sample tuple up to length 4 over a value set chosen to
        // stress the edges — signed zeros, infinities, ties, NaN (which
        // must be dropped, not ranked) — against every interesting p.
        // Bit-for-bit: the selection path is a pure optimisation.
        let values = [
            0.0,
            -0.0,
            1.0,
            -1.5,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            1e-300,
        ];
        let ps = [
            f64::NAN,
            -10.0,
            0.0,
            12.5,
            50.0,
            66.6,
            95.0,
            99.0,
            100.0,
            250.0,
        ];
        let mut cases = 0u64;
        for len in 0..=4usize {
            let combos = values.len().pow(len as u32);
            for seed in 0..combos {
                let mut xs = Vec::with_capacity(len);
                let mut s = seed;
                for _ in 0..len {
                    xs.push(values[s % values.len()]);
                    s /= values.len();
                }
                for &p in &ps {
                    let reference = percentile_by_sort(&xs, p);
                    let fast = percentile(&xs, p);
                    assert_eq!(
                        reference.to_bits(),
                        fast.to_bits(),
                        "diverged on xs={xs:?} p={p}"
                    );
                    cases += 1;
                }
            }
        }
        assert!(cases > 30_000, "exhaustive sweep ran {cases} cases");
    }

    #[test]
    fn from_scratch_matches_from_samples_and_reuses_the_buffer() {
        let xs = [3.0, f64::NAN, 1.0, 2.0, f64::NAN, -0.0, 9.5];
        let mut scratch: Vec<f64> = Vec::with_capacity(xs.len());
        scratch.extend_from_slice(&xs);
        let cap = scratch.capacity();
        let a = Percentiles::from_scratch(&mut scratch);
        let b = Percentiles::from_samples(&xs);
        assert_eq!(
            (a.p50.to_bits(), a.p95.to_bits(), a.p99.to_bits()),
            (b.p50.to_bits(), b.p95.to_bits(), b.p99.to_bits())
        );
        assert_eq!(a.mean.to_bits(), b.mean.to_bits());
        assert_eq!(a.max.to_bits(), b.max.to_bits());
        assert_eq!(scratch.capacity(), cap, "summary must not reallocate");
        // All-NaN and empty scratches summarise like empty samples.
        scratch.clear();
        scratch.extend_from_slice(&[f64::NAN, f64::NAN]);
        let empty = Percentiles::from_scratch(&mut scratch);
        assert!(empty.p99.is_nan() && empty.mean.is_nan() && empty.max.is_nan());
    }

    #[test]
    fn percentile_interpolates_between_ranks() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        assert!((percentile(&xs, 50.0) - 50.5).abs() < 1e-12);
        assert!((percentile(&xs, 99.0) - 99.01).abs() < 1e-12);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        // Out-of-range p clamps, single sample is every percentile.
        assert_eq!(percentile(&[7.0], 250.0), 7.0);
        assert!(percentile(&[], 50.0).is_nan());
    }

    #[test]
    fn percentile_edge_cases_are_total() {
        // Empty slice: there is no percentile, and the sentinel must
        // not collide with a real (zero) latency.
        assert!(percentile(&[], 0.0).is_nan());
        assert!(percentile(&[], 100.0).is_nan());
        // Single sample: every percentile is that sample.
        for p in [0.0, 37.5, 50.0, 99.0, 100.0] {
            assert_eq!(percentile(&[42.0], p), 42.0);
        }
        // NaN samples are rank-less and ignored.
        assert_eq!(percentile(&[f64::NAN, 1.0, 3.0], 50.0), 2.0);
        assert!(percentile(&[f64::NAN], 50.0).is_nan());
        assert!(percentile(&[f64::NAN, f64::NAN], 99.0).is_nan());
        // NaN p has no defined rank either.
        assert!(percentile(&[1.0, 2.0], f64::NAN).is_nan());
        // Infinite p clamps like any out-of-range p.
        assert_eq!(percentile(&[1.0, 2.0], f64::INFINITY), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], f64::NEG_INFINITY), 1.0);
    }

    #[test]
    fn percentiles_summary_drops_nan_samples() {
        let s = Percentiles::from_samples(&[1.0, f64::NAN, 3.0]);
        assert_eq!(s.p50, 2.0);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.max, 3.0);
        let all_nan = Percentiles::from_samples(&[f64::NAN, f64::NAN]);
        assert!(all_nan.max.is_nan());
        assert!(all_nan.p50.is_nan());
        assert!(all_nan.mean.is_nan());
    }

    #[test]
    fn percentiles_summary() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let s = Percentiles::from_samples(&xs);
        assert_eq!(s.p50, 2.5);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.max, 4.0);
        assert!(s.p95 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn percentiles_of_negative_samples_keep_ordering() {
        let s = Percentiles::from_samples(&[-3.0, -1.0]);
        assert_eq!(s.max, -1.0);
        assert!(s.p50 <= s.p99 && s.p99 <= s.max);
        let empty = Percentiles::from_samples(&[]);
        assert!(empty.max.is_nan());
    }

    #[test]
    fn interp_clamps_and_interpolates() {
        let s = [(0.0, 0.0), (10.0, 100.0)];
        assert_eq!(interp(&s, -5.0), Some(0.0));
        assert_eq!(interp(&s, 5.0), Some(50.0));
        assert_eq!(interp(&s, 20.0), Some(100.0));
        assert_eq!(interp(&[], 1.0), None);
    }

    #[test]
    fn binner_interval_conserves_mass() {
        let mut b = Binner::new(0.25);
        b.add_interval(0.1, 2.3, 10.0);
        let total: f64 = b.bins().iter().sum();
        assert!((total - 10.0).abs() < 1e-9);
    }

    #[test]
    fn binner_zero_length_interval() {
        let mut b = Binner::new(1.0);
        b.add_interval(1.0, 1.0, 5.0);
        assert_eq!(b.bins()[1], 5.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn binner_rejects_zero_width() {
        let _ = Binner::new(0.0);
    }
}
