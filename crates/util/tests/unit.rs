//! Edge-case coverage for the helpers every other crate leans on:
//! Pareto dominance/frontier extraction, unit round-trips, and
//! `stats::Binner` bin-boundary behaviour.

use proptest::prelude::*;
use rpu_util::pareto::{dominates, frontier, Objective};
use rpu_util::stats::Binner;
use rpu_util::units;

const MIN_MIN: (Objective, Objective) = (Objective::Minimize, Objective::Minimize);
const MAX_MAX: (Objective, Objective) = (Objective::Maximize, Objective::Maximize);

#[test]
fn dominance_requires_a_strict_axis() {
    // Equal points never dominate each other, in either orientation.
    assert!(!dominates((1.0, 2.0), (1.0, 2.0), MIN_MIN));
    assert!(!dominates((1.0, 2.0), (1.0, 2.0), MAX_MAX));
    // One strictly-better axis with the other tied is enough.
    assert!(dominates((1.0, 2.0), (1.0, 3.0), MIN_MIN));
    assert!(dominates((1.0, 3.0), (1.0, 2.0), MAX_MAX));
}

#[test]
fn dominance_is_antisymmetric() {
    let (a, b) = ((1.0, 4.0), (2.0, 5.0));
    assert!(dominates(a, b, MIN_MIN));
    assert!(!dominates(b, a, MIN_MIN));
}

#[test]
fn mixed_objectives_flip_the_winner() {
    // Maximise x, minimise y: (2, 1) beats (1, 2); pure-minimise has
    // neither dominating.
    let obj = (Objective::Maximize, Objective::Minimize);
    assert!(dominates((2.0, 1.0), (1.0, 2.0), obj));
    assert!(!dominates((2.0, 1.0), (1.0, 2.0), MIN_MIN));
}

#[test]
fn frontier_of_empty_and_singleton() {
    let empty: Vec<(f64, f64)> = Vec::new();
    assert!(frontier(&empty, |p| *p, MIN_MIN).is_empty());
    let one = vec![(3.0, 7.0)];
    assert_eq!(frontier(&one, |p| *p, MIN_MIN), one);
}

#[test]
fn frontier_drops_all_non_finite_points() {
    let pts = vec![
        (f64::NAN, 0.0),
        (f64::INFINITY, 1.0),
        (0.0, f64::NEG_INFINITY),
    ];
    assert!(frontier(&pts, |p| *p, MIN_MIN).is_empty());
}

#[test]
fn frontier_is_sorted_by_x() {
    let pts = vec![(5.0, 1.0), (1.0, 5.0), (3.0, 3.0)];
    let f = frontier(&pts, |p| *p, MIN_MIN);
    assert_eq!(f, vec![(1.0, 5.0), (3.0, 3.0), (5.0, 1.0)]);
}

#[test]
fn frontier_collinear_chain_keeps_only_the_best_end() {
    // Along y = x under minimise/minimise, the smallest point dominates
    // the rest of the diagonal.
    let pts: Vec<(f64, f64)> = (0..10).map(|i| (f64::from(i), f64::from(i))).collect();
    assert_eq!(frontier(&pts, |p| *p, MIN_MIN), vec![(0.0, 0.0)]);
    assert_eq!(frontier(&pts, |p| *p, MAX_MAX), vec![(9.0, 9.0)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every input point is either on the frontier or dominated by a
    /// frontier member, and no two frontier members dominate each other.
    #[test]
    fn frontier_is_complete_and_minimal(
        seeds in (0u32..1000, 2usize..40),
    ) {
        let (seed, n) = seeds;
        // Small deterministic pseudo-random point cloud with ties.
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| {
                let h = (u64::from(seed) + 1).wrapping_mul(i as u64 + 1).wrapping_mul(0x9E37_79B9);
                (f64::from((h % 8) as u32), f64::from(((h >> 8) % 8) as u32))
            })
            .collect();
        let f = frontier(&pts, |p| *p, MIN_MIN);
        prop_assert!(!f.is_empty());
        for p in &pts {
            let on_frontier = f.contains(p);
            let dominated = f.iter().any(|m| dominates(*m, *p, MIN_MIN));
            prop_assert!(on_frontier || dominated, "{p:?} neither kept nor dominated");
        }
        for a in &f {
            for b in &f {
                prop_assert!(!dominates(*a, *b, MIN_MIN), "frontier member {a:?} dominates {b:?}");
            }
        }
    }

    /// Seconds→picoseconds→seconds round-trips to sub-tick precision for
    /// the whole range the simulator uses (ns to minutes).
    #[test]
    fn time_round_trip(exp in -9.0f64..2.0, mantissa in 1.0f64..10.0) {
        let s = mantissa * 10f64.powf(exp);
        let back = units::ps_to_secs(units::secs_to_ps(s));
        prop_assert!((back - s).abs() <= 0.5 / units::PS_PER_S * 1.0001, "{s} -> {back}");
    }

    /// Energy is linear in both the per-bit coefficient and the byte count.
    #[test]
    fn energy_is_bilinear(pj in 0.1f64..10.0, bytes in 1.0f64..1e12) {
        let e = units::energy_j(pj, bytes);
        prop_assert!((units::energy_j(2.0 * pj, bytes) - 2.0 * e).abs() <= 1e-12 * e);
        prop_assert!((units::energy_j(pj, 2.0 * bytes) - 2.0 * e).abs() <= 1e-12 * e);
        // 8 bits per byte at 1e-12 J/pJ.
        prop_assert!((e - pj * bytes * 8.0e-12).abs() <= 1e-12 * e);
    }
}

#[test]
fn negative_times_clamp_to_zero_ticks() {
    assert_eq!(units::secs_to_ps(-1.0), 0);
    assert_eq!(units::secs_to_ps(0.0), 0);
}

#[test]
fn fmt_bytes_unit_boundaries() {
    // Exactly at each binary threshold the larger unit wins.
    assert_eq!(units::fmt_bytes(units::KIB), "1.0 KiB");
    assert_eq!(units::fmt_bytes(units::MIB), "1.0 MiB");
    assert_eq!(units::fmt_bytes(units::GIB), "1.0 GiB");
    assert_eq!(units::fmt_bytes(units::KIB - 1.0), "1023 B");
    // Sign is preserved; the unit is chosen on magnitude.
    assert_eq!(units::fmt_bytes(-2048.0), "-2.0 KiB");
}

#[test]
fn fmt_time_unit_boundaries() {
    assert_eq!(units::fmt_time(1.0), "1.00 s");
    assert_eq!(units::fmt_time(1e-3), "1.00 ms");
    assert_eq!(units::fmt_time(1e-6), "1.00 µs");
    assert_eq!(units::fmt_time(0.999e-6), "999.00 ns");
}

#[test]
fn decimal_and_binary_constants_are_consistent() {
    assert_eq!(units::MB / units::KB, 1e3);
    assert_eq!(units::GB / units::MB, 1e3);
    assert_eq!(units::TB / units::GB, 1e3);
    assert_eq!(units::MIB / units::KIB, 1024.0);
    assert_eq!(units::GIB / units::MIB, 1024.0);
}

#[test]
fn binner_add_on_exact_boundary_goes_to_upper_bin() {
    // t = k * width belongs to bin k (half-open bins [k*w, (k+1)*w)).
    let mut b = Binner::new(1.0);
    b.add(0.0, 1.0);
    b.add(1.0, 2.0);
    b.add(2.0, 4.0);
    assert_eq!(b.bins(), &[1.0, 2.0, 4.0]);
}

#[test]
fn binner_negative_time_clamps_to_first_bin() {
    let mut b = Binner::new(0.5);
    b.add(-3.0, 7.0);
    assert_eq!(b.bins(), &[7.0]);
}

#[test]
fn binner_interval_splits_across_boundary_proportionally() {
    // [0.5, 1.5) over width-1 bins: half the mass in each bin.
    let mut b = Binner::new(1.0);
    b.add_interval(0.5, 1.5, 8.0);
    assert_eq!(b.bins().len(), 2);
    assert!((b.bins()[0] - 4.0).abs() < 1e-12);
    assert!((b.bins()[1] - 4.0).abs() < 1e-12);
}

#[test]
fn binner_interval_aligned_to_bins_fills_them_exactly() {
    let mut b = Binner::new(1.0);
    b.add_interval(0.0, 3.0, 9.0);
    assert_eq!(b.bins().len(), 3);
    for bin in b.bins() {
        assert!((bin - 3.0).abs() < 1e-12);
    }
}

#[test]
fn binner_reversed_interval_is_a_no_op() {
    let mut b = Binner::new(1.0);
    b.add_interval(2.0, 1.0, 5.0);
    assert!(b.bins().is_empty());
}

#[test]
fn binner_tiny_interval_lands_in_one_bin() {
    // An interval much narrower than the width must not leak into
    // neighbouring bins.
    let mut b = Binner::new(1.0);
    b.add_interval(2.4, 2.4 + 1e-9, 3.0);
    assert_eq!(b.bins().len(), 3);
    assert!((b.bins()[2] - 3.0).abs() < 1e-9);
    assert_eq!(b.bins()[0], 0.0);
    assert_eq!(b.bins()[1], 0.0);
}

#[test]
fn binner_width_accessor_round_trips() {
    assert_eq!(Binner::new(0.125).width(), 0.125);
}
