//! Compiler: lowers a transformer decode step to per-core instruction
//! streams (§VI, "RPU ISA and Compiler").
//!
//! The lowering follows the paper's distributed-VMM strategy: weight
//! matrices are column-sharded across all cores, each core computes its
//! output fragment and the network pipeline all-gathers fragments around
//! the outer ring while compute proceeds on locally available data.
//! Attention uses the GQA head-group gathers of §VI ②, softmax uses the
//! distributed max / exp-sum reductions, and MoE layers stream only the
//! experts a batch activates.

use crate::instr::{CollectiveKind, Instr, Op, Production, Tag};
use crate::program::CoreProgram;
use rpu_models::{KernelKind, ModelConfig, Precision};

/// How the model is sharded across the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of compute units.
    pub num_cus: u32,
    /// Cores per CU (16 in the paper spec).
    pub cores_per_cu: u32,
}

impl ShardPlan {
    /// Creates a plan.
    #[must_use]
    pub fn new(num_cus: u32, cores_per_cu: u32) -> Self {
        Self {
            num_cus,
            cores_per_cu,
        }
    }

    /// Total cores, i.e. the column-shard denominator.
    #[must_use]
    pub fn total_cores(&self) -> f64 {
        f64::from(self.num_cus) * f64::from(self.cores_per_cu)
    }

    /// Number of CUs a GQA KV head group spans (§VI ②: KV vectors span
    /// up to eight CUs).
    #[must_use]
    pub fn head_group_cus(&self) -> u32 {
        self.num_cus.min(8)
    }
}

struct Lowering<'a> {
    model: &'a ModelConfig,
    precision: Precision,
    batch: f64,
    seq_len: f64,
    plan: ShardPlan,
    program: CoreProgram,
    next_tag: Tag,
}

impl<'a> Lowering<'a> {
    fn tag(&mut self) -> Tag {
        let t = self.next_tag;
        self.next_tag += 1;
        t
    }

    fn act_bytes(&self) -> f64 {
        self.precision.activations.bytes_per_value()
    }

    fn weight_frac(&self) -> f64 {
        1.0 / self.plan.total_cores()
    }

    fn push(&mut self, kernel: KernelKind, layer: u32, op: Op) {
        self.program.push(Instr { kernel, layer, op });
    }

    /// Emits a MemLoad + Vmm pair for a column-sharded VMM and returns
    /// the output-fragment tag.
    #[allow(clippy::too_many_arguments)]
    fn vmm(
        &mut self,
        kernel: KernelKind,
        layer: u32,
        weight_bytes_total: f64,
        flops_total: f64,
        out_bytes_per_core: f64,
        acts: Vec<Tag>,
        out_consumers: u8,
    ) -> Tag {
        let w = self.tag();
        let out = self.tag();
        let wb = (weight_bytes_total * self.weight_frac()).ceil().max(1.0) as u64;
        let fl = (flops_total * self.weight_frac()).ceil() as u64;
        self.push(
            kernel,
            layer,
            Op::MemLoad {
                out: w,
                bytes: wb,
                valid_count: 1,
            },
        );
        self.push(
            kernel,
            layer,
            Op::Vmm {
                weights: w,
                acts,
                out: Some(Production {
                    tag: out,
                    bytes: out_bytes_per_core.ceil().max(1.0) as u64,
                    valid_count: out_consumers,
                }),
                weight_bytes: wb,
                flops: fl,
            },
        );
        out
    }

    fn vops(
        &mut self,
        kernel: KernelKind,
        layer: u32,
        inputs: Vec<Tag>,
        flops: f64,
        out_bytes: f64,
        out_consumers: u8,
    ) -> Tag {
        let out = self.tag();
        self.push(
            kernel,
            layer,
            Op::VOps {
                inputs,
                out: Some(Production {
                    tag: out,
                    bytes: out_bytes.ceil().max(1.0) as u64,
                    valid_count: out_consumers,
                }),
                flops: flops.ceil() as u64,
            },
        );
        out
    }

    #[allow(clippy::too_many_arguments)] // internal lowering helper; the
                                         // argument list mirrors the collective instruction's fields
    fn collective(
        &mut self,
        kernel: KernelKind,
        layer: u32,
        kind: CollectiveKind,
        input: Tag,
        fragment_bytes: f64,
        out_bytes: f64,
        participants: u32,
        out_consumers: u8,
    ) -> Tag {
        let out = self.tag();
        self.push(
            kernel,
            layer,
            Op::Collective {
                kind,
                input: Some(input),
                out: Some(Production {
                    tag: out,
                    bytes: out_bytes.ceil().max(1.0) as u64,
                    valid_count: out_consumers,
                }),
                fragment_bytes: fragment_bytes.ceil().max(1.0) as u64,
                participants,
            },
        );
        out
    }

    /// Lowers the FFN of one layer; returns the tag(s) carrying the
    /// layer output fragments (gathered full vectors).
    fn lower_ffn(&mut self, layer: u32, x2n: Tag, extra_x2n_tags: Vec<Tag>) -> Vec<Tag> {
        let m = self.model;
        let b = self.batch;
        let h = f64::from(m.hidden);
        let act = self.act_bytes();
        let wb = self.precision.weights.bytes_per_value();
        let c = self.plan.total_cores();
        let n_cus = self.plan.num_cus;

        if m.is_moe_layer(layer) {
            let moe = m.moe.expect("moe layer");
            let e = f64::from(moe.num_experts);
            let ie = f64::from(moe.expert_intermediate);
            let is = f64::from(moe.shared_intermediate);
            let topk = f64::from(moe.experts_per_token);
            let active = m.expected_active_experts(self.batch as u32);

            // Router: tiny VMM + ring reduction of routing decisions.
            let r_frag = self.vmm(
                KernelKind::Router,
                layer,
                h * e * wb,
                2.0 * b * h * e,
                b * e / c * act,
                vec![x2n],
                1,
            );
            let route = self.collective(
                KernelKind::Router,
                layer,
                CollectiveKind::Reduce,
                r_frag,
                b * e * act / f64::from(n_cus),
                b * 16.0,
                n_cus,
                1,
            );

            // Routed experts (weights for distinct active experts only).
            let mg = self.vmm(
                KernelKind::MoeGateUp,
                layer,
                active * h * 2.0 * ie * wb,
                2.0 * b * topk * h * 2.0 * ie,
                b * topk * 2.0 * ie / c * act,
                vec![route],
                1,
            );
            let ms = self.vops(
                KernelKind::Activation,
                layer,
                vec![mg],
                4.0 * b * topk * ie / c,
                b * topk * ie / c * act,
                1,
            );
            let ms_full = self.collective(
                KernelKind::MoeGateUp,
                layer,
                CollectiveKind::AllGather,
                ms,
                b * topk * ie * act / f64::from(n_cus),
                b * topk * ie * act,
                n_cus,
                1,
            );
            let md = self.vmm(
                KernelKind::MoeDown,
                layer,
                active * ie * h * wb,
                2.0 * b * topk * ie * h,
                b * h / c * act,
                vec![ms_full],
                1,
            );
            let x_moe = self.collective(
                KernelKind::MoeDown,
                layer,
                CollectiveKind::AllGather,
                md,
                b * h * act / f64::from(n_cus),
                b * h * act,
                n_cus,
                1,
            );

            // Shared (always-active) expert.
            let shared_x = extra_x2n_tags[0];
            let sg = self.vmm(
                KernelKind::SharedGateUp,
                layer,
                h * 2.0 * is * wb,
                2.0 * b * h * 2.0 * is,
                b * 2.0 * is / c * act,
                vec![shared_x],
                1,
            );
            let ss = self.vops(
                KernelKind::Activation,
                layer,
                vec![sg],
                4.0 * b * is / c,
                b * is / c * act,
                1,
            );
            let ss_full = self.collective(
                KernelKind::SharedGateUp,
                layer,
                CollectiveKind::AllGather,
                ss,
                b * is * act / f64::from(n_cus),
                b * is * act,
                n_cus,
                1,
            );
            let sd = self.vmm(
                KernelKind::SharedDown,
                layer,
                is * h * wb,
                2.0 * b * is * h,
                b * h / c * act,
                vec![ss_full],
                1,
            );
            let x_shared = self.collective(
                KernelKind::SharedDown,
                layer,
                CollectiveKind::AllGather,
                sd,
                b * h * act / f64::from(n_cus),
                b * h * act,
                n_cus,
                1,
            );
            vec![x_moe, x_shared]
        } else {
            let i = f64::from(m.intermediate);
            let g = self.vmm(
                KernelKind::GateUp,
                layer,
                h * 2.0 * i * wb,
                2.0 * b * h * 2.0 * i,
                b * 2.0 * i / c * act,
                vec![x2n],
                1,
            );
            let s = self.vops(
                KernelKind::Activation,
                layer,
                vec![g],
                4.0 * b * i / c,
                b * i / c * act,
                1,
            );
            let s_full = self.collective(
                KernelKind::GateUp,
                layer,
                CollectiveKind::AllGather,
                s,
                b * i * act / f64::from(n_cus),
                b * i * act,
                n_cus,
                1,
            );
            let d = self.vmm(
                KernelKind::Down,
                layer,
                i * h * wb,
                2.0 * b * i * h,
                b * h / c * act,
                vec![s_full],
                1,
            );
            let x_next = self.collective(
                KernelKind::Down,
                layer,
                CollectiveKind::AllGather,
                d,
                b * h * act / f64::from(n_cus),
                b * h * act,
                n_cus,
                1,
            );
            vec![x_next]
        }
    }

    fn lower_layer(&mut self, layer: u32, x_tags: Vec<Tag>) -> Vec<Tag> {
        let m = self.model;
        let b = self.batch;
        let s = self.seq_len;
        let h = f64::from(m.hidden);
        let nh = f64::from(m.num_heads);
        let nkv = f64::from(m.num_kv_heads);
        let hd = f64::from(m.head_dim);
        let act = self.act_bytes();
        let wb = self.precision.weights.bytes_per_value();
        let kvb = self.precision.kv_cache.bytes_per_value();
        let c = self.plan.total_cores();
        let q_dim = nh * hd;
        let kv_dim = 2.0 * nkv * hd;
        let group = self.plan.head_group_cus();

        // Pre-attention norm (each core normalises the slice it feeds
        // to its column shard, so the work is sharded too).
        let xn = self.vops(
            KernelKind::InputNorm,
            layer,
            x_tags,
            4.0 * b * h / c,
            b * h * act,
            1,
        );

        // wQKV.
        let qkv = self.vmm(
            KernelKind::QkvProj,
            layer,
            h * (q_dim + kv_dim) * wb,
            2.0 * b * h * (q_dim + kv_dim),
            b * (q_dim + kv_dim) / c * act,
            vec![xn],
            1,
        );

        // Gather Q/K/V fragments within the GQA head group.
        let qkv_g = self.collective(
            KernelKind::QkvProj,
            layer,
            CollectiveKind::GroupGather,
            qkv,
            b * (q_dim + kv_dim) / c * act,
            b * (q_dim + kv_dim) / c * act * f64::from(group),
            group,
            1,
        );

        // Rotary embeddings; output feeds both the KV append and QK^T.
        let qkv_r = self.vops(
            KernelKind::Rope,
            layer,
            vec![qkv_g],
            4.0 * b * (nh + nkv) * hd / c * f64::from(group),
            b * (q_dim + kv_dim) / c * act * f64::from(group),
            2,
        );

        // KV append (this layer's shard of the new token's K/V).
        self.push(
            KernelKind::KvAppend,
            layer,
            Op::MemStore {
                input: Some(qkv_r),
                bytes: (b * kv_dim * kvb / c).ceil().max(1.0) as u64,
            },
        );

        // QK^T against the streamed K cache shard.
        let k_bytes = b * s * nkv * hd * kvb;
        let scores = self.vmm(
            KernelKind::AttnScore,
            layer,
            k_bytes,
            2.0 * b * nh * hd * s,
            b * nh * s / c * act,
            vec![qkv_r],
            2,
        );

        // Distributed softmax: max + exp-sum ring reductions, then the
        // local normalisation.
        let sm_stats = self.collective(
            KernelKind::Softmax,
            layer,
            CollectiveKind::Reduce,
            scores,
            b * nh * 4.0 / f64::from(self.plan.num_cus),
            b * nh * 8.0,
            self.plan.head_group_cus(),
            1,
        );
        let probs = self.vops(
            KernelKind::Softmax,
            layer,
            vec![scores, sm_stats],
            5.0 * b * nh * s / c,
            b * nh * s / c * act,
            1,
        );

        // s(QK^T)V against the streamed V cache shard.
        let ctx = self.vmm(
            KernelKind::AttnContext,
            layer,
            b * s * nkv * hd * kvb,
            2.0 * b * nh * hd * s,
            b * q_dim / c * act,
            vec![probs],
            1,
        );

        // wO + all-gather of the attention output.
        let o_frag = self.vmm(
            KernelKind::OutProj,
            layer,
            q_dim * h * wb,
            2.0 * b * q_dim * h,
            b * h / c * act,
            vec![ctx],
            1,
        );
        let x2 = self.collective(
            KernelKind::OutProj,
            layer,
            CollectiveKind::AllGather,
            o_frag,
            b * h * act / f64::from(self.plan.num_cus),
            b * h * act,
            self.plan.num_cus,
            1,
        );

        // Post-attention norm; MoE layers fan it out to router + shared
        // expert as well.
        let ffn_consumers: u8 = if m.is_moe_layer(layer) { 2 } else { 1 };
        let x2n = self.vops(
            KernelKind::PostNorm,
            layer,
            vec![x2],
            4.0 * b * h / c,
            b * h * act,
            ffn_consumers,
        );

        let extra = if m.is_moe_layer(layer) {
            vec![x2n]
        } else {
            vec![]
        };
        self.lower_ffn(layer, x2n, extra)
    }

    fn lower_lm_head(&mut self, x_tags: Vec<Tag>) {
        let m = self.model;
        let b = self.batch;
        let h = f64::from(m.hidden);
        let v = f64::from(m.vocab);
        let act = self.act_bytes();
        let wb = self.precision.weights.bytes_per_value();
        let c = self.plan.total_cores();
        let layer = u32::MAX;

        let xn = self.vops(
            KernelKind::InputNorm,
            layer,
            x_tags,
            4.0 * b * h / c,
            b * h * act,
            1,
        );
        let logits = self.vmm(
            KernelKind::LmHead,
            layer,
            h * v * wb,
            2.0 * b * h * v,
            b * v / c * act,
            vec![xn],
            1,
        );
        // Final token-selection reduction back to the host.
        self.collective(
            KernelKind::LmHead,
            layer,
            CollectiveKind::Reduce,
            logits,
            b * 8.0,
            b * 8.0,
            self.plan.num_cus,
            1,
        );
    }
}

/// Compiles one decode step (one generated token for each of `batch`
/// queries at context `seq_len`) into the three per-core instruction
/// streams of a representative core.
///
/// All sizes are per-core shares under column sharding across
/// `plan.total_cores()` cores; ring collectives are expressed at CU
/// granularity.
#[must_use]
pub fn compile_decode_step(
    model: &ModelConfig,
    precision: Precision,
    batch: u32,
    seq_len: u32,
    plan: &ShardPlan,
) -> CoreProgram {
    let mut l = Lowering {
        model,
        precision,
        batch: f64::from(batch),
        seq_len: f64::from(seq_len),
        plan: *plan,
        program: CoreProgram::default(),
        next_tag: 0,
    };

    // Inject the embedded input token vector(s).
    let x0 = l.tag();
    let bytes = (l.batch * f64::from(model.hidden) * l.act_bytes()).ceil() as u64;
    l.push(
        KernelKind::InputNorm,
        0,
        Op::Inject {
            out: Production {
                tag: x0,
                bytes,
                valid_count: 1,
            },
        },
    );

    let mut x_tags = vec![x0];
    for layer in 0..model.num_layers {
        x_tags = l.lower_layer(layer, x_tags);
    }
    l.lower_lm_head(x_tags);
    l.program
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_models::DecodeWorkload;
    use rpu_util::assert_approx;

    fn compile_8b(batch: u32, n_cus: u32) -> CoreProgram {
        compile_decode_step(
            &ModelConfig::llama3_8b(),
            Precision::mxfp4_inference(),
            batch,
            16 * 1024,
            &ShardPlan::new(n_cus, 16),
        )
    }

    #[test]
    fn dataflow_is_valid_for_all_models() {
        for m in ModelConfig::zoo() {
            let prog = compile_decode_step(
                &m,
                Precision::mxfp4_inference(),
                1,
                8192,
                &ShardPlan::new(64, 16),
            );
            prog.validate_dataflow()
                .unwrap_or_else(|e| panic!("{}: {e}", m.name));
        }
    }

    #[test]
    fn per_core_bytes_match_analytical_model() {
        // Compiler totals x core count must agree with the analytical
        // kernel decomposition (weights + KV reads).
        let m = ModelConfig::llama3_8b();
        let p = Precision::mxfp4_inference();
        let plan = ShardPlan::new(64, 16);
        let prog = compile_decode_step(&m, p, 1, 16 * 1024, &plan);
        let wl = DecodeWorkload::new(&m, p, 1, 16 * 1024);
        let sim_total = prog.stats().weight_bytes * plan.total_cores();
        let expect = wl.weight_bytes() + wl.kv_read_bytes();
        assert_approx(sim_total, expect, 0.01, "streamed bytes");
    }

    #[test]
    fn per_core_flops_match_analytical_model() {
        let m = ModelConfig::llama3_70b();
        let p = Precision::mxfp4_inference();
        let plan = ShardPlan::new(128, 16);
        let prog = compile_decode_step(&m, p, 4, 8192, &plan);
        let wl = DecodeWorkload::new(&m, p, 4, 8192);
        let sim_total = prog.stats().flops * plan.total_cores();
        // VOps norm flops are counted whole-vector in the workload but
        // sharded in the compiler; agreement within a few percent.
        assert_approx(sim_total, wl.flops(), 0.05, "FLOPs");
    }

    #[test]
    fn store_bytes_cover_kv_append() {
        let m = ModelConfig::llama3_8b();
        let p = Precision::mxfp4_inference();
        let plan = ShardPlan::new(64, 16);
        let prog = compile_decode_step(&m, p, 2, 8192, &plan);
        let total_store = prog.stats().store_bytes * plan.total_cores();
        // 2 queries x 2 x 8 KV heads x 128 x 32 layers x 1 B.
        let expect = 2.0 * m.kv_bytes_per_token(p);
        assert_approx(total_store, expect, 0.05, "KV append bytes");
    }

    #[test]
    fn collectives_scale_with_layers() {
        let prog = compile_8b(1, 64);
        let stats = prog.stats();
        // >= 4 collectives per layer (group gather, softmax, wO gather,
        // FFN gathers) + LM head.
        assert!(stats.collectives >= 4 * 32);
        assert!(stats.collectives < 10 * 32);
    }

    #[test]
    fn three_streams_populated() {
        let prog = compile_8b(1, 64);
        assert!(!prog.mem.is_empty());
        assert!(!prog.comp.is_empty());
        assert!(!prog.net.is_empty());
    }

    #[test]
    fn weight_bytes_scale_inverse_with_cores() {
        let p64 = compile_8b(1, 64).stats().weight_bytes;
        let p128 = compile_8b(1, 128).stats().weight_bytes;
        assert_approx(p64, 2.0 * p128, 0.01, "per-core share halves");
    }

    #[test]
    fn moe_streams_fewer_weights_than_dense_equivalent() {
        let mav = ModelConfig::llama4_maverick();
        let p = Precision::mxfp4_inference();
        let plan = ShardPlan::new(64, 16);
        let prog = compile_decode_step(&mav, p, 1, 8192, &plan);
        let streamed = prog.stats().weight_bytes * plan.total_cores();
        // At BS=1 only ~17B of ~400B params stream per token.
        assert!(streamed < 0.15 * mav.weight_bytes(p));
    }
}
