//! RPU instruction set and compiler (§V–VI of the paper).
//!
//! The RPU executes CISC-style streaming instructions on three decoupled
//! per-core pipelines — memory, compute and network — synchronised only
//! through buffer-resident dataflow *tags* (the pipeline-arbiter valid
//! counters of §V). This crate defines those instructions ([`Instr`],
//! [`Op`]) and a compiler that lowers a transformer decode step into the
//! three per-core instruction streams ([`compile_decode_step`]), using
//! the paper's column-sharded distributed-VMM strategy: every core
//! computes a disjoint output fragment, broadcasts it on the ring, and
//! immediately starts the next layer's local work.
//!
//! # Examples
//!
//! ```
//! use rpu_isa::{compile_decode_step, ShardPlan};
//! use rpu_models::{ModelConfig, Precision};
//!
//! let plan = ShardPlan::new(64, 16);
//! let prog = compile_decode_step(
//!     &ModelConfig::llama3_8b(),
//!     Precision::mxfp4_inference(),
//!     1,
//!     16 * 1024,
//!     &plan,
//! );
//! // The program streams a positive per-core share of the weights.
//! assert!(prog.stats().weight_bytes > 0.0);
//! ```

#![warn(missing_docs)]

mod compiler;
mod instr;
mod program;

pub use compiler::{compile_decode_step, ShardPlan};
pub use instr::{CollectiveKind, Instr, Op, Pipeline, Production, Tag};
pub use program::{CoreProgram, ProgramStats};
