//! Per-core programs: three synchronized instruction streams.

use crate::instr::Tag;
use crate::instr::{Instr, Op, Pipeline};
use std::collections::HashMap;

/// The compiled program of one representative core: three statically
/// ordered instruction streams, one per pipeline (§VI: "the compiler
/// statically orders all DMA and compute instructions ... and generates
/// synchronized instruction streams for the memory, compute, and network
/// pipelines").
#[derive(Debug, Clone, Default)]
pub struct CoreProgram {
    /// Memory-pipeline stream.
    pub mem: Vec<Instr>,
    /// Compute-pipeline stream.
    pub comp: Vec<Instr>,
    /// Network-pipeline stream.
    pub net: Vec<Instr>,
}

/// Aggregate accounting of a program (per core).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ProgramStats {
    /// Weight + KV bytes streamed from memory.
    pub weight_bytes: f64,
    /// Bytes written back to memory (KV appends).
    pub store_bytes: f64,
    /// TMAC + HP-VOPs FLOPs.
    pub flops: f64,
    /// Bytes injected onto the ring by this core.
    pub net_fragment_bytes: f64,
    /// Number of collectives issued.
    pub collectives: u32,
    /// Total instructions across the three streams.
    pub instructions: u32,
}

impl CoreProgram {
    /// Appends an instruction to the stream its pipeline dictates.
    pub fn push(&mut self, instr: Instr) {
        match instr.pipeline() {
            Pipeline::Memory => self.mem.push(instr),
            Pipeline::Compute => self.comp.push(instr),
            Pipeline::Network => self.net.push(instr),
        }
    }

    /// All instructions, for analysis.
    pub fn all(&self) -> impl Iterator<Item = &Instr> {
        self.mem
            .iter()
            .chain(self.comp.iter())
            .chain(self.net.iter())
    }

    /// Computes aggregate statistics.
    #[must_use]
    pub fn stats(&self) -> ProgramStats {
        let mut s = ProgramStats::default();
        for i in self.all() {
            s.instructions += 1;
            match &i.op {
                Op::MemLoad { bytes, .. } => s.weight_bytes += *bytes as f64,
                Op::MemStore { bytes, .. } => s.store_bytes += *bytes as f64,
                Op::Vmm { flops, .. } | Op::VOps { flops, .. } => s.flops += *flops as f64,
                Op::Collective { fragment_bytes, .. } => {
                    s.collectives += 1;
                    s.net_fragment_bytes += *fragment_bytes as f64;
                }
                Op::Inject { .. } => {}
            }
        }
        s
    }

    /// Validates the pipeline-arbiter dataflow: every produced tag is
    /// produced exactly once with a positive valid count, every consumed
    /// tag exists, and no tag is consumed more times than its declared
    /// valid count (the arbiter would underflow its 2-bit counter).
    ///
    /// Terminal outputs may remain under-consumed.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate_dataflow(&self) -> Result<(), String> {
        let mut produced: HashMap<Tag, u8> = HashMap::new();
        for i in self.all() {
            for p in i.productions() {
                if p.valid_count == 0 {
                    return Err(format!("tag {} declares valid_count 0", p.tag));
                }
                if produced.insert(p.tag, p.valid_count).is_some() {
                    return Err(format!("tag {} produced twice", p.tag));
                }
            }
        }
        let mut consumed: HashMap<Tag, u8> = HashMap::new();
        for i in self.all() {
            for t in i.consumptions() {
                let Some(&vc) = produced.get(&t) else {
                    return Err(format!("tag {t} consumed but never produced"));
                };
                let c = consumed.entry(t).or_insert(0);
                *c += 1;
                if *c > vc {
                    return Err(format!(
                        "tag {t} consumed {c} times but valid_count is {vc} (consumed twice)"
                    ));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Production;
    use rpu_models::KernelKind;

    fn load(tag: u32, bytes: u64) -> Instr {
        Instr {
            kernel: KernelKind::QkvProj,
            layer: 0,
            op: Op::MemLoad {
                out: tag,
                bytes,
                valid_count: 1,
            },
        }
    }

    fn vmm(weights: u32, out: Option<u32>) -> Instr {
        Instr {
            kernel: KernelKind::QkvProj,
            layer: 0,
            op: Op::Vmm {
                weights,
                acts: vec![],
                out: out.map(|t| Production {
                    tag: t,
                    bytes: 64,
                    valid_count: 1,
                }),
                weight_bytes: 128,
                flops: 256,
            },
        }
    }

    #[test]
    fn push_routes_by_pipeline() {
        let mut p = CoreProgram::default();
        p.push(load(1, 128));
        p.push(vmm(1, None));
        assert_eq!(p.mem.len(), 1);
        assert_eq!(p.comp.len(), 1);
        assert!(p.net.is_empty());
    }

    #[test]
    fn stats_accumulate() {
        let mut p = CoreProgram::default();
        p.push(load(1, 128));
        p.push(vmm(1, Some(2)));
        let s = p.stats();
        assert_eq!(s.weight_bytes, 128.0);
        assert_eq!(s.flops, 256.0);
        assert_eq!(s.instructions, 2);
    }

    #[test]
    fn dataflow_validation_passes_for_chain() {
        let mut p = CoreProgram::default();
        p.push(load(1, 128));
        p.push(vmm(1, Some(2)));
        p.validate_dataflow().unwrap();
    }

    #[test]
    fn dataflow_validation_catches_double_produce() {
        let mut p = CoreProgram::default();
        p.push(load(1, 128));
        p.push(load(1, 64));
        assert!(p
            .validate_dataflow()
            .unwrap_err()
            .contains("produced twice"));
    }

    #[test]
    fn dataflow_validation_catches_unproduced_consume() {
        let mut p = CoreProgram::default();
        p.push(vmm(42, None));
        assert!(p
            .validate_dataflow()
            .unwrap_err()
            .contains("never produced"));
    }

    #[test]
    fn dataflow_validation_catches_double_consume() {
        let mut p = CoreProgram::default();
        p.push(load(1, 128));
        p.push(vmm(1, None));
        p.push(vmm(1, None));
        assert!(p
            .validate_dataflow()
            .unwrap_err()
            .contains("consumed twice"));
    }
}
