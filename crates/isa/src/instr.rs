//! Instruction definitions for the three decoupled pipelines.

use rpu_models::KernelKind;
use std::fmt;

/// A dataflow tag: a named stream of bytes living in an on-chip buffer,
/// guarded by the pipeline arbiter's valid counters. Producers publish
/// bytes under a tag with a *valid count*; consumers block until the
/// bytes are valid and decrement the counter, freeing buffer space when
/// it reaches zero.
pub type Tag = u32;

/// Which per-core pipeline executes an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pipeline {
    /// Memory DMA: HBM-CO pseudo-channel ↔ memory buffer.
    Memory,
    /// Compute: stream decoder + TMACs + HP-VOPs.
    Compute,
    /// Network DMA: ring collectives and forwarding.
    Network,
}

impl fmt::Display for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pipeline::Memory => "mem",
            Pipeline::Compute => "comp",
            Pipeline::Network => "net",
        })
    }
}

/// Network collective flavours (all implemented on the outer ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Ring all-gather of per-core output fragments into the full vector
    /// (the paper's overlapped activation broadcast).
    AllGather,
    /// Ring reduction (softmax max / exp-sum, K-dimension partial sums,
    /// MoE routing decisions).
    Reduce,
    /// Small gather within a GQA head group (Q/KV fragments span a few
    /// CUs).
    GroupGather,
}

/// One CISC-style streaming instruction.
///
/// Each instruction names the kernel it belongs to (for per-kernel
/// statistics), the quantities it moves or computes, and the tags it
/// consumes and produces. The hardware semantics follow §V: instructions
/// make progress chunk-by-chunk as their inputs become valid and their
/// output buffers have space — no global barriers.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Memory pipeline: stream `bytes` from the core's HBM-CO channel
    /// into the memory buffer, published under `out`.
    MemLoad {
        /// Destination tag (memory buffer).
        out: Tag,
        /// Bytes to stream.
        bytes: u64,
        /// Declared consumer count (the arbiter's 2-bit valid count).
        valid_count: u8,
    },
    /// Memory pipeline: write `bytes` to the HBM-CO channel (KV append),
    /// after `input` (if any) is valid.
    MemStore {
        /// Tag to wait for before writing, if any.
        input: Option<Tag>,
        /// Bytes written.
        bytes: u64,
    },
    /// Compute pipeline: weight-streaming VMM. Consumes `weights`
    /// chunk-by-chunk (through the stream decoder) and `acts` in full,
    /// producing `out` when the shard completes.
    Vmm {
        /// Weight (or KV) stream to drain from the memory buffer.
        weights: Tag,
        /// Activation input tags that must be valid before compute
        /// starts.
        acts: Vec<Tag>,
        /// Output fragment published on completion, if any.
        out: Option<Production>,
        /// Total weight bytes drained.
        weight_bytes: u64,
        /// Total FLOPs executed on the TMACs.
        flops: u64,
    },
    /// Compute pipeline: HP-VOPs vector operation.
    VOps {
        /// Input tags that must all be valid.
        inputs: Vec<Tag>,
        /// Output published on completion, if any.
        out: Option<Production>,
        /// FLOPs executed.
        flops: u64,
    },
    /// Network pipeline: ring collective. Waits for `input` (the local
    /// fragment), completes after the ring latency, publishing `out`.
    Collective {
        /// Collective flavour.
        kind: CollectiveKind,
        /// Local fragment tag to wait for, if any.
        input: Option<Tag>,
        /// Result published into the network buffer, if any.
        out: Option<Production>,
        /// Bytes of the local fragment injected per core.
        fragment_bytes: u64,
        /// Number of ring participants.
        participants: u32,
    },
    /// Network pipeline: publish externally-supplied data (e.g. the
    /// initial input token embedding) without cost.
    Inject {
        /// Destination tag (network buffer).
        out: Production,
    },
}

/// A tag production: destination tag, bytes published, declared consumer
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Production {
    /// The tag being published.
    pub tag: Tag,
    /// Bytes published (occupy buffer space until consumed).
    pub bytes: u64,
    /// The arbiter's 2-bit valid count: how many consumers must drain
    /// this tag before its buffer space is reclaimed (e.g. 2 when an
    /// activation feeds both the compute pipeline and a network forward).
    pub valid_count: u8,
}

/// An instruction: an operation annotated with its kernel label.
#[derive(Debug, Clone, PartialEq)]
pub struct Instr {
    /// The kernel this instruction implements (Fig. 8 timeline label).
    pub kernel: KernelKind,
    /// Zero-based index of the layer this instruction belongs to
    /// (`u32::MAX` for the LM head / epilogue).
    pub layer: u32,
    /// The operation.
    pub op: Op,
}

impl Instr {
    /// Which pipeline executes this instruction.
    #[must_use]
    pub fn pipeline(&self) -> Pipeline {
        match self.op {
            Op::MemLoad { .. } | Op::MemStore { .. } => Pipeline::Memory,
            Op::Vmm { .. } | Op::VOps { .. } => Pipeline::Compute,
            Op::Collective { .. } | Op::Inject { .. } => Pipeline::Network,
        }
    }

    /// Tags this instruction produces.
    #[must_use]
    pub fn productions(&self) -> Vec<Production> {
        match &self.op {
            Op::MemLoad {
                out,
                bytes,
                valid_count,
            } => vec![Production {
                tag: *out,
                bytes: *bytes,
                valid_count: *valid_count,
            }],
            Op::Vmm { out, .. } | Op::VOps { out, .. } | Op::Collective { out, .. } => {
                out.iter().copied().collect()
            }
            Op::Inject { out } => vec![*out],
            Op::MemStore { .. } => Vec::new(),
        }
    }

    /// Tags this instruction consumes (and thereby frees).
    #[must_use]
    pub fn consumptions(&self) -> Vec<Tag> {
        match &self.op {
            Op::MemLoad { .. } | Op::Inject { .. } => Vec::new(),
            Op::MemStore { input, .. } => input.iter().copied().collect(),
            Op::Vmm { weights, acts, .. } => {
                let mut v = vec![*weights];
                v.extend(acts.iter().copied());
                v
            }
            Op::VOps { inputs, .. } => inputs.clone(),
            Op::Collective { input, .. } => input.iter().copied().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(op: Op) -> Instr {
        Instr {
            kernel: KernelKind::QkvProj,
            layer: 0,
            op,
        }
    }

    #[test]
    fn pipeline_assignment() {
        assert_eq!(
            mk(Op::MemLoad {
                out: 1,
                bytes: 64,
                valid_count: 1
            })
            .pipeline(),
            Pipeline::Memory
        );
        assert_eq!(
            mk(Op::Vmm {
                weights: 1,
                acts: vec![],
                out: None,
                weight_bytes: 64,
                flops: 128
            })
            .pipeline(),
            Pipeline::Compute
        );
        assert_eq!(
            mk(Op::Collective {
                kind: CollectiveKind::AllGather,
                input: None,
                out: None,
                fragment_bytes: 8,
                participants: 4
            })
            .pipeline(),
            Pipeline::Network
        );
    }

    #[test]
    fn vmm_consumes_weights_and_acts() {
        let i = mk(Op::Vmm {
            weights: 7,
            acts: vec![3, 4],
            out: Some(Production {
                tag: 9,
                bytes: 128,
                valid_count: 1,
            }),
            weight_bytes: 1024,
            flops: 2048,
        });
        assert_eq!(i.consumptions(), vec![7, 3, 4]);
        assert_eq!(i.productions()[0].tag, 9);
    }

    #[test]
    fn memload_produces_its_tag() {
        let i = mk(Op::MemLoad {
            out: 5,
            bytes: 4096,
            valid_count: 1,
        });
        let p = i.productions();
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].bytes, 4096);
        assert!(i.consumptions().is_empty());
    }

    #[test]
    fn memstore_waits_on_input() {
        let i = mk(Op::MemStore {
            input: Some(2),
            bytes: 100,
        });
        assert_eq!(i.consumptions(), vec![2]);
        assert!(i.productions().is_empty());
    }
}
