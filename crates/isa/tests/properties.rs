//! Property tests for the compiler: every compiled program must be a
//! valid dataflow whose totals agree with the analytical workload model.

use proptest::prelude::*;
use rpu_isa::{compile_decode_step, Pipeline, ShardPlan};
use rpu_models::{DecodeWorkload, ModelConfig, Precision};

fn any_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(ModelConfig::llama3_8b()),
        Just(ModelConfig::llama3_70b()),
        Just(ModelConfig::llama4_scout()),
        Just(ModelConfig::llama4_maverick()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Compiled programs always validate: every consumed tag has a
    /// producer, and valid counts cover all consumers.
    #[test]
    fn programs_always_validate(
        model in any_model(),
        batch in prop_oneof![Just(1u32), Just(8), Just(32)],
        seq in prop_oneof![Just(4096u32), Just(16384), Just(131_072)],
        cus in prop_oneof![Just(8u32), Just(64), Just(256)],
    ) {
        let plan = ShardPlan::new(cus, 16);
        let prog = compile_decode_step(&model, Precision::mxfp4_inference(), batch, seq, &plan);
        prop_assert!(prog.validate_dataflow().is_ok());
    }

    /// Per-core weight traffic times the core count matches the
    /// workload's total streaming traffic (weights + KV), within the
    /// rounding of integer byte sizes per instruction.
    #[test]
    fn sharded_traffic_sums_to_workload(
        model in any_model(),
        batch in prop_oneof![Just(1u32), Just(16)],
        cus in prop_oneof![Just(16u32), Just(128)],
    ) {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(cus, 16);
        let prog = compile_decode_step(&model, prec, batch, 8192, &plan);
        let per_core = prog.stats().weight_bytes;
        let total = DecodeWorkload::new(&model, prec, batch, 8192).streaming_bytes();
        let rel = (per_core * plan.total_cores() - total).abs() / total;
        prop_assert!(rel < 0.02, "sharded {} vs workload {total} (rel {rel})",
            per_core * plan.total_cores());
    }

    /// FLOPs are conserved through sharding.
    #[test]
    fn sharded_flops_sum_to_workload(model in any_model(), cus in prop_oneof![Just(32u32), Just(64)]) {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(cus, 16);
        let prog = compile_decode_step(&model, prec, 1, 8192, &plan);
        let total = DecodeWorkload::new(&model, prec, 1, 8192).flops();
        let sharded = prog.stats().flops * plan.total_cores();
        prop_assert!((sharded - total).abs() / total < 0.02, "{sharded} vs {total}");
    }

    /// Instructions land on the pipeline their opcode belongs to.
    #[test]
    fn streams_are_pipeline_homogeneous(model in any_model()) {
        let plan = ShardPlan::new(64, 16);
        let prog = compile_decode_step(&model, Precision::mxfp4_inference(), 1, 8192, &plan);
        prop_assert!(prog.mem.iter().all(|i| i.pipeline() == Pipeline::Memory));
        prop_assert!(prog.comp.iter().all(|i| i.pipeline() == Pipeline::Compute));
        prop_assert!(prog.net.iter().all(|i| i.pipeline() == Pipeline::Network));
    }

    /// More CUs means less work per core, never more.
    #[test]
    fn scaling_out_shrinks_per_core_work(model in any_model()) {
        let prec = Precision::mxfp4_inference();
        let small = compile_decode_step(&model, prec, 1, 8192, &ShardPlan::new(32, 16));
        let big = compile_decode_step(&model, prec, 1, 8192, &ShardPlan::new(256, 16));
        prop_assert!(big.stats().weight_bytes < small.stats().weight_bytes);
        prop_assert!(big.stats().flops < small.stats().flops);
    }

    /// Layer count shows up as program length: programs scale with the
    /// model's depth, not its width.
    #[test]
    fn program_length_tracks_depth(batch in prop_oneof![Just(1u32), Just(8)]) {
        let prec = Precision::mxfp4_inference();
        let plan = ShardPlan::new(64, 16);
        let shallow = compile_decode_step(&ModelConfig::llama3_8b(), prec, batch, 8192, &plan);
        let deep = compile_decode_step(&ModelConfig::llama3_405b(), prec, batch, 8192, &plan);
        let ratio = f64::from(deep.stats().instructions) / f64::from(shallow.stats().instructions);
        let depth_ratio = 126.0 / 32.0;
        prop_assert!((ratio - depth_ratio).abs() / depth_ratio < 0.15, "ratio {ratio}");
    }
}

#[test]
fn collectives_present_for_distributed_plans_absent_for_single_cu() {
    let prec = Precision::mxfp4_inference();
    let model = ModelConfig::llama3_8b();
    let multi = compile_decode_step(&model, prec, 1, 8192, &ShardPlan::new(64, 16));
    assert!(multi.stats().collectives > 0);
    // A single-CU plan still gathers across its 16 cores.
    let single = compile_decode_step(&model, prec, 1, 8192, &ShardPlan::new(1, 16));
    assert!(single.validate_dataflow().is_ok());
}
