//! Prompt/output token-length distributions for request-level serving.
//!
//! A serving workload is characterised by how long its prompts and
//! generations are, not just by one (batch, seq) point. Each
//! distribution here maps a uniform draw `u ∈ [0, 1)` to a token count
//! through its inverse CDF, so sampling is deterministic given the
//! caller's random stream — the serving simulator stays bit-reproducible
//! across runs for a fixed seed.

/// A distribution over token counts (prompt or output lengths).
///
/// # Examples
///
/// ```
/// use rpu_models::LengthDistribution;
///
/// let d = LengthDistribution::Uniform { lo: 100, hi: 300 };
/// assert_eq!(d.sample(0.0), 100);
/// assert_eq!(d.sample(0.9999999), 300);
/// assert!((d.mean() - 200.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LengthDistribution {
    /// Every request has exactly this many tokens.
    Fixed(u32),
    /// Uniform over `lo ..= hi` tokens.
    Uniform {
        /// Smallest length, inclusive.
        lo: u32,
        /// Largest length, inclusive.
        hi: u32,
    },
    /// Exponential with the given mean, truncated to `1 ..= cap` tokens
    /// (long-tail chat/completion traffic).
    Exponential {
        /// Mean length before truncation.
        mean: f64,
        /// Hard upper truncation (context-window limit).
        cap: u32,
    },
    /// An empirical histogram: `(length, weight)` pairs sampled in
    /// proportion to their weights (trace-derived length mixes).
    Empirical(Vec<(u32, f64)>),
}

impl LengthDistribution {
    /// Maps a uniform draw `u ∈ [0, 1)` to a length via the inverse CDF.
    /// Randomly drawn lengths are always at least one token; an explicit
    /// [`LengthDistribution::Fixed`]`(0)` is honoured as zero, so
    /// adversarial workloads can model empty prompts deliberately.
    ///
    /// # Panics
    ///
    /// Panics on an [`LengthDistribution::Empirical`] histogram that is
    /// empty or has no positive weight.
    #[must_use]
    pub fn sample(&self, u: f64) -> u32 {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        let len = match self {
            Self::Fixed(n) => return *n,
            Self::Uniform { lo, hi } => {
                let (lo, hi) = (*lo.min(hi), *lo.max(hi));
                let span = f64::from(hi - lo) + 1.0;
                lo + (u * span).floor() as u32
            }
            Self::Exponential { mean, cap } => {
                let x = -mean.max(1.0) * (1.0 - u).ln();
                (x.round() as u32).min(*cap)
            }
            Self::Empirical(bins) => {
                let total: f64 = bins.iter().map(|(_, w)| w.max(0.0)).sum();
                assert!(
                    total > 0.0,
                    "empirical length histogram needs positive weight"
                );
                let mut acc = 0.0;
                let mut chosen = bins.last().expect("non-empty histogram").0;
                for (len, w) in bins {
                    acc += w.max(0.0) / total;
                    if u < acc {
                        chosen = *len;
                        break;
                    }
                }
                chosen
            }
        };
        len.max(1)
    }

    /// Expected length, tokens (ignoring the ≥ 1 floor and the
    /// exponential truncation, which shift it negligibly for realistic
    /// parameters).
    #[must_use]
    pub fn mean(&self) -> f64 {
        match self {
            Self::Fixed(n) => f64::from(*n),
            Self::Uniform { lo, hi } => (f64::from(*lo) + f64::from(*hi)) / 2.0,
            Self::Exponential { mean, .. } => mean.max(1.0),
            Self::Empirical(bins) => {
                let total: f64 = bins.iter().map(|(_, w)| w.max(0.0)).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                bins.iter()
                    .map(|(l, w)| f64::from(*l) * w.max(0.0))
                    .sum::<f64>()
                    / total
            }
        }
    }

    /// The largest length this distribution can produce (used for
    /// conservative KV-capacity admission).
    #[must_use]
    pub fn max_len(&self) -> u32 {
        match self {
            Self::Fixed(n) => (*n).max(1),
            Self::Uniform { lo, hi } => (*lo.max(hi)).max(1),
            Self::Exponential { cap, .. } => (*cap).max(1),
            Self::Empirical(bins) => bins
                .iter()
                .filter(|(_, w)| *w > 0.0)
                .map(|(l, _)| *l)
                .max()
                .unwrap_or(1)
                .max(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_ignores_the_draw() {
        let d = LengthDistribution::Fixed(128);
        assert_eq!(d.sample(0.0), 128);
        assert_eq!(d.sample(0.73), 128);
        assert_eq!(d.mean(), 128.0);
        assert_eq!(d.max_len(), 128);
    }

    #[test]
    fn uniform_covers_both_endpoints() {
        let d = LengthDistribution::Uniform { lo: 10, hi: 12 };
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(d.sample(f64::from(i) / 100.0));
        }
        assert_eq!(seen, [10u32, 11, 12].into_iter().collect());
    }

    #[test]
    fn exponential_is_monotone_in_u_and_capped() {
        let d = LengthDistribution::Exponential {
            mean: 200.0,
            cap: 1000,
        };
        assert!(d.sample(0.1) < d.sample(0.9));
        assert_eq!(d.sample(0.999_999_999), 1000);
        assert_eq!(d.max_len(), 1000);
        // Median of an exponential is mean * ln 2.
        let med = d.sample(0.5);
        assert!((f64::from(med) - 200.0 * 2.0f64.ln()).abs() < 2.0, "{med}");
    }

    #[test]
    fn empirical_respects_weights() {
        let d = LengthDistribution::Empirical(vec![(100, 3.0), (1000, 1.0)]);
        assert_eq!(d.sample(0.5), 100);
        assert_eq!(d.sample(0.8), 1000);
        assert_eq!(d.mean(), 325.0);
        assert_eq!(d.max_len(), 1000);
    }

    #[test]
    fn random_lengths_are_at_least_one_token() {
        let d = LengthDistribution::Exponential { mean: 1.0, cap: 8 };
        assert!(d.sample(0.0) >= 1);
        let u = LengthDistribution::Uniform { lo: 0, hi: 0 };
        assert!(u.sample(0.5) >= 1);
    }

    #[test]
    fn explicit_fixed_zero_is_honoured() {
        // Zero-length prompts are a deliberate adversarial input, not a
        // sampling artefact: only the Fixed variant may produce them.
        assert_eq!(LengthDistribution::Fixed(0).sample(0.5), 0);
    }
}
