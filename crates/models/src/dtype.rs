//! Numeric datatypes and block-quantised format accounting.

use std::fmt;

/// Numeric datatype, including the block-quantised formats the RPU's
/// stream decoder dequantises on the fly (§V, "Stream Decoder").
///
/// Block formats share an exponent across a block of values; their
/// effective bits per value include that amortised overhead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// IEEE-754 single precision.
    Fp32,
    /// Brain float 16.
    Bf16,
    /// 8-bit float (E4M3/E5M2 class).
    Fp8,
    /// Microscaling FP4: 4-bit elements, 8-bit scale per 32-element block.
    Mxfp4,
    /// Microscaling FP6.
    Mxfp6,
    /// Microscaling FP8.
    Mxfp8,
    /// Nanoscaling FP4 (NxFP, ref 39): adaptive micro-exponents, slightly
    /// denser than MXFP4.
    Nxfp4,
    /// Block floating point with 8-bit mantissas (BFP, ref 53).
    Bfp8,
}

impl DType {
    /// Effective storage bits per value, including amortised block-scale
    /// overhead for block formats.
    #[must_use]
    pub fn bits_per_value(self) -> f64 {
        match self {
            DType::Fp32 => 32.0,
            DType::Bf16 => 16.0,
            DType::Fp8 => 8.0,
            // 4-bit elements; the paper's capacity and traffic accounting
            // treats MXFP4/NxFP4 as flat 4-bit ("4-bit weights" [18]),
            // with the per-32-element shared exponents folded into the
            // 4-bit budget. We follow that convention so the Fig. 9
            // capacity anchors (405B fits 64 CUs at 192 MiB/core) hold.
            DType::Mxfp4 => 4.0,
            DType::Mxfp6 => 6.0 + 8.0 / 32.0,
            DType::Mxfp8 => 8.0 + 8.0 / 32.0,
            DType::Nxfp4 => 4.0,
            // BFP-8: 8-bit mantissa + shared 8-bit exponent per 16 values.
            DType::Bfp8 => 8.0 + 8.0 / 16.0,
        }
    }

    /// Effective bytes per value.
    #[must_use]
    pub fn bytes_per_value(self) -> f64 {
        self.bits_per_value() / 8.0
    }

    /// `true` for block-quantised formats that require the stream decoder.
    #[must_use]
    pub fn is_block_format(self) -> bool {
        matches!(
            self,
            DType::Mxfp4 | DType::Mxfp6 | DType::Mxfp8 | DType::Nxfp4 | DType::Bfp8
        )
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DType::Fp32 => "FP32",
            DType::Bf16 => "BF16",
            DType::Fp8 => "FP8",
            DType::Mxfp4 => "MXFP4",
            DType::Mxfp6 => "MXFP6",
            DType::Mxfp8 => "MXFP8",
            DType::Nxfp4 => "NxFP4",
            DType::Bfp8 => "BFP8",
        };
        f.write_str(s)
    }
}

/// Precision assignment for an inference deployment: weights, activations
/// and KV-cache datatypes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    /// Weight storage format (streamed from memory).
    pub weights: DType,
    /// Activation format (on-chip and over the network).
    pub activations: DType,
    /// KV-cache storage format.
    pub kv_cache: DType,
}

impl Precision {
    /// The paper's headline RPU deployment: MXFP4 weights, BF16
    /// activations, FP8 KV cache (Fig. 8 caption).
    #[must_use]
    pub fn mxfp4_inference() -> Self {
        Self {
            weights: DType::Mxfp4,
            activations: DType::Bf16,
            kv_cache: DType::Fp8,
        }
    }

    /// The GPU-baseline deployment of §VIII: 4-bit weights with 16-bit
    /// activations (MARLIN-style, ref 18) and FP8 KV cache.
    #[must_use]
    pub fn gpu_w4a16() -> Self {
        Self::mxfp4_inference()
    }

    /// Full BF16 deployment (used for the §II characterisation kernels).
    #[must_use]
    pub fn bf16() -> Self {
        Self {
            weights: DType::Bf16,
            activations: DType::Bf16,
            kv_cache: DType::Bf16,
        }
    }

    /// FP8 weights with BF16 activations (the §II Llama3-70B profile).
    #[must_use]
    pub fn fp8_weights() -> Self {
        Self {
            weights: DType::Fp8,
            activations: DType::Bf16,
            kv_cache: DType::Fp8,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} weights | {} act | {} KV$",
            self.weights, self.activations, self.kv_cache
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mxfp4_is_flat_four_bit() {
        assert!((DType::Mxfp4.bits_per_value() - 4.0).abs() < 1e-12);
        assert!(DType::Mxfp4.is_block_format());
    }

    #[test]
    fn plain_formats_are_not_block() {
        assert!(!DType::Bf16.is_block_format());
        assert!(!DType::Fp8.is_block_format());
        assert!(!DType::Fp32.is_block_format());
    }

    #[test]
    fn four_bit_formats_agree() {
        assert!((DType::Nxfp4.bits_per_value() - DType::Mxfp4.bits_per_value()).abs() < 1e-12);
        assert!(DType::Mxfp6.bits_per_value() > 6.0);
    }

    #[test]
    fn bytes_per_value_consistency() {
        for d in [
            DType::Fp32,
            DType::Bf16,
            DType::Fp8,
            DType::Mxfp4,
            DType::Mxfp6,
            DType::Mxfp8,
            DType::Nxfp4,
            DType::Bfp8,
        ] {
            assert!((d.bytes_per_value() * 8.0 - d.bits_per_value()).abs() < 1e-12);
            assert!(d.bits_per_value() > 0.0);
        }
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(DType::Mxfp4.to_string(), "MXFP4");
        assert_eq!(
            Precision::mxfp4_inference().to_string(),
            "MXFP4 weights | BF16 act | FP8 KV$"
        );
    }
}
