//! LLM workload models for the RPU reproduction.
//!
//! Provides the model zoo the paper evaluates (Llama3-8B/70B/405B and the
//! Llama4 Scout/Maverick MoE variants), block-quantised datatype
//! accounting (MXFP/NxFP/BFP, FP8, BF16), and a per-layer *kernel
//! decomposition* of the decode and prefill phases into (FLOPs, bytes)
//! tuples — the workload description consumed by the roofline model, the
//! ISA compiler and the GPU baseline.
//!
//! # Examples
//!
//! ```
//! use rpu_models::{ModelConfig, Precision, DecodeWorkload};
//!
//! let model = ModelConfig::llama3_70b();
//! let prec = Precision::mxfp4_inference();
//! let wl = DecodeWorkload::new(&model, prec, 1, 8192);
//! // BS=1 decode is deeply memory-bound: a few FLOPs per byte, far
//! // below any modern accelerator's compute-to-bandwidth ratio.
//! assert!(wl.arithmetic_intensity() < 8.0);
//! ```

#![warn(missing_docs)]

mod config;
mod dtype;
mod kernels;
mod lengths;
mod phases;
mod speculative;

pub use config::{ModelConfig, MoeConfig};
pub use dtype::{DType, Precision};
pub use kernels::{layer_kernels, lm_head_kernel, Kernel, KernelClass, KernelKind};
pub use lengths::LengthDistribution;
pub use phases::{DecodeWorkload, PrefillWorkload};
pub use speculative::SpeculativeConfig;
