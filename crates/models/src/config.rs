//! Transformer model configurations and the paper's model zoo.

use crate::dtype::Precision;
use std::fmt;

/// Mixture-of-experts configuration (Llama4-style: routed experts plus an
/// always-active shared expert, optionally interleaved with dense layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoeConfig {
    /// Number of routed experts per MoE layer.
    pub num_experts: u32,
    /// Routed experts activated per token (top-k).
    pub experts_per_token: u32,
    /// Hidden dimension of each routed expert's FFN.
    pub expert_intermediate: u32,
    /// Hidden dimension of the shared (always-active) expert; 0 if none.
    pub shared_intermediate: u32,
    /// An MoE layer occurs every `interleave_step` layers (1 = every
    /// layer, 2 = alternating with dense layers, Llama4-Maverick style).
    pub interleave_step: u32,
}

/// A decoder-only transformer configuration.
///
/// Shapes follow the public Llama3/Llama4 architectures; the paper's
/// workloads are derived from these (e.g. the Llama4-Maverick fused
/// gate/up projection of 5k×32k ≈ 168 M parameters called out in §I).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Display name.
    pub name: &'static str,
    /// Number of transformer layers.
    pub num_layers: u32,
    /// Model (hidden) dimension.
    pub hidden: u32,
    /// Query heads.
    pub num_heads: u32,
    /// KV heads (GQA groups).
    pub num_kv_heads: u32,
    /// Per-head dimension.
    pub head_dim: u32,
    /// Dense FFN hidden dimension (also the Llama4 dense-layer MLP).
    pub intermediate: u32,
    /// Vocabulary size.
    pub vocab: u32,
    /// MoE structure, if any.
    pub moe: Option<MoeConfig>,
}

impl ModelConfig {
    /// Llama3-8B: 32 layers, 4096 hidden, 32/8 heads, 14336 FFN.
    #[must_use]
    pub fn llama3_8b() -> Self {
        Self {
            name: "Llama3-8B",
            num_layers: 32,
            hidden: 4096,
            num_heads: 32,
            num_kv_heads: 8,
            head_dim: 128,
            intermediate: 14336,
            vocab: 128_256,
            moe: None,
        }
    }

    /// Llama3-70B: 80 layers, 8192 hidden, 64/8 heads, 28672 FFN.
    #[must_use]
    pub fn llama3_70b() -> Self {
        Self {
            name: "Llama3-70B",
            num_layers: 80,
            hidden: 8192,
            num_heads: 64,
            num_kv_heads: 8,
            head_dim: 128,
            intermediate: 28672,
            vocab: 128_256,
            moe: None,
        }
    }

    /// Llama3-405B: 126 layers, 16384 hidden, 128/8 heads, 53248 FFN.
    #[must_use]
    pub fn llama3_405b() -> Self {
        Self {
            name: "Llama3-405B",
            num_layers: 126,
            hidden: 16384,
            num_heads: 128,
            num_kv_heads: 8,
            head_dim: 128,
            intermediate: 53248,
            vocab: 128_256,
            moe: None,
        }
    }

    /// Llama4-Scout: 48 layers, 16 routed experts (top-1) + shared expert
    /// in every layer; ~109 B total / ~17 B active parameters.
    #[must_use]
    pub fn llama4_scout() -> Self {
        Self {
            name: "Llama4-Scout",
            num_layers: 48,
            hidden: 5120,
            num_heads: 40,
            num_kv_heads: 8,
            head_dim: 128,
            intermediate: 16384,
            vocab: 202_048,
            moe: Some(MoeConfig {
                num_experts: 16,
                experts_per_token: 1,
                expert_intermediate: 8192,
                shared_intermediate: 8192,
                interleave_step: 1,
            }),
        }
    }

    /// Llama4-Maverick: 48 layers, 128 routed experts (top-1) + shared
    /// expert, MoE on alternating layers; ~400 B total / ~17 B active.
    #[must_use]
    pub fn llama4_maverick() -> Self {
        Self {
            name: "Llama4-Maverick",
            num_layers: 48,
            hidden: 5120,
            num_heads: 40,
            num_kv_heads: 8,
            head_dim: 128,
            intermediate: 16384,
            vocab: 202_048,
            moe: Some(MoeConfig {
                num_experts: 128,
                experts_per_token: 1,
                expert_intermediate: 8192,
                shared_intermediate: 8192,
                interleave_step: 2,
            }),
        }
    }

    /// The full zoo evaluated in the paper.
    #[must_use]
    pub fn zoo() -> Vec<Self> {
        vec![
            Self::llama3_8b(),
            Self::llama3_70b(),
            Self::llama3_405b(),
            Self::llama4_scout(),
            Self::llama4_maverick(),
        ]
    }

    /// `true` when layer `idx` (0-based) is an MoE layer.
    #[must_use]
    pub fn is_moe_layer(&self, idx: u32) -> bool {
        match self.moe {
            // Convention: with interleave_step = s, layers s-1, 2s-1, ...
            // are MoE (Maverick alternates starting with a dense layer).
            Some(m) => (idx + 1).is_multiple_of(m.interleave_step),
            None => false,
        }
    }

    /// Number of MoE layers in the model.
    #[must_use]
    pub fn num_moe_layers(&self) -> u32 {
        (0..self.num_layers)
            .filter(|&i| self.is_moe_layer(i))
            .count() as u32
    }

    /// Attention parameters per layer (QKV + output projections).
    #[must_use]
    pub fn attn_params_per_layer(&self) -> f64 {
        let h = f64::from(self.hidden);
        let q = f64::from(self.num_heads) * f64::from(self.head_dim);
        let kv = 2.0 * f64::from(self.num_kv_heads) * f64::from(self.head_dim);
        h * (q + kv) + q * h
    }

    /// Dense FFN parameters (gate + up + down projections).
    #[must_use]
    pub fn dense_ffn_params(&self) -> f64 {
        3.0 * f64::from(self.hidden) * f64::from(self.intermediate)
    }

    /// Total parameters, including embeddings and an untied LM head.
    #[must_use]
    pub fn total_params(&self) -> f64 {
        let h = f64::from(self.hidden);
        let embed = 2.0 * f64::from(self.vocab) * h;
        let mut per_layers = f64::from(self.num_layers) * self.attn_params_per_layer();
        for idx in 0..self.num_layers {
            per_layers += self.layer_ffn_params(idx);
        }
        embed + per_layers
    }

    /// FFN parameters of layer `idx` (all experts for MoE layers).
    #[must_use]
    pub fn layer_ffn_params(&self, idx: u32) -> f64 {
        let h = f64::from(self.hidden);
        if self.is_moe_layer(idx) {
            let m = self.moe.expect("moe layer implies moe config");
            let router = h * f64::from(m.num_experts);
            let experts = f64::from(m.num_experts) * 3.0 * h * f64::from(m.expert_intermediate);
            let shared = 3.0 * h * f64::from(m.shared_intermediate);
            router + experts + shared
        } else {
            self.dense_ffn_params()
        }
    }

    /// Parameters *activated* per token in layer `idx` (routed top-k plus
    /// shared expert for MoE layers).
    #[must_use]
    pub fn layer_active_ffn_params(&self, idx: u32) -> f64 {
        let h = f64::from(self.hidden);
        if self.is_moe_layer(idx) {
            let m = self.moe.expect("moe layer implies moe config");
            let router = h * f64::from(m.num_experts);
            let experts =
                f64::from(m.experts_per_token) * 3.0 * h * f64::from(m.expert_intermediate);
            let shared = 3.0 * h * f64::from(m.shared_intermediate);
            router + experts + shared
        } else {
            self.dense_ffn_params()
        }
    }

    /// Bytes of weight storage required (all layers + LM head; the
    /// embedding table is excluded — only one row is gathered per token
    /// and it is kept host-side in the paper's deployment model).
    #[must_use]
    pub fn weight_bytes(&self, precision: Precision) -> f64 {
        let bytes = precision.weights.bytes_per_value();
        let head = f64::from(self.vocab) * f64::from(self.hidden);
        let mut params = f64::from(self.num_layers) * self.attn_params_per_layer() + head;
        for idx in 0..self.num_layers {
            params += self.layer_ffn_params(idx);
        }
        params * bytes
    }

    /// KV-cache bytes per token per query (both K and V, all layers).
    #[must_use]
    pub fn kv_bytes_per_token(&self, precision: Precision) -> f64 {
        2.0 * f64::from(self.num_layers)
            * f64::from(self.num_kv_heads)
            * f64::from(self.head_dim)
            * precision.kv_cache.bytes_per_value()
    }

    /// Total memory footprint for `batch` concurrent queries at context
    /// length `seq_len`: weights + KV cache.
    #[must_use]
    pub fn footprint_bytes(&self, precision: Precision, batch: u32, seq_len: u32) -> f64 {
        self.weight_bytes(precision)
            + self.kv_bytes_per_token(precision) * f64::from(batch) * f64::from(seq_len)
    }

    /// Expected number of *distinct* routed experts activated by a batch
    /// of `batch` tokens in one MoE layer (uniform routing assumption).
    ///
    /// Drives the batched-MoE bandwidth behaviour of Fig. 11: Maverick's
    /// 128 experts keep per-expert loads light up to large batches.
    #[must_use]
    pub fn expected_active_experts(&self, batch: u32) -> f64 {
        match self.moe {
            Some(m) => {
                let e = f64::from(m.num_experts);
                let k = f64::from(m.experts_per_token) * f64::from(batch);
                e * (1.0 - (1.0 - 1.0 / e).powf(k))
            }
            None => 0.0,
        }
    }
}

impl fmt::Display for ModelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn total_params_match_names() {
        assert_approx(ModelConfig::llama3_8b().total_params(), 8e9, 0.05, "8B");
        assert_approx(
            ModelConfig::llama3_70b().total_params(),
            70.6e9,
            0.02,
            "70B",
        );
        assert_approx(
            ModelConfig::llama3_405b().total_params(),
            405e9,
            0.01,
            "405B",
        );
        assert_approx(
            ModelConfig::llama4_scout().total_params(),
            109e9,
            0.06,
            "Scout",
        );
        assert_approx(
            ModelConfig::llama4_maverick().total_params(),
            400e9,
            0.03,
            "Maverick",
        );
    }

    #[test]
    fn maverick_fused_gate_up_is_168m() {
        // §I: "the fused gate/up projection MLP layer in Llama4-Maverick
        // contains just 168 million parameters (5k x 32k)".
        let m = ModelConfig::llama4_maverick();
        let fused = f64::from(m.hidden) * 2.0 * f64::from(m.intermediate);
        assert_approx(fused, 168e6, 0.01, "Maverick fused gate/up");
    }

    #[test]
    fn maverick_interleaves_moe() {
        let m = ModelConfig::llama4_maverick();
        assert_eq!(m.num_moe_layers(), 24);
        assert!(!m.is_moe_layer(0));
        assert!(m.is_moe_layer(1));
    }

    #[test]
    fn scout_all_layers_moe() {
        let m = ModelConfig::llama4_scout();
        assert_eq!(m.num_moe_layers(), m.num_layers);
    }

    #[test]
    fn dense_models_have_no_moe_layers() {
        let m = ModelConfig::llama3_70b();
        assert_eq!(m.num_moe_layers(), 0);
        assert!(!m.is_moe_layer(0));
        assert_eq!(m.expected_active_experts(64), 0.0);
    }

    #[test]
    fn gqa_ratios_match_paper() {
        // §VI: 405B has "16 queries per KV head"; §VIII: Llama4 has
        // "only 5 queries per KV head".
        let m405 = ModelConfig::llama3_405b();
        assert_eq!(m405.num_heads / m405.num_kv_heads, 16);
        let mav = ModelConfig::llama4_maverick();
        assert_eq!(mav.num_heads / mav.num_kv_heads, 5);
    }

    #[test]
    fn llama405b_fits_64cu_system_at_4bit() {
        // Fig. 9: 64 CUs x 16 cores x 192 MiB/core must hold the 4-bit
        // 405B weights plus a BS=1 8k FP8 KV cache.
        let m = ModelConfig::llama3_405b();
        let p = Precision::mxfp4_inference();
        let needed = m.footprint_bytes(p, 1, 8192);
        let capacity = 64.0 * 16.0 * 192.0 * 1024.0 * 1024.0;
        assert!(needed <= capacity, "needed {needed} > capacity {capacity}");
        // ...but not with one tier less (144 MiB/core).
        let smaller = 64.0 * 16.0 * 144.0 * 1024.0 * 1024.0;
        assert!(needed > smaller, "needed {needed} <= smaller {smaller}");
    }

    #[test]
    fn kv_bytes_per_token_405b() {
        // 2 x 126 layers x 8 KV heads x 128 dims x 1 B (FP8) = 258 KB.
        let m = ModelConfig::llama3_405b();
        let p = Precision::mxfp4_inference();
        assert_approx(m.kv_bytes_per_token(p), 258e3, 0.01, "405B KV/token");
    }

    #[test]
    fn expected_active_experts_saturates() {
        let mav = ModelConfig::llama4_maverick();
        assert_approx(mav.expected_active_experts(1), 1.0, 1e-9, "BS1 experts");
        let e128 = mav.expected_active_experts(128);
        assert!(e128 > 70.0 && e128 < 128.0, "BS128 experts {e128}");
        // Scout saturates its 16 experts much earlier.
        let scout = ModelConfig::llama4_scout();
        assert!(scout.expected_active_experts(64) > 15.0);
    }

    #[test]
    fn footprint_grows_with_batch_and_seq() {
        let m = ModelConfig::llama3_8b();
        let p = Precision::mxfp4_inference();
        let base = m.footprint_bytes(p, 1, 8192);
        assert!(m.footprint_bytes(p, 2, 8192) > base);
        assert!(m.footprint_bytes(p, 1, 16384) > base);
    }
}
