//! Per-layer kernel decomposition of transformer inference.
//!
//! Each decode step of a layer is broken into the kernel sequence the
//! paper's Fig. 8 timelines show (`wQKV`, `K$/QKᵀ`, `V$/s(QKᵀ)V`, `wO`,
//! `wUp/wGate`, `wDown`, plus vector ops and MoE routing). Every kernel
//! carries its FLOPs and its byte traffic split by source (weights,
//! KV cache, activations), which downstream crates turn into rooflines,
//! GPU-baseline timings and RPU instruction streams.

use crate::config::ModelConfig;
use crate::dtype::Precision;
use std::fmt;

/// Which layer-level operation a kernel implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Pre-attention RMS norm (+ residual bookkeeping).
    InputNorm,
    /// Fused QKV projection (`wQKV`).
    QkvProj,
    /// Rotary position embeddings.
    Rope,
    /// Append the new token's K/V to the cache.
    KvAppend,
    /// `QKᵀ` attention scores against the K cache.
    AttnScore,
    /// Softmax (including the distributed max / exp-sum collectives).
    Softmax,
    /// `s(QKᵀ)V` context against the V cache.
    AttnContext,
    /// Attention output projection (`wO`).
    OutProj,
    /// Post-attention RMS norm.
    PostNorm,
    /// Fused gate/up FFN projection (`wUp/wGate`).
    GateUp,
    /// SiLU activation and elementwise multiply.
    Activation,
    /// FFN down projection (`wDown`).
    Down,
    /// MoE router (token-to-expert scores).
    Router,
    /// Routed experts' fused gate/up (aggregated over active experts).
    MoeGateUp,
    /// Routed experts' down projection.
    MoeDown,
    /// Shared expert fused gate/up.
    SharedGateUp,
    /// Shared expert down projection.
    SharedDown,
    /// Final language-model head.
    LmHead,
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            KernelKind::InputNorm => "norm",
            KernelKind::QkvProj => "wQKV",
            KernelKind::Rope => "rope",
            KernelKind::KvAppend => "KV$ append",
            KernelKind::AttnScore => "K$/QK^T",
            KernelKind::Softmax => "softmax",
            KernelKind::AttnContext => "V$/s(QK^T)V",
            KernelKind::OutProj => "wO",
            KernelKind::PostNorm => "norm2",
            KernelKind::GateUp => "wUp/wGate",
            KernelKind::Activation => "silu",
            KernelKind::Down => "wDown",
            KernelKind::Router => "router",
            KernelKind::MoeGateUp => "moe wUp/wGate",
            KernelKind::MoeDown => "moe wDown",
            KernelKind::SharedGateUp => "shared wUp/wGate",
            KernelKind::SharedDown => "shared wDown",
            KernelKind::LmHead => "lm head",
        };
        f.write_str(s)
    }
}

/// Broad execution class of a kernel (selects pipeline behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Weight-streaming vector–matrix multiply.
    Vmm,
    /// KV-cache-streaming attention kernel.
    Attention,
    /// Elementwise / reduction vector operation (HP-VOPs on the RPU).
    VectorOp,
    /// Pure memory write (KV append).
    MemWrite,
}

/// A single kernel invocation with its arithmetic and traffic accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kernel {
    /// Operation identity.
    pub kind: KernelKind,
    /// Execution class.
    pub class: KernelClass,
    /// Floating-point operations (multiply-accumulate = 2 FLOPs).
    pub flops: f64,
    /// Weight bytes streamed from memory.
    pub weight_bytes: f64,
    /// KV-cache bytes read from memory.
    pub kv_read_bytes: f64,
    /// KV-cache bytes written to memory.
    pub kv_write_bytes: f64,
    /// Activation bytes consumed.
    pub act_in_bytes: f64,
    /// Activation bytes produced.
    pub act_out_bytes: f64,
    /// GEMM rows (batch) for `Vmm` kernels, else 0.
    pub m: u64,
    /// Contraction dimension for `Vmm` kernels, else 0.
    pub k: u64,
    /// Output columns for `Vmm` kernels, else 0.
    pub n: u64,
}

impl Kernel {
    /// Total off-chip memory traffic on a GPU-style architecture, where
    /// intermediate activations of matrix kernels round-trip through
    /// memory: weights + KV + activations.
    #[must_use]
    pub fn total_mem_bytes(&self) -> f64 {
        self.weight_bytes
            + self.kv_read_bytes
            + self.kv_write_bytes
            + self.act_in_bytes
            + self.act_out_bytes
    }

    /// Memory traffic that is fundamental (weights + KV cache), i.e. what
    /// a perfectly on-chip-buffered architecture such as the RPU streams.
    #[must_use]
    pub fn streaming_bytes(&self) -> f64 {
        self.weight_bytes + self.kv_read_bytes + self.kv_write_bytes
    }

    /// Arithmetic intensity over total memory traffic, FLOPs/byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.total_mem_bytes();
        if b == 0.0 {
            0.0
        } else {
            self.flops / b
        }
    }

    fn zero(kind: KernelKind, class: KernelClass) -> Self {
        Self {
            kind,
            class,
            flops: 0.0,
            weight_bytes: 0.0,
            kv_read_bytes: 0.0,
            kv_write_bytes: 0.0,
            act_in_bytes: 0.0,
            act_out_bytes: 0.0,
            m: 0,
            k: 0,
            n: 0,
        }
    }

    /// Builds a weight-streaming VMM kernel: `[m × k] · [k × n]`.
    #[must_use]
    pub fn vmm(kind: KernelKind, m: u64, k: u64, n: u64, precision: Precision) -> Self {
        let (mf, kf, nf) = (m as f64, k as f64, n as f64);
        let act = precision.activations.bytes_per_value();
        Self {
            flops: 2.0 * mf * kf * nf,
            weight_bytes: kf * nf * precision.weights.bytes_per_value(),
            act_in_bytes: mf * kf * act,
            act_out_bytes: mf * nf * act,
            m,
            k,
            n,
            ..Self::zero(kind, KernelClass::Vmm)
        }
    }

    fn vector_op(kind: KernelKind, elems: f64, flops_per_elem: f64, precision: Precision) -> Self {
        let act = precision.activations.bytes_per_value();
        Self {
            flops: elems * flops_per_elem,
            act_in_bytes: elems * act,
            act_out_bytes: elems * act,
            ..Self::zero(kind, KernelClass::VectorOp)
        }
    }
}

/// Kernel sequence for one decode step of layer `layer_idx`, with `batch`
/// concurrent queries each at context length `seq_len`.
///
/// # Examples
///
/// ```
/// use rpu_models::{layer_kernels, ModelConfig, Precision, KernelKind};
///
/// let ks = layer_kernels(
///     &ModelConfig::llama3_8b(),
///     Precision::mxfp4_inference(),
///     1,
///     16 * 1024,
///     0,
/// );
/// assert!(ks.iter().any(|k| k.kind == KernelKind::QkvProj));
/// assert!(ks.iter().any(|k| k.kind == KernelKind::AttnScore));
/// ```
#[must_use]
pub fn layer_kernels(
    model: &ModelConfig,
    precision: Precision,
    batch: u32,
    seq_len: u32,
    layer_idx: u32,
) -> Vec<Kernel> {
    let b = u64::from(batch);
    let bf = batch as f64;
    let s = seq_len as f64;
    let h = u64::from(model.hidden);
    let hf = model.hidden as f64;
    let nh = model.num_heads as f64;
    let nkv = model.num_kv_heads as f64;
    let hd = model.head_dim as f64;
    let q_dim = u64::from(model.num_heads) * u64::from(model.head_dim);
    let kv_dim = 2 * u64::from(model.num_kv_heads) * u64::from(model.head_dim);
    let kvb = precision.kv_cache.bytes_per_value();
    let act = precision.activations.bytes_per_value();

    let mut ks = Vec::with_capacity(16);

    // Attention block.
    ks.push(Kernel::vector_op(
        KernelKind::InputNorm,
        bf * hf,
        4.0,
        precision,
    ));
    ks.push(Kernel::vmm(
        KernelKind::QkvProj,
        b,
        h,
        q_dim + kv_dim,
        precision,
    ));
    ks.push(Kernel::vector_op(
        KernelKind::Rope,
        bf * (nh + nkv) * hd,
        4.0,
        precision,
    ));
    ks.push(Kernel {
        kv_write_bytes: bf * (nkv * 2.0) * hd * kvb,
        act_in_bytes: bf * (nkv * 2.0) * hd * act,
        ..Kernel::zero(KernelKind::KvAppend, KernelClass::MemWrite)
    });
    // QK^T: every query attends over its own K cache (no cross-query
    // reuse; GQA shares K among num_heads / num_kv_heads queries).
    ks.push(Kernel {
        flops: 2.0 * bf * nh * hd * s,
        kv_read_bytes: bf * nkv * hd * s * kvb,
        act_in_bytes: bf * nh * hd * act,
        act_out_bytes: bf * nh * s * act,
        ..Kernel::zero(KernelKind::AttnScore, KernelClass::Attention)
    });
    ks.push(Kernel::vector_op(
        KernelKind::Softmax,
        bf * nh * s,
        5.0,
        precision,
    ));
    ks.push(Kernel {
        flops: 2.0 * bf * nh * hd * s,
        kv_read_bytes: bf * nkv * hd * s * kvb,
        act_in_bytes: bf * nh * s * act,
        act_out_bytes: bf * nh * hd * act,
        ..Kernel::zero(KernelKind::AttnContext, KernelClass::Attention)
    });
    ks.push(Kernel::vmm(KernelKind::OutProj, b, q_dim, h, precision));
    ks.push(Kernel::vector_op(
        KernelKind::PostNorm,
        bf * hf,
        4.0,
        precision,
    ));

    // FFN block.
    if model.is_moe_layer(layer_idx) {
        let moe = model.moe.expect("moe layer implies moe config");
        let e = u64::from(moe.num_experts);
        let ie = moe.expert_intermediate as f64;
        let is = moe.shared_intermediate as f64;
        let topk = f64::from(moe.experts_per_token);
        let active = model.expected_active_experts(batch);

        ks.push(Kernel::vmm(KernelKind::Router, b, h, e, precision));
        // Routed experts: weights streamed for each *distinct* active
        // expert; FLOPs proportional to tokens x top-k.
        let wb = precision.weights.bytes_per_value();
        ks.push(Kernel {
            flops: 2.0 * bf * topk * hf * 2.0 * ie,
            weight_bytes: active * hf * 2.0 * ie * wb,
            act_in_bytes: bf * topk * hf * act,
            act_out_bytes: bf * topk * 2.0 * ie * act,
            m: b,
            k: h,
            n: (2.0 * ie) as u64,
            ..Kernel::zero(KernelKind::MoeGateUp, KernelClass::Vmm)
        });
        ks.push(Kernel::vector_op(
            KernelKind::Activation,
            bf * topk * ie,
            4.0,
            precision,
        ));
        ks.push(Kernel {
            flops: 2.0 * bf * topk * ie * hf,
            weight_bytes: active * ie * hf * wb,
            act_in_bytes: bf * topk * ie * act,
            act_out_bytes: bf * topk * hf * act,
            m: b,
            k: ie as u64,
            n: h,
            ..Kernel::zero(KernelKind::MoeDown, KernelClass::Vmm)
        });
        if moe.shared_intermediate > 0 {
            ks.push(Kernel::vmm(
                KernelKind::SharedGateUp,
                b,
                h,
                2 * u64::from(moe.shared_intermediate),
                precision,
            ));
            ks.push(Kernel::vector_op(
                KernelKind::Activation,
                bf * is,
                4.0,
                precision,
            ));
            ks.push(Kernel::vmm(
                KernelKind::SharedDown,
                b,
                u64::from(moe.shared_intermediate),
                h,
                precision,
            ));
        }
    } else {
        let i = u64::from(model.intermediate);
        ks.push(Kernel::vmm(KernelKind::GateUp, b, h, 2 * i, precision));
        ks.push(Kernel::vector_op(
            KernelKind::Activation,
            bf * model.intermediate as f64,
            4.0,
            precision,
        ));
        ks.push(Kernel::vmm(KernelKind::Down, b, i, h, precision));
    }
    ks
}

/// The final LM-head VMM (`hidden × vocab`), executed once per decode
/// step.
#[must_use]
pub fn lm_head_kernel(model: &ModelConfig, precision: Precision, batch: u32) -> Kernel {
    Kernel::vmm(
        KernelKind::LmHead,
        u64::from(batch),
        u64::from(model.hidden),
        u64::from(model.vocab),
        precision,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    fn dense_setup() -> (ModelConfig, Precision) {
        (ModelConfig::llama3_70b(), Precision::mxfp4_inference())
    }

    #[test]
    fn dense_layer_has_expected_kernels() {
        let (m, p) = dense_setup();
        let ks = layer_kernels(&m, p, 1, 8192, 0);
        let kinds: Vec<KernelKind> = ks.iter().map(|k| k.kind).collect();
        assert!(kinds.contains(&KernelKind::QkvProj));
        assert!(kinds.contains(&KernelKind::GateUp));
        assert!(kinds.contains(&KernelKind::Down));
        assert!(!kinds.contains(&KernelKind::Router));
    }

    #[test]
    fn vmm_flops_and_bytes() {
        let p = Precision::bf16();
        let k = Kernel::vmm(KernelKind::GateUp, 1, 1024, 2048, p);
        assert_approx(k.flops, 2.0 * 1024.0 * 2048.0, 1e-12, "VMM flops");
        assert_approx(
            k.weight_bytes,
            1024.0 * 2048.0 * 2.0,
            1e-12,
            "VMM weight bytes",
        );
        assert!(k.arithmetic_intensity() < 1.1); // BS=1 BF16 is ~1 FLOP/B
    }

    #[test]
    fn weights_shared_across_batch() {
        let (m, p) = dense_setup();
        let b1: f64 = layer_kernels(&m, p, 1, 8192, 0)
            .iter()
            .map(|k| k.weight_bytes)
            .sum();
        let b32: f64 = layer_kernels(&m, p, 32, 8192, 0)
            .iter()
            .map(|k| k.weight_bytes)
            .sum();
        assert_approx(b1, b32, 1e-12, "dense weight bytes are batch-invariant");
    }

    #[test]
    fn kv_scales_with_batch_and_seq() {
        let (m, p) = dense_setup();
        let kv = |b, s| -> f64 {
            layer_kernels(&m, p, b, s, 0)
                .iter()
                .map(|k| k.kv_read_bytes)
                .sum()
        };
        assert_approx(kv(2, 8192), 2.0 * kv(1, 8192), 1e-12, "KV batch scaling");
        assert_approx(kv(1, 16384), 2.0 * kv(1, 8192), 1e-12, "KV seq scaling");
    }

    #[test]
    fn batching_raises_vmm_intensity() {
        let (m, p) = dense_setup();
        let ai = |b: u32| {
            let ks = layer_kernels(&m, p, b, 8192, 0);
            let gu = ks.iter().find(|k| k.kind == KernelKind::GateUp).unwrap();
            gu.arithmetic_intensity()
        };
        assert!(
            ai(32) > 8.0 * ai(1) / 2.0,
            "batching must raise AI substantially"
        );
        assert!(ai(1) < 4.0);
    }

    #[test]
    fn attention_intensity_is_batch_invariant() {
        // KV$ is query-unique: batching does not amortise it (the paper's
        // reason why attention stays memory-bound).
        let (m, p) = dense_setup();
        let ai = |b: u32| {
            let ks = layer_kernels(&m, p, b, 8192, 0);
            let a = ks.iter().find(|k| k.kind == KernelKind::AttnScore).unwrap();
            a.flops / (a.kv_read_bytes + a.kv_write_bytes)
        };
        assert_approx(ai(1), ai(32), 1e-9, "attention AI vs batch");
    }

    #[test]
    fn gqa_attention_intensity_matches_ratio() {
        // FLOPs / KV byte = 2 x (queries per KV head) / kv bytes-per-value.
        let p = Precision::mxfp4_inference(); // FP8 KV: 1 byte
        let m405 = ModelConfig::llama3_405b();
        let ks = layer_kernels(&m405, p, 1, 8192, 0);
        let a = ks.iter().find(|k| k.kind == KernelKind::AttnScore).unwrap();
        assert_approx(
            a.flops / a.kv_read_bytes,
            32.0,
            1e-9,
            "405B QK^T FLOPs/KV-byte",
        );
    }

    #[test]
    fn moe_layer_streams_only_active_experts() {
        let m = ModelConfig::llama4_maverick();
        let p = Precision::mxfp4_inference();
        // Layer 1 is MoE for Maverick.
        let ks = layer_kernels(&m, p, 1, 8192, 1);
        let moe_w: f64 = ks
            .iter()
            .filter(|k| matches!(k.kind, KernelKind::MoeGateUp | KernelKind::MoeDown))
            .map(|k| k.weight_bytes)
            .sum();
        // One active expert at BS=1: 3 x 5120 x 8192 params at 4 bits.
        let expect = 3.0 * 5120.0 * 8192.0 * 4.0 / 8.0;
        assert_approx(moe_w, expect, 1e-6, "BS=1 MoE weight bytes");
    }

    #[test]
    fn maverick_dense_layer_has_no_router() {
        let m = ModelConfig::llama4_maverick();
        let p = Precision::mxfp4_inference();
        let ks = layer_kernels(&m, p, 1, 8192, 0); // layer 0 is dense
        assert!(ks.iter().all(|k| k.kind != KernelKind::Router));
        assert!(ks.iter().any(|k| k.kind == KernelKind::GateUp));
    }

    #[test]
    fn lm_head_shape() {
        let m = ModelConfig::llama3_8b();
        let k = lm_head_kernel(&m, Precision::mxfp4_inference(), 4);
        assert_eq!(k.m, 4);
        assert_eq!(k.k, 4096);
        assert_eq!(k.n, 128_256);
    }

    #[test]
    fn streaming_bytes_exclude_activations() {
        let (m, p) = dense_setup();
        for k in layer_kernels(&m, p, 8, 4096, 0) {
            assert!(k.streaming_bytes() <= k.total_mem_bytes());
        }
    }
}
