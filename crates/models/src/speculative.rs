//! Speculative decoding model (§X, "Comparison Under Speculative
//! Decoding" and Fig. 14).
//!
//! A lightweight draft model proposes `lookahead` tokens; the target
//! model verifies them in one batched pass. The paper adopts an 8-token
//! lookahead with 4.6 tokens accepted per window on average, yielding a
//! 1.8× end-to-end speedup for Llama3-8B drafting for Llama3-70B.

use crate::config::ModelConfig;

/// Configuration of a draft/target speculative-decoding deployment.
#[derive(Debug, Clone, Copy)]
pub struct SpeculativeConfig {
    /// The small draft model.
    pub draft: ModelConfig,
    /// The large target model.
    pub target: ModelConfig,
    /// Tokens proposed per speculative window.
    pub lookahead: u32,
    /// Average tokens accepted per window (from ref 41).
    pub accepted_per_window: f64,
}

impl SpeculativeConfig {
    /// The paper's evaluation setup: Llama3-8B drafting for Llama3-70B,
    /// 8-token lookahead, 4.6 accepted per window.
    #[must_use]
    pub fn paper_setup() -> Self {
        Self {
            draft: ModelConfig::llama3_8b(),
            target: ModelConfig::llama3_70b(),
            lookahead: 8,
            accepted_per_window: 4.6,
        }
    }

    /// Effective tokens committed per speculative window (accepted tokens
    /// plus the one token the verify pass itself produces).
    #[must_use]
    pub fn tokens_per_window(&self) -> f64 {
        self.accepted_per_window
    }

    /// End-to-end speedup over plain decoding given per-token latencies.
    ///
    /// One window costs `lookahead` draft steps plus one target verify
    /// pass (a batch-`lookahead+1` step, whose latency the caller
    /// supplies), and commits [`Self::tokens_per_window`] tokens; plain
    /// decoding costs one target step per token.
    ///
    /// # Examples
    ///
    /// ```
    /// use rpu_models::SpeculativeConfig;
    ///
    /// let cfg = SpeculativeConfig::paper_setup();
    /// // Draft steps 8x cheaper than target; verify ~= 1.1x a target step.
    /// let s = cfg.speedup(0.125, 1.1, 1.0);
    /// assert!(s > 1.5 && s < 3.0);
    /// ```
    #[must_use]
    pub fn speedup(
        &self,
        draft_step_latency: f64,
        verify_step_latency: f64,
        target_step_latency: f64,
    ) -> f64 {
        let window = f64::from(self.lookahead) * draft_step_latency + verify_step_latency;
        let plain = self.tokens_per_window() * target_step_latency;
        plain / window
    }

    /// Effective tokens/second given the same latencies.
    #[must_use]
    pub fn tokens_per_second(&self, draft_step_latency: f64, verify_step_latency: f64) -> f64 {
        let window = f64::from(self.lookahead) * draft_step_latency + verify_step_latency;
        self.tokens_per_window() / window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_setup_shapes() {
        let s = SpeculativeConfig::paper_setup();
        assert_eq!(s.lookahead, 8);
        assert!((s.accepted_per_window - 4.6).abs() < 1e-12);
        assert_eq!(s.draft.name, "Llama3-8B");
        assert_eq!(s.target.name, "Llama3-70B");
    }

    #[test]
    fn speedup_matches_paper_ballpark() {
        // With an ~8.8x cheaper draft (8B vs 70B) and a verify pass close
        // to a plain step (memory-bound batch-9 ~ batch-1), the paper
        // reports 1.8x end-to-end.
        let s = SpeculativeConfig::paper_setup();
        let speedup = s.speedup(1.0 / 8.8, 1.1, 1.0);
        assert!(speedup > 1.6 && speedup < 2.5, "speedup {speedup}");
    }

    #[test]
    fn zero_draft_cost_upper_bound() {
        let s = SpeculativeConfig::paper_setup();
        // Free drafting: bound is accepted_per_window / verify.
        let max = s.speedup(0.0, 1.0, 1.0);
        assert!((max - 4.6).abs() < 1e-12);
    }

    #[test]
    fn tokens_per_second_consistency() {
        let s = SpeculativeConfig::paper_setup();
        let tps = s.tokens_per_second(0.1e-3, 1.0e-3);
        let window = 8.0 * 0.1e-3 + 1.0e-3;
        assert!((tps - 4.6 / window).abs() < 1e-9);
    }
}
