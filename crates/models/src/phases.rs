//! Prefill and decode phase workloads (the Splitwise/Dynamo split the
//! paper assumes: prefill on GPUs, decode on the RPU).

use crate::config::ModelConfig;
use crate::dtype::Precision;
use crate::kernels::{layer_kernels, lm_head_kernel, Kernel};

/// One token-generation (decode) step across the whole model.
///
/// Aggregates the per-layer kernel decomposition plus the LM head.
#[derive(Debug, Clone)]
pub struct DecodeWorkload {
    /// The model being decoded.
    pub model: ModelConfig,
    /// Deployment precision.
    pub precision: Precision,
    /// Concurrent queries.
    pub batch: u32,
    /// Context length of each query.
    pub seq_len: u32,
    kernels: Vec<Kernel>,
}

impl DecodeWorkload {
    /// Builds the workload for one decode step.
    #[must_use]
    pub fn new(model: &ModelConfig, precision: Precision, batch: u32, seq_len: u32) -> Self {
        let mut kernels = Vec::new();
        for layer in 0..model.num_layers {
            kernels.extend(layer_kernels(model, precision, batch, seq_len, layer));
        }
        kernels.push(lm_head_kernel(model, precision, batch));
        Self {
            model: *model,
            precision,
            batch,
            seq_len,
            kernels,
        }
    }

    /// All kernels of the step, in execution order.
    #[must_use]
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Total FLOPs of the step.
    #[must_use]
    pub fn flops(&self) -> f64 {
        self.kernels.iter().map(|k| k.flops).sum()
    }

    /// Weight bytes streamed in the step.
    #[must_use]
    pub fn weight_bytes(&self) -> f64 {
        self.kernels.iter().map(|k| k.weight_bytes).sum()
    }

    /// KV-cache bytes read in the step.
    #[must_use]
    pub fn kv_read_bytes(&self) -> f64 {
        self.kernels.iter().map(|k| k.kv_read_bytes).sum()
    }

    /// Fundamental streaming traffic: weights + KV reads + KV writes.
    #[must_use]
    pub fn streaming_bytes(&self) -> f64 {
        self.kernels.iter().map(Kernel::streaming_bytes).sum()
    }

    /// GPU-style memory traffic including activation round-trips.
    #[must_use]
    pub fn total_mem_bytes(&self) -> f64 {
        self.kernels.iter().map(Kernel::total_mem_bytes).sum()
    }

    /// Average arithmetic intensity of the step, FLOPs/byte, over the
    /// fundamental streaming traffic.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops() / self.streaming_bytes()
    }

    /// Ideal step latency on a machine with `bandwidth` bytes/s and
    /// `peak_flops` FLOP/s (roofline bound, no overheads).
    #[must_use]
    pub fn roofline_latency(&self, bandwidth: f64, peak_flops: f64) -> f64 {
        (self.streaming_bytes() / bandwidth).max(self.flops() / peak_flops)
    }
}

/// A prefill phase: `prompt_len` tokens processed in parallel for each of
/// `batch` queries.
///
/// Prefill is compute-bound: weights are read once while every token
/// multiplies against them, and attention grows quadratically.
#[derive(Debug, Clone, Copy)]
pub struct PrefillWorkload {
    /// The model.
    pub model: ModelConfig,
    /// Deployment precision.
    pub precision: Precision,
    /// Concurrent queries.
    pub batch: u32,
    /// Prompt tokens per query.
    pub prompt_len: u32,
}

impl PrefillWorkload {
    /// Builds a prefill workload.
    #[must_use]
    pub fn new(model: &ModelConfig, precision: Precision, batch: u32, prompt_len: u32) -> Self {
        Self {
            model: *model,
            precision,
            batch,
            prompt_len,
        }
    }

    /// Total FLOPs: 2 × active-params × tokens, plus causal attention
    /// (~seq²) terms.
    #[must_use]
    pub fn flops(&self) -> f64 {
        let m = &self.model;
        let tokens = f64::from(self.batch) * f64::from(self.prompt_len);
        let mut param_flops = 0.0;
        for idx in 0..m.num_layers {
            param_flops += m.attn_params_per_layer() + m.layer_active_ffn_params(idx);
        }
        // Causal attention: sum over positions ~ S^2/2 per head pair.
        let s = f64::from(self.prompt_len);
        let attn = 4.0
            * f64::from(m.num_layers)
            * f64::from(m.num_heads)
            * f64::from(m.head_dim)
            * (s * s / 2.0)
            * f64::from(self.batch);
        2.0 * param_flops * tokens + attn
    }

    /// Memory traffic: one weight pass plus the KV cache written.
    #[must_use]
    pub fn bytes(&self) -> f64 {
        let kv = self.model.kv_bytes_per_token(self.precision)
            * f64::from(self.batch)
            * f64::from(self.prompt_len);
        self.model.weight_bytes(self.precision) + kv
    }

    /// Arithmetic intensity, FLOPs/byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.flops() / self.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn decode_streams_full_dense_model() {
        let m = ModelConfig::llama3_70b();
        let p = Precision::mxfp4_inference();
        let wl = DecodeWorkload::new(&m, p, 1, 8192);
        // Streamed weights ~= stored weights for a dense model.
        assert_approx(
            wl.weight_bytes(),
            m.weight_bytes(p),
            1e-9,
            "dense streaming",
        );
    }

    #[test]
    fn maverick_streams_only_active_experts() {
        let m = ModelConfig::llama4_maverick();
        let p = Precision::mxfp4_inference();
        let wl = DecodeWorkload::new(&m, p, 1, 8192);
        // ~17B active of ~400B total at BS=1.
        assert!(wl.weight_bytes() < 0.1 * m.weight_bytes(p));
    }

    #[test]
    fn decode_flops_track_active_params() {
        let m = ModelConfig::llama3_8b();
        let p = Precision::mxfp4_inference();
        let wl = DecodeWorkload::new(&m, p, 1, 128);
        // ~2 FLOPs per active (non-embedding) parameter at short context.
        let active = m.total_params() - f64::from(m.vocab) * f64::from(m.hidden);
        assert_approx(wl.flops(), 2.0 * active, 0.1, "decode FLOPs");
    }

    #[test]
    fn decode_ai_rises_with_batch() {
        let m = ModelConfig::llama3_70b();
        let p = Precision::mxfp4_inference();
        let ai1 = DecodeWorkload::new(&m, p, 1, 8192).arithmetic_intensity();
        let ai32 = DecodeWorkload::new(&m, p, 32, 8192).arithmetic_intensity();
        assert!(ai32 > 4.0 * ai1, "ai1={ai1} ai32={ai32}");
    }

    #[test]
    fn prefill_far_more_intense_than_decode() {
        let m = ModelConfig::llama3_70b();
        let p = Precision::fp8_weights();
        let d = DecodeWorkload::new(&m, p, 32, 8192).arithmetic_intensity();
        let f = PrefillWorkload::new(&m, p, 32, 16384).arithmetic_intensity();
        assert!(f > 20.0 * d, "prefill AI {f} vs decode AI {d}");
    }

    #[test]
    fn roofline_latency_picks_binding_resource() {
        let m = ModelConfig::llama3_8b();
        let p = Precision::mxfp4_inference();
        let wl = DecodeWorkload::new(&m, p, 1, 8192);
        // Huge compute, modest bandwidth -> memory-bound.
        let t_mem = wl.roofline_latency(1e12, 1e18);
        assert_approx(t_mem, wl.streaming_bytes() / 1e12, 1e-12, "memory-bound");
        // Huge bandwidth, modest compute -> compute-bound.
        let t_cmp = wl.roofline_latency(1e18, 1e12);
        assert_approx(t_cmp, wl.flops() / 1e12, 1e-12, "compute-bound");
    }

    #[test]
    fn kernel_count_scales_with_layers() {
        let m = ModelConfig::llama3_8b();
        let p = Precision::mxfp4_inference();
        let wl = DecodeWorkload::new(&m, p, 1, 1024);
        // 12 kernels per dense layer + 1 LM head.
        assert_eq!(wl.kernels().len() as u32, m.num_layers * 12 + 1);
    }
}
