//! Property-based tests for workload-model invariants.

use proptest::prelude::*;
use rpu_models::{DecodeWorkload, ModelConfig, Precision, PrefillWorkload};

fn arb_model() -> impl Strategy<Value = ModelConfig> {
    prop::sample::select(ModelConfig::zoo())
}

fn arb_precision() -> impl Strategy<Value = Precision> {
    prop::sample::select(vec![
        Precision::mxfp4_inference(),
        Precision::bf16(),
        Precision::fp8_weights(),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_totals_positive(
        model in arb_model(),
        prec in arb_precision(),
        batch in 1u32..64,
        seq_pow in 7u32..15,
    ) {
        let wl = DecodeWorkload::new(&model, prec, batch, 1 << seq_pow);
        prop_assert!(wl.flops() > 0.0);
        prop_assert!(wl.streaming_bytes() > 0.0);
        prop_assert!(wl.total_mem_bytes() >= wl.streaming_bytes());
        prop_assert!(wl.arithmetic_intensity().is_finite());
    }

    #[test]
    fn decode_flops_monotone_in_batch(
        model in arb_model(),
        prec in arb_precision(),
        batch in 1u32..32,
    ) {
        let a = DecodeWorkload::new(&model, prec, batch, 4096).flops();
        let b = DecodeWorkload::new(&model, prec, batch + 1, 4096).flops();
        prop_assert!(b > a);
    }

    #[test]
    fn decode_bytes_monotone_in_seq(
        model in arb_model(),
        prec in arb_precision(),
        seq in 128u32..32_768,
    ) {
        let a = DecodeWorkload::new(&model, prec, 2, seq).streaming_bytes();
        let b = DecodeWorkload::new(&model, prec, 2, seq * 2).streaming_bytes();
        prop_assert!(b > a);
    }

    #[test]
    fn ai_rises_with_batch_for_dense(
        prec in arb_precision(),
        batch in 1u32..32,
    ) {
        let m = ModelConfig::llama3_70b();
        let a = DecodeWorkload::new(&m, prec, batch, 4096).arithmetic_intensity();
        let b = DecodeWorkload::new(&m, prec, batch * 2, 4096).arithmetic_intensity();
        prop_assert!(b > a, "AI must rise with batch: {a} vs {b}");
    }

    #[test]
    fn weight_stream_never_exceeds_stored(
        model in arb_model(),
        batch in 1u32..128,
    ) {
        let p = Precision::mxfp4_inference();
        let wl = DecodeWorkload::new(&model, p, batch, 1024);
        prop_assert!(wl.weight_bytes() <= model.weight_bytes(p) * (1.0 + 1e-9));
    }

    #[test]
    fn prefill_more_intense_than_decode(
        model in arb_model(),
        prec in arb_precision(),
        batch in 1u32..16,
    ) {
        let d = DecodeWorkload::new(&model, prec, batch, 8192).arithmetic_intensity();
        let f = PrefillWorkload::new(&model, prec, batch, 8192).arithmetic_intensity();
        prop_assert!(f > d);
    }

    #[test]
    fn footprint_additive(
        model in arb_model(),
        batch in 1u32..32,
        seq in 1024u32..65_536,
    ) {
        let p = Precision::mxfp4_inference();
        let total = model.footprint_bytes(p, batch, seq);
        let weights = model.weight_bytes(p);
        let kv = model.kv_bytes_per_token(p) * batch as f64 * seq as f64;
        prop_assert!((total - weights - kv).abs() < 1.0);
    }

    #[test]
    fn active_experts_bounded(
        batch in 1u32..512,
    ) {
        for m in [ModelConfig::llama4_scout(), ModelConfig::llama4_maverick()] {
            let e = m.expected_active_experts(batch);
            let max = f64::from(m.moe.unwrap().num_experts);
            prop_assert!(e >= 1.0 - 1e-9 && e <= max + 1e-9);
        }
    }
}
