//! Property tests for the workload model: kernel decomposition
//! accounting must stay consistent for every model, batch, context and
//! precision.

use proptest::prelude::*;
use rpu_models::{DecodeWorkload, KernelClass, ModelConfig, Precision, PrefillWorkload};

fn any_model() -> impl Strategy<Value = ModelConfig> {
    prop_oneof![
        Just(ModelConfig::llama3_8b()),
        Just(ModelConfig::llama3_70b()),
        Just(ModelConfig::llama3_405b()),
        Just(ModelConfig::llama4_scout()),
        Just(ModelConfig::llama4_maverick()),
    ]
}

fn any_precision() -> impl Strategy<Value = Precision> {
    prop_oneof![
        Just(Precision::mxfp4_inference()),
        Just(Precision::gpu_w4a16()),
        Just(Precision::bf16()),
        Just(Precision::fp8_weights()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Weight traffic of a decode step is independent of batch and
    /// context for dense models (weights are read once per step), and
    /// monotone in batch for MoE models (more active experts).
    #[test]
    fn weight_bytes_behave_with_batch(
        model in any_model(),
        prec in any_precision(),
        batch in 1u32..=64,
        seq in prop_oneof![Just(2048u32), Just(8192), Just(32768)],
    ) {
        let w1 = DecodeWorkload::new(&model, prec, 1, seq).weight_bytes();
        let wb = DecodeWorkload::new(&model, prec, batch, seq).weight_bytes();
        if model.moe.is_none() {
            prop_assert!((wb - w1).abs() / w1 < 1e-9, "dense weights must not scale with batch");
        } else {
            prop_assert!(wb >= w1 - 1.0, "MoE weights must not shrink with batch");
        }
    }

    /// KV-cache reads scale linearly in batch and context.
    #[test]
    fn kv_reads_scale_linearly(
        model in any_model(),
        prec in any_precision(),
        batch in 1u32..=32,
    ) {
        let base = DecodeWorkload::new(&model, prec, 1, 4096).kv_read_bytes();
        let scaled = DecodeWorkload::new(&model, prec, batch, 4096).kv_read_bytes();
        prop_assert!((scaled - f64::from(batch) * base).abs() / scaled < 1e-9);
        let longer = DecodeWorkload::new(&model, prec, 1, 8192).kv_read_bytes();
        prop_assert!((longer - 2.0 * base).abs() / longer < 0.01);
    }

    /// Arithmetic intensity rises with batch but is bounded by
    /// 2 * batch / weight_bytes_per_param (perfect weight reuse).
    #[test]
    fn ai_monotone_and_bounded(model in any_model(), prec in any_precision()) {
        let mut last = 0.0;
        for batch in [1u32, 2, 4, 8, 16, 32] {
            let ai = DecodeWorkload::new(&model, prec, batch, 8192).arithmetic_intensity();
            prop_assert!(ai > last, "AI must strictly rise with batch");
            // Weights: each byte feeds at most 2*batch FLOPs. KV cache:
            // each byte feeds at most 2 * (q heads per KV head) FLOPs —
            // GQA reuse, batch-independent (<= 16 queries/KV in the zoo).
            let bound = 2.0 * f64::from(batch) / prec.weights.bytes_per_value()
                + 2.0 * 16.0 / prec.kv_cache.bytes_per_value();
            prop_assert!(ai <= bound, "AI {ai} above perfect-reuse bound {bound}");
            last = ai;
        }
    }

    /// The footprint decomposes exactly into weights + KV for the batch.
    #[test]
    fn footprint_decomposition(
        model in any_model(),
        prec in any_precision(),
        batch in 1u32..=32,
        seq in 1024u32..=65536,
    ) {
        let f = model.footprint_bytes(prec, batch, seq);
        let expect = model.weight_bytes(prec)
            + model.kv_bytes_per_token(prec) * f64::from(batch) * f64::from(seq);
        prop_assert!((f - expect).abs() / f < 1e-12);
    }

    /// Every kernel's byte accounting is non-negative and the step's
    /// totals equal the kernel sums.
    #[test]
    fn kernel_sums_match_step_totals(
        model in any_model(),
        batch in prop_oneof![Just(1u32), Just(8), Just(32)],
    ) {
        let prec = Precision::mxfp4_inference();
        let wl = DecodeWorkload::new(&model, prec, batch, 8192);
        let mut flops = 0.0;
        let mut stream = 0.0;
        for k in wl.kernels() {
            prop_assert!(k.flops >= 0.0);
            prop_assert!(k.weight_bytes >= 0.0 && k.kv_read_bytes >= 0.0);
            flops += k.flops;
            stream += k.streaming_bytes();
        }
        prop_assert!((flops - wl.flops()).abs() / flops < 1e-12);
        prop_assert!((stream - wl.streaming_bytes()).abs() / stream < 1e-12);
    }

    /// Prefill arithmetic intensity dwarfs decode AI (the Splitwise
    /// motivation for the phase split).
    #[test]
    fn prefill_far_more_compute_intense(model in any_model()) {
        let prec = Precision::mxfp4_inference();
        let d = DecodeWorkload::new(&model, prec, 1, 8192).arithmetic_intensity();
        let p = PrefillWorkload::new(&model, prec, 1, 8192).arithmetic_intensity();
        prop_assert!(p > 20.0 * d, "prefill AI {p} vs decode AI {d}");
    }

    /// Attention kernels dominate streamed bytes at long context.
    #[test]
    fn attention_takes_over_at_long_context(model in any_model()) {
        let prec = Precision::mxfp4_inference();
        let wl = DecodeWorkload::new(&model, prec, 32, 131_072);
        let attn: f64 = wl
            .kernels()
            .iter()
            .filter(|k| k.class == KernelClass::Attention)
            .map(|k| k.streaming_bytes())
            .sum();
        prop_assert!(attn / wl.streaming_bytes() > 0.3, "attention share {}", attn / wl.streaming_bytes());
    }
}

#[test]
fn zoo_parameter_counts_match_names() {
    // Each model's parameter count must be within 15 % of its name.
    for (model, expect) in [
        (ModelConfig::llama3_8b(), 8e9),
        (ModelConfig::llama3_70b(), 70e9),
        (ModelConfig::llama3_405b(), 405e9),
    ] {
        let p = model.total_params();
        assert!(
            (p - expect).abs() / expect < 0.15,
            "{}: {p} vs {expect}",
            model.name
        );
    }
    // Maverick: ~400B total, ~17B active per token.
    let mav = ModelConfig::llama4_maverick();
    assert!(
        mav.total_params() > 250e9,
        "Maverick total {}",
        mav.total_params()
    );
}
