//! Cost model for HBM-CO stacks, normalised to the HBM3e-like baseline.
//!
//! Module cost is modelled as a per-die fixed cost (TSV footprint, command
//! and peripheral logic, stacking) plus a term linear in DRAM capacity
//! (array silicon area). Calibrated to the paper's anchors: the candidate
//! HBM-CO costs **1.81× more per GB** yet **~35× less per module** than
//! HBM3e, because fixed costs dominate at low capacity.

use crate::config::HbmCoConfig;

/// Fixed cost per stacked die, as a fraction of the HBM3e module cost.
pub const FIXED_COST_PER_DIE: f64 = 0.003_39;
/// Capacity-proportional cost, per GiB, as a fraction of HBM3e module cost.
pub const COST_PER_GIB_SILICON: f64 = 0.019_71;

/// Module cost normalised to the HBM3e-like baseline (= 1.0).
///
/// # Examples
///
/// ```
/// use rpu_hbmco::{module_cost, HbmCoConfig};
///
/// let ratio = module_cost(&HbmCoConfig::hbm3e_like())
///     / module_cost(&HbmCoConfig::candidate());
/// assert!(ratio > 30.0 && ratio < 40.0); // paper: ~35x cheaper module
/// ```
#[must_use]
pub fn module_cost(config: &HbmCoConfig) -> f64 {
    let dies = f64::from(config.total_layers());
    let cap_gib = config.capacity_bytes() / rpu_util::units::GIB;
    dies * FIXED_COST_PER_DIE + cap_gib * COST_PER_GIB_SILICON
}

/// Cost per GB normalised to the HBM3e-like baseline's cost per GB (= 1.0).
#[must_use]
pub fn cost_per_gb(config: &HbmCoConfig) -> f64 {
    let base = HbmCoConfig::hbm3e_like();
    let base_per_gb = module_cost(&base) / (base.capacity_bytes() / 1e9);
    (module_cost(config) / (config.capacity_bytes() / 1e9)) / base_per_gb
}

/// Bandwidth per unit cost, normalised so the HBM3e-like baseline = 1.0.
///
/// The paper's headline: the candidate achieves ~5× higher bandwidth per
/// dollar despite the higher cost per GB.
#[must_use]
pub fn bandwidth_per_cost(config: &HbmCoConfig) -> f64 {
    let base = HbmCoConfig::hbm3e_like();
    let base_ratio = base.bandwidth_bytes_per_s() / module_cost(&base);
    (config.bandwidth_bytes_per_s() / module_cost(config)) / base_ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn baseline_is_unity() {
        assert_approx(
            module_cost(&HbmCoConfig::hbm3e_like()),
            1.0,
            1e-3,
            "HBM3e module cost",
        );
        assert_approx(
            cost_per_gb(&HbmCoConfig::hbm3e_like()),
            1.0,
            1e-9,
            "HBM3e cost/GB",
        );
        assert_approx(
            bandwidth_per_cost(&HbmCoConfig::hbm3e_like()),
            1.0,
            1e-9,
            "HBM3e BW/$",
        );
    }

    #[test]
    fn candidate_cost_anchors() {
        let co = HbmCoConfig::candidate();
        // Paper: 1.81x higher cost per GB.
        assert_approx(cost_per_gb(&co), 1.81, 0.03, "candidate cost/GB");
        // Paper: ~35x lower module cost.
        let module_ratio = module_cost(&HbmCoConfig::hbm3e_like()) / module_cost(&co);
        assert_approx(module_ratio, 35.0, 0.05, "candidate module cost ratio");
        // Paper: ~5x bandwidth per dollar (we land in 5-10x; the paper's
        // exact figure depends on its HBM3e bandwidth convention).
        assert!(
            bandwidth_per_cost(&co) > 4.0,
            "BW/$ = {}",
            bandwidth_per_cost(&co)
        );
    }

    #[test]
    fn cost_per_gb_rises_as_banks_shrink() {
        // Fig. 5 (left): smaller capacities pay more per GB because the
        // per-die fixed costs (base logic, TSV footprint) do not amortise.
        let mut last = 0.0;
        for banks_per_group in [4, 2, 1] {
            let c = HbmCoConfig {
                banks_per_group,
                ..HbmCoConfig::candidate()
            };
            let per_gb = cost_per_gb(&c);
            assert!(per_gb > last, "cost/GB should rise as banks fall");
            last = per_gb;
        }
    }

    #[test]
    fn ranks_leave_cost_per_gb_unchanged() {
        // Ranks add whole dies: capacity and die count scale together, so
        // the cost per GB is flat along the rank axis.
        let r1 = cost_per_gb(&HbmCoConfig::candidate());
        let r4 = cost_per_gb(&HbmCoConfig {
            ranks: 4,
            ..HbmCoConfig::candidate()
        });
        assert_approx(r1, r4, 1e-9, "cost/GB across ranks");
    }

    #[test]
    fn module_cost_monotone_in_capacity_knobs() {
        let base = HbmCoConfig::candidate();
        let more_banks = HbmCoConfig {
            banks_per_group: 4,
            ..base
        };
        let more_subarrays = HbmCoConfig {
            subarray_scale: 1.0,
            ..HbmCoConfig {
                subarray_scale: 0.5,
                ..base
            }
        };
        assert!(module_cost(&more_banks) > module_cost(&base));
        assert!(module_cost(&more_subarrays) >= module_cost(&base));
    }

    #[test]
    fn max_cost_per_gb_matches_fig5_range() {
        // Fig. 5's y-axis tops out around ~2.5x for the smallest devices.
        let smallest = HbmCoConfig {
            subarray_scale: 0.5,
            ..HbmCoConfig::candidate()
        };
        let per_gb = cost_per_gb(&smallest);
        assert!(per_gb > 2.0 && per_gb < 3.0, "smallest cost/GB = {per_gb}");
    }
}
