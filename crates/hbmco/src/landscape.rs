//! Memory technology landscape for low-latency inference (Fig. 4).
//!
//! Each entry is a representative commercial module with its bandwidth and
//! capacity; the figure plots BW/Cap against the ideal per-token latency at
//! 100 % capacity utilisation, exposing the *Goldilocks* gap that HBM-CO
//! fills.

use crate::ideal_token_latency;

/// Broad class of a memory technology (drives Fig. 4 grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechClass {
    /// Stacked high-bandwidth DRAM (HBM3/3e).
    Hbm,
    /// Graphics DRAM (GDDR6/7).
    Gddr,
    /// Low-power mobile DRAM (LPDDR4/5).
    Lpddr,
    /// On-chip SRAM used as main memory (Groq/Cerebras style).
    Sram,
    /// Embedded non-volatile memory.
    Envm,
    /// Capacity-optimised HBM (this paper).
    HbmCo,
}

/// A representative memory module for the landscape plot.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryTech {
    /// Display name, e.g. `"HBM3e"`.
    pub name: &'static str,
    /// Technology class.
    pub class: TechClass,
    /// Module bandwidth, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Module capacity, bytes.
    pub capacity_bytes: f64,
}

impl MemoryTech {
    /// Bandwidth-to-capacity ratio, 1/s.
    #[must_use]
    pub fn bw_per_cap(&self) -> f64 {
        self.bandwidth_bytes_per_s / self.capacity_bytes
    }

    /// Ideal token latency at 100 % capacity utilisation, seconds.
    #[must_use]
    pub fn latency_per_token(&self) -> f64 {
        ideal_token_latency(self.bw_per_cap())
    }
}

/// The commercial landscape the paper plots in Fig. 4 (datasheet-level
/// figures from the cited ISSCC/JSSC publications and vendor specs).
#[must_use]
pub fn commercial_landscape() -> Vec<MemoryTech> {
    vec![
        MemoryTech {
            name: "HBM3",
            class: TechClass::Hbm,
            bandwidth_bytes_per_s: 819e9,
            capacity_bytes: 24e9,
        },
        MemoryTech {
            name: "HBM3e",
            class: TechClass::Hbm,
            bandwidth_bytes_per_s: 1280e9,
            capacity_bytes: 48e9,
        },
        MemoryTech {
            name: "GDDR6",
            class: TechClass::Gddr,
            bandwidth_bytes_per_s: 64e9,
            capacity_bytes: 2e9,
        },
        MemoryTech {
            name: "GDDR7",
            class: TechClass::Gddr,
            bandwidth_bytes_per_s: 128e9,
            capacity_bytes: 3e9,
        },
        MemoryTech {
            name: "LPDDR4",
            class: TechClass::Lpddr,
            bandwidth_bytes_per_s: 25.6e9,
            capacity_bytes: 8e9,
        },
        MemoryTech {
            name: "LPDDR5",
            class: TechClass::Lpddr,
            bandwidth_bytes_per_s: 51.2e9,
            capacity_bytes: 16e9,
        },
        MemoryTech {
            name: "SRAM (LPU-class)",
            class: TechClass::Sram,
            bandwidth_bytes_per_s: 80e12,
            capacity_bytes: 230e6,
        },
        MemoryTech {
            name: "eNVM",
            class: TechClass::Envm,
            bandwidth_bytes_per_s: 10e12,
            capacity_bytes: 2e9,
        },
    ]
}

/// The *Goldilocks* BW/Cap range for low-latency inference: roughly 1–10 ms
/// per token at full capacity utilisation, i.e. BW/Cap of 100–1000 /s.
pub const GOLDILOCKS_BW_PER_CAP: (f64, f64) = (100.0, 1000.0);

/// Returns `true` when a BW/Cap ratio falls inside the Goldilocks range.
#[must_use]
pub fn in_goldilocks(bw_per_cap: f64) -> bool {
    bw_per_cap >= GOLDILOCKS_BW_PER_CAP.0 && bw_per_cap <= GOLDILOCKS_BW_PER_CAP.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HbmCoConfig;

    #[test]
    fn hbm3e_bw_per_cap_is_27() {
        let hbm3e = commercial_landscape()
            .into_iter()
            .find(|t| t.name == "HBM3e")
            .unwrap();
        assert!((hbm3e.bw_per_cap() - 26.7).abs() < 0.1);
    }

    #[test]
    fn no_commercial_tech_in_goldilocks() {
        // The paper's central claim for Fig. 4: a technology gap exists.
        for t in commercial_landscape() {
            assert!(
                !in_goldilocks(t.bw_per_cap()),
                "{} unexpectedly in the Goldilocks range ({}/s)",
                t.name,
                t.bw_per_cap()
            );
        }
    }

    #[test]
    fn hbmco_design_space_covers_goldilocks() {
        // The candidate and several design-space points must fill the gap.
        assert!(in_goldilocks(HbmCoConfig::candidate().bw_per_cap()));
        let covered = crate::enumerate_design_space()
            .iter()
            .filter(|p| in_goldilocks(p.bw_per_cap))
            .count();
        assert!(covered > 20, "only {covered} HBM-CO points in Goldilocks");
    }

    #[test]
    fn sram_latency_far_below_1ms() {
        let sram = commercial_landscape()
            .into_iter()
            .find(|t| t.class == TechClass::Sram)
            .unwrap();
        assert!(sram.latency_per_token() < 1e-4);
    }

    #[test]
    fn dram_latencies_above_goldilocks() {
        for t in commercial_landscape() {
            if matches!(t.class, TechClass::Hbm | TechClass::Gddr | TechClass::Lpddr) {
                assert!(
                    t.latency_per_token() > 10e-3,
                    "{} latency {}",
                    t.name,
                    t.latency_per_token()
                );
            }
        }
    }
}
