//! Energy-per-bit model for HBM-CO stacks.
//!
//! The model follows the paper's four-component decomposition (§III,
//! "Modeling Energy and Cost for HBM-CO"):
//!
//! 1. **Row activation** — 0.18 pJ/bit for streaming workloads;
//! 2. **Data movement** — 0.2 pJ/bit/mm over an intra-die routing distance
//!    derived from HBM core-die floorplans, which shrinks with per-layer
//!    capacity (a fixed fraction of the die — TSV, command and peripheral
//!    logic — does not scale);
//! 3. **TSV traversal** — 0.148 pJ/bit/layer, averaged over the stack
//!    height;
//! 4. **I/O interface** — 0.25 pJ/bit (UCIe / HBM3e datasheets).
//!
//! The wire-length law is calibrated to the two endpoints the paper
//! validates against: HBM3e at **3.44 pJ/bit** and the candidate HBM-CO at
//! **1.45 pJ/bit**.

use crate::config::HbmCoConfig;

/// Row-activation energy for streaming workloads, pJ/bit.
pub const ACTIVATION_PJ_PER_BIT: f64 = 0.18;
/// Intra-die data-movement energy, pJ/bit/mm.
pub const MOVEMENT_PJ_PER_BIT_MM: f64 = 0.2;
/// TSV traversal energy, pJ/bit per traversed layer.
pub const TSV_PJ_PER_BIT_LAYER: f64 = 0.148;
/// I/O interface energy, pJ/bit.
pub const IO_PJ_PER_BIT: f64 = 0.25;

/// Average intra-die routing distance of the HBM3e-like baseline, mm.
/// Calibrated so the baseline totals 3.44 pJ/bit.
pub const BASE_ROUTE_MM: f64 = 8.76;
/// Fraction of the routing distance that does not scale with the DRAM
/// array (TSV region, command and peripheral logic — roughly one third of
/// the die area per the paper, a smaller share of its linear dimension).
/// Calibrated so the candidate HBM-CO totals 1.45 pJ/bit.
pub const FIXED_ROUTE_FRACTION: f64 = 0.161;

/// Bank-column dimension (banks/group × sub-array scale) of the
/// HBM3e-like baseline, the reference point of the wire-length law.
const BASE_COLUMN_DIM: f64 = 4.0;

/// Energy-per-bit decomposition for one read from a stack, in pJ/bit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Row-activation component.
    pub activation: f64,
    /// Intra-die data-movement component.
    pub movement: f64,
    /// TSV traversal component (stack-height dependent).
    pub tsv: f64,
    /// Off-stack I/O component.
    pub io: f64,
}

impl EnergyBreakdown {
    /// Total energy per bit, pJ/bit.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.activation + self.movement + self.tsv + self.io
    }
}

/// Average intra-die routing distance for a configuration, in mm.
///
/// Banks within a group are strung along the bank-column direction of the
/// core-die floorplan, so the average route grows linearly with the column
/// dimension (`banks_per_group × subarray_scale`) above a fixed
/// non-scaling floor (TSV region, command and peripheral logic). Channel
/// count removes entire independent channel regions and so does not
/// lengthen the per-access route.
#[must_use]
pub fn route_length_mm(config: &HbmCoConfig) -> f64 {
    let ratio = (f64::from(config.banks_per_group) * config.subarray_scale) / BASE_COLUMN_DIM;
    BASE_ROUTE_MM * (FIXED_ROUTE_FRACTION + (1.0 - FIXED_ROUTE_FRACTION) * ratio)
}

/// Computes the energy-per-bit breakdown for a stack configuration.
///
/// # Examples
///
/// ```
/// use rpu_hbmco::{energy_per_bit, HbmCoConfig};
///
/// let e = energy_per_bit(&HbmCoConfig::hbm3e_like());
/// assert!((e.total() - 3.44).abs() < 0.05);
/// ```
#[must_use]
pub fn energy_per_bit(config: &HbmCoConfig) -> EnergyBreakdown {
    let layers = f64::from(config.total_layers());
    // Data sourced from die i crosses i TSV hops; uniform use of layers
    // gives an average of (L + 1) / 2 hops.
    let avg_tsv_layers = (layers + 1.0) / 2.0;
    EnergyBreakdown {
        activation: ACTIVATION_PJ_PER_BIT,
        movement: MOVEMENT_PJ_PER_BIT_MM * route_length_mm(config),
        tsv: TSV_PJ_PER_BIT_LAYER * avg_tsv_layers,
        io: IO_PJ_PER_BIT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn hbm3e_validates_at_3_44_pj_per_bit() {
        let e = energy_per_bit(&HbmCoConfig::hbm3e_like());
        assert_approx(e.total(), 3.44, 0.01, "HBM3e pJ/bit");
    }

    #[test]
    fn candidate_is_1_45_pj_per_bit() {
        let e = energy_per_bit(&HbmCoConfig::candidate());
        assert_approx(e.total(), 1.45, 0.01, "candidate pJ/bit");
    }

    #[test]
    fn candidate_efficiency_ratio_matches_paper() {
        // Paper: up to 2.4x lower energy per bit than HBM3e.
        let base = energy_per_bit(&HbmCoConfig::hbm3e_like()).total();
        let co = energy_per_bit(&HbmCoConfig::candidate()).total();
        assert_approx(base / co, 2.4, 0.02, "HBM3e/candidate energy ratio");
    }

    #[test]
    fn component_shares_match_prior_work() {
        // [45]: ~74 % internal movement (movement + TSV), ~14 % I/O wiring
        // and ~12 % activation for streaming HBM workloads. Our HBM3e
        // point should land in that neighbourhood.
        let e = energy_per_bit(&HbmCoConfig::hbm3e_like());
        let t = e.total();
        let internal = (e.movement + e.tsv) / t;
        assert!(
            internal > 0.70 && internal < 0.92,
            "internal share {internal}"
        );
        assert!((e.activation / t) > 0.03 && (e.activation / t) < 0.15);
        assert!((e.io / t) > 0.05 && (e.io / t) < 0.15);
    }

    #[test]
    fn fewer_ranks_means_less_tsv_energy() {
        let tall = energy_per_bit(&HbmCoConfig::hbm3e_like());
        let short = energy_per_bit(&HbmCoConfig {
            ranks: 1,
            ..HbmCoConfig::hbm3e_like()
        });
        assert!(short.tsv < tall.tsv);
        assert_eq!(short.io, tall.io);
        assert_eq!(short.activation, tall.activation);
    }

    #[test]
    fn smaller_banks_shrink_movement() {
        let full = energy_per_bit(&HbmCoConfig::hbm3e_like());
        let slim = energy_per_bit(&HbmCoConfig {
            banks_per_group: 1,
            subarray_scale: 0.5,
            ..HbmCoConfig::hbm3e_like()
        });
        assert!(slim.movement < full.movement);
    }

    #[test]
    fn route_length_has_fixed_floor() {
        // Even a hypothetical near-zero array keeps the peripheral route.
        let min_cfg = HbmCoConfig {
            ranks: 1,
            channels_per_layer: 1,
            banks_per_group: 1,
            subarray_scale: 0.5,
            ..HbmCoConfig::hbm3e_like()
        };
        assert!(route_length_mm(&min_cfg) > BASE_ROUTE_MM * FIXED_ROUTE_FRACTION);
        assert!(route_length_mm(&min_cfg) < BASE_ROUTE_MM);
    }
}
