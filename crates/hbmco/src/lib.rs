//! Capacity-Optimized High-Bandwidth Memory (HBM-CO) analytical model.
//!
//! This crate reproduces Section III of *"RPU – A Reasoning Processing
//! Unit"* (HPCA 2026): a parameterised model of stacked DRAM devices in
//! which capacity-driving structures (ranks, banks per bank group,
//! channels per layer, sub-array scaling) can be reduced without changing
//! the shoreline bandwidth, trading capacity for lower energy per bit and
//! lower module cost.
//!
//! The model is calibrated against the anchors the paper reports:
//!
//! * an HBM3e-like stack: 48 GB, ~1 TB/s-class, **3.44 pJ/bit**;
//! * the candidate HBM-CO: 768 MB, 256 GB/s, **1.45 pJ/bit**, ~1.8× the
//!   cost per GB yet ~35× lower cost per module.
//!
//! # Examples
//!
//! ```
//! use rpu_hbmco::{HbmCoConfig, energy_per_bit, module_cost};
//!
//! let hbm3e = HbmCoConfig::hbm3e_like();
//! let co = HbmCoConfig::candidate();
//!
//! // The candidate trades 64x capacity for ~2.4x lower energy per bit.
//! assert!(hbm3e.capacity_bytes() / co.capacity_bytes() > 60.0);
//! assert!(energy_per_bit(&hbm3e).total() / energy_per_bit(&co).total() > 2.0);
//! // ...and is far cheaper per module despite a higher cost per GB.
//! assert!(module_cost(&co) < 0.05 * module_cost(&hbm3e));
//! ```

#![warn(missing_docs)]

mod config;
mod cost;
mod design_space;
mod energy;
pub mod landscape;

pub use config::{ConfigError, HbmCoConfig};
pub use cost::{bandwidth_per_cost, cost_per_gb, module_cost};
pub use design_space::{enumerate_design_space, pareto_frontier, select_sku, DesignPoint};
pub use energy::{energy_per_bit, EnergyBreakdown};

/// Ideal token-generation latency (seconds per token) for a dense model
/// that exactly fills the memory (100 % capacity utilisation).
///
/// This is the paper's `Cap / BW` bound from Section III: when memory is
/// fully utilised, every weight byte must be streamed once per token, so
/// the minimum latency is the inverse of the BW/Cap ratio.
///
/// # Examples
///
/// ```
/// use rpu_hbmco::{ideal_token_latency, HbmCoConfig};
///
/// let co = HbmCoConfig::candidate();
/// let s = ideal_token_latency(co.bw_per_cap());
/// // The paper reports ~2.9 ms/token for the candidate (BW/Cap ~341/s
/// // in its decimal-unit convention; ~318/s in ours).
/// assert!(s > 2.0e-3 && s < 4.0e-3);
/// ```
#[must_use]
pub fn ideal_token_latency(bw_per_cap: f64) -> f64 {
    if bw_per_cap <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / bw_per_cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn candidate_ideal_latency_matches_paper() {
        // Paper: BW/Cap = 341 -> ~2.9 ms/token. Our binary-capacity
        // convention yields 318/s -> 3.1 ms/token; within 10 %.
        let co = HbmCoConfig::candidate();
        assert_approx(
            ideal_token_latency(co.bw_per_cap()),
            2.9e-3,
            0.10,
            "candidate ms/token",
        );
    }

    #[test]
    fn ideal_latency_degenerate() {
        assert!(ideal_token_latency(0.0).is_infinite());
        assert!(ideal_token_latency(-1.0).is_infinite());
    }
}
