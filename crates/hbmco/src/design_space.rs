//! Enumeration of the HBM-CO design space, Pareto frontier extraction and
//! SKU selection (Figs. 5, 9 and 10 of the paper).

use crate::config::HbmCoConfig;
use crate::cost::{cost_per_gb, module_cost};
use crate::energy::energy_per_bit;
use rpu_util::pareto::{frontier, Objective};

/// One evaluated point of the HBM-CO design space.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// The stack configuration.
    pub config: HbmCoConfig,
    /// Stack capacity, bytes.
    pub capacity_bytes: f64,
    /// Stack bandwidth, bytes/s.
    pub bandwidth_bytes_per_s: f64,
    /// Bandwidth-to-capacity ratio, 1/s.
    pub bw_per_cap: f64,
    /// Total energy per bit, pJ/bit.
    pub energy_pj_per_bit: f64,
    /// Module cost normalised to HBM3e.
    pub module_cost: f64,
    /// Cost per GB normalised to HBM3e.
    pub cost_per_gb: f64,
}

impl DesignPoint {
    /// Evaluates a configuration into a design point.
    #[must_use]
    pub fn evaluate(config: HbmCoConfig) -> Self {
        Self {
            capacity_bytes: config.capacity_bytes(),
            bandwidth_bytes_per_s: config.bandwidth_bytes_per_s(),
            bw_per_cap: config.bw_per_cap(),
            energy_pj_per_bit: energy_per_bit(&config).total(),
            module_cost: module_cost(&config),
            cost_per_gb: cost_per_gb(&config),
            config,
        }
    }

    /// Capacity behind one pseudo-channel (one RPU core), bytes.
    #[must_use]
    pub fn capacity_per_pch(&self) -> f64 {
        self.config.capacity_per_pch()
    }
}

/// Enumerates the full design space the paper sweeps in Fig. 5:
/// ranks ∈ 1..4, banks/group ∈ {1,2,4}, channels/layer ∈ 1..4,
/// sub-array scale ∈ {0.5, 0.75, 1.0}. All points are valid configs.
#[must_use]
pub fn enumerate_design_space() -> Vec<DesignPoint> {
    let mut points = Vec::new();
    for ranks in 1..=4 {
        for banks_per_group in [1, 2, 4] {
            for channels_per_layer in 1..=4 {
                for subarray_scale in [0.5, 0.75, 1.0] {
                    let config = HbmCoConfig {
                        ranks,
                        banks_per_group,
                        channels_per_layer,
                        subarray_scale,
                        ..HbmCoConfig::hbm3e_like()
                    };
                    debug_assert!(config.validate().is_ok());
                    points.push(DesignPoint::evaluate(config));
                }
            }
        }
    }
    points
}

/// Extracts the Pareto frontier over (capacity ↑, energy/bit ↓) among
/// single-channel stacks — the SKU ladder of Fig. 9 ("the set of HBM-CO
/// chiplets useful for a memory-chiplet ecosystem").
///
/// Channels-per-layer is fixed to 1 because it scales bandwidth and
/// capacity together (it picks shoreline width, not BW/Cap); the frontier
/// is over per-pseudo-channel capacity, which the remaining knobs control.
#[must_use]
pub fn pareto_frontier() -> Vec<DesignPoint> {
    let all: Vec<DesignPoint> = enumerate_design_space()
        .into_iter()
        .filter(|p| p.config.channels_per_layer == 1)
        .collect();
    // Distinct knob settings can land on the same (capacity, energy) point
    // (e.g. 2 banks x 0.5 sub-arrays vs 1 bank x 1.0 sub-arrays). Keep one
    // SKU per capacity tier: the lowest-energy, first-enumerated config.
    let mut best_per_cap: Vec<DesignPoint> = Vec::new();
    for p in all {
        let cap_mb = (p.capacity_bytes / 1e6).round();
        match best_per_cap
            .iter_mut()
            .find(|q| (q.capacity_bytes / 1e6).round() == cap_mb)
        {
            Some(q) if p.energy_pj_per_bit < q.energy_pj_per_bit => *q = p,
            Some(_) => {}
            None => best_per_cap.push(p),
        }
    }
    frontier(
        &best_per_cap,
        |p| (p.capacity_bytes, p.energy_pj_per_bit),
        (Objective::Maximize, Objective::Minimize),
    )
}

/// Selects the optimal HBM-CO SKU from the Pareto frontier: the smallest
/// per-core capacity that still satisfies `required_bytes_per_core`
/// (weights + KV cache shard per core). Returns `None` when even the
/// largest SKU is too small.
///
/// This is the paper's selection rule for Figs. 9, 10 and 12: "the highest
/// BW/Cap memory which satisfies the required capacity".
#[must_use]
pub fn select_sku(required_bytes_per_core: f64) -> Option<DesignPoint> {
    pareto_frontier()
        .into_iter()
        .filter(|p| p.capacity_per_pch() >= required_bytes_per_core)
        .min_by(|a, b| {
            a.capacity_per_pch()
                .partial_cmp(&b.capacity_per_pch())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;

    #[test]
    fn design_space_size() {
        // 4 ranks x 3 banks x 4 channels x 3 sub-array scales = 144.
        assert_eq!(enumerate_design_space().len(), 144);
    }

    #[test]
    fn frontier_contains_candidate_class() {
        // The candidate (R1 B1 C1 S1.0) should be on or near the frontier.
        let front = pareto_frontier();
        assert!(!front.is_empty());
        let cand = HbmCoConfig::candidate();
        let found = front.iter().any(|p| {
            p.config.ranks == cand.ranks
                && p.config.banks_per_group == cand.banks_per_group
                && p.config.subarray_scale == cand.subarray_scale
        });
        assert!(found, "candidate missing from frontier: {front:?}");
    }

    #[test]
    fn frontier_energy_monotone_in_capacity() {
        // Along the frontier, more capacity must cost more energy/bit
        // (otherwise the smaller point would be dominated).
        let front = pareto_frontier();
        for w in front.windows(2) {
            assert!(w[0].capacity_bytes < w[1].capacity_bytes);
            assert!(w[0].energy_pj_per_bit <= w[1].energy_pj_per_bit);
        }
    }

    #[test]
    fn sku_selection_matches_fig9_optimum() {
        // Llama3-405B on 64 CUs needs ~199 MB/core (4-bit weights + KV);
        // the paper picks the 192 MiB/core SKU (2 ranks | 1 bank/group |
        // 1.0x sub-arrays).
        let sku = select_sku(199e6).expect("a SKU must fit");
        assert_approx(
            sku.capacity_per_pch(),
            192.0 * 1024.0 * 1024.0,
            1e-9,
            "selected SKU MiB/core",
        );
        assert_eq!(sku.config.ranks, 2);
        assert_eq!(sku.config.banks_per_group, 1);
        assert_approx(sku.config.subarray_scale, 1.0, 1e-12, "sub-arrays");
    }

    #[test]
    fn sku_selection_none_when_too_large() {
        // Largest per-core capacity is 4 ranks x 4 banks x 1.0 = 1536 MiB.
        assert!(select_sku(2e9).is_none());
        assert!(select_sku(1.6e9).is_some());
    }

    #[test]
    fn sku_selection_smallest_wins() {
        let tiny = select_sku(1.0).expect("smallest SKU");
        // 1 rank x 1 bank x 0.5 sub-arrays = 48 MiB/core.
        assert_approx(
            tiny.capacity_per_pch(),
            48.0 * 1024.0 * 1024.0,
            1e-9,
            "smallest SKU",
        );
    }

    #[test]
    fn energy_spans_fig5_range() {
        // Fig. 5 (right): energies between ~1.4 and ~3.5 pJ/bit.
        let pts = enumerate_design_space();
        let min = pts
            .iter()
            .map(|p| p.energy_pj_per_bit)
            .fold(f64::INFINITY, f64::min);
        let max = pts.iter().map(|p| p.energy_pj_per_bit).fold(0.0, f64::max);
        assert!(min > 1.2 && min < 1.6, "min energy {min}");
        assert!(max > 3.3 && max < 3.6, "max energy {max}");
    }

    #[test]
    fn bw_per_cap_spans_fig5_range() {
        // Fig. 5 (right) x-axis reaches ~700/s at the smallest devices.
        let pts = enumerate_design_space();
        // Paper (Section VIII): "a BW/Cap of 682 (the highest in our
        // design space)" — 636/s in strict SI units.
        let max = pts.iter().map(|p| p.bw_per_cap).fold(0.0, f64::max);
        assert_approx(max, 682.0, 0.08, "max BW/Cap");
    }
}
