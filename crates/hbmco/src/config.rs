//! HBM-CO stack configuration and derived bandwidth/capacity geometry.

use std::fmt;

/// Capacity of a single DRAM bank at 1.0× sub-array scaling, in bytes.
///
/// 24 MiB per bank: the HBM3e-like baseline (4 ranks × 4 layers × 4
/// channels × 2 pseudo-channels × 4 bank groups × 4 banks = 2048 banks)
/// totals exactly 48 GiB, matching the "48 GB" HBM3e stack the paper
/// cites (DRAM capacities are binary).
pub const BANK_CAPACITY_BYTES: f64 = 24.0 * 1024.0 * 1024.0;

/// Bandwidth of one pseudo-channel: 256 bits per 1 GHz cycle = 32 GB/s,
/// as described in Section III of the paper.
pub const PCH_BANDWIDTH: f64 = 32e9;

/// Parameterised HBM-CO stack configuration.
///
/// Bandwidth is set by the interface geometry (`layers_per_rank ×
/// channels_per_layer × pseudo_channels` pseudo-channels at 32 GB/s each);
/// only one rank drives the interface at a time, and only one bank per
/// bank group is needed to saturate a pseudo-channel (sub-array level
/// parallelism), so `ranks`, `banks_per_group` and `subarray_scale` are
/// pure capacity knobs — the paper's key insight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HbmCoConfig {
    /// Number of ranks stacked on the shared interface (1–4). Capacity
    /// scales linearly; bandwidth is unchanged.
    pub ranks: u32,
    /// DRAM dies per rank (HBM convention: 4).
    pub layers_per_rank: u32,
    /// Channels per DRAM layer (1–4). Scales bandwidth *and* capacity,
    /// leaving BW/Cap unchanged while shrinking the die and shoreline.
    pub channels_per_layer: u32,
    /// Pseudo-channels per channel (HBM convention: 2).
    pub pseudo_channels: u32,
    /// Bank groups per pseudo-channel (HBM convention: 4).
    pub bank_groups: u32,
    /// Banks per bank group (1, 2 or 4). Pure capacity knob.
    pub banks_per_group: u32,
    /// Sub-array scaling of bank capacity (0.5, 0.75 or 1.0). Pure
    /// capacity knob.
    pub subarray_scale: f64,
}

/// Error returned by [`HbmCoConfig::validate`] for out-of-range fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    field: &'static str,
    detail: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid HBM-CO config: {} ({})", self.field, self.detail)
    }
}

impl std::error::Error for ConfigError {}

impl HbmCoConfig {
    /// The HBM3e-like baseline: 4 ranks × 4 layers, 4 channels/layer,
    /// full banks and sub-arrays → 48 GB, 1.024 TB/s.
    #[must_use]
    pub fn hbm3e_like() -> Self {
        Self {
            ranks: 4,
            layers_per_rank: 4,
            channels_per_layer: 4,
            pseudo_channels: 2,
            bank_groups: 4,
            banks_per_group: 4,
            subarray_scale: 1.0,
        }
    }

    /// The paper's candidate Pareto-optimal HBM-CO: ranks 4→1,
    /// banks/group 4→1, channels/layer 4→1, keeping 4 layers per rank →
    /// 768 MiB, 256 GB/s, BW/Cap ≈ 318/s (the paper's decimal-unit
    /// convention reports 341/s).
    #[must_use]
    pub fn candidate() -> Self {
        Self {
            ranks: 1,
            channels_per_layer: 1,
            banks_per_group: 1,
            ..Self::hbm3e_like()
        }
    }

    /// The Fig. 9 optimum for Llama3-405B on a 64-CU RPU: 2 ranks,
    /// 1 bank/group, 1.0× sub-arrays → 192 MB per core (pseudo-channel).
    #[must_use]
    pub fn optimal_405b_64cu() -> Self {
        Self {
            ranks: 2,
            ..Self::candidate()
        }
    }

    /// Checks all fields against the manufacturable ranges used in the
    /// paper's design space.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending field.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |field, detail: String| Err(ConfigError { field, detail });
        if !(1..=4).contains(&self.ranks) {
            return err("ranks", format!("{} not in 1..=4", self.ranks));
        }
        if self.layers_per_rank != 4 {
            return err("layers_per_rank", format!("{} != 4", self.layers_per_rank));
        }
        if !(1..=4).contains(&self.channels_per_layer) {
            return err(
                "channels_per_layer",
                format!("{} not in 1..=4", self.channels_per_layer),
            );
        }
        if self.pseudo_channels != 2 {
            return err("pseudo_channels", format!("{} != 2", self.pseudo_channels));
        }
        if self.bank_groups != 4 {
            return err("bank_groups", format!("{} != 4", self.bank_groups));
        }
        if ![1, 2, 4].contains(&self.banks_per_group) {
            return err(
                "banks_per_group",
                format!("{} not in {{1,2,4}}", self.banks_per_group),
            );
        }
        if ![0.5, 0.75, 1.0].contains(&self.subarray_scale) {
            return err(
                "subarray_scale",
                format!("{} not in {{0.5,0.75,1.0}}", self.subarray_scale),
            );
        }
        Ok(())
    }

    /// Total DRAM dies in the stack.
    #[must_use]
    pub fn total_layers(&self) -> u32 {
        self.ranks * self.layers_per_rank
    }

    /// Pseudo-channels exposed on the interface (one active rank).
    #[must_use]
    pub fn num_pchs(&self) -> u32 {
        self.layers_per_rank * self.channels_per_layer * self.pseudo_channels
    }

    /// Stack bandwidth in bytes/second.
    #[must_use]
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        f64::from(self.num_pchs()) * PCH_BANDWIDTH
    }

    /// Stack capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> f64 {
        f64::from(self.ranks)
            * f64::from(self.layers_per_rank)
            * f64::from(self.channels_per_layer)
            * f64::from(self.pseudo_channels)
            * f64::from(self.bank_groups)
            * f64::from(self.banks_per_group)
            * self.subarray_scale
            * BANK_CAPACITY_BYTES
    }

    /// Capacity behind a single pseudo-channel, i.e. per RPU core, in
    /// bytes.
    #[must_use]
    pub fn capacity_per_pch(&self) -> f64 {
        self.capacity_bytes() / f64::from(self.num_pchs())
    }

    /// Capacity per DRAM die, in bytes (drives wire-length scaling).
    #[must_use]
    pub fn capacity_per_layer(&self) -> f64 {
        self.capacity_bytes() / f64::from(self.total_layers())
    }

    /// Bandwidth-to-capacity ratio in 1/seconds — the paper's key metric
    /// for latency-bound inference.
    #[must_use]
    pub fn bw_per_cap(&self) -> f64 {
        self.bandwidth_bytes_per_s() / self.capacity_bytes()
    }

    /// Short human-readable label, e.g. `R1 B1 C1 S1.00`.
    #[must_use]
    pub fn label(&self) -> String {
        format!(
            "R{} B{} C{} S{:.2}",
            self.ranks, self.banks_per_group, self.channels_per_layer, self.subarray_scale
        )
    }
}

impl fmt::Display for HbmCoConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ranks | {} banks/group | {} ch/layer | {:.2}x sub-arrays",
            self.ranks, self.banks_per_group, self.channels_per_layer, self.subarray_scale
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rpu_util::assert_approx;
    use rpu_util::units::{GIB, MIB};

    #[test]
    fn hbm3e_like_geometry() {
        let c = HbmCoConfig::hbm3e_like();
        c.validate().unwrap();
        assert_approx(c.capacity_bytes(), 48.0 * GIB, 1e-9, "HBM3e capacity");
        assert_approx(c.bandwidth_bytes_per_s(), 1024e9, 1e-9, "HBM3e bandwidth");
        assert_eq!(c.num_pchs(), 32);
        assert_eq!(c.total_layers(), 16);
        // Paper: BW/Cap ~ 27/s for an HBM3e stack (1280/48); our 1 TB/s
        // convention gives ~21/s — same order.
        assert!(c.bw_per_cap() > 15.0 && c.bw_per_cap() < 30.0);
    }

    #[test]
    fn candidate_geometry() {
        let c = HbmCoConfig::candidate();
        c.validate().unwrap();
        // Paper labels this "768 MB"; exactly 1/64 of the 48 GiB stack.
        assert_approx(c.capacity_bytes(), 768.0 * MIB, 1e-9, "candidate capacity");
        assert_approx(
            c.bandwidth_bytes_per_s(),
            256e9,
            1e-9,
            "candidate bandwidth",
        );
        // Paper: BW/Cap = 341 in its decimal convention; 318 in strict SI.
        assert_approx(c.bw_per_cap(), 341.3, 0.08, "candidate BW/Cap");
        assert_eq!(c.num_pchs(), 8);
        assert_approx(c.capacity_per_pch(), 96.0 * MIB, 1e-9, "candidate MiB/core");
    }

    #[test]
    fn fig9_optimum_is_192mb_per_core() {
        let c = HbmCoConfig::optimal_405b_64cu();
        c.validate().unwrap();
        assert_approx(
            c.capacity_per_pch(),
            192.0 * MIB,
            1e-9,
            "Fig.9 optimum MiB/core",
        );
        // Bandwidth is unchanged by the extra rank.
        assert_approx(c.bandwidth_bytes_per_s(), 256e9, 1e-9, "Fig.9 optimum BW");
    }

    #[test]
    fn capacity_knobs_do_not_change_bandwidth() {
        let base = HbmCoConfig::candidate();
        for ranks in 1..=4 {
            for banks in [1, 2, 4] {
                for sa in [0.5, 0.75, 1.0] {
                    let c = HbmCoConfig {
                        ranks,
                        banks_per_group: banks,
                        subarray_scale: sa,
                        ..base
                    };
                    assert_eq!(c.bandwidth_bytes_per_s(), base.bandwidth_bytes_per_s());
                }
            }
        }
    }

    #[test]
    fn channels_preserve_bw_per_cap() {
        let c1 = HbmCoConfig {
            channels_per_layer: 1,
            ..HbmCoConfig::hbm3e_like()
        };
        let c4 = HbmCoConfig::hbm3e_like();
        assert_approx(
            c1.bw_per_cap(),
            c4.bw_per_cap(),
            1e-12,
            "channels BW/Cap invariance",
        );
    }

    #[test]
    fn validation_errors_name_fields() {
        let bad = HbmCoConfig {
            ranks: 7,
            ..HbmCoConfig::hbm3e_like()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.to_string().contains("ranks"));

        let bad = HbmCoConfig {
            banks_per_group: 3,
            ..HbmCoConfig::hbm3e_like()
        };
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("banks_per_group"));

        let bad = HbmCoConfig {
            subarray_scale: 0.9,
            ..HbmCoConfig::hbm3e_like()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn display_is_fig9_style() {
        let s = HbmCoConfig::optimal_405b_64cu().to_string();
        assert!(s.contains("2 ranks"));
        assert!(s.contains("1 banks/group"));
    }
}
