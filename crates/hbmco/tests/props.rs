//! Property-based tests for the HBM-CO model invariants.

use proptest::prelude::*;
use rpu_hbmco::{
    bandwidth_per_cost, cost_per_gb, energy_per_bit, module_cost, select_sku, HbmCoConfig,
};

fn arb_config() -> impl Strategy<Value = HbmCoConfig> {
    (
        1u32..=4,
        prop::sample::select(vec![1u32, 2, 4]),
        1u32..=4,
        prop::sample::select(vec![0.5f64, 0.75, 1.0]),
    )
        .prop_map(
            |(ranks, banks_per_group, channels_per_layer, subarray_scale)| HbmCoConfig {
                ranks,
                banks_per_group,
                channels_per_layer,
                subarray_scale,
                ..HbmCoConfig::hbm3e_like()
            },
        )
}

proptest! {
    #[test]
    fn configs_in_sweep_validate(cfg in arb_config()) {
        prop_assert!(cfg.validate().is_ok());
    }

    #[test]
    fn energy_bounded_by_calibration_endpoints(cfg in arb_config()) {
        let e = energy_per_bit(&cfg).total();
        prop_assert!(e > 1.0 && e < 3.6, "energy {e} outside plausible range");
    }

    #[test]
    fn energy_components_positive(cfg in arb_config()) {
        let e = energy_per_bit(&cfg);
        prop_assert!(e.activation > 0.0 && e.movement > 0.0 && e.tsv > 0.0 && e.io > 0.0);
    }

    #[test]
    fn adding_ranks_never_reduces_energy(cfg in arb_config()) {
        prop_assume!(cfg.ranks < 4);
        let more = HbmCoConfig { ranks: cfg.ranks + 1, ..cfg };
        let (e_more, e_base) = (energy_per_bit(&more).total(), energy_per_bit(&cfg).total());
        prop_assert!(e_more >= e_base);
    }

    #[test]
    fn module_cost_monotone_in_every_capacity_knob(cfg in arb_config()) {
        let base = module_cost(&cfg);
        if cfg.ranks < 4 {
            let more = HbmCoConfig { ranks: cfg.ranks + 1, ..cfg };
            let cost = module_cost(&more);
            prop_assert!(cost > base);
        }
        if cfg.banks_per_group < 4 {
            let more = HbmCoConfig { banks_per_group: cfg.banks_per_group * 2, ..cfg };
            let cost = module_cost(&more);
            prop_assert!(cost > base);
        }
        if cfg.subarray_scale < 1.0 {
            let more = HbmCoConfig { subarray_scale: 1.0, ..cfg };
            let cost = module_cost(&more);
            prop_assert!(cost > base);
        }
    }

    #[test]
    fn cost_per_gb_never_below_baseline(cfg in arb_config()) {
        // Removing capacity can only hurt amortisation of fixed costs.
        prop_assert!(cost_per_gb(&cfg) >= 1.0 - 1e-9);
    }

    #[test]
    fn bandwidth_per_cost_improves_for_small_stacks(cfg in arb_config()) {
        prop_assume!(cfg.capacity_bytes() < 4e9);
        prop_assert!(bandwidth_per_cost(&cfg) > 1.0);
    }

    #[test]
    fn sku_selection_satisfies_requirement(req_mb in 1.0f64..1400.0) {
        let req = req_mb * 1e6;
        if let Some(sku) = select_sku(req) {
            prop_assert!(sku.capacity_per_pch() >= req);
            // Minimality: no frontier SKU strictly between req and chosen.
            for other in rpu_hbmco::pareto_frontier() {
                if other.capacity_per_pch() >= req {
                    prop_assert!(other.capacity_per_pch() >= sku.capacity_per_pch());
                }
            }
        }
    }

    #[test]
    fn bw_per_cap_independent_of_channels(cfg in arb_config()) {
        let other = HbmCoConfig { channels_per_layer: 1, ..cfg };
        let a = cfg.bw_per_cap();
        let b = other.bw_per_cap();
        prop_assert!((a - b).abs() < 1e-9 * a.max(b));
    }
}
