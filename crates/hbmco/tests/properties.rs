//! Property tests for the HBM-CO analytical model: the whole
//! configuration lattice must behave physically, not just the paper's
//! two anchor points.

use proptest::prelude::*;
use rpu_hbmco::{
    bandwidth_per_cost, cost_per_gb, energy_per_bit, ideal_token_latency, module_cost, DesignPoint,
    HbmCoConfig,
};

fn any_cfg() -> impl Strategy<Value = HbmCoConfig> {
    (
        1u32..=4,
        prop_oneof![Just(1u32), Just(2), Just(4)],
        prop_oneof![Just(1u32), Just(2), Just(3), Just(4)],
        prop_oneof![Just(0.5f64), Just(0.75), Just(1.0)],
    )
        .prop_map(
            |(ranks, banks_per_group, channels_per_layer, subarray_scale)| HbmCoConfig {
                ranks,
                banks_per_group,
                channels_per_layer,
                subarray_scale,
                ..HbmCoConfig::candidate()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All derived quantities are positive and finite everywhere.
    #[test]
    fn derived_quantities_physical(cfg in any_cfg()) {
        prop_assert!(cfg.validate().is_ok());
        prop_assert!(cfg.capacity_bytes() > 0.0);
        prop_assert!(cfg.bandwidth_bytes_per_s() > 0.0);
        let e = energy_per_bit(&cfg).total();
        prop_assert!(e > 0.4 && e < 6.0, "pJ/bit {e}");
        prop_assert!(module_cost(&cfg) > 0.0);
        prop_assert!(cost_per_gb(&cfg).is_finite());
        prop_assert!(bandwidth_per_cost(&cfg) > 0.0);
    }

    /// Channels per layer add bandwidth *and* capacity; ranks add only
    /// capacity — the key structural insight of §III.
    #[test]
    fn channels_add_bandwidth_ranks_do_not(cfg in any_cfg()) {
        if cfg.channels_per_layer < 4 {
            let more_ch = HbmCoConfig { channels_per_layer: cfg.channels_per_layer + 1, ..cfg };
            prop_assert!(more_ch.bandwidth_bytes_per_s() > cfg.bandwidth_bytes_per_s());
            prop_assert!(more_ch.capacity_bytes() > cfg.capacity_bytes());
        }
        if cfg.ranks < 4 {
            let more_ranks = HbmCoConfig { ranks: cfg.ranks + 1, ..cfg };
            prop_assert_eq!(
                more_ranks.bandwidth_bytes_per_s(),
                cfg.bandwidth_bytes_per_s(),
                "ranks share the interface"
            );
            prop_assert!(more_ranks.capacity_bytes() > cfg.capacity_bytes());
        }
    }

    /// Sub-array scaling moves capacity without touching bandwidth, and
    /// saves energy (shorter internal wires).
    #[test]
    fn subarrays_trade_capacity_for_energy(cfg in any_cfg()) {
        if cfg.subarray_scale > 0.5 {
            let smaller = HbmCoConfig { subarray_scale: cfg.subarray_scale - 0.25, ..cfg };
            prop_assert!(smaller.capacity_bytes() < cfg.capacity_bytes());
            prop_assert_eq!(smaller.bandwidth_bytes_per_s(), cfg.bandwidth_bytes_per_s());
            prop_assert!(energy_per_bit(&smaller).total() <= energy_per_bit(&cfg).total());
        }
    }

    /// Cost per GB rises as capacity shrinks (fixed die costs dominate),
    /// yet the module itself gets cheaper.
    #[test]
    fn cost_tradeoff_direction(cfg in any_cfg()) {
        let hbm3e = HbmCoConfig::hbm3e_like();
        if cfg.capacity_bytes() < hbm3e.capacity_bytes() {
            prop_assert!(cost_per_gb(&cfg) >= cost_per_gb(&hbm3e) * 0.999);
            prop_assert!(module_cost(&cfg) <= module_cost(&hbm3e) * 1.001);
        }
    }

    /// Ideal token latency is exactly the inverse BW/Cap.
    #[test]
    fn latency_inverse_of_bw_per_cap(cfg in any_cfg()) {
        let t = ideal_token_latency(cfg.bw_per_cap());
        prop_assert!((t * cfg.bw_per_cap() - 1.0).abs() < 1e-12);
    }

    /// `DesignPoint::evaluate` agrees with the underlying functions.
    #[test]
    fn design_point_is_consistent(cfg in any_cfg()) {
        let p = DesignPoint::evaluate(cfg);
        prop_assert!((p.capacity_bytes - cfg.capacity_bytes()).abs() < 1.0);
        prop_assert!((p.energy_pj_per_bit - energy_per_bit(&cfg).total()).abs() < 1e-12);
        prop_assert!((p.module_cost - module_cost(&cfg)).abs() < 1e-12);
        prop_assert!((p.bw_per_cap - cfg.bw_per_cap()).abs() < 1e-9);
    }
}

#[test]
fn headline_bandwidth_per_dollar() {
    // §III: the candidate achieves ~5x higher bandwidth per dollar than
    // HBM3e.
    // Our cost model lands the candidate slightly cheaper than the
    // paper's 35x module-cost figure, so bandwidth/$ comes out a bit
    // above its quoted 5x.
    let ratio = bandwidth_per_cost(&HbmCoConfig::candidate())
        / bandwidth_per_cost(&HbmCoConfig::hbm3e_like());
    assert!(
        ratio > 4.0 && ratio < 11.0,
        "bandwidth/$ ratio {ratio} (paper: ~5x)"
    );
}
