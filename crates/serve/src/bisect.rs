//! Divergence bisection: find the first event where two engines differ.
//!
//! When two engine builds (or two configurations that should be
//! equivalent) produce different reports for the same workload, the
//! interesting question is *which decision* first went a different
//! way. Because a run's [state digest](crate::ServeRun::state_digest)
//! hashes its full frozen state *including the append-only command
//! log*, divergence is monotone in the event index: once two runs make
//! a different decision at event `k`, their digests differ after every
//! `n > k` and agree after every `n <= k`. That monotonicity is what
//! lets [`bisect_divergence`] binary-search the first divergent event
//! with `O(log n)` probes instead of a linear scan.
//!
//! A *probe* is a closure `FnMut(u64) -> ReportDigest` that runs its
//! engine from scratch for at most `n` events and returns the state
//! digest at that point. Probes must be deterministic: calling
//! `probe(n)` twice must return the same digest, so any stateful cost
//! model, policy or router must be constructed fresh inside the
//! closure on every call.

use crate::digest::ReportDigest;

/// What [`bisect_divergence`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BisectOutcome {
    /// The two engines agree after every probed event count — no
    /// divergence within the given horizon.
    Identical,
    /// The two engines already disagree before executing any event:
    /// their initial states (workload fingerprint, configuration, or
    /// router state) differ, so no event can be blamed.
    InitialStateDiffers,
    /// The engines agree up to and including event `event - 1` and
    /// first disagree while executing event `event` (0-based index
    /// into the command log).
    DivergedAt {
        /// 0-based index of the first divergent event.
        event: u64,
    },
}

impl BisectOutcome {
    /// The offending event index, if the engines diverged mid-run.
    #[must_use]
    pub fn event(&self) -> Option<u64> {
        match *self {
            Self::DivergedAt { event } => Some(event),
            _ => None,
        }
    }
}

/// Binary-searches the first event index (in `0..max_events`) where
/// the two probes' state digests diverge.
///
/// `probe(n)` must run its engine from a fresh start for at most `n`
/// events and return the state digest there; see the [module
/// docs](self) for the determinism contract. `max_events` is the
/// horizon to search — typically the recorded run's
/// [`events()`](crate::ServeRun::events) count (probing past the end
/// of a run is fine: a completed run simply stops stepping, so its
/// digest plateaus).
///
/// Costs `2 + ceil(log2(max_events))` probes, each of which replays
/// from scratch — `O(n log n)` simulated events overall.
pub fn bisect_divergence(
    max_events: u64,
    probe_a: &mut dyn FnMut(u64) -> ReportDigest,
    probe_b: &mut dyn FnMut(u64) -> ReportDigest,
) -> BisectOutcome {
    if probe_a(0) != probe_b(0) {
        return BisectOutcome::InitialStateDiffers;
    }
    if max_events == 0 || probe_a(max_events) == probe_b(max_events) {
        return BisectOutcome::Identical;
    }
    // Invariant: digests agree after `lo` events, differ after `hi`.
    let (mut lo, mut hi) = (0u64, max_events);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if probe_a(mid) == probe_b(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // First differing state is after `hi` events, so the event with
    // 0-based index `hi - 1` is the first divergent one.
    BisectOutcome::DivergedAt { event: hi - 1 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::Workload;
    use crate::cost::AnalyticCostModel;
    use crate::policy::{ActiveRequest, Fifo, QueuedRequest, SchedulingPolicy};
    use crate::scheduler::{ServeConfig, ServeRun};

    /// Behaves exactly like [`Fifo`] until its `deviate_on`-th
    /// `select` call, where it picks the back of the queue instead —
    /// a seeded synthetic divergence with a knowable first event.
    struct DivergeAfter {
        inner: Fifo,
        deviate_on: u32,
        calls: u32,
    }

    impl SchedulingPolicy for DivergeAfter {
        fn name(&self) -> &'static str {
            "diverge-after"
        }

        fn select(&mut self, queue: &[QueuedRequest], clock: f64) -> Option<usize> {
            self.calls += 1;
            if self.calls == self.deviate_on && queue.len() > 1 {
                return Some(queue.len() - 1);
            }
            self.inner.select(queue, clock)
        }

        fn preempt_victim(
            &mut self,
            active: &[ActiveRequest],
            candidate: &QueuedRequest,
            clock: f64,
        ) -> Option<usize> {
            self.inner.preempt_victim(active, candidate, clock)
        }
    }

    fn digest_after(
        wl: &Workload,
        cfg: &ServeConfig,
        policy: &mut dyn SchedulingPolicy,
        events: u64,
    ) -> ReportDigest {
        let mut run = ServeRun::new(wl, cfg);
        let mut cost = AnalyticCostModel::small();
        for _ in 0..events {
            if !run.step(&mut cost, policy) {
                break;
            }
        }
        run.state_digest()
    }

    #[test]
    fn identical_engines_report_identical() {
        let wl = Workload::poisson(900.0, 96, 16, 24);
        let cfg = ServeConfig::default();
        let total = {
            let mut run = ServeRun::new(&wl, &cfg);
            let mut cost = AnalyticCostModel::small();
            while run.step(&mut cost, &mut Fifo) {}
            run.events()
        };
        let outcome = bisect_divergence(
            total,
            &mut |n| digest_after(&wl, &cfg, &mut Fifo, n),
            &mut |n| digest_after(&wl, &cfg, &mut Fifo, n),
        );
        assert_eq!(outcome, BisectOutcome::Identical);
        assert_eq!(outcome.event(), None);
    }

    #[test]
    fn differing_configs_differ_before_any_event() {
        let wl = Workload::poisson(900.0, 96, 16, 24);
        let a = ServeConfig::default();
        let b = ServeConfig {
            max_batch: a.max_batch + 1,
            ..a
        };
        let outcome =
            bisect_divergence(64, &mut |n| digest_after(&wl, &a, &mut Fifo, n), &mut |n| {
                digest_after(&wl, &b, &mut Fifo, n)
            });
        assert_eq!(outcome, BisectOutcome::InitialStateDiffers);
    }

    #[test]
    fn pinpoints_a_seeded_divergence_to_the_exact_event() {
        // High arrival rate so the queue has depth when the wrapped
        // policy deviates — otherwise picking "the back" is the front.
        let wl = Workload::poisson(4000.0, 160, 24, 32);
        let cfg = ServeConfig::default();

        let fresh_divergent = || DivergeAfter {
            inner: Fifo,
            deviate_on: 7,
            calls: 0,
        };

        // Ground truth by linear scan: step both runs in lockstep and
        // find the first event count where the digests differ.
        let mut a = ServeRun::new(&wl, &cfg);
        let mut b = ServeRun::new(&wl, &cfg);
        let mut cost_a = AnalyticCostModel::small();
        let mut cost_b = AnalyticCostModel::small();
        let mut policy_b = fresh_divergent();
        let mut first_divergent_event = None;
        let mut n = 0u64;
        loop {
            let more_a = a.step(&mut cost_a, &mut Fifo);
            let more_b = b.step(&mut cost_b, &mut policy_b);
            n += 1;
            if a.state_digest() != b.state_digest() {
                first_divergent_event = Some(n - 1);
                break;
            }
            if !more_a && !more_b {
                break;
            }
        }
        let expected = first_divergent_event.expect("seeded divergence must fire");
        assert!(
            expected > 0,
            "divergence should not be at the very first event"
        );

        // Finish run A to get the search horizon.
        while a.step(&mut cost_a, &mut Fifo) {}
        let outcome = bisect_divergence(
            a.events(),
            &mut |k| digest_after(&wl, &cfg, &mut Fifo, k),
            &mut |k| digest_after(&wl, &cfg, &mut fresh_divergent(), k),
        );
        assert_eq!(outcome, BisectOutcome::DivergedAt { event: expected });
        assert_eq!(outcome.event(), Some(expected));
    }

    #[test]
    fn zero_horizon_with_equal_initial_state_is_identical() {
        let wl = Workload::poisson(900.0, 96, 16, 24);
        let cfg = ServeConfig::default();
        let outcome = bisect_divergence(
            0,
            &mut |n| digest_after(&wl, &cfg, &mut Fifo, n),
            &mut |n| digest_after(&wl, &cfg, &mut Fifo, n),
        );
        assert_eq!(outcome, BisectOutcome::Identical);
    }
}
