//! Precomputed latency lookup tables.
//!
//! The serving hot path prices every decode iteration and every
//! prefill. Driving those queries through a simulator-backed
//! [`CostModel`] costs a hash lookup (memoised) or a full simulation
//! (cold) per event; a [`LatencyLut`] flattens the model once into
//! dense arrays so steady-state pricing is an array read plus, off the
//! grid, one bilinear blend.
//!
//! The decode surface is sampled on a batch-size × context-length grid
//! and interpolated bilinearly between knots; prefill is sampled on a
//! prompt-length axis and interpolated linearly. Queries **at** a knot
//! read the stored sample exactly — no arithmetic — so a LUT whose grid
//! covers every point the scheduler can ask for (batch `1..=max_batch`,
//! contexts at the scheduler's bucket boundaries) reproduces the source
//! model bit-for-bit. Off-grid queries are clamped to the table's hull
//! and interpolated; for a model of the form `a + b·batch + c·ctx +
//! d·batch·ctx` (the analytic machine, and the RPU decode surface to
//! first order) bilinear interpolation is *exact* everywhere, and for
//! smooth surfaces the error shrinks quadratically with knot spacing.
//!
//! # Plugging a custom `CostModel` through the builder
//!
//! Any [`CostModel`] — simulator-backed, closed-form, or measured — can
//! be flattened; the builder samples it once per knot and the LUT never
//! touches it again:
//!
//! ```
//! use rpu_serve::{AnalyticCostModel, CostModel, LutBuilder};
//!
//! // A custom machine: decode cost quantised to 0.1 ms steps.
//! struct Quantised(AnalyticCostModel);
//! impl CostModel for Quantised {
//!     fn decode_step_s(&mut self, batch: u32, ctx: u32) -> f64 {
//!         (self.0.decode_step_s(batch, ctx) / 1e-4).ceil() * 1e-4
//!     }
//!     fn prefill_s(&mut self, prompt_len: u32) -> f64 {
//!         self.0.prefill_s(prompt_len)
//!     }
//!     fn fits(&self, t: u64) -> bool {
//!         self.0.fits(t)
//!     }
//!     fn kv_capacity_tokens(&self) -> u64 {
//!         self.0.kv_capacity_tokens()
//!     }
//! }
//!
//! let mut machine = Quantised(AnalyticCostModel::small());
//! let lut = LutBuilder::new(8, 1024)
//!     .context_step(256)
//!     .prefill_step(64)
//!     .build(&mut machine);
//! // Knots read back exactly; the LUT is itself a CostModel.
//! let mut lut = lut;
//! assert_eq!(lut.decode_step_s(4, 512), machine.decode_step_s(4, 512));
//! ```

use crate::cost::CostModel;

/// A dense, immutable latency table: decode over batch × context,
/// prefill over prompt length. Build one per SKU with [`LutBuilder`];
/// query it through the [`CostModel`] impl.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyLut {
    /// Batch knots `1..=max_batch` (dense: index = batch - 1).
    max_batch: u32,
    /// Context knots, ascending, non-empty.
    ctx_knots: Vec<u32>,
    /// Row-major decode samples: `[batch - 1][ctx_index]`.
    decode_s: Vec<f64>,
    /// Prompt-length knots, ascending, starting at 0.
    prefill_knots: Vec<u32>,
    /// Prefill samples per prompt knot.
    prefill_s: Vec<f64>,
    kv_capacity_tokens: u64,
}

impl LatencyLut {
    /// Largest batch size the decode table covers.
    #[must_use]
    pub fn max_batch(&self) -> u32 {
        self.max_batch
    }

    /// The context knots of the decode grid.
    #[must_use]
    pub fn context_knots(&self) -> &[u32] {
        &self.ctx_knots
    }

    /// The prompt-length knots of the prefill axis.
    #[must_use]
    pub fn prefill_knots(&self) -> &[u32] {
        &self.prefill_knots
    }

    /// Total stored samples (decode + prefill) — the LUT's footprint.
    #[must_use]
    pub fn samples(&self) -> usize {
        self.decode_s.len() + self.prefill_s.len()
    }

    /// Index of the knot interval containing `x`: returns `(lo, hi)`
    /// knot indices with `lo <= hi`, equal when `x` sits on a knot or
    /// outside the hull (clamped).
    fn bracket(knots: &[u32], x: u32) -> (usize, usize) {
        match knots.binary_search(&x) {
            Ok(i) => (i, i),
            Err(0) => (0, 0),
            Err(i) if i == knots.len() => (i - 1, i - 1),
            Err(i) => (i - 1, i),
        }
    }

    fn decode_at(&self, b_idx: usize, c_idx: usize) -> f64 {
        self.decode_s[b_idx * self.ctx_knots.len() + c_idx]
    }

    /// Decode latency by table lookup. Exact array read when `(batch,
    /// max_context)` lies on the grid; bilinear blend of the four
    /// surrounding knots otherwise, clamped to the table hull.
    #[must_use]
    pub fn decode_lookup_s(&self, batch: u32, max_context: u32) -> f64 {
        let b = batch.clamp(1, self.max_batch);
        let b_lo = (b - 1) as usize;
        let (c_lo, c_hi) = Self::bracket(&self.ctx_knots, max_context);
        if c_lo == c_hi {
            return self.decode_at(b_lo, c_lo);
        }
        let x0 = f64::from(self.ctx_knots[c_lo]);
        let x1 = f64::from(self.ctx_knots[c_hi]);
        let t = (f64::from(max_context) - x0) / (x1 - x0);
        let y0 = self.decode_at(b_lo, c_lo);
        let y1 = self.decode_at(b_lo, c_hi);
        y0 + (y1 - y0) * t
    }

    /// Prefill latency by table lookup: exact at knots, linear between
    /// them, clamped at the ends.
    #[must_use]
    pub fn prefill_lookup_s(&self, prompt_len: u32) -> f64 {
        let (lo, hi) = Self::bracket(&self.prefill_knots, prompt_len);
        if lo == hi {
            return self.prefill_s[lo];
        }
        let x0 = f64::from(self.prefill_knots[lo]);
        let x1 = f64::from(self.prefill_knots[hi]);
        let t = (f64::from(prompt_len) - x0) / (x1 - x0);
        self.prefill_s[lo] + (self.prefill_s[hi] - self.prefill_s[lo]) * t
    }
}

impl CostModel for LatencyLut {
    fn decode_step_s(&mut self, batch: u32, max_context: u32) -> f64 {
        self.decode_lookup_s(batch, max_context)
    }

    fn prefill_s(&mut self, prompt_len: u32) -> f64 {
        self.prefill_lookup_s(prompt_len)
    }

    fn fits(&self, context_tokens: u64) -> bool {
        context_tokens <= self.kv_capacity_tokens
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.kv_capacity_tokens
    }
}

/// Builds a [`LatencyLut`] by sampling a source [`CostModel`] on a
/// configurable grid. Batch is always sampled densely (`1..=max_batch`,
/// matching every batch size the scheduler can form); context and
/// prompt axes default to the scheduler's bucket spacing.
#[derive(Debug, Clone)]
pub struct LutBuilder {
    max_batch: u32,
    longest_context: u32,
    context_step: u32,
    prefill_step: u32,
    prefill_tolerance: Option<f64>,
}

impl LutBuilder {
    /// A builder covering batches `1..=max_batch` and contexts
    /// `0..=longest_context`. Context/prompt knot spacing defaults to
    /// 128 tokens; tune with [`LutBuilder::context_step`] /
    /// [`LutBuilder::prefill_step`].
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    #[must_use]
    pub fn new(max_batch: u32, longest_context: u32) -> Self {
        assert!(max_batch > 0, "LUT needs at least batch size 1");
        Self {
            max_batch,
            longest_context,
            context_step: 128,
            prefill_step: 128,
            prefill_tolerance: None,
        }
    }

    /// Sets the context-axis knot spacing. Use the scheduler's
    /// `seq_bucket` so every bucketed context the scheduler prices is a
    /// knot — then decode pricing is bit-identical to the source model.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[must_use]
    pub fn context_step(mut self, step: u32) -> Self {
        assert!(step > 0, "context step must be positive");
        self.context_step = step;
        self
    }

    /// Sets the prompt-axis knot spacing for the prefill table.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero.
    #[must_use]
    pub fn prefill_step(mut self, step: u32) -> Self {
        assert!(step > 0, "prefill step must be positive");
        self.prefill_step = step;
        self
    }

    /// Adaptively refines the prefill axis until linear interpolation
    /// at every interval midpoint is within `rel` of the source model.
    ///
    /// Uniform spacing cannot bound interpolation error across a
    /// *kink* — prefill surfaces typically have one where a fixed
    /// launch/bandwidth floor gives way to compute-bound growth — so
    /// the builder bisects each interval whose midpoint interpolates
    /// worse than `rel` (relative), down to single-token spacing.
    /// Extra samples cost one `prefill_s` call each; the source model
    /// is queried, never simulated twice (memoised models make this
    /// cheap either way).
    ///
    /// # Panics
    ///
    /// Panics if `rel` is not finite and positive.
    #[must_use]
    pub fn prefill_tolerance(mut self, rel: f64) -> Self {
        assert!(
            rel.is_finite() && rel > 0.0,
            "prefill tolerance must be a positive fraction"
        );
        self.prefill_tolerance = Some(rel);
        self
    }

    /// Recursively bisects `(lo, hi)` until the midpoint interpolation
    /// error is within `rel`, pushing accepted interior knots in
    /// ascending order. Depth is bounded by `log2(hi - lo)` ≤ 32.
    fn refine_prefill(
        model: &mut dyn CostModel,
        (lo, f_lo): (u32, f64),
        (hi, f_hi): (u32, f64),
        rel: f64,
        out: &mut Vec<(u32, f64)>,
    ) {
        let mid = lo + (hi - lo) / 2;
        if mid == lo {
            return;
        }
        let f_mid = model.prefill_s(mid);
        let t = f64::from(mid - lo) / f64::from(hi - lo);
        let interp = f_lo + (f_hi - f_lo) * t;
        if (interp - f_mid).abs() <= rel * f_mid.abs() {
            return;
        }
        Self::refine_prefill(model, (lo, f_lo), (mid, f_mid), rel, out);
        out.push((mid, f_mid));
        Self::refine_prefill(model, (mid, f_mid), (hi, f_hi), rel, out);
    }

    fn axis(longest: u32, step: u32) -> Vec<u32> {
        let mut knots = Vec::new();
        let mut x = 0u32;
        loop {
            knots.push(x);
            if x >= longest {
                break;
            }
            x = x.saturating_add(step).min(longest);
        }
        knots
    }

    /// Samples `model` at every knot and freezes the result. The source
    /// model is only used here — the returned LUT owns plain arrays and
    /// the model's KV capacity.
    #[must_use]
    pub fn build(&self, model: &mut dyn CostModel) -> LatencyLut {
        let ctx_knots = Self::axis(self.longest_context, self.context_step);
        let mut decode_s = Vec::with_capacity(self.max_batch as usize * ctx_knots.len());
        for batch in 1..=self.max_batch {
            for &ctx in &ctx_knots {
                decode_s.push(model.decode_step_s(batch, ctx));
            }
        }
        let coarse = Self::axis(self.longest_context, self.prefill_step);
        let mut samples: Vec<(u32, f64)> =
            coarse.iter().map(|&p| (p, model.prefill_s(p))).collect();
        if let Some(rel) = self.prefill_tolerance {
            let mut refined = Vec::with_capacity(samples.len());
            for w in 0..samples.len() {
                refined.push(samples[w]);
                if let Some(&next) = samples.get(w + 1) {
                    Self::refine_prefill(model, samples[w], next, rel, &mut refined);
                }
            }
            samples = refined;
        }
        let (prefill_knots, prefill_s) = samples.into_iter().unzip();
        LatencyLut {
            max_batch: self.max_batch,
            ctx_knots,
            decode_s,
            prefill_knots,
            prefill_s,
            kv_capacity_tokens: model.kv_capacity_tokens(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AnalyticCostModel;

    fn build_small() -> (AnalyticCostModel, LatencyLut) {
        let mut m = AnalyticCostModel::small();
        let lut = LutBuilder::new(8, 1024)
            .context_step(128)
            .prefill_step(128)
            .build(&mut m);
        (m, lut)
    }

    #[test]
    fn exact_at_every_knot() {
        let (mut m, lut) = build_small();
        for batch in 1..=8 {
            for &ctx in lut.context_knots() {
                assert_eq!(
                    lut.decode_lookup_s(batch, ctx),
                    m.decode_step_s(batch, ctx),
                    "batch {batch} ctx {ctx}"
                );
            }
        }
        for &p in lut.prefill_knots() {
            assert_eq!(lut.prefill_lookup_s(p), m.prefill_s(p));
        }
    }

    #[test]
    fn bilinear_is_exact_for_the_analytic_surface() {
        // decode = a + d·batch·ctx is bilinear, so interpolation is
        // exact even off-grid (up to f64 rounding).
        let (mut m, lut) = build_small();
        for &(batch, ctx) in &[(3u32, 200u32), (7, 999), (1, 65), (8, 1)] {
            let got = lut.decode_lookup_s(batch, ctx);
            let want = m.decode_step_s(batch, ctx);
            assert!(
                (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                "batch {batch} ctx {ctx}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn queries_clamp_to_the_hull() {
        let (_, lut) = build_small();
        assert_eq!(lut.decode_lookup_s(0, 512), lut.decode_lookup_s(1, 512));
        assert_eq!(lut.decode_lookup_s(99, 512), lut.decode_lookup_s(8, 512));
        assert_eq!(lut.decode_lookup_s(4, 9999), lut.decode_lookup_s(4, 1024));
        assert_eq!(lut.prefill_lookup_s(9999), lut.prefill_lookup_s(1024));
    }

    #[test]
    fn capacity_passes_through() {
        let (m, lut) = build_small();
        assert_eq!(lut.kv_capacity_tokens(), m.kv_capacity_tokens);
        assert!(lut.fits(m.kv_capacity_tokens));
        assert!(!lut.fits(m.kv_capacity_tokens + 1));
    }

    #[test]
    fn axis_always_ends_on_the_longest_context() {
        // 1000 is not a multiple of 128: the last knot must still be
        // 1000 so the hull covers every in-range query.
        let mut m = AnalyticCostModel::small();
        let lut = LutBuilder::new(2, 1000).context_step(128).build(&mut m);
        assert_eq!(*lut.context_knots().last().unwrap(), 1000);
        assert_eq!(lut.context_knots()[0], 0);
    }

    #[test]
    fn prefill_tolerance_refines_across_a_kink() {
        // A prefill surface with a hard kink at 100 tokens: a 1 ms
        // floor, then linear growth. Uniform 128-token knots straddle
        // the kink and interpolate the midpoint ~30% high; the refined
        // axis must bound every interval midpoint to the tolerance.
        struct Kinked;
        impl CostModel for Kinked {
            fn decode_step_s(&mut self, _: u32, _: u32) -> f64 {
                1e-3
            }
            fn prefill_s(&mut self, prompt_len: u32) -> f64 {
                1e-3f64.max(f64::from(prompt_len) * 1e-5)
            }
            fn fits(&self, _: u64) -> bool {
                true
            }
            fn kv_capacity_tokens(&self) -> u64 {
                u64::MAX
            }
        }
        let coarse = LutBuilder::new(1, 1024).build(&mut Kinked);
        let refined = LutBuilder::new(1, 1024)
            .prefill_tolerance(0.005)
            .build(&mut Kinked);
        assert!(refined.prefill_knots().len() > coarse.prefill_knots().len());
        let mut m = Kinked;
        let knots = refined.prefill_knots().to_vec();
        for w in knots.windows(2) {
            let mid = w[0] + (w[1] - w[0]) / 2;
            let got = refined.prefill_lookup_s(mid);
            let want = m.prefill_s(mid);
            assert!(
                (got - want).abs() <= 0.005 * want,
                "prompt {mid}: {got} vs {want}"
            );
        }
        // Knots stay sorted and deduplicated after refinement.
        assert!(knots.windows(2).all(|w| w[0] < w[1]));
        // Knots still read back exactly.
        for &p in &knots {
            assert_eq!(refined.prefill_lookup_s(p), m.prefill_s(p));
        }
    }

    #[test]
    fn zero_context_axis_is_a_single_knot() {
        let mut m = AnalyticCostModel::small();
        let lut = LutBuilder::new(1, 0).build(&mut m);
        assert_eq!(lut.context_knots(), &[0]);
        assert_eq!(lut.decode_lookup_s(1, 0), m.decode_step_s(1, 0));
    }
}
