//! The cost-model boundary between the scheduler and a machine model.
//!
//! `rpu-serve` sits below `rpu-core` in the workspace layering, so it
//! cannot name `RpuSystem` directly. Instead the scheduler drives this
//! trait; `rpu-core` implements it on top of
//! `RpuSystem::token_latency`/`RpuSystem::fits` (with memoised simulator
//! calls), and the in-crate [`AnalyticCostModel`] provides a closed-form
//! memory-bandwidth machine for unit and property tests.

/// Machine costs as seen by the continuous-batching scheduler.
pub trait CostModel {
    /// Latency of one decode iteration emitting one token for each of
    /// `batch` concurrent queries at (bucketed) context `max_context`,
    /// seconds.
    fn decode_step_s(&mut self, batch: u32, max_context: u32) -> f64;

    /// Latency to prefill one request's `prompt_len` tokens, seconds.
    fn prefill_s(&mut self, prompt_len: u32) -> f64;

    /// `true` when a residency of `context_tokens` KV tokens (summed
    /// over all admitted requests, at their conservative maximum) fits
    /// the machine's memory alongside the weights.
    fn fits(&self, context_tokens: u64) -> bool;

    /// The largest KV residency (tokens) that [`CostModel::fits`]
    /// accepts — the capacity a replica publishes in its fleet
    /// telemetry so routers can reason about relative KV headroom
    /// across heterogeneous machines.
    fn kv_capacity_tokens(&self) -> u64;
}

/// A closed-form memory-bandwidth cost model: one decode iteration
/// streams the weights once plus every resident KV byte; prefill costs a
/// fixed time per prompt token. Used by the serve-crate test suites and
/// as a fast stand-in when no simulator is wanted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticCostModel {
    /// Time to stream the weights once, seconds (decode floor).
    pub weight_stream_s: f64,
    /// Extra seconds per resident KV token per iteration.
    pub kv_token_s: f64,
    /// Prefill seconds per prompt token.
    pub prefill_token_s: f64,
    /// KV capacity, tokens.
    pub kv_capacity_tokens: u64,
}

impl AnalyticCostModel {
    /// A small, fast machine for tests: 1 ms weight stream, light KV
    /// traffic, 4k-token KV capacity.
    #[must_use]
    pub const fn small() -> Self {
        Self {
            weight_stream_s: 1e-3,
            kv_token_s: 1e-7,
            prefill_token_s: 2e-6,
            kv_capacity_tokens: 4096,
        }
    }
}

impl CostModel for AnalyticCostModel {
    fn decode_step_s(&mut self, batch: u32, max_context: u32) -> f64 {
        self.weight_stream_s + self.kv_token_s * f64::from(batch) * f64::from(max_context)
    }

    fn prefill_s(&mut self, prompt_len: u32) -> f64 {
        self.prefill_token_s * f64::from(prompt_len)
    }

    fn fits(&self, context_tokens: u64) -> bool {
        context_tokens <= self.kv_capacity_tokens
    }

    fn kv_capacity_tokens(&self) -> u64 {
        self.kv_capacity_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_cost_grows_with_batch_and_context() {
        let mut m = AnalyticCostModel::small();
        let base = m.decode_step_s(1, 128);
        assert!(m.decode_step_s(8, 128) > base);
        assert!(m.decode_step_s(1, 4096) > base);
    }

    #[test]
    fn capacity_gate() {
        let m = AnalyticCostModel::small();
        assert!(m.fits(4096));
        assert!(!m.fits(4097));
    }

    #[test]
    fn published_capacity_is_the_fits_boundary() {
        let m = AnalyticCostModel::small();
        assert!(m.fits(m.kv_capacity_tokens()));
        assert!(!m.fits(m.kv_capacity_tokens() + 1));
    }
}
