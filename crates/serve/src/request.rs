//! Requests and per-request completion records.

use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// One inference request: a prompt to prefill and a number of output
/// tokens to decode, stamped with its tenant and SLO class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Issue-order id (also the FIFO admission order for ties).
    pub id: u32,
    /// Arrival wall-clock time, seconds.
    pub arrival_s: f64,
    /// Prompt tokens to prefill.
    pub prompt_len: u32,
    /// Output tokens to decode.
    pub output_len: u32,
    /// Owning tenant id (round-robin within the request's class).
    pub tenant: u32,
    /// Session key: stable across a user's successive turns, so
    /// affinity routers can keep a conversation on the replica that
    /// already holds its KV. Workload tapes stamp it from the tenant id
    /// (one ongoing conversation per tenant); trace-driven callers may
    /// carry richer keys.
    pub session: u64,
    /// Index into the workload's SLO classes.
    pub class: u8,
    /// Scheduling priority copied from the class spec (0 = most urgent).
    pub priority: u8,
    /// First-token deadline, seconds: arrival plus the class TTFT
    /// target. Deadline-aware policies order admission by this.
    pub deadline_s: f64,
}

impl Request {
    /// KV tokens this request occupies at its longest (prompt plus every
    /// generated token) — the conservative admission reservation.
    #[must_use]
    pub fn reserved_tokens(&self) -> u64 {
        u64::from(self.prompt_len) + u64::from(self.output_len)
    }

    pub(crate) fn save(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.id);
        w.put_f64(self.arrival_s);
        w.put_u32(self.prompt_len);
        w.put_u32(self.output_len);
        w.put_u32(self.tenant);
        w.put_u64(self.session);
        w.put_u8(self.class);
        w.put_u8(self.priority);
        w.put_f64(self.deadline_s);
    }

    pub(crate) fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            id: r.get_u32()?,
            arrival_s: r.get_f64()?,
            prompt_len: r.get_u32()?,
            output_len: r.get_u32()?,
            tenant: r.get_u32()?,
            session: r.get_u64()?,
            class: r.get_u8()?,
            priority: r.get_u8()?,
            deadline_s: r.get_f64()?,
        })
    }
}

/// The lifecycle timestamps of one completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Issue-order id.
    pub id: u32,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// First admission into the serving batch, seconds (preemptions do
    /// not reset it).
    pub admit_s: f64,
    /// Completion of the first output token, seconds.
    pub first_token_s: f64,
    /// Completion of the last output token, seconds.
    pub finish_s: f64,
    /// Prompt tokens.
    pub prompt_len: u32,
    /// Output tokens emitted.
    pub output_len: u32,
    /// Owning tenant id.
    pub tenant: u32,
    /// Index into the workload's SLO classes.
    pub class: u8,
    /// Times this request was preempted and later resumed.
    pub preemptions: u32,
}

impl RequestRecord {
    /// Time to first token: arrival to first output token, seconds.
    #[must_use]
    pub fn ttft_s(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Time per output token after the first, seconds (0 for
    /// single-token outputs).
    #[must_use]
    pub fn tpot_s(&self) -> f64 {
        if self.output_len <= 1 {
            0.0
        } else {
            (self.finish_s - self.first_token_s) / f64::from(self.output_len - 1)
        }
    }

    /// End-to-end latency: arrival to last token, seconds.
    #[must_use]
    pub fn e2e_s(&self) -> f64 {
        self.finish_s - self.arrival_s
    }

    pub(crate) fn save(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.id);
        w.put_f64(self.arrival_s);
        w.put_f64(self.admit_s);
        w.put_f64(self.first_token_s);
        w.put_f64(self.finish_s);
        w.put_u32(self.prompt_len);
        w.put_u32(self.output_len);
        w.put_u32(self.tenant);
        w.put_u8(self.class);
        w.put_u32(self.preemptions);
    }

    pub(crate) fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            id: r.get_u32()?,
            arrival_s: r.get_f64()?,
            admit_s: r.get_f64()?,
            first_token_s: r.get_f64()?,
            finish_s: r.get_f64()?,
            prompt_len: r.get_u32()?,
            output_len: r.get_u32()?,
            tenant: r.get_u32()?,
            class: r.get_u8()?,
            preemptions: r.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RequestRecord {
        RequestRecord {
            id: 0,
            arrival_s: 1.0,
            admit_s: 1.5,
            first_token_s: 2.0,
            finish_s: 4.0,
            prompt_len: 100,
            output_len: 5,
            tenant: 0,
            class: 0,
            preemptions: 0,
        }
    }

    #[test]
    fn latency_decomposition() {
        let r = record();
        assert!((r.ttft_s() - 1.0).abs() < 1e-12);
        assert!((r.tpot_s() - 0.5).abs() < 1e-12);
        assert!((r.e2e_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_token_output_has_zero_tpot() {
        let r = RequestRecord {
            output_len: 1,
            ..record()
        };
        assert_eq!(r.tpot_s(), 0.0);
    }

    #[test]
    fn reservation_covers_prompt_and_output() {
        let q = Request {
            id: 0,
            arrival_s: 0.0,
            prompt_len: 100,
            output_len: 28,
            tenant: 0,
            session: 0,
            class: 0,
            priority: 0,
            deadline_s: 0.5,
        };
        assert_eq!(q.reserved_tokens(), 128);
    }
}
