//! Fleet routing: which replica gets the next request.
//!
//! A [`crate::Fleet`] fronts N independent scheduler replicas with one
//! [`Router`]. The router is deliberately blind to everything except
//! the [`RoutingView`] — per-replica [`ReplicaTelemetry`] (the counters
//! a real replica would publish: queue depth, KV occupancy,
//! outstanding tokens), the live/draining routable mask, and the sim
//! clock — so routing policies stay honest: no peeking at another
//! replica's policy internals or the sampled lengths of its resident
//! requests.
//!
//! | Router | Picks | Uses telemetry | Stateful |
//! |---|---|---|---|
//! | [`RoundRobin`] | next *routable* replica in turn | no | cursor |
//! | [`JoinShortestQueue`] | fewest queued + resident requests | yes | no |
//! | [`LeastKvLoad`] | lowest committed-KV fraction | yes | no |
//! | [`SessionAffinity`] | consistent hash of the session key | no | ring cache |
//!
//! All four stock routers re-steer around draining and down replicas:
//! the mask excludes them from candidacy, and [`SessionAffinity`]
//! walks a session's ring successors so its keys land on the nearest
//! live replica — and snap back home when the replica rejoins.

use std::cell::Cell;

use crate::lifecycle::FleetEvent;
use crate::request::Request;
use crate::routing_index::FleetRoutingIndex;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// The load counters one replica publishes to the router.
///
/// Everything here is a running total the replica already tracks for
/// its own report; none of it requires oracle knowledge of request
/// contents beyond the conservative reservations admission itself uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaTelemetry {
    /// Requests routed to this replica but not yet admitted.
    pub queue_depth: u32,
    /// Requests resident in the serving batch (prefilling or decoding).
    pub active_requests: u32,
    /// Conservative KV reservation (prompt + full output) of the
    /// resident requests, tokens.
    pub reserved_tokens: u64,
    /// Conservative KV reservation of the queued requests, tokens.
    pub queued_tokens: u64,
    /// The replica's KV capacity as published by its cost model.
    pub kv_capacity_tokens: u64,
    /// Output tokens still to be emitted across queued and resident
    /// requests.
    pub in_flight_tokens: u64,
}

impl ReplicaTelemetry {
    /// Requests on this replica in any state: queued plus resident.
    #[must_use]
    pub fn backlog(&self) -> u32 {
        self.queue_depth + self.active_requests
    }

    /// KV tokens already committed to this replica: resident
    /// reservations plus everything waiting in its queue.
    #[must_use]
    pub fn committed_tokens(&self) -> u64 {
        self.reserved_tokens + self.queued_tokens
    }

    /// Committed KV tokens as a fraction of capacity (may exceed 1 when
    /// the queue holds more work than the machine fits at once).
    #[must_use]
    pub fn kv_load(&self) -> f64 {
        self.committed_tokens() as f64 / self.kv_capacity_tokens.max(1) as f64
    }

    /// `true` when `tokens` more KV tokens fit alongside everything
    /// already committed to this replica.
    #[must_use]
    pub fn has_kv_headroom(&self, tokens: u64) -> bool {
        self.committed_tokens().saturating_add(tokens) <= self.kv_capacity_tokens
    }
}

/// Per-decision counters for the routing path, shared by reference
/// into every [`RoutingView`] a run constructs. `Cell`-based so the
/// view can stay `Copy` and routers keep taking `&RoutingView`.
///
/// [`RouteStats::scan_fallbacks`] is the number to watch: it counts
/// every `O(R)` linear scan taken where an indexed lookup was the
/// alternative — zero on a built-in-router run with the fleet's
/// [`FleetRoutingIndex`] attached (barring the KV-saturated
/// join-shortest-queue slow path, which is exact by design).
#[derive(Debug, Default)]
pub struct RouteStats {
    route_calls: Cell<u64>,
    index_hits: Cell<u64>,
    scan_fallbacks: Cell<u64>,
}

impl RouteStats {
    /// Routing decisions made (one per arrival or displaced re-route).
    #[must_use]
    pub fn route_calls(&self) -> u64 {
        self.route_calls.get()
    }

    /// Indexed (`O(log R)` or bitset) lookups answered.
    #[must_use]
    pub fn index_hits(&self) -> u64 {
        self.index_hits.get()
    }

    /// Linear `O(R)` scans taken — no index attached, or a router's
    /// exact slow path.
    #[must_use]
    pub fn scan_fallbacks(&self) -> u64 {
        self.scan_fallbacks.get()
    }

    pub(crate) fn note_route_call(&self) {
        self.route_calls.set(self.route_calls.get() + 1);
    }

    fn note_index_hit(&self) {
        self.index_hits.set(self.index_hits.get() + 1);
    }

    fn note_scan(&self) {
        self.scan_fallbacks.set(self.scan_fallbacks.get() + 1);
    }
}

/// Everything a router may see when placing one request: the
/// index-aligned telemetry of every provisioned replica slot, the
/// routable mask (`true` only for live replicas — draining and down
/// slots must not receive new work), and the sim clock.
///
/// New routing inputs land here as fields instead of breaking every
/// downstream [`Router`] `impl` with a signature change.
///
/// # Writing an `O(log R)` custom router
///
/// A fleet run attaches its [`FleetRoutingIndex`] to every view it
/// hands a router, and the view's [`RoutingView::min_backlog_replica`],
/// [`RoutingView::min_kv_load_replica`] and
/// [`RoutingView::next_routable_from`] lookups answer from that index
/// in `O(log R)` (falling back to the exact linear scan on a bare
/// view, so picks are identical either way). Custom routers opt in by
/// phrasing their decision through those lookups instead of scanning
/// [`RoutingView::routable`]:
///
/// ```
/// use rpu_serve::{
///     AnalyticCostModel, Fifo, FleetBuilder, JoinShortestQueue, Request, Router, RoutingView,
///     ServeConfig, Workload,
/// };
///
/// /// Shortest queue while the pick has KV headroom; overflow spills
/// /// to the replica with the lowest committed-KV fraction.
/// struct ShortestWithSpill;
///
/// impl Router for ShortestWithSpill {
///     fn name(&self) -> &'static str {
///         "shortest-spill"
///     }
///
///     fn route(&mut self, req: &Request, view: &RoutingView<'_>) -> usize {
///         let pick = view.min_backlog_replica().expect("some replica is routable");
///         if view.replica(pick).has_kv_headroom(req.reserved_tokens()) {
///             pick
///         } else {
///             view.min_kv_load_replica().expect("some replica is routable")
///         }
///     }
/// }
///
/// let mut fleet = FleetBuilder::new()
///     .group(
///         4,
///         &ServeConfig::default(),
///         || Box::new(AnalyticCostModel::small()),
///         || Box::new(Fifo),
///     )
///     .build();
/// let workload = Workload::poisson(800.0, 256, 16, 40);
/// let report = fleet.serve(&workload, &mut ShortestWithSpill);
/// assert_eq!(report.aggregate.records.len(), 40);
/// // Identical decisions to the equivalent scan-based router: while
/// // every replica has headroom, this *is* join-shortest-queue.
/// let scanned = fleet.serve(&workload, &mut JoinShortestQueue);
/// assert_eq!(report.assigned, scanned.assigned);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RoutingView<'a> {
    telemetry: &'a [ReplicaTelemetry],
    routable: &'a [bool],
    now_s: f64,
    index: Option<&'a FleetRoutingIndex>,
    stats: Option<&'a RouteStats>,
}

impl<'a> RoutingView<'a> {
    /// Bundles one routing decision's inputs.
    ///
    /// # Panics
    ///
    /// Panics when the telemetry and mask slices disagree on the
    /// provisioned replica count.
    #[must_use]
    pub fn new(telemetry: &'a [ReplicaTelemetry], routable: &'a [bool], now_s: f64) -> Self {
        assert_eq!(
            telemetry.len(),
            routable.len(),
            "telemetry and routable mask must cover the same replicas"
        );
        Self {
            telemetry,
            routable,
            now_s,
            index: None,
            stats: None,
        }
    }

    /// Attaches a [`FleetRoutingIndex`] kept in sync with `telemetry`
    /// and the routable mask: the view's argmin and next-routable
    /// lookups then answer from the index instead of scanning. The
    /// fleet driver attaches its own index to every view it builds;
    /// custom harnesses may attach one they maintain themselves.
    #[must_use]
    pub fn with_index(mut self, index: &'a FleetRoutingIndex) -> Self {
        self.index = Some(index);
        self
    }

    /// Attaches routing-path counters; the view's lookups record
    /// index hits and scan fallbacks into them.
    #[must_use]
    pub fn with_stats(mut self, stats: &'a RouteStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Provisioned replica slots (routable or not).
    #[must_use]
    pub fn len(&self) -> usize {
        self.telemetry.len()
    }

    /// `true` when the fleet has no provisioned slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.telemetry.is_empty()
    }

    /// The sim clock at the moment of this routing decision, seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        self.now_s
    }

    /// Index-aligned telemetry for every provisioned slot.
    #[must_use]
    pub fn telemetry(&self) -> &'a [ReplicaTelemetry] {
        self.telemetry
    }

    /// Telemetry of one replica slot.
    #[must_use]
    pub fn replica(&self, i: usize) -> &'a ReplicaTelemetry {
        &self.telemetry[i]
    }

    /// Whether slot `i` may receive new work (live, not draining/down).
    #[must_use]
    pub fn is_routable(&self, i: usize) -> bool {
        self.routable[i]
    }

    /// Indices of the replicas that may receive new work, ascending.
    pub fn routable(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.routable.len()).filter(move |&i| self.routable[i])
    }

    /// How many replicas may receive new work.
    #[must_use]
    pub fn routable_count(&self) -> usize {
        self.routable.iter().filter(|&&r| r).count()
    }

    fn note_index_hit(&self) {
        if let Some(s) = self.stats {
            s.note_index_hit();
        }
    }

    pub(crate) fn note_scan(&self) {
        if let Some(s) = self.stats {
            s.note_scan();
        }
    }

    /// The routable replica with the fewest requests on it, ties broken
    /// by lowest index — the exact argmin `(backlog, index)` order
    /// [`JoinShortestQueue`] ranks by. `None` when nothing is routable.
    ///
    /// `O(log R)` with an attached [`FleetRoutingIndex`], an `O(R)`
    /// scan otherwise — same answer either way.
    #[must_use]
    pub fn min_backlog_replica(&self) -> Option<usize> {
        if let Some(idx) = self.index {
            self.note_index_hit();
            idx.min_backlog_replica(self.telemetry)
        } else {
            self.note_scan();
            self.routable()
                .min_by_key(|&i| (self.telemetry[i].backlog(), i))
        }
    }

    /// The routable replica with the lowest committed-KV fraction,
    /// ties broken by backlog then index — [`LeastKvLoad`]'s exact
    /// comparison order (`f64::total_cmp` on the fraction). `None`
    /// when nothing is routable.
    ///
    /// `O(log R)` with an attached [`FleetRoutingIndex`], an `O(R)`
    /// scan otherwise — same answer either way.
    #[must_use]
    pub fn min_kv_load_replica(&self) -> Option<usize> {
        if let Some(idx) = self.index {
            self.note_index_hit();
            idx.min_kv_load_replica(self.telemetry)
        } else {
            self.note_scan();
            self.routable().min_by(|&a, &b| {
                self.telemetry[a]
                    .kv_load()
                    .total_cmp(&self.telemetry[b].kv_load())
                    .then(
                        self.telemetry[a]
                            .backlog()
                            .cmp(&self.telemetry[b].backlog()),
                    )
                    .then(a.cmp(&b))
            })
        }
    }

    /// The first routable replica in the wrapping slot order `start,
    /// start + 1, .., len - 1, 0, .., start - 1` — [`RoundRobin`]'s
    /// probe. `None` when nothing is routable.
    ///
    /// A bitset word-scan with an attached [`FleetRoutingIndex`], a
    /// per-slot loop otherwise — same answer either way.
    ///
    /// # Panics
    ///
    /// Panics when `start` is not a valid slot index.
    #[must_use]
    pub fn next_routable_from(&self, start: usize) -> Option<usize> {
        assert!(start < self.routable.len(), "start slot out of range");
        if let Some(idx) = self.index {
            self.note_index_hit();
            idx.next_routable_from(start)
        } else {
            self.note_scan();
            let n = self.routable.len();
            (0..n).map(|k| (start + k) % n).find(|&i| self.routable[i])
        }
    }
}

/// A dispatch policy for a [`crate::Fleet`].
///
/// [`Router::route`] is called once per request, at its arrival time,
/// with a [`RoutingView`] over every provisioned replica slot
/// (index-aligned with the fleet). The returned index must be in range
/// *and routable*; the fleet panics otherwise. Decisions must be
/// deterministic functions of the arguments plus the router's own
/// state — fleet runs are bit-reproducible for a fixed workload seed.
///
/// [`Router::on_fleet_event`] fires after the fleet applies each
/// lifecycle event, so stateful routers can rebuild caches or shed
/// affinity for a dead replica; the default does nothing.
///
/// # Worked example
///
/// A custom router is one `impl`. Fewest-outstanding-tokens, sending
/// each request to the routable replica with the least decode work in
/// flight:
///
/// ```
/// use rpu_serve::{
///     AnalyticCostModel, Fifo, FleetBuilder, Request, Router, RoutingView, ServeConfig, Workload,
/// };
///
/// struct FewestTokens;
///
/// impl Router for FewestTokens {
///     fn name(&self) -> &'static str {
///         "fewest-tokens"
///     }
///
///     fn route(&mut self, _req: &Request, view: &RoutingView<'_>) -> usize {
///         // Candidates come from the routable mask — draining and
///         // down replicas never take new work. Ties broken by index
///         // to stay deterministic.
///         view.routable()
///             .min_by_key(|&i| (view.replica(i).in_flight_tokens, i))
///             .expect("some replica is routable")
///     }
/// }
///
/// let mut fleet = FleetBuilder::new()
///     .group(
///         3,
///         &ServeConfig::default(),
///         || Box::new(AnalyticCostModel::small()),
///         || Box::new(Fifo),
///     )
///     .build();
/// let report = fleet.serve(&Workload::poisson(800.0, 256, 16, 30), &mut FewestTokens);
/// // Routing spreads the work; the fleet completes all of it.
/// assert_eq!(report.aggregate.records.len(), 30);
/// assert!(report.assigned.iter().all(|&n| n > 0));
/// ```
pub trait Router {
    /// Router name for reports and tables.
    fn name(&self) -> &'static str;

    /// Picks the replica index for one arriving request. The pick must
    /// be routable in `view`.
    fn route(&mut self, req: &Request, view: &RoutingView<'_>) -> usize;

    /// Notifies the router that the fleet just applied `event`; `view`
    /// reflects the fleet *after* the transition. Stateful routers use
    /// this to invalidate caches keyed on the live set. The default
    /// does nothing, which is correct for every router whose decisions
    /// derive purely from the view.
    fn on_fleet_event(&mut self, event: &FleetEvent, view: &RoutingView<'_>) {
        let _ = (event, view);
    }

    /// Serialises the router's run state into an open snapshot section,
    /// so a resumed fleet routes exactly as the frozen one would have.
    /// The default writes nothing — correct for stateless routers.
    fn save_state(&self, w: &mut SnapshotWriter) {
        let _ = w;
    }

    /// Restores run state written by [`Router::save_state`]. Must read
    /// exactly what `save_state` wrote. The default reads nothing.
    ///
    /// # Errors
    ///
    /// A [`SnapshotError`] when the saved state cannot apply to this
    /// router.
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let _ = r;
        Ok(())
    }
}

/// Blind rotation: requests go to routable replicas in turn, ignoring
/// telemetry. The baseline every informed router is measured against.
/// Draining or down slots are skipped; the cursor still advances past
/// the pick, so a rejoining replica slots back into the rotation.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoundRobin {
    /// A cursor starting at replica 0.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _req: &Request, view: &RoutingView<'_>) -> usize {
        let n = view.len();
        let start = self.next % n;
        let Some(i) = view.next_routable_from(start) else {
            panic!("no routable replica to round-robin onto");
        };
        self.next = (i + 1) % n;
        i
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.next);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.next = r.get_usize()?;
        Ok(())
    }
}

/// Join-shortest-queue: the routable replica with the fewest requests
/// on it (queued plus resident), restricted to replicas whose
/// published KV capacity still has room for this request's
/// conservative reservation. Only when *no* routable replica has KV
/// headroom does it fall back to the shortest routable queue outright
/// (the replica's own admission back-pressure then queues the request
/// until space frees).
///
/// With a [`FleetRoutingIndex`] attached to the view, the common case
/// is one `O(log R)` lookup: the global backlog argmin that has KV
/// headroom *is* the headroom-restricted argmin (the restricted set is
/// a subset containing it). Only when the argmin is KV-saturated does
/// the exact restricted scan run — counted as a
/// [`RouteStats::scan_fallbacks`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JoinShortestQueue;

impl Router for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "jsq"
    }

    fn route(&mut self, req: &Request, view: &RoutingView<'_>) -> usize {
        let need = req.reserved_tokens();
        let g = view
            .min_backlog_replica()
            .expect("some replica is routable");
        if view.replica(g).has_kv_headroom(need) {
            return g;
        }
        // The shortest replica is KV-saturated: run the exact
        // headroom-restricted scan. An empty restricted set means no
        // routable replica fits the request, and the overall-shortest
        // `g` takes it (its admission back-pressure queues the work).
        view.note_scan();
        view.routable()
            .filter(|&i| view.replica(i).has_kv_headroom(need))
            .min_by_key(|&i| (view.replica(i).backlog(), i))
            .unwrap_or(g)
    }
}

/// Least-KV-load: the routable replica with the lowest committed-KV
/// fraction of its own capacity. On heterogeneous fleets this is the
/// natural weighting — a half-full large replica beats a half-full
/// small one only when its *fraction* is lower — with backlog and
/// index breaking ties.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastKvLoad;

impl Router for LeastKvLoad {
    fn name(&self) -> &'static str {
        "least-kv"
    }

    fn route(&mut self, _req: &Request, view: &RoutingView<'_>) -> usize {
        view.min_kv_load_replica()
            .expect("some replica is routable")
    }
}

/// Session affinity by consistent hashing: every session key maps to a
/// fixed point on a hash ring of replica virtual nodes, so a session's
/// repeated turns always land on the replica that served — and whose
/// KV cache warmed on — its earlier ones. Resizing the fleet moves only
/// the sessions whose ring successor is a new replica's virtual node;
/// everyone else keeps their placement (the property tests pin this).
///
/// The ring covers every *provisioned* slot; when a session's home
/// replica is draining or down, the lookup walks the ring's successors
/// to the nearest routable replica — a deterministic spill target that
/// inherits the session until the home replica rejoins, at which point
/// the session snaps back (the ring itself never changes, so no other
/// placement moves).
#[derive(Debug, Clone)]
pub struct SessionAffinity {
    vnodes: u32,
    /// Ring for the last-seen fleet size: (point hash, replica),
    /// sorted by hash.
    ring: Vec<(u64, usize)>,
    ring_replicas: usize,
}

impl Default for SessionAffinity {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionAffinity {
    /// Affinity with the default 64 virtual nodes per replica (a
    /// max/mean key imbalance of a few percent at small fleet sizes).
    #[must_use]
    pub fn new() -> Self {
        Self::with_vnodes(64)
    }

    /// Affinity with an explicit virtual-node count per replica.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero (an empty ring routes nothing).
    #[must_use]
    pub fn with_vnodes(vnodes: u32) -> Self {
        assert!(vnodes >= 1, "affinity needs at least one vnode per replica");
        Self {
            vnodes,
            ring: Vec::new(),
            ring_replicas: 0,
        }
    }

    fn rebuild(&mut self, replicas: usize) {
        self.ring.clear();
        for r in 0..replicas {
            for k in 0..self.vnodes {
                // One word per (replica, vnode): mix() is a bijection,
                // so distinct virtual nodes never collide on the ring.
                let point = mix(((r as u64) << 32) | u64::from(k));
                self.ring.push((point, r));
            }
        }
        self.ring.sort_unstable();
        self.ring_replicas = replicas;
    }
}

impl Router for SessionAffinity {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn route(&mut self, req: &Request, view: &RoutingView<'_>) -> usize {
        if self.ring_replicas != view.len() {
            self.rebuild(view.len());
        }
        // A salted key hash keeps session points decoupled from ring
        // points (mix is a bijection, so an unsalted key equal to a
        // vnode word would always collide with it).
        let key = mix(req.session ^ 0xA5A5_5A5A_D1D1_1D1D);
        let start = self.ring.partition_point(|&(point, _)| point < key);
        let n = self.ring.len();
        for k in 0..n {
            let replica = self.ring[(start + k) % n].1;
            if view.is_routable(replica) {
                return replica;
            }
        }
        panic!("no routable replica on the affinity ring");
    }

    fn save_state(&self, w: &mut SnapshotWriter) {
        // The ring itself is a pure function of (vnodes, replica
        // count): save the inputs, rebuild on load.
        w.put_u32(self.vnodes);
        w.put_usize(self.ring_replicas);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        let vnodes = r.get_u32()?;
        if vnodes != self.vnodes {
            return Err(SnapshotError::Corrupt("affinity vnode count differs"));
        }
        let replicas = r.get_usize()?;
        if replicas == 0 {
            self.ring.clear();
            self.ring_replicas = 0;
        } else {
            self.rebuild(replicas);
        }
        Ok(())
    }
}

/// SplitMix64 finalisation: a fast, deterministic bijection on `u64`
/// used for ring points and session keys.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle(kv_capacity_tokens: u64) -> ReplicaTelemetry {
        ReplicaTelemetry {
            queue_depth: 0,
            active_requests: 0,
            reserved_tokens: 0,
            queued_tokens: 0,
            kv_capacity_tokens,
            in_flight_tokens: 0,
        }
    }

    fn req(session: u64) -> Request {
        Request {
            id: 0,
            arrival_s: 0.0,
            prompt_len: 128,
            output_len: 16,
            tenant: 0,
            session,
            class: 0,
            priority: 0,
            deadline_s: 0.5,
        }
    }

    /// Routes over an all-routable view — the static-fleet case every
    /// pre-lifecycle test exercised.
    fn route_all_live<R: Router>(r: &mut R, rq: &Request, fleet: &[ReplicaTelemetry]) -> usize {
        let mask = vec![true; fleet.len()];
        r.route(rq, &RoutingView::new(fleet, &mask, 0.0))
    }

    #[test]
    fn view_exposes_mask_clock_and_counts() {
        let fleet = vec![idle(4096); 3];
        let mask = vec![true, false, true];
        let view = RoutingView::new(&fleet, &mask, 1.25);
        assert_eq!(view.len(), 3);
        assert!(!view.is_empty());
        assert_eq!(view.now_s(), 1.25);
        assert_eq!(view.routable_count(), 2);
        assert_eq!(view.routable().collect::<Vec<_>>(), vec![0, 2]);
        assert!(view.is_routable(0) && !view.is_routable(1));
        assert_eq!(view.replica(2), &fleet[2]);
        assert_eq!(view.telemetry().len(), 3);
    }

    #[test]
    #[should_panic(expected = "same replicas")]
    fn view_rejects_mismatched_mask() {
        let fleet = vec![idle(4096); 3];
        let mask = vec![true; 2];
        let _ = RoutingView::new(&fleet, &mask, 0.0);
    }

    #[test]
    fn round_robin_rotates() {
        let fleet = vec![idle(4096); 3];
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..7)
            .map(|_| route_all_live(&mut rr, &req(0), &fleet))
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn round_robin_skips_unroutable_replicas() {
        let fleet = vec![idle(4096); 4];
        let mask = vec![true, false, true, false];
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..5)
            .map(|_| rr.route(&req(0), &RoutingView::new(&fleet, &mask, 0.0)))
            .collect();
        // Only replicas 0 and 2 are live: the rotation alternates.
        assert_eq!(picks, vec![0, 2, 0, 2, 0]);
    }

    #[test]
    fn jsq_prefers_fewest_requests_with_headroom() {
        let mut fleet = vec![idle(4096); 3];
        fleet[0].queue_depth = 2;
        fleet[1].active_requests = 1;
        assert_eq!(route_all_live(&mut JoinShortestQueue, &req(0), &fleet), 2);
        // Fill replica 2's KV: the next-shortest with headroom wins.
        fleet[2].reserved_tokens = 4096;
        assert_eq!(route_all_live(&mut JoinShortestQueue, &req(0), &fleet), 1);
    }

    #[test]
    fn jsq_falls_back_to_shortest_when_nothing_fits() {
        let mut fleet = vec![idle(100); 2];
        fleet[0].queue_depth = 3;
        fleet[1].queue_depth = 1;
        // Request reserves 144 tokens: over both capacities.
        assert_eq!(route_all_live(&mut JoinShortestQueue, &req(0), &fleet), 1);
    }

    #[test]
    fn jsq_never_picks_an_unroutable_replica() {
        let mut fleet = vec![idle(4096); 3];
        // Replica 0 is idle (shortest) but draining: 1 must win even
        // with a deeper queue.
        fleet[1].queue_depth = 2;
        fleet[2].queue_depth = 5;
        let mask = vec![false, true, true];
        assert_eq!(
            JoinShortestQueue.route(&req(0), &RoutingView::new(&fleet, &mask, 0.0)),
            1
        );
        // Same in the no-headroom fallback path.
        let mut tight = vec![idle(10); 3];
        tight[1].queue_depth = 4;
        tight[2].queue_depth = 3;
        assert_eq!(
            JoinShortestQueue.route(&req(0), &RoutingView::new(&tight, &mask, 0.0)),
            2
        );
    }

    #[test]
    fn least_kv_compares_fractions_not_absolutes() {
        let mut fleet = vec![idle(8192), idle(1024)];
        fleet[0].reserved_tokens = 4096; // 50 % of a big replica
        fleet[1].reserved_tokens = 256; // 25 % of a small one
        assert_eq!(route_all_live(&mut LeastKvLoad, &req(0), &fleet), 1);
    }

    #[test]
    fn least_kv_ignores_unroutable_replicas() {
        let mut fleet = vec![idle(8192); 3];
        fleet[1].reserved_tokens = 4096;
        fleet[2].reserved_tokens = 8192;
        // Replica 0 is the emptiest but down.
        let mask = vec![false, true, true];
        assert_eq!(
            LeastKvLoad.route(&req(0), &RoutingView::new(&fleet, &mask, 0.0)),
            1
        );
    }

    #[test]
    fn affinity_is_sticky_per_session_and_spreads_sessions() {
        let fleet = vec![idle(4096); 4];
        let mut aff = SessionAffinity::new();
        let mut hits = vec![0u32; 4];
        for session in 0..256u64 {
            let first = route_all_live(&mut aff, &req(session), &fleet);
            for _ in 0..3 {
                assert_eq!(route_all_live(&mut aff, &req(session), &fleet), first);
            }
            hits[first] += 1;
        }
        assert!(
            hits.iter().all(|&h| h > 0),
            "some replica never chosen: {hits:?}"
        );
    }

    #[test]
    fn affinity_spills_to_ring_successor_and_snaps_back() {
        let fleet = vec![idle(4096); 4];
        let mut aff = SessionAffinity::new();
        for session in 0..256u64 {
            let home = route_all_live(&mut aff, &req(session), &fleet);
            let mut mask = vec![true; 4];
            mask[home] = false;
            let spill = aff.route(&req(session), &RoutingView::new(&fleet, &mask, 0.0));
            assert_ne!(spill, home, "session {session} routed to a masked replica");
            // Deterministic spill target: same mask, same answer.
            assert_eq!(
                spill,
                aff.route(&req(session), &RoutingView::new(&fleet, &mask, 0.0))
            );
            // Home replica back: the session snaps back, nothing moved.
            assert_eq!(route_all_live(&mut aff, &req(session), &fleet), home);
        }
    }

    #[test]
    fn affinity_resize_moves_keys_only_to_the_new_replica() {
        let small = vec![idle(4096); 3];
        let grown = vec![idle(4096); 4];
        let mut aff = SessionAffinity::new();
        let mut moved = 0u32;
        for session in 0..512u64 {
            let before = route_all_live(&mut aff, &req(session), &small);
            let after = route_all_live(&mut aff, &req(session), &grown);
            if before != after {
                assert_eq!(after, 3, "session {session} moved to an old replica");
                moved += 1;
            }
        }
        // Roughly 1/4 of the keyspace belongs to the new replica.
        assert!((32..=224).contains(&moved), "moved {moved} of 512");
    }

    #[test]
    #[should_panic(expected = "vnode")]
    fn zero_vnodes_rejected() {
        let _ = SessionAffinity::with_vnodes(0);
    }

    #[test]
    fn affinity_shrink_remaps_only_the_lost_replicas_keys() {
        // The reverse resize path: removing a replica must scatter only
        // its own keys; every other session keeps its placement.
        let grown = vec![idle(4096); 5];
        let small = vec![idle(4096); 4];
        let mut aff = SessionAffinity::new();
        let mut lost = 0u32;
        for session in 0..512u64 {
            let before = route_all_live(&mut aff, &req(session), &grown);
            let after = route_all_live(&mut aff, &req(session), &small);
            if before == 4 {
                lost += 1; // had to move somewhere in 0..4
                assert!(after < 4);
            } else {
                assert_eq!(before, after, "session {session} moved without cause");
            }
        }
        assert!(lost > 0, "replica 4 owned no keys — test is vacuous");
    }

    #[test]
    fn affinity_resize_round_trip_restores_every_placement() {
        // Grow then shrink back: the ring is a pure function of the
        // replica count, so placements must be exactly the originals.
        let small = vec![idle(4096); 3];
        let grown = vec![idle(4096); 6];
        let mut aff = SessionAffinity::new();
        let before: Vec<usize> = (0..256u64)
            .map(|s| route_all_live(&mut aff, &req(s), &small))
            .collect();
        for s in 0..256u64 {
            let _ = route_all_live(&mut aff, &req(s), &grown);
        }
        let after: Vec<usize> = (0..256u64)
            .map(|s| route_all_live(&mut aff, &req(s), &small))
            .collect();
        assert_eq!(before, after);
    }

    #[test]
    fn affinity_single_replica_routes_everything_to_it() {
        let fleet = vec![idle(4096)];
        let mut aff = SessionAffinity::with_vnodes(1);
        for session in 0..64u64 {
            assert_eq!(route_all_live(&mut aff, &req(session), &fleet), 0);
        }
    }

    #[test]
    fn jsq_breaks_backlog_ties_by_lowest_index() {
        // All replicas idle: identical backlog, identical headroom. The
        // deterministic tie-break must pick index 0 — and stay stable
        // when later replicas are equally short.
        let fleet = vec![idle(4096); 4];
        assert_eq!(route_all_live(&mut JoinShortestQueue, &req(0), &fleet), 0);
        let mut fleet = vec![idle(4096); 4];
        fleet[0].queue_depth = 1;
        // 1, 2, 3 tie at backlog 0: lowest index wins.
        assert_eq!(route_all_live(&mut JoinShortestQueue, &req(0), &fleet), 1);
    }

    #[test]
    fn jsq_tie_break_is_by_index_even_in_the_fallback_path() {
        // No replica has headroom; two tie on backlog. Index decides.
        let mut fleet = vec![idle(10); 3];
        fleet[0].queue_depth = 5;
        fleet[1].queue_depth = 2;
        fleet[2].queue_depth = 2;
        assert_eq!(route_all_live(&mut JoinShortestQueue, &req(0), &fleet), 1);
    }

    #[test]
    fn jsq_mixed_queue_and_active_counts_sum_into_the_backlog() {
        let mut fleet = vec![idle(4096); 2];
        fleet[0].queue_depth = 1;
        fleet[0].active_requests = 1; // backlog 2
        fleet[1].active_requests = 2; // backlog 2 — tie, index 0 wins
        assert_eq!(route_all_live(&mut JoinShortestQueue, &req(0), &fleet), 0);
        fleet[1].active_requests = 1; // backlog 1 — strict winner
        assert_eq!(route_all_live(&mut JoinShortestQueue, &req(0), &fleet), 1);
    }

    #[test]
    fn round_robin_cursor_round_trips_through_state() {
        let fleet = vec![idle(4096); 3];
        let mut rr = RoundRobin::new();
        let _ = route_all_live(&mut rr, &req(0), &fleet);
        let _ = route_all_live(&mut rr, &req(0), &fleet);
        let mut w = SnapshotWriter::new();
        w.begin_section(1);
        rr.save_state(&mut w);
        w.end_section();
        let bytes = w.finish();
        let mut restored = RoundRobin::new();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section(1).unwrap();
        restored.load_state(&mut r).unwrap();
        r.end_section().unwrap();
        assert_eq!(
            route_all_live(&mut restored, &req(0), &fleet),
            route_all_live(&mut rr, &req(0), &fleet)
        );
    }

    #[test]
    fn affinity_state_rejects_mismatched_vnodes() {
        let aff = SessionAffinity::with_vnodes(8);
        let mut w = SnapshotWriter::new();
        w.begin_section(1);
        aff.save_state(&mut w);
        w.end_section();
        let bytes = w.finish();
        let mut other = SessionAffinity::with_vnodes(16);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section(1).unwrap();
        assert_eq!(
            other.load_state(&mut r).unwrap_err(),
            SnapshotError::Corrupt("affinity vnode count differs")
        );
    }

    #[test]
    fn default_fleet_event_hook_is_a_no_op() {
        use crate::lifecycle::{FleetEvent, FleetEventKind};
        let fleet = vec![idle(4096); 2];
        let mask = vec![true, false];
        let view = RoutingView::new(&fleet, &mask, 3.0);
        let ev = FleetEvent {
            at_s: 3.0,
            replica: 1,
            kind: FleetEventKind::Drain,
        };
        // Stateless routers take the default hook; it must not disturb
        // subsequent picks.
        let mut jsq = JoinShortestQueue;
        jsq.on_fleet_event(&ev, &view);
        assert_eq!(jsq.route(&req(0), &view), 0);
    }
}
