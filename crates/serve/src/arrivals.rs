//! Arrival processes and workload generation.
//!
//! A [`Workload`] pairs an [`ArrivalProcess`] with prompt/output
//! [`LengthDistribution`]s, a set of SLO [`ClassSpec`]s and a seed.
//! Open-loop processes (Poisson, trace replay) pre-generate their whole
//! request tape; the closed loop issues a client's next request only
//! after its previous one finishes, so its arrivals are produced during
//! simulation via [`RequestSource::on_completion`].
//!
//! Each request is stamped with an SLO class (sampled from the class
//! shares when more than one class is configured), a tenant id
//! (round-robin within its class) and the priority/deadline derived
//! from its class spec — the fields scheduling policies order by.

use crate::class::{ClassSpec, SloTargets};
use crate::request::Request;
use crate::rng::ServeRng;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use rpu_models::LengthDistribution;
use std::collections::VecDeque;

/// When requests arrive.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Open loop: exponential inter-arrival times at the given offered
    /// load (requests per second), seeded from the workload seed.
    Poisson {
        /// Offered load, requests/second.
        rate_rps: f64,
    },
    /// Open loop: replay explicit arrival timestamps (seconds). The
    /// tape is sorted internally; `num_requests` caps how many are used.
    Trace {
        /// Recorded arrival times, seconds.
        arrivals_s: Vec<f64>,
    },
    /// Open loop: a two-state on/off burst process — an MMPP with rates
    /// `{rate_rps, 0}`. Arrivals are Poisson at `rate_rps` during ON
    /// periods and silent during OFF periods; the state sojourns are
    /// exponential with the given means, so the long-run mean offered
    /// load is `rate_rps * mean_on_s / (mean_on_s + mean_off_s)` — the
    /// homogeneous-Poisson equivalent a burst sweep is matched against.
    /// The tape starts at the beginning of an ON period.
    OnOff {
        /// Arrival rate while ON, requests/second.
        rate_rps: f64,
        /// Mean ON-period duration, seconds.
        mean_on_s: f64,
        /// Mean OFF-period duration, seconds.
        mean_off_s: f64,
    },
    /// Closed loop: `clients` concurrent users, each issuing its next
    /// request `think_s` after its previous one completes.
    ClosedLoop {
        /// Concurrent clients (initial requests all arrive at t = 0).
        clients: u32,
        /// Think time between a completion and the next request.
        think_s: f64,
    },
}

impl ArrivalProcess {
    /// The long-run mean offered load of an open-loop random process,
    /// requests/second: the Poisson rate itself, or the duty-cycle
    /// scaled ON rate of [`ArrivalProcess::OnOff`]. `None` for trace
    /// replay and closed loops, whose rate is data- or
    /// completion-driven.
    #[must_use]
    pub fn mean_rate_rps(&self) -> Option<f64> {
        match self {
            Self::Poisson { rate_rps } => Some(*rate_rps),
            Self::OnOff {
                rate_rps,
                mean_on_s,
                mean_off_s,
            } => Some(rate_rps * mean_on_s / (mean_on_s + mean_off_s)),
            Self::Trace { .. } | Self::ClosedLoop { .. } => None,
        }
    }
}

/// A complete serving workload description.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The arrival process.
    pub arrivals: ArrivalProcess,
    /// Prompt-length distribution (per-class overrides win).
    pub prompt_lens: LengthDistribution,
    /// Output-length distribution (per-class overrides win).
    pub output_lens: LengthDistribution,
    /// Total requests to issue.
    pub num_requests: u32,
    /// Seed for every random draw (arrivals, classes and lengths).
    pub seed: u64,
    /// The SLO classes multiplexed over this workload. A single class
    /// consumes no random draws, so single-class tapes are identical to
    /// the classless ones of earlier revisions.
    pub classes: Vec<ClassSpec>,
}

impl Default for Workload {
    /// A placeholder for struct-update syntax (`..Workload::default()`):
    /// a single interactive class, trivial lengths and *zero* requests —
    /// override what you mean, it serves nothing on its own.
    fn default() -> Self {
        Self::poisson(1.0, 1, 1, 0)
    }
}

impl Workload {
    /// A Poisson workload with fixed prompt/output lengths and a single
    /// interactive class — the basic load-sweep configuration.
    #[must_use]
    pub fn poisson(rate_rps: f64, prompt_len: u32, output_len: u32, num_requests: u32) -> Self {
        Self {
            arrivals: ArrivalProcess::Poisson { rate_rps },
            prompt_lens: LengthDistribution::Fixed(prompt_len),
            output_lens: LengthDistribution::Fixed(output_len),
            num_requests,
            seed: 0xC0FFEE,
            classes: vec![ClassSpec::interactive()],
        }
    }

    /// Replaces the SLO classes (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty or no class has positive share.
    #[must_use]
    pub fn with_classes(mut self, classes: Vec<ClassSpec>) -> Self {
        assert!(!classes.is_empty(), "a workload needs at least one class");
        assert!(
            classes.iter().any(|c| c.share > 0.0),
            "at least one class needs positive share"
        );
        self.classes = classes;
        self
    }
}

/// The stream of requests feeding the scheduler.
///
/// Open-loop tapes are fully materialised up front; the closed loop
/// issues lazily on completions. Either way, classes and lengths are
/// drawn from one deterministic stream in issue order, so a fixed seed
/// fixes the tape.
#[derive(Debug)]
pub struct RequestSource {
    pending: VecDeque<Request>,
    rng: ServeRng,
    prompt_lens: LengthDistribution,
    output_lens: LengthDistribution,
    classes: Vec<ClassSpec>,
    /// Requests issued so far per class, for round-robin tenant ids.
    class_issued: Vec<u32>,
    issued: u32,
    budget: u32,
    think_s: Option<f64>,
}

impl RequestSource {
    /// Builds the source for a workload.
    ///
    /// # Panics
    ///
    /// Panics if the workload has no classes, none with positive share,
    /// a non-positive Poisson rate, or a clientless closed loop.
    #[must_use]
    pub fn new(workload: &Workload) -> Self {
        assert!(
            !workload.classes.is_empty(),
            "a workload needs at least one class"
        );
        assert!(
            workload.classes.iter().any(|c| c.share > 0.0),
            "at least one class needs positive share"
        );
        assert!(
            workload.classes.len() <= usize::from(u8::MAX) + 1,
            "at most 256 SLO classes (class ids are u8)"
        );
        let mut src = Self {
            pending: VecDeque::new(),
            rng: ServeRng::new(workload.seed),
            prompt_lens: workload.prompt_lens.clone(),
            output_lens: workload.output_lens.clone(),
            classes: workload.classes.clone(),
            class_issued: vec![0; workload.classes.len()],
            issued: 0,
            budget: workload.num_requests,
            think_s: None,
        };
        match &workload.arrivals {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(*rate_rps > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                for _ in 0..workload.num_requests {
                    t += src.rng.next_exp(1.0 / rate_rps);
                    src.issue(t);
                }
            }
            ArrivalProcess::OnOff {
                rate_rps,
                mean_on_s,
                mean_off_s,
            } => {
                assert!(*rate_rps > 0.0, "on/off burst rate must be positive");
                assert!(
                    *mean_on_s > 0.0 && *mean_off_s > 0.0,
                    "on/off sojourn means must be positive"
                );
                let mut t = 0.0;
                let mut on_left = src.rng.next_exp(*mean_on_s);
                for _ in 0..workload.num_requests {
                    let mut gap = src.rng.next_exp(1.0 / rate_rps);
                    // Burn whole ON windows the gap jumps over; the
                    // exponential is memoryless, so the residual gap
                    // stays exponential and the thinned process is
                    // exactly Poisson-on/silent-off.
                    while gap > on_left {
                        gap -= on_left;
                        t += on_left + src.rng.next_exp(*mean_off_s);
                        on_left = src.rng.next_exp(*mean_on_s);
                    }
                    t += gap;
                    on_left -= gap;
                    src.issue(t);
                }
            }
            ArrivalProcess::Trace { arrivals_s } => {
                let mut tape: Vec<f64> = arrivals_s
                    .iter()
                    .copied()
                    .take(workload.num_requests as usize)
                    .collect();
                tape.sort_by(f64::total_cmp);
                for t in tape {
                    src.issue(t);
                }
                src.budget = src.issued;
            }
            ArrivalProcess::ClosedLoop { clients, think_s } => {
                assert!(*clients > 0, "closed loop needs at least one client");
                src.think_s = Some(*think_s);
                for _ in 0..(*clients).min(workload.num_requests) {
                    src.issue(0.0);
                }
            }
        }
        src
    }

    /// Samples a class index by cumulative share. Single-class
    /// workloads take the fast path and consume no random draw, keeping
    /// their tapes identical to pre-multi-tenant revisions.
    fn sample_class(&mut self) -> usize {
        if self.classes.len() <= 1 {
            return 0;
        }
        let total: f64 = self.classes.iter().map(|c| c.share.max(0.0)).sum();
        let u = self.rng.next_f64() * total;
        let mut acc = 0.0;
        for (i, c) in self.classes.iter().enumerate() {
            acc += c.share.max(0.0);
            if u < acc {
                return i;
            }
        }
        self.classes.len() - 1
    }

    fn issue(&mut self, arrival_s: f64) {
        let class = self.sample_class();
        let spec = &self.classes[class];
        let prompt_dist = spec.prompt_lens.as_ref().unwrap_or(&self.prompt_lens);
        let output_dist = spec.output_lens.as_ref().unwrap_or(&self.output_lens);
        let prompt_len = prompt_dist.sample(self.rng.next_f64());
        let output_len = output_dist.sample(self.rng.next_f64());
        // Tenant ids are globally unique: each class owns a contiguous
        // id range and round-robins its own requests over it.
        let base: u32 = self.classes[..class].iter().map(|c| c.tenants.max(1)).sum();
        let tenant = base + self.class_issued[class] % self.classes[class].tenants.max(1);
        self.class_issued[class] += 1;
        let spec = &self.classes[class];
        let req = Request {
            id: self.issued,
            arrival_s,
            prompt_len,
            output_len,
            tenant,
            // One ongoing conversation per tenant: successive requests
            // from a tenant share the session key affinity routers hash.
            session: u64::from(tenant),
            class: u8::try_from(class).expect("class count checked at construction"),
            priority: spec.priority,
            deadline_s: arrival_s + spec.slo.ttft_s,
        };
        // Open-loop tapes are generated in time order (O(1) append);
        // closed-loop completions can land out of order when several
        // fleet replicas finish interleaved, so keep the pending queue
        // sorted by arrival (stable: equal times stay in issue order).
        let pos = if self.pending.back().is_none_or(|b| b.arrival_s <= arrival_s) {
            self.pending.len()
        } else {
            self.pending.partition_point(|r| r.arrival_s <= arrival_s)
        };
        self.pending.insert(pos, req);
        self.issued += 1;
    }

    /// The next arrival time not yet handed out, if any.
    #[must_use]
    pub fn next_arrival_s(&self) -> Option<f64> {
        self.pending.front().map(|r| r.arrival_s)
    }

    /// Pops the next request if it has arrived by `now`.
    pub fn pop_ready(&mut self, now: f64) -> Option<Request> {
        if self.pending.front()?.arrival_s <= now {
            self.pending.pop_front()
        } else {
            None
        }
    }

    /// Notifies the source that a request finished at `finish_s`; in
    /// closed-loop mode the owning client issues its next request after
    /// its think time.
    pub fn on_completion(&mut self, finish_s: f64) {
        if let Some(think) = self.think_s {
            if self.issued < self.budget {
                // Completions advance with the global clock, so pushes
                // stay time-ordered.
                self.issue(finish_s + think);
            }
        }
    }

    /// `true` once every request of the workload has been handed out.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.pending.is_empty() && self.issued >= self.budget
    }

    /// Requests issued so far.
    #[must_use]
    pub fn issued(&self) -> u32 {
        self.issued
    }

    /// Requests generated but not yet handed to a scheduler.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Serialises the source's *dynamic* state: RNG word, issue
    /// counters and the pending tape. The distributions and class specs
    /// are rebuilt from the workload at restore time (they may hold
    /// `&'static str` names a byte stream cannot carry), which is why
    /// snapshots fingerprint the workload instead of embedding it.
    pub(crate) fn save(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.rng.state());
        w.put_u32(self.issued);
        w.put_u32(self.budget);
        w.put_usize(self.class_issued.len());
        for &n in &self.class_issued {
            w.put_u32(n);
        }
        w.put_usize(self.pending.len());
        for req in &self.pending {
            req.save(w);
        }
    }

    /// Rebuilds a source from `workload` (static configuration) plus a
    /// saved dynamic state.
    pub(crate) fn restore(
        workload: &Workload,
        r: &mut SnapshotReader<'_>,
    ) -> Result<Self, SnapshotError> {
        let rng = ServeRng::new(r.get_u64()?);
        let issued = r.get_u32()?;
        let budget = r.get_u32()?;
        let classes = r.get_count(4)?;
        if classes != workload.classes.len() {
            return Err(SnapshotError::Corrupt("class count differs from workload"));
        }
        let mut class_issued = Vec::with_capacity(classes);
        for _ in 0..classes {
            class_issued.push(r.get_u32()?);
        }
        let n_pending = r.get_count(8)?;
        let mut pending = VecDeque::with_capacity(n_pending);
        for _ in 0..n_pending {
            pending.push_back(Request::load(r)?);
        }
        Ok(Self {
            pending,
            rng,
            prompt_lens: workload.prompt_lens.clone(),
            output_lens: workload.output_lens.clone(),
            classes: workload.classes.clone(),
            class_issued,
            issued,
            budget,
            think_s: match workload.arrivals {
                ArrivalProcess::ClosedLoop { think_s, .. } => Some(think_s),
                _ => None,
            },
        })
    }
}

/// The hostile-tape families of the adversarial battery. Each stresses
/// a different scheduler/router pathway; all are deterministic in the
/// seed, so a failing tape is a one-line reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzFamily {
    /// Whole bursts of requests arriving at the *same instant*,
    /// separated by silence — worst case for tie-breaking, telemetry
    /// staleness and admission-order determinism.
    FlashBurst,
    /// A mix dominated by zero-length prompts (nothing to prefill,
    /// instant readiness) interleaved with ordinary requests.
    ZeroPrompt,
    /// Prompts around and beyond the KV capacity: some fill the whole
    /// machine alone, some can never fit and must be rejected.
    MonsterContext,
    /// Class priorities and TTFT deadlines pulling in *opposite*
    /// directions, so priority- and deadline-ordered policies disagree
    /// maximally.
    DeadlineInversion,
    /// A closed loop of many short-session clients churning across
    /// tenants — completions constantly re-seed the arrival tape.
    SessionChurn,
}

impl FuzzFamily {
    /// Every family, for exhaustive sweeps.
    pub const ALL: [Self; 5] = [
        Self::FlashBurst,
        Self::ZeroPrompt,
        Self::MonsterContext,
        Self::DeadlineInversion,
        Self::SessionChurn,
    ];

    /// Family name for test labels and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::FlashBurst => "flash-burst",
            Self::ZeroPrompt => "zero-prompt",
            Self::MonsterContext => "monster-context",
            Self::DeadlineInversion => "deadline-inversion",
            Self::SessionChurn => "session-churn",
        }
    }
}

/// Generates one hostile workload tape. Deterministic in
/// `(family, seed)`; tapes are sized for fast exhaustive sweeps
/// (~100 requests) while still hitting the family's pathology.
/// Capacity-relative sizes target [`crate::AnalyticCostModel::small`]'s
/// 4096-token KV.
#[must_use]
pub fn fuzz_tape(family: FuzzFamily, seed: u64) -> Workload {
    let salt = FuzzFamily::ALL
        .iter()
        .position(|&f| f == family)
        .expect("family is in ALL") as u64;
    let mut rng = ServeRng::new(seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    match family {
        FuzzFamily::FlashBurst => {
            let bursts = 4 + (rng.next_u64() % 4) as usize;
            let per_burst = 12 + (rng.next_u64() % 12) as usize;
            let mut arrivals_s = Vec::with_capacity(bursts * per_burst);
            let mut t = 0.0;
            for _ in 0..bursts {
                t += 0.05 + 0.15 * rng.next_f64();
                // Every request in the burst lands at exactly t.
                arrivals_s.extend(std::iter::repeat_n(t, per_burst));
            }
            let n = arrivals_s.len() as u32;
            Workload {
                arrivals: ArrivalProcess::Trace { arrivals_s },
                prompt_lens: LengthDistribution::Uniform { lo: 16, hi: 256 },
                output_lens: LengthDistribution::Uniform { lo: 4, hi: 32 },
                num_requests: n,
                seed,
                classes: vec![ClassSpec::interactive()],
            }
        }
        FuzzFamily::ZeroPrompt => Workload {
            prompt_lens: LengthDistribution::Fixed(0),
            output_lens: LengthDistribution::Uniform { lo: 1, hi: 8 },
            seed,
            ..Workload::poisson(1500.0, 0, 1, 96)
        }
        .with_classes(vec![
            ClassSpec {
                share: 2.0,
                prompt_lens: Some(LengthDistribution::Fixed(0)),
                output_lens: Some(LengthDistribution::Uniform { lo: 1, hi: 8 }),
                tenants: 4,
                ..ClassSpec::interactive()
            },
            ClassSpec {
                share: 1.0,
                prompt_lens: Some(LengthDistribution::Uniform { lo: 32, hi: 128 }),
                output_lens: Some(LengthDistribution::Uniform { lo: 4, hi: 16 }),
                ..ClassSpec::batch()
            },
        ]),
        FuzzFamily::MonsterContext => Workload {
            prompt_lens: LengthDistribution::Empirical(vec![
                (64, 2.0),
                (1024, 1.0),
                (2000, 1.0),
                (4000, 1.0),
                (4090, 1.0),
                (6000, 1.0),
            ]),
            output_lens: LengthDistribution::Uniform { lo: 1, hi: 16 },
            seed,
            ..Workload::poisson(600.0, 1, 1, 96)
        },
        FuzzFamily::DeadlineInversion => Workload {
            seed,
            ..Workload::poisson(2500.0, 1, 1, 96)
        }
        .with_classes(vec![
            // Urgent priority, slack deadline…
            ClassSpec {
                share: 1.0,
                slo: SloTargets::batch(),
                prompt_lens: Some(LengthDistribution::Uniform { lo: 64, hi: 512 }),
                output_lens: Some(LengthDistribution::Uniform { lo: 8, hi: 48 }),
                tenants: 3,
                ..ClassSpec::interactive()
            },
            // …against lazy priority, tight deadline: priority- and
            // deadline-ordered policies now disagree on every pick.
            ClassSpec {
                share: 1.0,
                slo: SloTargets::interactive(),
                prompt_lens: Some(LengthDistribution::Uniform { lo: 64, hi: 512 }),
                output_lens: Some(LengthDistribution::Uniform { lo: 8, hi: 48 }),
                tenants: 3,
                ..ClassSpec::batch()
            },
        ]),
        FuzzFamily::SessionChurn => Workload {
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 8 + (rng.next_u64() % 8) as u32,
                think_s: 0.002 * rng.next_f64(),
            },
            seed,
            ..Workload::poisson(1.0, 1, 1, 128)
        }
        .with_classes(vec![ClassSpec {
            tenants: 32,
            prompt_lens: Some(LengthDistribution::Uniform { lo: 16, hi: 192 }),
            output_lens: Some(LengthDistribution::Uniform { lo: 2, hi: 24 }),
            ..ClassSpec::interactive()
        }]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::SloTargets;

    fn drain(src: &mut RequestSource) -> Vec<Request> {
        let mut v = Vec::new();
        while let Some(r) = src.pop_ready(f64::INFINITY) {
            v.push(r);
        }
        v
    }

    #[test]
    fn poisson_tape_is_reproducible_and_sorted() {
        let w = Workload::poisson(100.0, 512, 64, 50);
        let a = drain(&mut RequestSource::new(&w));
        let b = drain(&mut RequestSource::new(&w));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert_eq!(a.len(), 50);
        // Mean inter-arrival ~ 1/rate.
        let span = a.last().unwrap().arrival_s;
        assert!((span / 50.0 - 0.01).abs() < 0.005, "span {span}");
    }

    #[test]
    fn different_seeds_give_different_tapes() {
        let w = Workload::poisson(100.0, 512, 64, 10);
        let w2 = Workload {
            seed: 7,
            ..w.clone()
        };
        assert_ne!(
            drain(&mut RequestSource::new(&w))[0].arrival_s,
            drain(&mut RequestSource::new(&w2))[0].arrival_s
        );
    }

    #[test]
    fn onoff_tape_is_reproducible_sorted_and_near_its_mean_rate() {
        let arrivals = ArrivalProcess::OnOff {
            rate_rps: 400.0,
            mean_on_s: 0.02,
            mean_off_s: 0.02,
        };
        assert!((arrivals.mean_rate_rps().unwrap() - 200.0).abs() < 1e-12);
        let w = Workload {
            arrivals,
            num_requests: 4000,
            ..Workload::poisson(1.0, 128, 16, 4000)
        };
        let a = drain(&mut RequestSource::new(&w));
        let b = drain(&mut RequestSource::new(&w));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
        // ~200 req/s long-run mean over ~100 on/off cycles.
        let measured = a.len() as f64 / a.last().unwrap().arrival_s;
        assert!(
            (measured / 200.0 - 1.0).abs() < 0.2,
            "measured mean rate {measured}"
        );
    }

    #[test]
    fn onoff_is_burstier_than_the_matched_poisson() {
        // Same mean load, but the inter-arrival coefficient of
        // variation must exceed the Poisson's CV of 1: that burstiness
        // is the whole point of the process.
        let onoff = Workload {
            arrivals: ArrivalProcess::OnOff {
                rate_rps: 800.0,
                mean_on_s: 0.01,
                mean_off_s: 0.03,
            },
            num_requests: 4000,
            ..Workload::poisson(1.0, 128, 16, 4000)
        };
        let cv = |tape: &[Request]| {
            let gaps: Vec<f64> = tape
                .windows(2)
                .map(|w| w[1].arrival_s - w[0].arrival_s)
                .collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let bursty_cv = cv(&drain(&mut RequestSource::new(&onoff)));
        let poisson = Workload {
            arrivals: ArrivalProcess::Poisson { rate_rps: 200.0 },
            num_requests: 4000,
            ..Workload::poisson(1.0, 128, 16, 4000)
        };
        let poisson_cv = cv(&drain(&mut RequestSource::new(&poisson)));
        assert!(
            bursty_cv > 1.5 && bursty_cv > poisson_cv,
            "bursty CV {bursty_cv} vs Poisson CV {poisson_cv}"
        );
    }

    #[test]
    fn mean_rate_is_only_defined_for_random_open_loops() {
        assert_eq!(
            ArrivalProcess::Poisson { rate_rps: 50.0 }.mean_rate_rps(),
            Some(50.0)
        );
        assert_eq!(
            ArrivalProcess::Trace { arrivals_s: vec![] }.mean_rate_rps(),
            None
        );
        assert_eq!(
            ArrivalProcess::ClosedLoop {
                clients: 1,
                think_s: 0.0
            }
            .mean_rate_rps(),
            None
        );
    }

    #[test]
    fn trace_replay_sorts_and_caps() {
        let w = Workload {
            arrivals: ArrivalProcess::Trace {
                arrivals_s: vec![3.0, 1.0, 2.0, 4.0],
            },
            num_requests: 3,
            ..Workload::poisson(1.0, 128, 16, 3)
        };
        let tape = drain(&mut RequestSource::new(&w));
        let times: Vec<f64> = tape.iter().map(|r| r.arrival_s).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn closed_loop_issues_on_completion() {
        let w = Workload {
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 2,
                think_s: 0.5,
            },
            ..Workload::poisson(1.0, 128, 16, 4)
        };
        let mut src = RequestSource::new(&w);
        assert_eq!(src.issued(), 2);
        assert!(!src.exhausted());
        src.pop_ready(0.0).unwrap();
        src.pop_ready(0.0).unwrap();
        src.on_completion(1.0);
        let r = src.pop_ready(10.0).unwrap();
        assert!((r.arrival_s - 1.5).abs() < 1e-12);
        src.on_completion(2.0);
        assert_eq!(src.issued(), 4);
        src.on_completion(3.0); // budget reached: no further issue
        assert_eq!(src.issued(), 4);
    }

    #[test]
    fn lengths_follow_the_distributions() {
        let w = Workload {
            prompt_lens: LengthDistribution::Uniform { lo: 10, hi: 20 },
            output_lens: LengthDistribution::Fixed(5),
            ..Workload::poisson(10.0, 1, 1, 100)
        };
        for r in drain(&mut RequestSource::new(&w)) {
            assert!((10..=20).contains(&r.prompt_len));
            assert_eq!(r.output_len, 5);
        }
    }

    #[test]
    fn single_class_stamps_defaults() {
        let w = Workload::poisson(100.0, 128, 16, 20);
        for r in drain(&mut RequestSource::new(&w)) {
            assert_eq!(r.class, 0);
            assert_eq!(r.tenant, 0);
            assert_eq!(r.priority, 0);
            assert!((r.deadline_s - r.arrival_s - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn class_mix_follows_shares_and_overrides_lengths() {
        let classes = vec![
            ClassSpec {
                share: 3.0,
                output_lens: Some(LengthDistribution::Fixed(7)),
                tenants: 2,
                ..ClassSpec::interactive()
            },
            ClassSpec {
                share: 1.0,
                prompt_lens: Some(LengthDistribution::Fixed(999)),
                ..ClassSpec::batch()
            },
        ];
        let w = Workload::poisson(100.0, 128, 16, 400).with_classes(classes);
        let tape = drain(&mut RequestSource::new(&w));
        let interactive: Vec<&Request> = tape.iter().filter(|r| r.class == 0).collect();
        let batch: Vec<&Request> = tape.iter().filter(|r| r.class == 1).collect();
        // 3:1 share split, within sampling noise.
        let frac = interactive.len() as f64 / tape.len() as f64;
        assert!((0.65..0.85).contains(&frac), "interactive share {frac}");
        for r in &interactive {
            assert_eq!(r.output_len, 7); // class override
            assert_eq!(r.prompt_len, 128); // workload default
            assert!(r.tenant < 2);
            assert_eq!(r.priority, 0);
        }
        for r in &batch {
            assert_eq!(r.prompt_len, 999); // class override
            assert_eq!(r.output_len, 16); // workload default
            assert_eq!(r.tenant, 2); // offset past class 0's tenants
            assert_eq!(r.priority, 2);
            assert!((r.deadline_s - r.arrival_s - 10.0).abs() < 1e-12);
        }
    }

    #[test]
    fn tenants_round_robin_within_class() {
        let classes = vec![ClassSpec {
            tenants: 3,
            ..ClassSpec::interactive()
        }];
        let w = Workload::poisson(100.0, 64, 8, 9).with_classes(classes);
        let tenants: Vec<u32> = drain(&mut RequestSource::new(&w))
            .iter()
            .map(|r| r.tenant)
            .collect();
        assert_eq!(tenants, vec![0, 1, 2, 0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn single_class_tape_matches_classless_draw_order() {
        // The class draw is skipped for single-class workloads, so the
        // prompt/output streams are exactly the pre-multi-tenant ones.
        let w = Workload {
            prompt_lens: LengthDistribution::Uniform { lo: 1, hi: 1000 },
            ..Workload::poisson(100.0, 1, 1, 10)
        };
        let with_explicit_class = Workload {
            classes: vec![ClassSpec {
                slo: SloTargets::interactive(),
                ..ClassSpec::interactive()
            }],
            ..w.clone()
        };
        assert_eq!(
            drain(&mut RequestSource::new(&w)),
            drain(&mut RequestSource::new(&with_explicit_class))
        );
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn classless_workload_is_rejected() {
        let w = Workload {
            classes: vec![],
            ..Workload::poisson(1.0, 1, 1, 1)
        };
        let _ = RequestSource::new(&w);
    }
}
