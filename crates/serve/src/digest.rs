//! Stable digests of serving reports and run states.
//!
//! A [`ReportDigest`] is a 64-bit FNV-1a hash over every field of a
//! [`ServeReport`] or [`FleetReport`], with floats canonicalised
//! (`-0.0` folds into `+0.0`, every NaN into one bit pattern) so the
//! digest is a pure function of the *values*, not their encodings.
//! Two runs agree on their digest exactly when they produced the same
//! report — which makes digests the currency of the differential
//! machinery: snapshot/resume equivalence, command-log replay checks
//! and [`crate::bisect`] all compare digests instead of lugging whole
//! reports around.

use crate::fleet::FleetReport;
use crate::request::{Request, RequestRecord};
use crate::scheduler::ServeReport;
use std::fmt;

/// A stable 64-bit digest of a report or run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReportDigest(pub u64);

impl fmt::Display for ReportDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Streaming FNV-1a 64 hasher feeding a [`ReportDigest`].
#[derive(Debug, Clone)]
pub struct DigestWriter {
    h: u64,
}

impl Default for DigestWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl DigestWriter {
    /// A hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self {
            h: 0xCBF2_9CE4_8422_2325,
        }
    }

    /// Feeds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.h ^= u64::from(b);
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Feeds a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feeds a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` as a `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Feeds an `f64` canonically: `-0.0` hashes as `+0.0` and every
    /// NaN as one fixed pattern, so digests never depend on which of
    /// several equal-valued bit patterns a computation produced.
    pub fn f64(&mut self, v: f64) {
        self.u64(canonical_f64_bits(v));
    }

    /// The finished digest.
    #[must_use]
    pub fn finish(&self) -> ReportDigest {
        ReportDigest(self.h)
    }
}

/// The canonical bit pattern digests hash an `f64` as.
#[must_use]
pub fn canonical_f64_bits(v: f64) -> u64 {
    if v.is_nan() {
        0x7FF8_0000_0000_0000
    } else if v == 0.0 {
        0 // +0.0 and -0.0 compare equal; hash them the same
    } else {
        v.to_bits()
    }
}

fn hash_request(w: &mut DigestWriter, r: &Request) {
    w.u32(r.id);
    w.f64(r.arrival_s);
    w.u32(r.prompt_len);
    w.u32(r.output_len);
    w.u32(r.tenant);
    w.u64(r.session);
    w.bytes(&[r.class, r.priority]);
    w.f64(r.deadline_s);
}

fn hash_record(w: &mut DigestWriter, r: &RequestRecord) {
    w.u32(r.id);
    w.f64(r.arrival_s);
    w.f64(r.admit_s);
    w.f64(r.first_token_s);
    w.f64(r.finish_s);
    w.u32(r.prompt_len);
    w.u32(r.output_len);
    w.u32(r.tenant);
    w.bytes(&[r.class]);
    w.u32(r.preemptions);
}

fn hash_serve_report(w: &mut DigestWriter, r: &ServeReport) {
    w.usize(r.records.len());
    for rec in &r.records {
        hash_record(w, rec);
    }
    w.u32(r.rejected);
    w.usize(r.rejected_requests.len());
    for req in &r.rejected_requests {
        hash_request(w, req);
    }
    w.u32(r.preemptions);
    w.f64(r.makespan_s);
    w.f64(r.decode_busy_s);
    w.f64(r.prefill_busy_s);
    w.u64(r.decode_iterations);
    w.u32(r.peak_batch);
    w.u64(r.peak_reserved_tokens);
}

/// Digest of a single-machine report: every record, rejection and
/// counter, floats canonicalised.
#[must_use]
pub fn digest_serve_report(report: &ServeReport) -> ReportDigest {
    let mut w = DigestWriter::new();
    hash_serve_report(&mut w, report);
    w.finish()
}

/// Digest of a fleet report: per-replica reports in replica order, the
/// assignment vector, then the merged aggregate.
#[must_use]
pub fn digest_fleet_report(report: &FleetReport) -> ReportDigest {
    let mut w = DigestWriter::new();
    w.usize(report.replicas.len());
    for r in &report.replicas {
        hash_serve_report(&mut w, r);
    }
    for &n in &report.assigned {
        w.u32(n);
    }
    hash_serve_report(&mut w, &report.aggregate);
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AnalyticCostModel;
    use crate::fleet::FleetBuilder;
    use crate::policy::Fifo;
    use crate::router::RoundRobin;
    use crate::scheduler::{serve, ServeConfig};
    use crate::Workload;

    #[test]
    fn digest_is_stable_across_runs_and_sensitive_to_the_report() {
        let wl = Workload::poisson(400.0, 128, 16, 24);
        let a = serve(
            &wl,
            &mut AnalyticCostModel::small(),
            &ServeConfig::default(),
        );
        let b = serve(
            &wl,
            &mut AnalyticCostModel::small(),
            &ServeConfig::default(),
        );
        assert_eq!(digest_serve_report(&a), digest_serve_report(&b));
        let other = serve(
            &Workload { seed: 1, ..wl },
            &mut AnalyticCostModel::small(),
            &ServeConfig::default(),
        );
        assert_ne!(digest_serve_report(&a), digest_serve_report(&other));
    }

    #[test]
    fn float_canonicalisation_folds_equivalent_values() {
        assert_eq!(canonical_f64_bits(0.0), canonical_f64_bits(-0.0));
        assert_eq!(canonical_f64_bits(f64::NAN), canonical_f64_bits(-f64::NAN));
        assert_ne!(canonical_f64_bits(1.0), canonical_f64_bits(2.0));
        assert_eq!(canonical_f64_bits(f64::INFINITY), f64::INFINITY.to_bits());
    }

    #[test]
    fn empty_workload_fleet_report_digests_stably() {
        // Satellite regression: a 0-request workload must merge to a
        // digestable report — no NaNs anywhere, same digest every time.
        let run = || {
            let mut fleet = FleetBuilder::new()
                .group(
                    3,
                    &ServeConfig::default(),
                    || Box::new(AnalyticCostModel::small()),
                    || Box::new(Fifo),
                )
                .build();
            fleet.serve(&Workload::default(), &mut RoundRobin::new())
        };
        let a = run();
        let b = run();
        assert_eq!(a.aggregate.records.len(), 0);
        assert_eq!(digest_fleet_report(&a), digest_fleet_report(&b));
        assert_eq!(a.aggregate.makespan_s, 0.0);
        assert!(!a.fleet_utilization().is_nan());
        assert!(!a.imbalance().is_nan());
        for u in a.per_replica_utilization() {
            assert!(!u.is_nan());
        }
    }

    #[test]
    fn digest_renders_as_sixteen_hex_digits() {
        assert_eq!(format!("{}", ReportDigest(0xAB)), "00000000000000ab");
    }
}
