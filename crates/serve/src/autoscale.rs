//! A reactive fleet autoscaler: windowed tail-latency and KV-occupancy
//! signals turned into lifecycle events under hysteresis.
//!
//! The [`Autoscaler`] runs a fixed-interval control loop over a
//! [`crate::FleetRun`]: at every decision boundary it looks at the p99
//! TTFT of requests completed in the trailing window and the mean KV
//! occupancy of the live replicas, and emits [`FleetEvent`]s —
//! [`Join`][FleetEventKind::Join] a spare slot when hot,
//! [`Drain`][FleetEventKind::Drain] the highest-index live replica
//! when cold, and a housekeeping [`Leave`][FleetEventKind::Leave] for
//! every draining replica that has gone idle. Scaling decisions are
//! double-gated: a signal must persist for a configured number of
//! consecutive boundaries (`up_after`/`down_after`) *and* a cooldown
//! must have elapsed since the last scaling action, so a flash crowd
//! does not see-saw the fleet.
//!
//! Everything is deterministic: the controller reads only simulated
//! state, so an autoscaled run snapshots, resumes and replays exactly
//! like any other fleet run.

use crate::arrivals::Workload;
use crate::fleet::{Fleet, FleetReport};
use crate::lifecycle::{FleetEvent, FleetEventKind, LifecycleState};
use crate::router::{ReplicaTelemetry, Router};
use rpu_util::stats::Percentiles;

/// Knobs of the reactive autoscaler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalerConfig {
    /// Control-loop decision interval, seconds.
    pub interval_s: f64,
    /// Trailing window the p99 TTFT is measured over, seconds.
    pub window_s: f64,
    /// Scale-up trips when the windowed p99 TTFT exceeds this, seconds.
    pub ttft_p99_high_s: f64,
    /// Scale-up trips when mean live KV occupancy exceeds this
    /// fraction.
    pub kv_high: f64,
    /// Scale-down requires mean live KV occupancy below this fraction.
    pub kv_low: f64,
    /// Consecutive hot boundaries before a join is emitted.
    pub up_after: u32,
    /// Consecutive cold boundaries before a drain is emitted.
    pub down_after: u32,
    /// Minimum time between scaling actions, seconds.
    pub cooldown_s: f64,
    /// Never drain below this many live replicas.
    pub min_live: usize,
    /// Never join above this many live replicas.
    pub max_live: usize,
}

impl Default for AutoscalerConfig {
    /// Defaults tuned for the compressed sim timescale of the bundled
    /// experiments (runs lasting single-digit seconds): a 50 ms control
    /// interval over a 100 ms window, hysteresis of 2-up/4-down, and a
    /// 100 ms cooldown.
    fn default() -> Self {
        Self {
            interval_s: 0.05,
            window_s: 0.1,
            ttft_p99_high_s: 0.25,
            kv_high: 0.85,
            kv_low: 0.25,
            up_after: 2,
            down_after: 4,
            cooldown_s: 0.1,
            min_live: 1,
            max_live: usize::MAX,
        }
    }
}

/// The reactive controller: holds the hysteresis streaks and cooldown
/// clock between decision boundaries.
#[derive(Debug, Clone)]
pub struct Autoscaler {
    config: AutoscalerConfig,
    hot_streak: u32,
    cold_streak: u32,
    last_scale_s: f64,
}

impl Autoscaler {
    /// Builds a controller.
    ///
    /// # Panics
    ///
    /// Panics if the interval or window is not positive, the
    /// thresholds are not ordered (`kv_low < kv_high`), or
    /// `min_live` is zero or exceeds `max_live`.
    #[must_use]
    pub fn new(config: AutoscalerConfig) -> Self {
        assert!(
            config.interval_s > 0.0 && config.window_s > 0.0,
            "autoscaler interval and window must be positive"
        );
        assert!(
            config.kv_low < config.kv_high,
            "kv_low must sit below kv_high"
        );
        assert!(
            config.ttft_p99_high_s > 0.0,
            "TTFT threshold must be positive"
        );
        assert!(
            config.min_live >= 1 && config.min_live <= config.max_live,
            "need 1 <= min_live <= max_live"
        );
        Self {
            config,
            hot_streak: 0,
            cold_streak: 0,
            last_scale_s: f64::NEG_INFINITY,
        }
    }

    /// The controller's knobs.
    #[must_use]
    pub fn config(&self) -> &AutoscalerConfig {
        &self.config
    }

    /// One control decision: reads the fleet's lifecycle states,
    /// per-replica telemetry and the windowed p99 TTFT (`None` when
    /// nothing completed in the window), and returns the lifecycle
    /// events to inject at `now_s`. At most one scaling action (join
    /// or drain) is emitted per call; housekeeping leaves for idle
    /// draining replicas are always emitted and never gated.
    pub fn control(
        &mut self,
        now_s: f64,
        states: &[LifecycleState],
        telemetry: &[ReplicaTelemetry],
        p99_ttft_s: Option<f64>,
    ) -> Vec<FleetEvent> {
        assert_eq!(
            states.len(),
            telemetry.len(),
            "states and telemetry must cover the same replicas"
        );
        let mut events = Vec::new();
        // Housekeeping: a draining replica that has gone idle exits
        // cleanly, regardless of hysteresis — holding an empty machine
        // in Draining would burn machine-seconds for nothing.
        for (i, (s, t)) in states.iter().zip(telemetry).enumerate() {
            if *s == LifecycleState::Draining && t.queue_depth == 0 && t.active_requests == 0 {
                events.push(FleetEvent {
                    at_s: now_s,
                    replica: i as u32,
                    kind: FleetEventKind::Leave,
                });
            }
        }
        let live: Vec<usize> = states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == LifecycleState::Live)
            .map(|(i, _)| i)
            .collect();
        let kv = if live.is_empty() {
            0.0
        } else {
            live.iter().map(|&i| telemetry[i].kv_load()).sum::<f64>() / live.len() as f64
        };
        let p99 = p99_ttft_s.unwrap_or(0.0);
        let hot = p99 > self.config.ttft_p99_high_s || kv > self.config.kv_high;
        let cold = !hot && kv < self.config.kv_low && p99 < 0.5 * self.config.ttft_p99_high_s;
        if hot {
            self.hot_streak += 1;
            self.cold_streak = 0;
        } else if cold {
            self.cold_streak += 1;
            self.hot_streak = 0;
        } else {
            self.hot_streak = 0;
            self.cold_streak = 0;
        }
        let cooled = now_s - self.last_scale_s >= self.config.cooldown_s;
        if self.hot_streak >= self.config.up_after && cooled && live.len() < self.config.max_live {
            // Bring up the first spare slot, if the fleet has one.
            if let Some(spare) = states.iter().position(|s| *s == LifecycleState::Down) {
                events.push(FleetEvent {
                    at_s: now_s,
                    replica: spare as u32,
                    kind: FleetEventKind::Join,
                });
                self.hot_streak = 0;
                self.cold_streak = 0;
                self.last_scale_s = now_s;
            }
        } else if self.cold_streak >= self.config.down_after
            && cooled
            && live.len() > self.config.min_live
        {
            // Retire the highest-index live replica: joins prefer low
            // indices, so the fleet contracts from the top and slot
            // indices stay stable for static groups below.
            let victim = *live.last().expect("live.len() > min_live >= 1");
            events.push(FleetEvent {
                at_s: now_s,
                replica: victim as u32,
                kind: FleetEventKind::Drain,
            });
            self.hot_streak = 0;
            self.cold_streak = 0;
            self.last_scale_s = now_s;
        }
        events
    }
}

/// Serves `workload` across `fleet` with the autoscaler in the loop:
/// the run advances [`AutoscalerConfig::interval_s`] at a time, the
/// controller reads the windowed tail latency and occupancy at each
/// boundary, and its events are injected back into the run. Fully
/// deterministic — same fleet, workload, router and config, same
/// report.
///
/// # Panics
///
/// Panics on the same conditions as [`Fleet::serve`].
#[must_use]
pub fn run_autoscaled(
    fleet: &mut Fleet,
    workload: &Workload,
    router: &mut dyn Router,
    scaler: &mut Autoscaler,
) -> FleetReport {
    let mut run = fleet.start(workload);
    let interval = scaler.config.interval_s;
    let window = scaler.config.window_s;
    let mut boundary = interval;
    loop {
        let more = run.step_until(fleet, router, boundary);
        if !more {
            break;
        }
        let ttfts = run.ttfts_completed_since((boundary - window).max(0.0));
        let p99 = if ttfts.is_empty() {
            None
        } else {
            Some(Percentiles::from_samples(&ttfts).p99)
        };
        let telemetry = run.telemetry(fleet);
        for ev in scaler.control(boundary, run.states(), &telemetry, p99) {
            run.inject(ev);
        }
        boundary += interval;
    }
    run.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AnalyticCostModel;
    use crate::fleet::FleetBuilder;
    use crate::policy::Fifo;
    use crate::router::JoinShortestQueue;
    use crate::scheduler::ServeConfig;

    fn elastic_fleet(live: usize, spare: usize) -> Fleet {
        FleetBuilder::new()
            .migration_delay_s(0.002)
            .group(
                live,
                &ServeConfig::default(),
                || Box::new(AnalyticCostModel::small()),
                || Box::new(Fifo),
            )
            .group_with_state(
                LifecycleState::Down,
                spare,
                &ServeConfig::default(),
                || Box::new(AnalyticCostModel::small()),
                || Box::new(Fifo),
            )
            .build()
    }

    fn overload_workload() -> Workload {
        // ~3x what one small replica sustains, long enough to trip the
        // hysteresis several times over.
        Workload::poisson(900.0, 256, 32, 900)
    }

    fn idle_telemetry() -> ReplicaTelemetry {
        ReplicaTelemetry {
            queue_depth: 0,
            active_requests: 0,
            reserved_tokens: 0,
            queued_tokens: 0,
            kv_capacity_tokens: 4096,
            in_flight_tokens: 0,
        }
    }

    #[test]
    #[should_panic(expected = "kv_low")]
    fn inverted_kv_thresholds_are_rejected() {
        let _ = Autoscaler::new(AutoscalerConfig {
            kv_low: 0.9,
            kv_high: 0.5,
            ..AutoscalerConfig::default()
        });
    }

    #[test]
    #[should_panic(expected = "min_live")]
    fn zero_min_live_is_rejected() {
        let _ = Autoscaler::new(AutoscalerConfig {
            min_live: 0,
            ..AutoscalerConfig::default()
        });
    }

    #[test]
    fn control_joins_under_sustained_heat_with_hysteresis_and_cooldown() {
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            up_after: 2,
            cooldown_s: 1.0,
            ..AutoscalerConfig::default()
        });
        let states = [LifecycleState::Live, LifecycleState::Down];
        let telemetry = vec![idle_telemetry(); 2];
        let hot = Some(10.0);
        // First hot boundary: streak too short, nothing happens.
        assert!(scaler.control(0.1, &states, &telemetry, hot).is_empty());
        // Second: join the spare slot.
        let evs = scaler.control(0.2, &states, &telemetry, hot);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, FleetEventKind::Join);
        assert_eq!(evs[0].replica, 1);
        // Still hot, but within cooldown: no double-join.
        assert!(scaler.control(0.3, &states, &telemetry, hot).is_empty());
        assert!(scaler.control(0.4, &states, &telemetry, hot).is_empty());
    }

    #[test]
    fn control_drains_the_top_replica_when_cold_and_leaves_when_idle() {
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            down_after: 2,
            cooldown_s: 0.0,
            min_live: 1,
            ..AutoscalerConfig::default()
        });
        let states = [LifecycleState::Live, LifecycleState::Live];
        let telemetry = vec![idle_telemetry(); 2];
        assert!(scaler.control(0.1, &states, &telemetry, None).is_empty());
        let evs = scaler.control(0.2, &states, &telemetry, None);
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, FleetEventKind::Drain);
        assert_eq!(evs[0].replica, 1, "contracts from the top");
        // Once draining and idle, the housekeeping leave fires
        // immediately, ungated by streaks or cooldown.
        let states = [LifecycleState::Live, LifecycleState::Draining];
        let evs = scaler.control(0.3, &states, &telemetry, None);
        assert!(evs
            .iter()
            .any(|e| e.kind == FleetEventKind::Leave && e.replica == 1));
    }

    #[test]
    fn min_live_floor_holds() {
        let mut scaler = Autoscaler::new(AutoscalerConfig {
            down_after: 1,
            cooldown_s: 0.0,
            min_live: 1,
            ..AutoscalerConfig::default()
        });
        let states = [LifecycleState::Live];
        let telemetry = vec![idle_telemetry(); 1];
        for k in 1..8 {
            assert!(
                scaler
                    .control(0.1 * f64::from(k), &states, &telemetry, None)
                    .is_empty(),
                "drained below min_live"
            );
        }
    }

    #[test]
    fn autoscaled_run_is_deterministic_and_actually_scales() {
        let wl = overload_workload();
        let run = || {
            let mut f = elastic_fleet(1, 3);
            let mut scaler = Autoscaler::new(AutoscalerConfig::default());
            run_autoscaled(&mut f, &wl, &mut JoinShortestQueue, &mut scaler)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "autoscaled runs must be bit-reproducible");
        assert!(a.lifecycle.joins >= 1, "overload never tripped a join");
        assert_eq!(
            a.aggregate.records.len() as u32 + a.aggregate.rejected,
            wl.num_requests
        );
        assert!(a.machine_seconds > 0.0);
    }

    #[test]
    fn autoscaling_beats_the_single_replica_tail() {
        let wl = overload_workload();
        let mut static_one = elastic_fleet(1, 0);
        let static_report = static_one.serve(&wl, &mut JoinShortestQueue);
        let mut f = elastic_fleet(1, 3);
        let mut scaler = Autoscaler::new(AutoscalerConfig::default());
        let scaled_report = run_autoscaled(&mut f, &wl, &mut JoinShortestQueue, &mut scaler);
        let p99 = |r: &FleetReport| {
            let mut t: Vec<f64> = r
                .aggregate
                .records
                .iter()
                .map(crate::request::RequestRecord::ttft_s)
                .collect();
            t.sort_by(f64::total_cmp);
            t[t.len() * 99 / 100]
        };
        assert!(
            p99(&scaled_report) < p99(&static_report),
            "joins never relieved the tail: {} vs {}",
            p99(&scaled_report),
            p99(&static_report)
        );
    }
}
