//! Incremental ordered indexes over replica telemetry: `O(log R)`
//! routing lookups for a fleet of `R` replicas.
//!
//! The fleet driver refreshes exactly one replica's telemetry per
//! event, so a full `O(R)` scan per routing decision re-reads `R - 1`
//! entries that cannot have changed. [`FleetRoutingIndex`] turns that
//! scan into an indexed lookup:
//!
//! * two **tournament trees** (flat, power-of-two padded, one `u64` /
//!   key-pair per node) hold every *routable* replica keyed exactly as
//!   the built-in routers compare them — `(backlog, index)` for
//!   [`crate::JoinShortestQueue`] and `(kv-load bits, backlog, index)`
//!   for [`crate::LeastKvLoad`]. Internal nodes store the full winning
//!   key, so the argmin is a root read and a leaf refresh is one
//!   `O(log R)` pull-up;
//! * a **routable bitset** answers "first routable replica at or after
//!   slot `i`, wrapping" — [`crate::RoundRobin`]'s probe — by word
//!   scan instead of a per-slot loop.
//!
//! Updates are split in two so runs that never query a tree never pay
//! for it: the driver **marks** a replica dirty in `O(1)` after each
//! event, and the first query **flushes** the accumulated dirty set
//! (each replica at most once) before reading the root. Lifecycle
//! transitions update the bitset eagerly — it is the cheap index and
//! the one `RoundRobin` needs fresh.
//!
//! Key packing preserves the routers' exact comparison order. Backlogs
//! pack as `backlog << 32 | index`, so the unsigned order of the packed
//! word is the lexicographic `(backlog, index)` order. KV load is
//! `ReplicaTelemetry::kv_load()` — a non-negative `f64`, whose IEEE bit
//! pattern orders identically to `f64::total_cmp` — paired with the
//! backlog word for the tie-break. Unroutable replicas and padding
//! leaves hold `u64::MAX` keys and can never win a tournament.
//!
//! The index is *derived* state: it is rebuilt from telemetry on run
//! start and resume and is never serialised, so snapshot wire formats
//! are untouched. Routers reach it through
//! [`crate::RoutingView::min_backlog_replica`] and friends, which fall
//! back to the original scans when no index is attached — custom
//! routers opt in by calling those methods instead of scanning.

use std::cell::RefCell;

use crate::router::ReplicaTelemetry;

/// Sentinel key for unroutable replicas and padding leaves: loses every
/// tournament. A real key only equals this when a replica with index
/// `u32::MAX` carries a backlog of `u32::MAX` — beyond any
/// constructible fleet.
const NO_KEY: u64 = u64::MAX;

/// Packs the join-shortest-queue comparison key: unsigned order of the
/// packed word is the `(backlog, index)` order the router scans by.
fn backlog_key(t: &ReplicaTelemetry, i: usize) -> u64 {
    (u64::from(t.backlog()) << 32) | i as u64
}

/// Packs the least-KV-load comparison key. `kv_load()` is non-negative,
/// so its raw bits order exactly as `f64::total_cmp`; the backlog word
/// carries the router's `(backlog, index)` tie-break.
fn kv_key(t: &ReplicaTelemetry, i: usize) -> (u64, u64) {
    (t.kv_load().to_bits(), backlog_key(t, i))
}

#[derive(Debug)]
struct Inner {
    /// Provisioned replica slots (leaves in use).
    n: usize,
    /// Leaf span: `n.next_power_of_two()`.
    size: usize,
    /// Min-tournament over packed `(backlog, index)` keys; 1-based,
    /// root at `[1]`, leaves at `[size ..]`.
    backlog: Vec<u64>,
    /// Min-tournament over `(kv-load bits, backlog-key)` pairs.
    kv: Vec<(u64, u64)>,
    /// Routable bitset, one bit per slot, maintained eagerly.
    live: Vec<u64>,
    /// Number of set bits in `live`.
    live_count: usize,
    /// Replicas whose leaves are stale, each listed at most once.
    dirty: Vec<u32>,
    /// `dirty` membership, indexed by replica.
    dirty_mask: Vec<bool>,
    /// Leaf refreshes applied (each an `O(log R)` pull-up).
    leaf_updates: u64,
    /// Dirty marks observed (one per telemetry delta event).
    marks: u64,
}

impl Inner {
    fn is_live(&self, i: usize) -> bool {
        (self.live[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Recomputes leaf `i` from its telemetry and pulls the change up
    /// to the root, stopping at the first ancestor both tournaments
    /// already agree on.
    fn refresh_leaf(&mut self, i: usize, t: &ReplicaTelemetry) {
        let (bk, kk) = if self.is_live(i) {
            (backlog_key(t, i), kv_key(t, i))
        } else {
            (NO_KEY, (NO_KEY, NO_KEY))
        };
        let mut node = self.size + i;
        if self.backlog[node] == bk && self.kv[node] == kk {
            return;
        }
        self.backlog[node] = bk;
        self.kv[node] = kk;
        while node > 1 {
            node /= 2;
            let (l, r) = (node * 2, node * 2 + 1);
            let nb = self.backlog[l].min(self.backlog[r]);
            let nk = self.kv[l].min(self.kv[r]);
            if self.backlog[node] == nb && self.kv[node] == nk {
                break;
            }
            self.backlog[node] = nb;
            self.kv[node] = nk;
        }
        self.leaf_updates += 1;
    }

    /// Applies every pending dirty mark against the current telemetry.
    fn flush(&mut self, telemetry: &[ReplicaTelemetry]) {
        debug_assert_eq!(telemetry.len(), self.n, "index and telemetry disagree");
        while let Some(i) = self.dirty.pop() {
            let i = i as usize;
            self.dirty_mask[i] = false;
            self.refresh_leaf(i, &telemetry[i]);
        }
    }

    /// First routable slot in the wrapping order `start, start + 1, ..,
    /// n - 1, 0, .., start - 1`.
    fn next_routable(&self, start: usize) -> Option<usize> {
        if self.live_count == 0 {
            return None;
        }
        debug_assert!(start < self.n);
        let nw = self.live.len();
        let w0 = start / 64;
        let head = self.live[w0] & (!0u64 << (start % 64));
        if head != 0 {
            return Some(w0 * 64 + head.trailing_zeros() as usize);
        }
        for k in 1..=nw {
            let w = (w0 + k) % nw;
            let m = if w == w0 {
                // Back at the start word: only the bits before `start`
                // remain candidates.
                self.live[w0] & !(!0u64 << (start % 64))
            } else {
                self.live[w]
            };
            if m != 0 {
                return Some(w * 64 + m.trailing_zeros() as usize);
            }
        }
        None
    }
}

/// Incrementally maintained routing indexes over one fleet's replica
/// telemetry — see the module docs for the design.
///
/// Owned by [`crate::FleetRun`], which marks one replica dirty per
/// event and flips bitset bits on lifecycle transitions; queries come
/// from routers via [`crate::RoutingView`]. Queries take `&self`
/// (lazy flushing uses interior mutability) so a `RoutingView` can
/// carry a shared reference.
pub struct FleetRoutingIndex {
    inner: RefCell<Inner>,
}

impl std::fmt::Debug for FleetRoutingIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("FleetRoutingIndex")
            .field("replicas", &inner.n)
            .field("live", &inner.live_count)
            .field("dirty", &inner.dirty.len())
            .field("leaf_updates", &inner.leaf_updates)
            .finish()
    }
}

impl FleetRoutingIndex {
    /// Builds the index over a fleet's current telemetry and routable
    /// mask (index-aligned, as in [`crate::RoutingView::new`]).
    ///
    /// # Panics
    ///
    /// Panics when the slices disagree on the replica count.
    #[must_use]
    pub fn new(telemetry: &[ReplicaTelemetry], routable: &[bool]) -> Self {
        assert_eq!(
            telemetry.len(),
            routable.len(),
            "telemetry and routable mask must cover the same replicas"
        );
        let n = telemetry.len();
        let size = n.next_power_of_two().max(1);
        let mut live = vec![0u64; n.div_ceil(64).max(1)];
        let mut live_count = 0;
        for (i, &r) in routable.iter().enumerate() {
            if r {
                live[i / 64] |= 1u64 << (i % 64);
                live_count += 1;
            }
        }
        let mut inner = Inner {
            n,
            size,
            backlog: vec![NO_KEY; 2 * size],
            kv: vec![(NO_KEY, NO_KEY); 2 * size],
            live,
            live_count,
            dirty: Vec::with_capacity(n),
            dirty_mask: vec![false; n],
            leaf_updates: 0,
            marks: 0,
        };
        for (i, t) in telemetry.iter().enumerate() {
            inner.refresh_leaf(i, t);
        }
        inner.leaf_updates = 0;
        Self {
            inner: RefCell::new(inner),
        }
    }

    /// Records that replica `i`'s telemetry may have changed: `O(1)`,
    /// deduplicated. The stale leaf is recomputed lazily on the next
    /// tree query.
    pub fn mark_dirty(&self, i: usize) {
        let mut inner = self.inner.borrow_mut();
        inner.marks += 1;
        if !inner.dirty_mask[i] {
            inner.dirty_mask[i] = true;
            inner.dirty.push(i as u32);
        }
    }

    /// Flips replica `i`'s routable bit (eagerly — the bitset must be
    /// fresh for every query) and marks its tree leaves dirty.
    pub fn set_routable(&self, i: usize, routable: bool) {
        {
            let mut inner = self.inner.borrow_mut();
            let (word, bit) = (i / 64, 1u64 << (i % 64));
            let was = inner.live[word] & bit != 0;
            if was != routable {
                inner.live[word] ^= bit;
                if routable {
                    inner.live_count += 1;
                } else {
                    inner.live_count -= 1;
                }
            }
        }
        self.mark_dirty(i);
    }

    /// How many replicas are currently routable.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.inner.borrow().live_count
    }

    /// The routable replica minimising `(backlog, index)` — the
    /// argmin [`crate::JoinShortestQueue`] scans for — or `None` when
    /// nothing is routable. Flushes pending dirty marks against
    /// `telemetry`, which must be the same per-replica slice the marks
    /// were issued for.
    #[must_use]
    pub fn min_backlog_replica(&self, telemetry: &[ReplicaTelemetry]) -> Option<usize> {
        let mut inner = self.inner.borrow_mut();
        inner.flush(telemetry);
        let key = inner.backlog[1];
        (key != NO_KEY).then_some((key & u64::from(u32::MAX)) as usize)
    }

    /// The routable replica minimising `(kv_load, backlog, index)`
    /// under `f64::total_cmp` — [`crate::LeastKvLoad`]'s exact order —
    /// or `None` when nothing is routable.
    #[must_use]
    pub fn min_kv_load_replica(&self, telemetry: &[ReplicaTelemetry]) -> Option<usize> {
        let mut inner = self.inner.borrow_mut();
        inner.flush(telemetry);
        let (load, key) = inner.kv[1];
        (load != NO_KEY).then_some((key & u64::from(u32::MAX)) as usize)
    }

    /// First routable replica in the wrapping slot order `start, start
    /// + 1, .., n - 1, 0, ..` — [`crate::RoundRobin`]'s probe — or
    /// `None` when nothing is routable.
    #[must_use]
    pub fn next_routable_from(&self, start: usize) -> Option<usize> {
        self.inner.borrow().next_routable(start)
    }

    /// `(leaf updates applied, dirty marks observed)` since
    /// construction — the index-maintenance counters behind the
    /// driver's `--counters` report.
    #[must_use]
    pub fn update_counts(&self) -> (u64, u64) {
        let inner = self.inner.borrow();
        (inner.leaf_updates, inner.marks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tel(queue: u32, active: u32, reserved: u64, cap: u64) -> ReplicaTelemetry {
        ReplicaTelemetry {
            queue_depth: queue,
            active_requests: active,
            reserved_tokens: reserved,
            queued_tokens: 0,
            kv_capacity_tokens: cap,
            in_flight_tokens: 0,
        }
    }

    /// Reference scans with the routers' exact comparison order.
    fn scan_backlog(telemetry: &[ReplicaTelemetry], routable: &[bool]) -> Option<usize> {
        (0..telemetry.len())
            .filter(|&i| routable[i])
            .min_by_key(|&i| (telemetry[i].backlog(), i))
    }

    fn scan_kv(telemetry: &[ReplicaTelemetry], routable: &[bool]) -> Option<usize> {
        (0..telemetry.len())
            .filter(|&i| routable[i])
            .min_by(|&a, &b| {
                telemetry[a]
                    .kv_load()
                    .total_cmp(&telemetry[b].kv_load())
                    .then(telemetry[a].backlog().cmp(&telemetry[b].backlog()))
                    .then(a.cmp(&b))
            })
    }

    #[test]
    fn argmins_match_scans_after_incremental_updates() {
        let mut telemetry: Vec<ReplicaTelemetry> = (0..13)
            .map(|i| tel(i % 3, 0, u64::from(i) * 100, 4096))
            .collect();
        let routable = vec![true; 13];
        let idx = FleetRoutingIndex::new(&telemetry, &routable);
        assert_eq!(
            idx.min_backlog_replica(&telemetry),
            scan_backlog(&telemetry, &routable)
        );
        assert_eq!(
            idx.min_kv_load_replica(&telemetry),
            scan_kv(&telemetry, &routable)
        );
        // A deterministic little churn: bump one replica at a time.
        for step in 0..200usize {
            let i = (step * 7) % 13;
            telemetry[i].queue_depth = (step % 5) as u32;
            telemetry[i].reserved_tokens = (step as u64 * 37) % 5000;
            idx.mark_dirty(i);
            assert_eq!(
                idx.min_backlog_replica(&telemetry),
                scan_backlog(&telemetry, &routable),
                "backlog argmin diverged at step {step}"
            );
            assert_eq!(
                idx.min_kv_load_replica(&telemetry),
                scan_kv(&telemetry, &routable),
                "kv argmin diverged at step {step}"
            );
        }
    }

    #[test]
    fn unroutable_replicas_never_win() {
        let telemetry: Vec<ReplicaTelemetry> = (0..5).map(|i| tel(i, 0, 0, 4096)).collect();
        let mut routable = vec![true; 5];
        let idx = FleetRoutingIndex::new(&telemetry, &routable);
        assert_eq!(idx.min_backlog_replica(&telemetry), Some(0));
        idx.set_routable(0, false);
        routable[0] = false;
        assert_eq!(idx.min_backlog_replica(&telemetry), Some(1));
        assert_eq!(
            idx.min_kv_load_replica(&telemetry),
            scan_kv(&telemetry, &routable)
        );
        idx.set_routable(0, true);
        assert_eq!(idx.min_backlog_replica(&telemetry), Some(0));
    }

    #[test]
    fn empty_and_all_down_fleets_answer_none() {
        let idx = FleetRoutingIndex::new(&[], &[]);
        assert_eq!(idx.min_backlog_replica(&[]), None);
        assert_eq!(idx.live_count(), 0);
        let telemetry = vec![tel(0, 0, 0, 1024); 3];
        let idx = FleetRoutingIndex::new(&telemetry, &[false; 3]);
        assert_eq!(idx.min_backlog_replica(&telemetry), None);
        assert_eq!(idx.min_kv_load_replica(&telemetry), None);
        assert_eq!(idx.next_routable_from(1), None);
    }

    #[test]
    fn next_routable_wraps_like_the_round_robin_probe() {
        // 130 slots spans three bitset words; punch a sparse pattern.
        let n = 130;
        let telemetry = vec![tel(0, 0, 0, 1024); n];
        let mut routable = vec![false; n];
        for &i in &[3usize, 64, 65, 127, 129] {
            routable[i] = true;
        }
        let idx = FleetRoutingIndex::new(&telemetry, &routable);
        let reference = |start: usize| (0..n).map(|k| (start + k) % n).find(|&i| routable[i]);
        for start in 0..n {
            assert_eq!(
                idx.next_routable_from(start),
                reference(start),
                "start {start}"
            );
        }
    }

    #[test]
    fn dirty_marks_deduplicate_and_flush_once() {
        let mut telemetry = vec![tel(1, 0, 0, 1024); 4];
        let idx = FleetRoutingIndex::new(&telemetry, &[true; 4]);
        telemetry[2].queue_depth = 0;
        for _ in 0..10 {
            idx.mark_dirty(2);
        }
        assert_eq!(idx.min_backlog_replica(&telemetry), Some(2));
        let (updates, marks) = idx.update_counts();
        assert_eq!(marks, 10);
        assert_eq!(
            updates, 1,
            "dedup must collapse repeated marks into one refresh"
        );
        // An unchanged leaf costs no pull-up on the next flush.
        idx.mark_dirty(2);
        let _ = idx.min_backlog_replica(&telemetry);
        assert_eq!(idx.update_counts().0, 1);
    }
}
