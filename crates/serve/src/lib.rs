//! Request-level serving simulation for the RPU reproduction.
//!
//! The per-token figures answer "how fast is one decode step"; this
//! crate answers the production question above it: **what latency do
//! users see at a given offered load?** It simulates a stream of
//! requests — seeded Poisson arrivals, bursty on/off (MMPP-style)
//! arrivals, trace replay, or a closed loop of clients, multiplexing
//! multiple tenant [`ClassSpec`]s with their own SLOs — flowing
//! through a continuous-batching scheduler
//! ([`serve_with`]) whose admission/eviction order is a pluggable
//! [`SchedulingPolicy`]: FIFO ([`Fifo`]), predicted-length
//! shortest-job-first ([`ShortestJobFirst`]), priority classes with
//! bounded-starvation aging ([`PriorityAging`]) or preemptive
//! deadline-aware admission ([`DeadlineEdf`]). Policies change who
//! waits, never how much work is done. The result is an SLO report:
//! TTFT/TPOT/end-to-end latency at p50/p95/p99 and goodput against
//! [`SloTargets`] — aggregate ([`SloReport`]) and per class
//! ([`MultiClassReport`]).
//!
//! Above the single machine sits the fleet layer: a [`Fleet`] (built
//! with [`FleetBuilder`]) of N replica schedulers (each with its own
//! policy, cost model and KV capacity — heterogeneous SKUs welcome)
//! fronted by a pluggable [`Router`] that sees a [`RoutingView`] of
//! replica-published [`ReplicaTelemetry`] and the live/draining mask:
//! blind [`RoundRobin`], backlog-driven [`JoinShortestQueue`],
//! occupancy-driven [`LeastKvLoad`] or consistent-hashing
//! [`SessionAffinity`]. [`FleetReport`] adds per-replica utilisation
//! and load imbalance on top of the same SLO metrics.
//!
//! The replica set itself is dynamic: [`FleetEvent`]s join, drain,
//! cleanly retire or fail replicas at deterministic sim times
//! ([`lifecycle`]), failures displace in-flight work back through the
//! router at a re-prefill cost, and the reactive [`Autoscaler`]
//! ([`run_autoscaled`]) turns windowed p99-TTFT/KV-occupancy signals
//! into those events under hysteresis — trading machine-seconds
//! against SLO attainment on diurnal load
//! ([`ArrivalProcess::DiurnalOnOff`]).
//!
//! Machine costs enter through the [`CostModel`] trait, so this crate
//! stays independent of the simulator stack: `rpu-core` adapts
//! `RpuSystem` (event-driven simulation with memoised decode steps)
//! behind it, while [`AnalyticCostModel`] provides a closed-form
//! machine for tests. Everything is deterministic — a fixed workload
//! seed reproduces the schedule bit-for-bit, for every policy, router
//! and fleet size.
//!
//! Determinism is load-bearing, so it has its own tooling layer:
//! [`ServeRun`]/[`FleetRun`] unroll the serving loops into resumable
//! runs that can be frozen to versioned, checksummed bytes
//! ([`snapshot`]) and thawed to continue bit-identically; every run
//! records a [`CommandLog`] whose replay digests
//! ([`digest_serve_report`]/[`digest_fleet_report`]) identically to
//! the recording; and when two builds disagree, [`bisect`]
//! binary-searches the first event where their state digests diverge.
//! [`fuzz_tape`] generates adversarial workloads (flash bursts,
//! zero-length prompts, KV-filling monster contexts, deadline
//! inversions, session churn) to stress all of it.
//!
//! # Examples
//!
//! ```
//! use rpu_serve::{
//!     serve_with, AnalyticCostModel, ClassSpec, MultiClassReport, PriorityAging,
//!     ServeConfig, Workload,
//! };
//!
//! // Interactive chat sharing the machine with offline batch traffic.
//! let workload = Workload::poisson(100.0, 512, 64, 32)
//!     .with_classes(vec![ClassSpec::interactive(), ClassSpec::batch()]);
//! let report = serve_with(
//!     &workload,
//!     &mut AnalyticCostModel::small(),
//!     &ServeConfig::default(),
//!     &mut PriorityAging::new(2.0),
//! );
//! let slo = MultiClassReport::new(&report, &workload.classes);
//! assert_eq!(slo.aggregate.completed, 32);
//! assert_eq!(slo.classes.len(), 2);
//! ```

#![warn(missing_docs)]

mod arena;
mod arrivals;
mod autoscale;
pub mod bisect;
mod calendar;
mod class;
mod cost;
mod digest;
mod fleet;
pub mod lifecycle;
mod lut;
mod metrics;
mod policy;
mod replay;
mod request;
mod rng;
mod router;
mod routing_index;
mod scheduler;
mod slab;
pub mod snapshot;

pub use arena::ChunkArena;
pub use arrivals::{fuzz_tape, ArrivalProcess, FuzzFamily, RequestSource, Workload};
pub use autoscale::{run_autoscaled, Autoscaler, AutoscalerConfig};
pub use bisect::{bisect_divergence, BisectOutcome};
pub use calendar::CalendarQueue;
pub use class::{ClassSpec, SloTargets};
pub use cost::{AnalyticCostModel, CostModel};
pub use digest::{
    canonical_f64_bits, digest_fleet_report, digest_serve_report, DigestWriter, ReportDigest,
};
pub use fleet::{Fleet, FleetBuilder, FleetReplica, FleetReport, FleetRun, PerfCounters};
pub use lifecycle::{churn_tape, FleetEvent, FleetEventKind, LifecycleCounts, LifecycleState};
pub use lut::{LatencyLut, LutBuilder};
pub use metrics::{scratch_reuse_hits, ClassSlo, MultiClassReport, SloReport};
pub use policy::{
    ActiveRequest, DeadlineEdf, Fifo, PriorityAging, QueuedRequest, SchedulingPolicy,
    ShortestJobFirst,
};
pub use replay::{Command, CommandLog};
pub use request::{Request, RequestRecord};
pub use rng::ServeRng;
pub use router::{
    JoinShortestQueue, LeastKvLoad, ReplicaTelemetry, RoundRobin, RouteStats, Router, RoutingView,
    SessionAffinity,
};
pub use routing_index::FleetRoutingIndex;
pub use scheduler::{serve, serve_with, RunStats, ServeConfig, ServeReport, ServeRun};
pub use slab::Slab;
pub use snapshot::SnapshotError;
