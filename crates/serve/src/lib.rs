//! Request-level serving simulation for the RPU reproduction.
//!
//! The per-token figures answer "how fast is one decode step"; this
//! crate answers the production question above it: **what latency do
//! users see at a given offered load?** It simulates a stream of
//! requests — seeded Poisson arrivals, trace replay, or a closed loop
//! of clients — flowing through a continuous-batching scheduler
//! ([`serve`]) that admits FIFO under batch-size and KV-capacity
//! back-pressure, interleaves prefill with decode, and emits one token
//! per resident request per iteration. The result is an SLO report:
//! TTFT/TPOT/end-to-end latency at p50/p95/p99, goodput against
//! [`SloTargets`], and decode-machine utilisation.
//!
//! Machine costs enter through the [`CostModel`] trait, so this crate
//! stays independent of the simulator stack: `rpu-core` adapts
//! `RpuSystem` (event-driven simulation with memoised decode steps)
//! behind it, while [`AnalyticCostModel`] provides a closed-form
//! machine for tests. Everything is deterministic — a fixed workload
//! seed reproduces the schedule bit-for-bit.
//!
//! # Examples
//!
//! ```
//! use rpu_serve::{serve, AnalyticCostModel, ServeConfig, SloReport, SloTargets, Workload};
//!
//! let workload = Workload::poisson(100.0, 512, 64, 32);
//! let report = serve(
//!     &workload,
//!     &mut AnalyticCostModel::small(),
//!     &ServeConfig::default(),
//! );
//! let slo = SloReport::new(&report, &SloTargets::interactive());
//! assert_eq!(slo.completed, 32);
//! assert!(slo.ttft.p50 > 0.0 && slo.ttft.p50 <= slo.ttft.p99);
//! ```

#![warn(missing_docs)]

mod arrivals;
mod cost;
mod metrics;
mod request;
mod rng;
mod scheduler;

pub use arrivals::{ArrivalProcess, RequestSource, Workload};
pub use cost::{AnalyticCostModel, CostModel};
pub use metrics::{SloReport, SloTargets};
pub use request::{Request, RequestRecord};
pub use rng::ServeRng;
pub use scheduler::{serve, ServeConfig, ServeReport};
