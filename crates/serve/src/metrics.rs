//! SLO reporting: latency percentiles, goodput and utilisation —
//! aggregate and per SLO class.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::class::{ClassSpec, SloTargets};
use crate::request::RequestRecord;
use crate::scheduler::ServeReport;
use rpu_util::stats::Percentiles;
use rpu_util::table::{num, Table};

/// Latency summaries served from an already-allocated scratch buffer
/// (no realloc), process-wide. Diagnostic only — the repro driver's
/// `--counters` report reads it to confirm the reporting path stays
/// allocation-free after its first buffer.
static SCRATCH_REUSE_HITS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of latency summaries that reused an existing
/// scratch allocation instead of growing one.
#[must_use]
pub fn scratch_reuse_hits() -> u64 {
    SCRATCH_REUSE_HITS.load(Ordering::Relaxed)
}

/// Aggregated serving metrics for one run (or one class of it).
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Time-to-first-token summary, seconds.
    pub ttft: Percentiles,
    /// Time-per-output-token summary, seconds.
    pub tpot: Percentiles,
    /// End-to-end latency summary, seconds.
    pub e2e: Percentiles,
    /// Completed requests.
    pub completed: u32,
    /// Rejected (over-capacity) requests.
    pub rejected: u32,
    /// Completed requests per second over the makespan.
    pub throughput_rps: f64,
    /// Output tokens per second over the makespan.
    pub throughput_tok_s: f64,
    /// Requests per second that met *both* SLO targets. An honest zero
    /// when nothing completed: zero requests per second is exactly
    /// what the class delivered.
    pub goodput_rps: f64,
    /// Fraction of completed requests meeting both SLO targets. `NaN`
    /// when nothing completed — 0-of-0 is not an attainment of 0% (or
    /// 100%), and tables render it as "n/a".
    pub slo_attainment: f64,
    /// Decode-machine utilisation over the makespan. Machine-wide even
    /// in per-class reports (classes share the decode machine).
    pub utilization: f64,
    /// Largest concurrent batch observed (machine-wide).
    pub peak_batch: u32,
    /// Largest conservative KV reservation observed, tokens
    /// (machine-wide).
    pub peak_reserved_tokens: u64,
}

impl SloReport {
    /// Summarises a serve run against one set of SLO targets.
    #[must_use]
    pub fn new(report: &ServeReport, slo: &SloTargets) -> Self {
        let records: Vec<&RequestRecord> = report.records.iter().collect();
        summarise(&records, report.rejected, report, &|_| *slo)
    }
}

/// Builds one [`SloReport`] over a record subset, judging each record
/// against the targets `slo_of` assigns it. Rates share the run's
/// makespan, so per-class rates sum to the aggregate's.
fn summarise(
    records: &[&RequestRecord],
    rejected: u32,
    run: &ServeReport,
    slo_of: &dyn Fn(&RequestRecord) -> SloTargets,
) -> SloReport {
    // One scratch buffer serves all three latency summaries: filled,
    // summarised by selection (no sort, no per-metric allocation),
    // refilled. At fleet scale the old path — three sample vectors,
    // each fully sorted — dominated report time.
    let mut scratch: Vec<f64> = Vec::with_capacity(records.len());
    let summarise_metric = |scratch: &mut Vec<f64>, sample: &dyn Fn(&RequestRecord) -> f64| {
        let cap = scratch.capacity();
        scratch.clear();
        scratch.extend(records.iter().map(|r| sample(r)));
        if cap > 0 && scratch.capacity() == cap {
            SCRATCH_REUSE_HITS.fetch_add(1, Ordering::Relaxed);
        }
        Percentiles::from_scratch(scratch)
    };
    let ttft = summarise_metric(&mut scratch, &RequestRecord::ttft_s);
    let tpot = summarise_metric(&mut scratch, &RequestRecord::tpot_s);
    let e2e = summarise_metric(&mut scratch, &RequestRecord::e2e_s);
    let good = records
        .iter()
        .filter(|r| {
            let slo = slo_of(r);
            r.ttft_s() <= slo.ttft_s && r.tpot_s() <= slo.tpot_s
        })
        .count();
    let completed = records.len();
    let tokens: u64 = records.iter().map(|r| u64::from(r.output_len)).sum();
    let span = run.makespan_s.max(f64::MIN_POSITIVE);
    SloReport {
        ttft,
        tpot,
        e2e,
        completed: completed as u32,
        rejected,
        throughput_rps: completed as f64 / span,
        throughput_tok_s: tokens as f64 / span,
        goodput_rps: good as f64 / span,
        slo_attainment: if completed > 0 {
            good as f64 / completed as f64
        } else {
            f64::NAN
        },
        utilization: run.utilization(),
        peak_batch: run.peak_batch,
        peak_reserved_tokens: run.peak_reserved_tokens,
    }
}

/// One class's slice of a multi-tenant run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassSlo {
    /// Class name (from its [`ClassSpec`]).
    pub name: &'static str,
    /// The targets this class was judged against.
    pub slo: SloTargets,
    /// The class's metrics (rates over the shared makespan).
    pub report: SloReport,
}

/// Per-class and aggregate SLO metrics for a multi-tenant run.
///
/// The aggregate judges every record against *its own class's* targets,
/// so per-class counts and rates sum to the aggregate's (the policy
/// property suite asserts this): `completed`, `rejected`,
/// `throughput_rps`, `throughput_tok_s` and `goodput_rps` are additive
/// across classes.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiClassReport {
    /// Whole-run metrics, each record judged per its class SLO.
    pub aggregate: SloReport,
    /// One entry per workload class, in class order.
    pub classes: Vec<ClassSlo>,
}

/// Formats a metric cell, rendering the NaN "no samples" sentinel as
/// "n/a" so an empty class is visibly distinct from a zero-latency or
/// zero-attainment one.
fn cell(v: f64, prec: usize) -> String {
    if v.is_nan() {
        "n/a".to_owned()
    } else {
        num(v, prec)
    }
}

impl MultiClassReport {
    /// Summarises a serve run per SLO class. Records whose class index
    /// is out of range (impossible for tapes generated by
    /// [`crate::RequestSource`]) are judged against interactive targets
    /// in the aggregate and dropped from per-class slices.
    #[must_use]
    pub fn new(report: &ServeReport, classes: &[ClassSpec]) -> Self {
        let slo_of = |r: &RequestRecord| {
            classes
                .get(r.class as usize)
                .map_or_else(SloTargets::interactive, |c| c.slo)
        };
        let all: Vec<&RequestRecord> = report.records.iter().collect();
        let aggregate = summarise(&all, report.rejected, report, &slo_of);
        let per_class = classes
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let recs: Vec<&RequestRecord> = report
                    .records
                    .iter()
                    .filter(|r| usize::from(r.class) == i)
                    .collect();
                let rejected = report
                    .rejected_requests
                    .iter()
                    .filter(|r| usize::from(r.class) == i)
                    .count() as u32;
                ClassSlo {
                    name: spec.name,
                    slo: spec.slo,
                    report: summarise(&recs, rejected, report, &|_| spec.slo),
                }
            })
            .collect();
        Self {
            aggregate,
            classes: per_class,
        }
    }

    /// The report for a named class, if present.
    #[must_use]
    pub fn class(&self, name: &str) -> Option<&ClassSlo> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Renders one row per class plus the aggregate: completion counts,
    /// TTFT/TPOT tails (milliseconds) and goodput.
    #[must_use]
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(
            title,
            &[
                "class",
                "done/rej",
                "TTFT p50 (ms)",
                "TTFT p99 (ms)",
                "TPOT p99 (ms)",
                "goodput (req/s)",
                "SLO %",
            ],
        );
        let mut row = |name: &str, r: &SloReport| {
            t.row(&[
                name.to_owned(),
                format!("{}/{}", r.completed, r.rejected),
                cell(r.ttft.p50 * 1e3, 2),
                cell(r.ttft.p99 * 1e3, 2),
                cell(r.tpot.p99 * 1e3, 2),
                num(r.goodput_rps, 1),
                cell(r.slo_attainment * 100.0, 1),
            ]);
        };
        for c in &self.classes {
            row(c.name, &c.report);
        }
        row("(all)", &self.aggregate);
        t
    }
}

impl SloReport {
    /// Renders the report as an aligned text table (milliseconds for
    /// latencies), matching the repo's figure-table style.
    #[must_use]
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["metric", "p50", "p95", "p99", "mean", "max"]);
        let ms = |p: &Percentiles| -> Vec<String> {
            [p.p50, p.p95, p.p99, p.mean, p.max]
                .iter()
                .map(|v| cell(v * 1e3, 2))
                .collect()
        };
        let mut row = vec!["TTFT (ms)".to_owned()];
        row.extend(ms(&self.ttft));
        t.row(&row);
        let mut row = vec!["TPOT (ms)".to_owned()];
        row.extend(ms(&self.tpot));
        t.row(&row);
        let mut row = vec!["E2E (ms)".to_owned()];
        row.extend(ms(&self.e2e));
        t.row(&row);
        t.row(&[
            "completed / rejected".into(),
            format!("{} / {}", self.completed, self.rejected),
        ]);
        t.row(&[
            "throughput".into(),
            format!(
                "{} req/s, {} tok/s",
                num(self.throughput_rps, 1),
                num(self.throughput_tok_s, 0)
            ),
        ]);
        t.row(&[
            "goodput".into(),
            format!(
                "{} req/s ({}% in SLO)",
                num(self.goodput_rps, 1),
                cell(self.slo_attainment * 100.0, 1)
            ),
        ]);
        t.row(&[
            "decode utilisation".into(),
            format!("{}%", num(self.utilization * 100.0, 1)),
        ]);
        t.row(&[
            "peak batch / KV tokens".into(),
            format!("{} / {}", self.peak_batch, self.peak_reserved_tokens),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::ClassSpec;
    use crate::cost::AnalyticCostModel;
    use crate::scheduler::{serve, ServeConfig};
    use crate::Workload;
    use rpu_models::LengthDistribution;

    fn report() -> ServeReport {
        serve(
            &Workload::poisson(200.0, 256, 32, 48),
            &mut AnalyticCostModel::small(),
            &ServeConfig::default(),
        )
    }

    fn two_class_report() -> (ServeReport, Vec<ClassSpec>) {
        let classes = vec![
            ClassSpec {
                share: 0.5,
                output_lens: Some(LengthDistribution::Fixed(8)),
                ..ClassSpec::interactive()
            },
            ClassSpec {
                share: 0.5,
                output_lens: Some(LengthDistribution::Fixed(64)),
                ..ClassSpec::batch()
            },
        ];
        let wl = Workload::poisson(500.0, 256, 1, 64).with_classes(classes.clone());
        (
            serve(
                &wl,
                &mut AnalyticCostModel::small(),
                &ServeConfig::default(),
            ),
            classes,
        )
    }

    #[test]
    fn percentiles_are_ordered() {
        let s = SloReport::new(&report(), &SloTargets::interactive());
        assert!(s.ttft.p50 <= s.ttft.p95 && s.ttft.p95 <= s.ttft.p99);
        assert!(s.e2e.p99 <= s.e2e.max);
        assert!(s.ttft.p50 > 0.0);
        assert_eq!(s.completed, 48);
    }

    #[test]
    fn goodput_never_exceeds_throughput() {
        let s = SloReport::new(&report(), &SloTargets::interactive());
        assert!(s.goodput_rps <= s.throughput_rps + 1e-12);
        assert!((0.0..=1.0).contains(&s.slo_attainment));
        assert!((0.0..=1.0 + 1e-9).contains(&s.utilization));
    }

    #[test]
    fn impossible_slo_zeroes_goodput() {
        let slo = SloTargets {
            ttft_s: 0.0,
            tpot_s: 0.0,
        };
        let s = SloReport::new(&report(), &slo);
        assert_eq!(s.goodput_rps, 0.0);
        assert_eq!(s.slo_attainment, 0.0);
    }

    #[test]
    fn table_renders_all_metrics() {
        let s = SloReport::new(&report(), &SloTargets::interactive());
        let rendered = s.table("serve").to_string();
        for needle in ["TTFT", "TPOT", "E2E", "goodput", "utilisation"] {
            assert!(rendered.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn empty_run_is_well_defined() {
        let r = ServeReport {
            records: vec![],
            rejected: 0,
            rejected_requests: vec![],
            preemptions: 0,
            makespan_s: 0.0,
            decode_busy_s: 0.0,
            prefill_busy_s: 0.0,
            decode_iterations: 0,
            peak_batch: 0,
            peak_reserved_tokens: 0,
        };
        let s = SloReport::new(&r, &SloTargets::interactive());
        assert_eq!(s.completed, 0);
        assert!(
            s.slo_attainment.is_nan(),
            "0-of-0 must not read as an attainment"
        );
        assert_eq!(s.goodput_rps, 0.0, "zero delivered req/s is honest");
        assert!(s.ttft.p99.is_nan(), "no samples, no percentile");
        assert!(s.throughput_rps.is_finite());
        // And the rendering makes the absence visible instead of
        // printing a perfect-looking zero.
        let rendered = s.table("empty").to_string();
        assert!(
            rendered.contains("n/a"),
            "empty run renders n/a:\n{rendered}"
        );
        assert!(
            rendered.contains("(n/a% in SLO)"),
            "attainment renders n/a:\n{rendered}"
        );
    }

    #[test]
    fn empty_class_renders_na_rows() {
        // A two-class workload where one class never completes a
        // request: its row must say "n/a", not "0.00" (which would be
        // indistinguishable from a perfect SLO).
        let (r, mut classes) = two_class_report();
        classes.push(ClassSpec {
            name: "ghost",
            share: 0.0,
            ..ClassSpec::batch()
        });
        let m = MultiClassReport::new(&r, &classes);
        let ghost = m.class("ghost").expect("ghost class");
        assert_eq!(ghost.report.completed, 0);
        assert!(ghost.report.slo_attainment.is_nan());
        let rendered = m.table("classes").to_string();
        let row = rendered
            .lines()
            .find(|l| l.contains("ghost"))
            .expect("ghost row");
        assert!(row.contains("0/0"), "row: {row}");
        assert!(row.contains("n/a"), "row: {row}");
        assert!(!row.contains("0.00"), "zero percentile leaked: {row}");
    }

    #[test]
    fn per_class_counts_sum_to_aggregate() {
        let (r, classes) = two_class_report();
        let m = MultiClassReport::new(&r, &classes);
        assert_eq!(m.classes.len(), 2);
        let sum_completed: u32 = m.classes.iter().map(|c| c.report.completed).sum();
        assert_eq!(sum_completed, m.aggregate.completed);
        let sum_goodput: f64 = m.classes.iter().map(|c| c.report.goodput_rps).sum();
        assert!((sum_goodput - m.aggregate.goodput_rps).abs() < 1e-9);
        let sum_tok: f64 = m.classes.iter().map(|c| c.report.throughput_tok_s).sum();
        assert!((sum_tok - m.aggregate.throughput_tok_s).abs() < 1e-9);
    }

    #[test]
    fn per_class_slices_see_their_own_lengths() {
        let (r, classes) = two_class_report();
        let m = MultiClassReport::new(&r, &classes);
        let interactive = m.class("interactive").expect("interactive class");
        let batch = m.class("batch").expect("batch class");
        assert!(interactive.report.completed > 0 && batch.report.completed > 0);
        // The batch class generates 8x the output tokens per request.
        let per_req = |c: &ClassSlo| c.report.throughput_tok_s / c.report.throughput_rps;
        assert!(per_req(batch) > 4.0 * per_req(interactive));
    }

    #[test]
    fn multi_class_table_lists_every_class_and_aggregate() {
        let (r, classes) = two_class_report();
        let rendered = MultiClassReport::new(&r, &classes)
            .table("classes")
            .to_string();
        for needle in ["interactive", "batch", "(all)", "TTFT"] {
            assert!(rendered.contains(needle), "missing {needle}");
        }
    }
}
