//! SLO reporting: latency percentiles, goodput and utilisation.

use crate::request::RequestRecord;
use crate::scheduler::ServeReport;
use rpu_util::stats::Percentiles;
use rpu_util::table::{num, Table};

/// Service-level objectives for one request class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloTargets {
    /// Maximum acceptable time to first token, seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token, seconds.
    pub tpot_s: f64,
}

impl SloTargets {
    /// Interactive chat targets: first token within 500 ms, then faster
    /// than human reading speed (50 ms/token ≈ 20 tokens/s).
    #[must_use]
    pub fn interactive() -> Self {
        Self {
            ttft_s: 0.5,
            tpot_s: 0.05,
        }
    }
}

/// Aggregated serving metrics for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// Time-to-first-token summary, seconds.
    pub ttft: Percentiles,
    /// Time-per-output-token summary, seconds.
    pub tpot: Percentiles,
    /// End-to-end latency summary, seconds.
    pub e2e: Percentiles,
    /// Completed requests.
    pub completed: u32,
    /// Rejected (over-capacity) requests.
    pub rejected: u32,
    /// Completed requests per second over the makespan.
    pub throughput_rps: f64,
    /// Output tokens per second over the makespan.
    pub throughput_tok_s: f64,
    /// Requests per second that met *both* SLO targets.
    pub goodput_rps: f64,
    /// Fraction of completed requests meeting both SLO targets.
    pub slo_attainment: f64,
    /// Decode-machine utilisation over the makespan.
    pub utilization: f64,
    /// Largest concurrent batch observed.
    pub peak_batch: u32,
    /// Largest conservative KV reservation observed, tokens.
    pub peak_reserved_tokens: u64,
}

impl SloReport {
    /// Summarises a serve run against SLO targets.
    #[must_use]
    pub fn new(report: &ServeReport, slo: &SloTargets) -> Self {
        let ttfts: Vec<f64> = report.records.iter().map(RequestRecord::ttft_s).collect();
        let tpots: Vec<f64> = report.records.iter().map(RequestRecord::tpot_s).collect();
        let e2es: Vec<f64> = report.records.iter().map(RequestRecord::e2e_s).collect();
        let good = report
            .records
            .iter()
            .filter(|r| r.ttft_s() <= slo.ttft_s && r.tpot_s() <= slo.tpot_s)
            .count();
        let completed = report.records.len();
        let span = report.makespan_s.max(f64::MIN_POSITIVE);
        Self {
            ttft: Percentiles::from_samples(&ttfts),
            tpot: Percentiles::from_samples(&tpots),
            e2e: Percentiles::from_samples(&e2es),
            completed: completed as u32,
            rejected: report.rejected,
            throughput_rps: completed as f64 / span,
            throughput_tok_s: report.output_tokens() as f64 / span,
            goodput_rps: good as f64 / span,
            slo_attainment: if completed > 0 {
                good as f64 / completed as f64
            } else {
                0.0
            },
            utilization: report.utilization(),
            peak_batch: report.peak_batch,
            peak_reserved_tokens: report.peak_reserved_tokens,
        }
    }

    /// Renders the report as an aligned text table (milliseconds for
    /// latencies), matching the repo's figure-table style.
    #[must_use]
    pub fn table(&self, title: &str) -> Table {
        let mut t = Table::new(title, &["metric", "p50", "p95", "p99", "mean", "max"]);
        let ms = |p: &Percentiles| -> Vec<String> {
            [p.p50, p.p95, p.p99, p.mean, p.max]
                .iter()
                .map(|v| num(v * 1e3, 2))
                .collect()
        };
        let mut row = vec!["TTFT (ms)".to_owned()];
        row.extend(ms(&self.ttft));
        t.row(&row);
        let mut row = vec!["TPOT (ms)".to_owned()];
        row.extend(ms(&self.tpot));
        t.row(&row);
        let mut row = vec!["E2E (ms)".to_owned()];
        row.extend(ms(&self.e2e));
        t.row(&row);
        t.row(&[
            "completed / rejected".into(),
            format!("{} / {}", self.completed, self.rejected),
        ]);
        t.row(&[
            "throughput".into(),
            format!(
                "{} req/s, {} tok/s",
                num(self.throughput_rps, 1),
                num(self.throughput_tok_s, 0)
            ),
        ]);
        t.row(&[
            "goodput".into(),
            format!(
                "{} req/s ({}% in SLO)",
                num(self.goodput_rps, 1),
                num(self.slo_attainment * 100.0, 1)
            ),
        ]);
        t.row(&[
            "decode utilisation".into(),
            format!("{}%", num(self.utilization * 100.0, 1)),
        ]);
        t.row(&[
            "peak batch / KV tokens".into(),
            format!("{} / {}", self.peak_batch, self.peak_reserved_tokens),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::AnalyticCostModel;
    use crate::scheduler::{serve, ServeConfig};
    use crate::Workload;

    fn report() -> ServeReport {
        serve(
            &Workload::poisson(200.0, 256, 32, 48),
            &mut AnalyticCostModel::small(),
            &ServeConfig::default(),
        )
    }

    #[test]
    fn percentiles_are_ordered() {
        let s = SloReport::new(&report(), &SloTargets::interactive());
        assert!(s.ttft.p50 <= s.ttft.p95 && s.ttft.p95 <= s.ttft.p99);
        assert!(s.e2e.p99 <= s.e2e.max);
        assert!(s.ttft.p50 > 0.0);
        assert_eq!(s.completed, 48);
    }

    #[test]
    fn goodput_never_exceeds_throughput() {
        let s = SloReport::new(&report(), &SloTargets::interactive());
        assert!(s.goodput_rps <= s.throughput_rps + 1e-12);
        assert!((0.0..=1.0).contains(&s.slo_attainment));
        assert!((0.0..=1.0 + 1e-9).contains(&s.utilization));
    }

    #[test]
    fn impossible_slo_zeroes_goodput() {
        let slo = SloTargets {
            ttft_s: 0.0,
            tpot_s: 0.0,
        };
        let s = SloReport::new(&report(), &slo);
        assert_eq!(s.goodput_rps, 0.0);
        assert_eq!(s.slo_attainment, 0.0);
    }

    #[test]
    fn table_renders_all_metrics() {
        let s = SloReport::new(&report(), &SloTargets::interactive());
        let rendered = s.table("serve").to_string();
        for needle in ["TTFT", "TPOT", "E2E", "goodput", "utilisation"] {
            assert!(rendered.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn empty_run_is_well_defined() {
        let r = ServeReport {
            records: vec![],
            rejected: 0,
            makespan_s: 0.0,
            decode_busy_s: 0.0,
            prefill_busy_s: 0.0,
            decode_iterations: 0,
            peak_batch: 0,
            peak_reserved_tokens: 0,
        };
        let s = SloReport::new(&r, &SloTargets::interactive());
        assert_eq!(s.completed, 0);
        assert_eq!(s.slo_attainment, 0.0);
        assert!(s.throughput_rps.is_finite());
    }
}
