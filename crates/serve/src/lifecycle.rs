//! Replica lifecycle: the fleet's replica set as a first-class
//! dynamic quantity.
//!
//! A fleet provisions a fixed number of replica *slots*; each slot is
//! in one [`LifecycleState`] and moves between states through
//! [`FleetEvent`]s applied at deterministic sim times:
//!
//! | Event | Transition | Semantics |
//! |---|---|---|
//! | `Join` | `Down -> Live` | the slot starts admitting new work |
//! | `Drain` | `Live -> Draining` | no new admissions; in-flight work finishes |
//! | `Leave` | `Draining -> Down` | clean exit, only legal once idle |
//! | `Fail` | `Live\|Draining -> Down` | crash: in-flight requests are lost and re-enqueued through the router after a migration delay, paying a full re-prefill |
//!
//! Events enter the run's command log, ride through `RPUSNAP1`
//! snapshots, and replay bit-identically — a churned fleet satisfies
//! the same three-way digest equality (straight == midpoint-resume ==
//! log replay) as a static one. [`churn_tape`] generates adversarial
//! but always-legal event storms for the fuzz battery.

use crate::rng::ServeRng;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// The lifecycle state of one provisioned replica slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LifecycleState {
    /// Admitting new work and stepping.
    #[default]
    Live,
    /// Admitting nothing new, finishing in-flight work.
    Draining,
    /// Empty and unroutable (never joined, left, or failed).
    Down,
}

impl LifecycleState {
    /// Whether a router may send *new* work to a replica in this state.
    #[must_use]
    pub fn is_routable(self) -> bool {
        matches!(self, Self::Live)
    }

    /// Short name for tables and error messages.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Live => "live",
            Self::Draining => "draining",
            Self::Down => "down",
        }
    }

    pub(crate) fn save(self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            Self::Live => 0,
            Self::Draining => 1,
            Self::Down => 2,
        });
    }

    pub(crate) fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(Self::Live),
            1 => Ok(Self::Draining),
            2 => Ok(Self::Down),
            _ => Err(SnapshotError::Corrupt("bad lifecycle state tag")),
        }
    }
}

/// What happens to a replica slot at a [`FleetEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetEventKind {
    /// `Down -> Live`: the slot starts taking traffic.
    Join,
    /// `Live -> Draining`: stop admitting, finish in-flight work.
    Drain,
    /// `Draining -> Down`: clean exit; legal only once the replica is
    /// idle (no queued or active requests).
    Leave,
    /// `Live|Draining -> Down`: crash. In-flight requests are lost and
    /// re-enqueued through the router after the fleet's migration
    /// delay, paying a full re-prefill of their prompt + generated
    /// tokens.
    Fail,
}

impl FleetEventKind {
    /// Short name for logs and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Join => "join",
            Self::Drain => "drain",
            Self::Leave => "leave",
            Self::Fail => "fail",
        }
    }

    pub(crate) fn save(self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            Self::Join => 0,
            Self::Drain => 1,
            Self::Leave => 2,
            Self::Fail => 3,
        });
    }

    pub(crate) fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(Self::Join),
            1 => Ok(Self::Drain),
            2 => Ok(Self::Leave),
            3 => Ok(Self::Fail),
            _ => Err(SnapshotError::Corrupt("bad fleet event kind tag")),
        }
    }
}

/// One replica lifecycle event, applied at a deterministic sim time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetEvent {
    /// Sim time the event fires, seconds.
    pub at_s: f64,
    /// Provisioned slot index the event targets.
    pub replica: u32,
    /// The transition.
    pub kind: FleetEventKind,
}

impl FleetEvent {
    pub(crate) fn save(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.at_s);
        w.put_u32(self.replica);
        self.kind.save(w);
    }

    pub(crate) fn load(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            at_s: r.get_f64()?,
            replica: r.get_u32()?,
            kind: FleetEventKind::load(r)?,
        })
    }
}

/// Counts of lifecycle transitions a fleet run applied, plus the
/// in-flight requests failures displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleCounts {
    /// `Join` events applied.
    pub joins: u32,
    /// `Drain` events applied.
    pub drains: u32,
    /// `Leave` events applied.
    pub leaves: u32,
    /// `Fail` events applied.
    pub fails: u32,
    /// Queued + in-flight requests displaced by failures and
    /// re-enqueued through the router.
    pub displaced: u32,
}

impl LifecycleCounts {
    /// Total lifecycle events applied.
    #[must_use]
    pub fn events(&self) -> u32 {
        self.joins + self.drains + self.leaves + self.fails
    }
}

/// Generates a deterministic, always-legal replica-churn storm: joins,
/// drains and fails over `provisioned` slots (all initially live),
/// with strictly increasing event times spread over roughly
/// `horizon_s` seconds.
///
/// Legality is maintained by construction: at least one replica stays
/// live at all times (a drain or a fail of a live replica is only
/// generated while two or more are live; draining replicas may still
/// fail), and only down slots join. `Leave` is never generated — its
/// legality depends on runtime queue state, which a pre-run tape
/// cannot see; clean exits are the autoscaler's job.
///
/// # Panics
///
/// Panics when `provisioned` is zero or the horizon is not positive.
#[must_use]
pub fn churn_tape(provisioned: u32, seed: u64, horizon_s: f64, events: u32) -> Vec<FleetEvent> {
    assert!(provisioned >= 1, "a churn tape needs at least one slot");
    assert!(horizon_s > 0.0, "churn horizon must be positive");
    let mut rng = ServeRng::new(seed ^ 0x5AFE_C0DE_D00D_F00D);
    let mut states = vec![LifecycleState::Live; provisioned as usize];
    let mut live = provisioned;
    let mut t = 0.0;
    let mut out = Vec::new();
    while (out.len() as u32) < events {
        t += rng.next_exp(horizon_s / f64::from(events.max(1)));
        let mut moves: Vec<(FleetEventKind, u32)> = Vec::new();
        for (i, &s) in states.iter().enumerate() {
            let i = i as u32;
            match s {
                LifecycleState::Down => moves.push((FleetEventKind::Join, i)),
                LifecycleState::Live if live > 1 => {
                    moves.push((FleetEventKind::Drain, i));
                    moves.push((FleetEventKind::Fail, i));
                }
                LifecycleState::Live => {}
                LifecycleState::Draining => moves.push((FleetEventKind::Fail, i)),
            }
        }
        let Some(&(kind, replica)) = moves
            .get((rng.next_u64() % moves.len().max(1) as u64) as usize)
            .filter(|_| !moves.is_empty())
        else {
            break; // one slot, permanently live: nothing legal to emit
        };
        match kind {
            FleetEventKind::Join => {
                states[replica as usize] = LifecycleState::Live;
                live += 1;
            }
            FleetEventKind::Drain => {
                states[replica as usize] = LifecycleState::Draining;
                live -= 1;
            }
            FleetEventKind::Fail => {
                if states[replica as usize] == LifecycleState::Live {
                    live -= 1;
                }
                states[replica as usize] = LifecycleState::Down;
            }
            FleetEventKind::Leave => unreachable!("churn tapes never emit leave"),
        }
        out.push(FleetEvent {
            at_s: t,
            replica,
            kind,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn states_route_and_name_consistently() {
        assert!(LifecycleState::Live.is_routable());
        assert!(!LifecycleState::Draining.is_routable());
        assert!(!LifecycleState::Down.is_routable());
        assert_eq!(LifecycleState::default(), LifecycleState::Live);
        assert_eq!(LifecycleState::Draining.name(), "draining");
        assert_eq!(FleetEventKind::Fail.name(), "fail");
    }

    #[test]
    fn churn_tape_is_deterministic_and_seed_sensitive() {
        let a = churn_tape(4, 7, 2.0, 24);
        assert_eq!(a, churn_tape(4, 7, 2.0, 24));
        assert_ne!(a, churn_tape(4, 8, 2.0, 24));
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn churn_tape_is_always_legal_and_keeps_one_replica_live() {
        for seed in 0..16u64 {
            let tape = churn_tape(5, seed, 3.0, 64);
            let mut states = [LifecycleState::Live; 5];
            let mut last = f64::NEG_INFINITY;
            for ev in &tape {
                assert!(ev.at_s > last, "times must increase");
                last = ev.at_s;
                let s = states[ev.replica as usize];
                let live = states
                    .iter()
                    .filter(|s| **s == LifecycleState::Live)
                    .count();
                match ev.kind {
                    FleetEventKind::Join => {
                        assert_eq!(s, LifecycleState::Down);
                        states[ev.replica as usize] = LifecycleState::Live;
                    }
                    FleetEventKind::Drain => {
                        assert_eq!(s, LifecycleState::Live);
                        assert!(live > 1, "drain must not empty the live set");
                        states[ev.replica as usize] = LifecycleState::Draining;
                    }
                    FleetEventKind::Fail => {
                        assert_ne!(s, LifecycleState::Down);
                        if s == LifecycleState::Live {
                            assert!(live > 1, "fail must not empty the live set");
                        }
                        states[ev.replica as usize] = LifecycleState::Down;
                    }
                    FleetEventKind::Leave => panic!("tapes never emit leave"),
                }
                assert!(states.contains(&LifecycleState::Live), "live set emptied");
            }
            assert!(!tape.is_empty());
        }
    }

    #[test]
    fn single_slot_tape_is_empty() {
        // One provisioned slot can never legally drain or fail.
        assert!(churn_tape(1, 3, 1.0, 8).is_empty());
    }

    #[test]
    fn counts_total_their_fields() {
        let c = LifecycleCounts {
            joins: 1,
            drains: 2,
            leaves: 3,
            fails: 4,
            displaced: 9,
        };
        assert_eq!(c.events(), 10);
    }
}
