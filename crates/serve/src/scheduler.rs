//! The continuous-batching scheduler and its driving event loop.
//!
//! # State machine
//!
//! Every request moves through four states:
//!
//! ```text
//!             admission (FIFO,                prefill done          last token
//!             batch + KV gates)               (ready_at <= clock)   (generated == output_len)
//!   Queued ─────────────────────> Prefilling ────────────────────> Decoding ────> Done
//!      │
//!      └──> Rejected  (reserved tokens exceed machine capacity even alone)
//! ```
//!
//! The loop alternates three phases on one global clock:
//!
//! 1. **Admit** — pop arrived requests from the FIFO queue head while
//!    the batch has a free slot and the *conservative KV reservation*
//!    (prompt + full output for every admitted request, via
//!    [`CostModel::fits`]) still fits. Only the queue head is ever
//!    considered, so admission order equals arrival order and nothing
//!    starves. Each admitted request starts its prefill: with
//!    collocated prefill the clock (and every decoding request) stalls
//!    for it; with disaggregated prefill (the paper's Splitwise-style
//!    split) it runs on the prefill tier and the request joins the
//!    decode batch `prefill_s` later.
//! 2. **Decode** — one iteration emits one token for every request
//!    whose prefill has completed, costed by [`CostModel::decode_step_s`]
//!    at the current batch size and largest (bucketed) context.
//! 3. **Advance** — with nothing decodable, the clock jumps to the next
//!    event (prefill completion or arrival).
//!
//! Completed requests leave the batch at the end of the iteration that
//! produced their last token, immediately freeing their slot and KV
//! reservation; in closed-loop workloads the completion also triggers
//! the owning client's next arrival.
//!
//! # Example
//!
//! Saturating a one-slot machine serialises requests; two identical
//! seeded runs are bit-identical:
//!
//! ```
//! use rpu_serve::{serve, AnalyticCostModel, ServeConfig, Workload};
//!
//! let wl = Workload::poisson(50.0, 256, 16, 40);
//! let cfg = ServeConfig {
//!     max_batch: 1,
//!     ..ServeConfig::default()
//! };
//! let a = serve(&wl, &mut AnalyticCostModel::small(), &cfg);
//! let b = serve(&wl, &mut AnalyticCostModel::small(), &cfg);
//! assert_eq!(a.records.len(), 40);
//! assert_eq!(a.peak_batch, 1);
//! // Bit-reproducible: identical tapes give identical schedules.
//! assert_eq!(a.makespan_s, b.makespan_s);
//! assert_eq!(
//!     a.records.iter().map(|r| r.finish_s).sum::<f64>(),
//!     b.records.iter().map(|r| r.finish_s).sum::<f64>(),
//! );
//! ```

use crate::arrivals::{RequestSource, Workload};
use crate::cost::CostModel;
use crate::request::{Request, RequestRecord};
use std::collections::VecDeque;

/// Scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Maximum concurrent requests in the serving batch (admission gate;
    /// continuous batching refills slots as requests complete).
    pub max_batch: u32,
    /// Contexts are rounded up to multiples of this for decode-cost
    /// lookups, bounding the number of distinct simulator calls a
    /// memoising cost model must make.
    pub seq_bucket: u32,
    /// `true` runs prefill on the decode machine, stalling the decode
    /// batch (single-box serving); `false` models a disaggregated
    /// prefill tier that only delays the request's own first token.
    pub collocated_prefill: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 8,
            seq_bucket: 256,
            collocated_prefill: false,
        }
    }
}

impl ServeConfig {
    /// Rounds a context length up to the cost-lookup bucket. Machines
    /// should be provisioned for `bucket(prompt + output)` — the
    /// scheduler prices decode iterations at bucketed contexts, so the
    /// bucketed maximum is what the cost model actually simulates.
    #[must_use]
    pub fn bucket(&self, context: u32) -> u32 {
        let b = self.seq_bucket.max(1);
        context.div_ceil(b) * b
    }
}

/// An admitted request and its progress through prefill and decode.
#[derive(Debug, Clone, Copy)]
struct Slot {
    req: Request,
    admit_s: f64,
    /// When the prefill completes and decoding may start.
    ready_at: f64,
    /// Current context length (prompt + generated tokens).
    context: u32,
    generated: u32,
    first_token_s: Option<f64>,
}

/// The outcome of serving one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Completion records, in completion order.
    pub records: Vec<RequestRecord>,
    /// Requests dropped because they exceed machine capacity even as
    /// the only resident request.
    pub rejected: u32,
    /// Wall-clock time from the first arrival to the last completion.
    pub makespan_s: f64,
    /// Time the decode machine spent in decode iterations.
    pub decode_busy_s: f64,
    /// Total prefill time (on the decode machine when collocated, on
    /// the prefill tier otherwise).
    pub prefill_busy_s: f64,
    /// Decode iterations executed.
    pub decode_iterations: u64,
    /// Largest concurrent batch observed.
    pub peak_batch: u32,
    /// Largest conservative KV reservation observed, tokens.
    pub peak_reserved_tokens: u64,
}

impl ServeReport {
    /// Output tokens emitted across all completed requests.
    #[must_use]
    pub fn output_tokens(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.output_len)).sum()
    }

    /// Decode-machine utilisation: fraction of the makespan spent in
    /// decode iterations (plus collocated prefills when applicable
    /// counted via [`ServeReport::decode_busy_s`] only).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.makespan_s > 0.0 {
            self.decode_busy_s / self.makespan_s
        } else {
            0.0
        }
    }
}

/// Serves a workload against a cost model under continuous batching.
///
/// Deterministic: the schedule depends only on the workload (seed
/// included), the cost model's returned latencies and the config.
///
/// # Panics
///
/// Panics if `config.max_batch` is zero (no request could ever be
/// admitted).
#[must_use]
pub fn serve(workload: &Workload, cost: &mut dyn CostModel, config: &ServeConfig) -> ServeReport {
    assert!(config.max_batch >= 1, "max_batch must admit at least one");
    let mut source = RequestSource::new(workload);
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut active: Vec<Slot> = Vec::new();
    let mut clock = 0.0f64;
    // Trace tapes may start long after t = 0; the makespan (and every
    // rate derived from it) is anchored at the first arrival.
    let mut first_arrival_s = f64::INFINITY;
    let mut last_finish_s = f64::NEG_INFINITY;
    let mut report = ServeReport {
        records: Vec::new(),
        rejected: 0,
        makespan_s: 0.0,
        decode_busy_s: 0.0,
        prefill_busy_s: 0.0,
        decode_iterations: 0,
        peak_batch: 0,
        peak_reserved_tokens: 0,
    };

    loop {
        // Pull every request that has arrived by now into the queue.
        while let Some(r) = source.pop_ready(clock) {
            first_arrival_s = first_arrival_s.min(r.arrival_s);
            queue.push_back(r);
        }

        // Admit from the queue head only: FIFO, no overtaking.
        while let Some(front) = queue.front() {
            if active.len() >= config.max_batch as usize {
                break;
            }
            let reserved: u64 = active.iter().map(|s| s.req.reserved_tokens()).sum();
            if !cost.fits(reserved + front.reserved_tokens()) {
                if active.is_empty() {
                    // Too large even alone: drop it or the queue wedges.
                    queue.pop_front();
                    report.rejected += 1;
                    continue;
                }
                break;
            }
            let req = queue.pop_front().expect("front exists");
            let prefill = cost.prefill_s(req.prompt_len);
            report.prefill_busy_s += prefill;
            let ready_at = if config.collocated_prefill {
                clock += prefill;
                clock
            } else {
                clock + prefill
            };
            active.push(Slot {
                req,
                admit_s: clock,
                ready_at,
                context: req.prompt_len,
                generated: 0,
                first_token_s: None,
            });
            let now_reserved = reserved + req.reserved_tokens();
            report.peak_reserved_tokens = report.peak_reserved_tokens.max(now_reserved);
            report.peak_batch = report.peak_batch.max(active.len() as u32);
        }

        let decodable = active.iter().filter(|s| s.ready_at <= clock).count();
        if decodable == 0 {
            // Nothing to decode: jump to the next prefill completion or
            // arrival; if neither exists the workload is done.
            let next_ready = active
                .iter()
                .map(|s| s.ready_at)
                .fold(f64::INFINITY, f64::min);
            let next_arrival = if queue.is_empty() {
                source.next_arrival_s().unwrap_or(f64::INFINITY)
            } else {
                // Queued requests are waiting on batch/KV space held by
                // prefilling slots; their turn comes at next_ready.
                f64::INFINITY
            };
            let next = next_ready.min(next_arrival);
            if next.is_finite() {
                clock = clock.max(next);
                continue;
            }
            debug_assert!(active.is_empty() && queue.is_empty() && source.exhausted());
            break;
        }

        // One decode iteration: one token for every ready request.
        let batch = decodable as u32;
        let max_context = active
            .iter()
            .filter(|s| s.ready_at <= clock)
            .map(|s| s.context)
            .max()
            .expect("decodable > 0");
        let dt = cost.decode_step_s(batch, config.bucket(max_context));
        debug_assert!(dt > 0.0, "decode iterations must take time");
        let iter_start = clock;
        clock += dt;
        report.decode_busy_s += dt;
        report.decode_iterations += 1;

        let mut i = 0;
        while i < active.len() {
            if active[i].ready_at > iter_start {
                i += 1;
                continue;
            }
            let slot = &mut active[i];
            slot.generated += 1;
            slot.context += 1;
            if slot.first_token_s.is_none() {
                slot.first_token_s = Some(clock);
            }
            if slot.generated >= slot.req.output_len {
                let done = active.swap_remove(i);
                report.records.push(RequestRecord {
                    id: done.req.id,
                    arrival_s: done.req.arrival_s,
                    admit_s: done.admit_s,
                    first_token_s: done.first_token_s.expect("at least one token"),
                    finish_s: clock,
                    prompt_len: done.req.prompt_len,
                    output_len: done.req.output_len,
                });
                source.on_completion(clock);
            } else {
                i += 1;
            }
        }
        last_finish_s = last_finish_s.max(clock);
    }

    if last_finish_s.is_finite() && first_arrival_s.is_finite() {
        report.makespan_s = (last_finish_s - first_arrival_s).max(0.0);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use crate::cost::AnalyticCostModel;
    use rpu_models::LengthDistribution;

    fn run(wl: &Workload, cfg: &ServeConfig) -> ServeReport {
        serve(wl, &mut AnalyticCostModel::small(), cfg)
    }

    #[test]
    fn completes_every_request_exactly() {
        let wl = Workload::poisson(200.0, 256, 32, 64);
        let r = run(&wl, &ServeConfig::default());
        assert_eq!(r.records.len(), 64);
        assert_eq!(r.rejected, 0);
        assert_eq!(r.output_tokens(), 64 * 32);
        // Every record's tokens were actually produced in iterations.
        assert!(r.decode_iterations >= 32);
    }

    #[test]
    fn deterministic_across_runs() {
        let wl = Workload::poisson(300.0, 512, 64, 48);
        let a = run(&wl, &ServeConfig::default());
        let b = run(&wl, &ServeConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn latency_ordering_invariants() {
        let wl = Workload::poisson(150.0, 256, 16, 40);
        let r = run(&wl, &ServeConfig::default());
        for rec in &r.records {
            assert!(rec.admit_s >= rec.arrival_s);
            assert!(rec.first_token_s > rec.admit_s);
            assert!(rec.finish_s >= rec.first_token_s);
            assert!(rec.ttft_s() > 0.0 && rec.tpot_s() >= 0.0);
        }
    }

    #[test]
    fn higher_load_degrades_ttft() {
        let mk = |rate| Workload::poisson(rate, 256, 32, 64);
        let lo = run(&mk(50.0), &ServeConfig::default());
        let hi = run(&mk(5000.0), &ServeConfig::default());
        let mean = |r: &ServeReport| {
            r.records.iter().map(RequestRecord::ttft_s).sum::<f64>() / r.records.len() as f64
        };
        assert!(
            mean(&hi) > mean(&lo),
            "saturated {} vs light {}",
            mean(&hi),
            mean(&lo)
        );
    }

    #[test]
    fn batch_capped_by_config() {
        let wl = Workload::poisson(10_000.0, 64, 64, 64);
        let cfg = ServeConfig {
            max_batch: 3,
            ..ServeConfig::default()
        };
        let r = run(&wl, &cfg);
        assert_eq!(r.peak_batch, 3);
    }

    #[test]
    fn kv_backpressure_limits_batch_below_slot_count() {
        // Capacity 4096 tokens, each request reserves 2048: only two fit
        // even though eight slots exist.
        let wl = Workload {
            prompt_lens: LengthDistribution::Fixed(2000),
            output_lens: LengthDistribution::Fixed(48),
            ..Workload::poisson(10_000.0, 1, 1, 32)
        };
        let r = run(&wl, &ServeConfig::default());
        assert_eq!(r.peak_batch, 2);
        assert!(r.peak_reserved_tokens <= 4096);
        assert_eq!(r.records.len(), 32);
    }

    #[test]
    fn oversized_requests_are_rejected_not_wedged() {
        let wl = Workload {
            prompt_lens: LengthDistribution::Fixed(8192), // > 4096 capacity
            ..Workload::poisson(100.0, 1, 8, 5)
        };
        let r = run(&wl, &ServeConfig::default());
        assert_eq!(r.rejected, 5);
        assert!(r.records.is_empty());
    }

    #[test]
    fn collocated_prefill_stalls_decode() {
        let wl = Workload::poisson(400.0, 2048, 64, 32);
        let dis = run(&wl, &ServeConfig::default());
        let col = run(
            &wl,
            &ServeConfig {
                collocated_prefill: true,
                ..ServeConfig::default()
            },
        );
        let mean_tpot = |r: &ServeReport| {
            r.records.iter().map(RequestRecord::tpot_s).sum::<f64>() / r.records.len() as f64
        };
        // Stalling the batch for every prefill lengthens other
        // requests' inter-token gaps.
        assert!(mean_tpot(&col) >= mean_tpot(&dis));
        assert!(col.makespan_s >= dis.makespan_s);
    }

    #[test]
    fn closed_loop_bounds_concurrency_by_clients() {
        let wl = Workload {
            arrivals: ArrivalProcess::ClosedLoop {
                clients: 3,
                think_s: 0.0,
            },
            ..Workload::poisson(1.0, 128, 16, 30)
        };
        let r = run(&wl, &ServeConfig::default());
        assert_eq!(r.records.len(), 30);
        assert!(r.peak_batch <= 3);
    }

    #[test]
    fn makespan_is_anchored_at_first_arrival() {
        // A trace that starts late must not dilute the rates with the
        // idle lead-in before its first request.
        let offset = Workload {
            arrivals: ArrivalProcess::Trace {
                arrivals_s: vec![1000.0, 1000.01],
            },
            ..Workload::poisson(1.0, 128, 16, 2)
        };
        let zero = Workload {
            arrivals: ArrivalProcess::Trace {
                arrivals_s: vec![0.0, 0.01],
            },
            ..Workload::poisson(1.0, 128, 16, 2)
        };
        let a = run(&offset, &ServeConfig::default());
        let b = run(&zero, &ServeConfig::default());
        assert!(a.makespan_s < 1.0, "lead-in leaked in: {}", a.makespan_s);
        assert!((a.makespan_s - b.makespan_s).abs() < 1e-9);
        assert!((a.utilization() - b.utilization()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_config_is_rejected() {
        let wl = Workload::poisson(10.0, 64, 8, 1);
        let cfg = ServeConfig {
            max_batch: 0,
            ..ServeConfig::default()
        };
        let _ = run(&wl, &cfg);
    }

    #[test]
    fn seq_bucket_rounds_up() {
        let cfg = ServeConfig::default();
        assert_eq!(cfg.bucket(1), 256);
        assert_eq!(cfg.bucket(256), 256);
        assert_eq!(cfg.bucket(257), 512);
    }
}
